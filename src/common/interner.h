// String interning pool.
//
// Entity attributes (executable paths, file names, IP addresses, user names)
// are heavily repeated in audit data. Interning maps each distinct string to
// a dense uint32 id so events can store 4-byte ids and the engine can
// evaluate a LIKE predicate once per *distinct* string rather than once per
// event — one of the paper's "in-memory index" storage optimizations.
//
// DictionaryMatchCache takes that one step further: a compiled predicate is
// evaluated once against the whole dictionary to produce a matching-id
// bitset, cached across queries and tagged with the dictionary version so
// streaming appends extend it incrementally (the pool is append-only, so a
// stale entry only needs the new tail [version, size) evaluated).

#ifndef AIQL_COMMON_INTERNER_H_
#define AIQL_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/like_matcher.h"

namespace aiql {

/// Dense id of an interned string. kInvalidStringId means "absent".
using StringId = uint32_t;
inline constexpr StringId kInvalidStringId = UINT32_MAX;

/// Append-only string pool with stable ids. Not thread-safe; ingestion is
/// single-writer (readers take const refs after load).
class StringInterner {
 public:
  StringInterner() = default;

  /// Returns the id for `text`, interning it on first sight.
  StringId Intern(std::string_view text);

  /// Returns the id for `text` or kInvalidStringId if never interned.
  StringId Lookup(std::string_view text) const;

  /// The string for an id. Precondition: id < size().
  std::string_view Get(StringId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Dictionary version: because the pool is append-only, the size IS the
  /// version — ids below it are frozen forever. Cached predicate bitsets
  /// carry the version they were computed at and extend over the new tail.
  uint64_t version() const { return strings_.size(); }

  /// Applies `fn(id, text)` to every interned string; used to evaluate LIKE
  /// predicates over the distinct-value domain.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (StringId id = 0; id < strings_.size(); ++id) {
      fn(id, std::string_view(strings_[id]));
    }
  }

 private:
  // deque keeps string storage stable so string_view keys stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, StringId> ids_;
};

/// The ids of one dictionary matching one compiled predicate, frozen at
/// `version`. Immutable once published (shared across queries and threads).
struct DictionaryBitset {
  DenseBitset bits;      ///< set bit = matching StringId
  uint64_t version = 0;  ///< dictionary version the bits cover
};

/// Cross-query cache of predicate-vs-dictionary evaluations, keyed by the
/// compiled pattern text. Thread-safe. Entries are immutable shared_ptrs:
/// when the dictionary has grown past an entry's version, a fresh bitset is
/// built by copying the old words and matching only the appended tail —
/// readers holding the old pointer are never raced.
///
/// Callers must guarantee the dictionary is not being mutated during Match
/// (the engine's ReadView contract: interning happens only in batch commits,
/// which wait for open views).
class DictionaryMatchCache {
 public:
  DictionaryMatchCache() = default;
  // Movable so EntityStore stays movable (snapshot load). The mutex is not
  // moved; moves only happen while no queries hold the source.
  DictionaryMatchCache(DictionaryMatchCache&& other) noexcept
      : cache_(std::move(other.cache_)) {}
  DictionaryMatchCache& operator=(DictionaryMatchCache&& other) noexcept {
    if (this != &other) cache_ = std::move(other.cache_);
    return *this;
  }

  /// Bitset of ids in `dict` matching `matcher`, current as of
  /// dict.version().
  std::shared_ptr<const DictionaryBitset> Match(const StringInterner& dict,
                                                const LikeMatcher& matcher);

  /// Entries cached right now (test/introspection hook).
  size_t size() const;

  /// Distinct-pattern cap: one past it, the map is epoch-cleared (in-flight
  /// readers keep their shared_ptrs) so ad-hoc pattern churn cannot grow
  /// the cache without bound.
  static constexpr size_t kMaxEntries = 256;

 private:
 mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const DictionaryBitset>>
      cache_;
};

}  // namespace aiql

#endif  // AIQL_COMMON_INTERNER_H_
