// String interning pool.
//
// Entity attributes (executable paths, file names, IP addresses, user names)
// are heavily repeated in audit data. Interning maps each distinct string to
// a dense uint32 id so events can store 4-byte ids and the engine can
// evaluate a LIKE predicate once per *distinct* string rather than once per
// event — one of the paper's "in-memory index" storage optimizations.

#ifndef AIQL_COMMON_INTERNER_H_
#define AIQL_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aiql {

/// Dense id of an interned string. kInvalidStringId means "absent".
using StringId = uint32_t;
inline constexpr StringId kInvalidStringId = UINT32_MAX;

/// Append-only string pool with stable ids. Not thread-safe; ingestion is
/// single-writer (readers take const refs after load).
class StringInterner {
 public:
  StringInterner() = default;

  /// Returns the id for `text`, interning it on first sight.
  StringId Intern(std::string_view text);

  /// Returns the id for `text` or kInvalidStringId if never interned.
  StringId Lookup(std::string_view text) const;

  /// The string for an id. Precondition: id < size().
  std::string_view Get(StringId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Applies `fn(id, text)` to every interned string; used to evaluate LIKE
  /// predicates over the distinct-value domain.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (StringId id = 0; id < strings_.size(); ++id) {
      fn(id, std::string_view(strings_[id]));
    }
  }

 private:
  // deque keeps string storage stable so string_view keys stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, StringId> ids_;
};

}  // namespace aiql

#endif  // AIQL_COMMON_INTERNER_H_
