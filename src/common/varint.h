// LEB128 varint and zigzag encoding helpers.
//
// The snapshot v2 on-disk format stores columns as varint streams: small
// values (entity ids, amounts, timestamp deltas) take one or two bytes
// instead of a fixed eight. Encoders append to a std::string buffer;
// decoders are bounds-checked against an explicit limit so truncated or
// bit-flipped input surfaces as a decode failure, never an out-of-bounds
// read.

#ifndef AIQL_COMMON_VARINT_H_
#define AIQL_COMMON_VARINT_H_

#include <cstdint>
#include <string>

namespace aiql {

/// Appends `v` to `dst` as an unsigned LEB128 varint (1-10 bytes).
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Decodes an unsigned varint from [p, limit). Returns the position past the
/// varint, or nullptr on truncation / overlong (> 10 byte) input.
inline const char* GetVarint64(const char* p, const char* limit,
                               uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (p < limit && shift < 70) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

/// Maps signed values onto unsigned ones with small absolute values staying
/// small (0 -> 0, -1 -> 1, 1 -> 2, ...), so deltas that may be negative
/// still varint-encode compactly.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends a zigzag-encoded signed varint.
inline void PutVarintSigned(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode(v));
}

/// Decodes a zigzag-encoded signed varint; nullptr on failure.
inline const char* GetVarintSigned(const char* p, const char* limit,
                                   int64_t* out) {
  uint64_t raw = 0;
  p = GetVarint64(p, limit, &raw);
  if (p != nullptr) *out = ZigZagDecode(raw);
  return p;
}

}  // namespace aiql

#endif  // AIQL_COMMON_VARINT_H_
