// Query governance: deadlines, cooperative cancellation, and resource
// budgets (rows scanned, provenance nodes, gathered bytes).
//
// A QueryContext travels with one query execution. Hot loops call
// Check()/ChargeRows()/ChargeNodes()/ChargeMemory() at batch granularity;
// the first violation (cancel, deadline, or budget) latches a sticky error
// status that every later check returns, so a long scatter/gather unwinds
// with one consistent code. The context is thread-safe: scan workers,
// merge threads, and the controlling thread may all touch it concurrently.

#ifndef AIQL_COMMON_CANCELLATION_H_
#define AIQL_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace aiql {

/// Resource / time limits for one query. Zero means unlimited.
struct QueryLimits {
  /// Wall-clock deadline, as a duration from context construction.
  std::chrono::milliseconds timeout{0};
  /// Max events inspected + rows emitted across all shards and phases.
  uint64_t max_rows = 0;
  /// Max provenance nodes admitted to the frontier.
  uint64_t max_nodes = 0;
  /// Max bytes gathered cross-shard (binding exchange + rebuild).
  uint64_t max_bytes = 0;
};

/// Per-query governance state. Construct once per Execute()/Track() call,
/// pass by pointer through the execution layers; nullptr means ungoverned.
class QueryContext {
 public:
  QueryContext() = default;
  explicit QueryContext(const QueryLimits& limits);

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Requests cooperative cancellation; the next Check() anywhere in the
  /// query returns kCancelled. Safe from any thread (e.g. a Ctrl-C handler
  /// or a server admission controller).
  void Cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    Violate(StatusCode::kCancelled);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once any violation (cancel / deadline / budget) has latched.
  bool stopped() const {
    return violation_.load(std::memory_order_relaxed) !=
           static_cast<int>(StatusCode::kOk);
  }

  /// Returns OK, or the sticky violation status. Reads the clock, so call
  /// it at batch granularity (every ~kCheckStride rows), not per row.
  Status Check();

  /// Charges `n` scanned/emitted rows against the row budget and runs a
  /// full Check. Returns the violation status on breach.
  Status ChargeRows(uint64_t n);

  /// Charges `n` provenance nodes against the node budget.
  Status ChargeNodes(uint64_t n);

  /// Charges `n` gathered bytes against the memory budget.
  Status ChargeMemory(uint64_t n);

  /// Suggested loop stride between Check() calls in tight scan loops.
  static constexpr uint64_t kCheckStride = 1024;

  uint64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  const QueryLimits& limits() const { return limits_; }

  /// Remaining wall-clock time, clamped at zero; a very large value when no
  /// deadline is set. Used by interruptible sleeps and retry backoff.
  std::chrono::milliseconds remaining() const;

  /// In partial-shard mode the per-shard deadline must not also kill the
  /// bounded gather/merge of the surviving shards: once the degraded path
  /// has dropped the slow shard it lifts the deadline for the remainder.
  /// Cancel and budget violations stay fatal.
  void LiftDeadline();

 private:
  void Violate(StatusCode code);
  Status ViolationStatus() const;

  QueryLimits limits_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point deadline_{};  // zero => none
  std::atomic<bool> has_deadline_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> bytes_{0};
  /// Sticky first violation, stored as int(StatusCode); kOk when healthy.
  std::atomic<int> violation_{static_cast<int>(StatusCode::kOk)};
};

/// RAII binding of the calling thread's "current query context", so code
/// without a QueryContext* parameter in reach (notably failpoint latency
/// injection deep inside snapshot reads) can still observe deadlines and
/// abort promptly. Nesting restores the previous binding on destruction.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

  /// The context bound to this thread, or nullptr.
  static QueryContext* Current();

 private:
  QueryContext* previous_;
};

/// Sleeps for `duration`, polling the thread-bound QueryContext (if any)
/// every ~1ms and returning early once it stops. Used by failpoint latency
/// injection so a 500ms injected stall still honors a 50ms deadline.
void InterruptibleSleep(std::chrono::microseconds duration);

}  // namespace aiql

#endif  // AIQL_COMMON_CANCELLATION_H_
