#include "common/like_matcher.h"

#include <cctype>

#include "common/string_utils.h"

namespace aiql {

namespace {

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool ContainsIgnoreCasePrecomputed(std::string_view haystack_any_case,
                                   std::string_view lowered_needle) {
  if (lowered_needle.empty()) return true;
  if (haystack_any_case.size() < lowered_needle.size()) return false;
  const size_t limit = haystack_any_case.size() - lowered_needle.size();
  for (size_t i = 0; i <= limit; ++i) {
    size_t j = 0;
    while (j < lowered_needle.size() &&
           LowerChar(haystack_any_case[i + j]) == lowered_needle[j]) {
      ++j;
    }
    if (j == lowered_needle.size()) return true;
  }
  return false;
}

bool EqualsLowered(std::string_view any_case, std::string_view lowered) {
  if (any_case.size() != lowered.size()) return false;
  for (size_t i = 0; i < any_case.size(); ++i) {
    if (LowerChar(any_case[i]) != lowered[i]) return false;
  }
  return true;
}

}  // namespace

LikeMatcher::LikeMatcher(std::string_view pattern)
    : pattern_(pattern), lowered_(ToLower(pattern)) {
  bool has_underscore = lowered_.find('_') != std::string::npos;
  size_t pct_count = 0;
  for (char c : lowered_) {
    if (c == '%') ++pct_count;
  }
  if (has_underscore) {
    kind_ = Kind::kGeneric;
    return;
  }
  if (pct_count == 0) {
    kind_ = Kind::kLiteral;
    literal_ = lowered_;
    return;
  }
  // Only '%' wildcards from here on.
  bool leading = lowered_.front() == '%';
  bool trailing = lowered_.back() == '%';
  std::string_view body(lowered_);
  if (leading) body.remove_prefix(1);
  if (trailing && !body.empty()) body.remove_suffix(1);
  if (body.find('%') != std::string_view::npos) {
    kind_ = Kind::kGeneric;  // interior '%' beyond the simple shapes
    return;
  }
  literal_ = std::string(body);
  if (literal_.empty()) {
    kind_ = Kind::kMatchAll;
  } else if (leading && trailing) {
    kind_ = Kind::kSubstring;
  } else if (leading) {
    kind_ = Kind::kSuffix;
  } else if (trailing) {
    kind_ = Kind::kPrefix;
  } else {
    kind_ = Kind::kGeneric;  // unreachable: pct_count>0 implies an edge '%'
  }
}

bool LikeMatcher::Matches(std::string_view text) const {
  switch (kind_) {
    case Kind::kLiteral:
      return EqualsLowered(text, literal_);
    case Kind::kMatchAll:
      return true;
    case Kind::kPrefix:
      return text.size() >= literal_.size() &&
             EqualsLowered(text.substr(0, literal_.size()), literal_);
    case Kind::kSuffix:
      return text.size() >= literal_.size() &&
             EqualsLowered(text.substr(text.size() - literal_.size()),
                           literal_);
    case Kind::kSubstring:
      return ContainsIgnoreCasePrecomputed(text, literal_);
    case Kind::kGeneric:
      return GenericMatch(lowered_, text);
  }
  return false;
}

// Iterative two-pointer LIKE matching with backtracking to the last '%'.
// Runs in O(|pattern| * |text|) worst case, linear in practice.
bool LikeMatcher::GenericMatch(std::string_view pattern,
                               std::string_view text) {
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == LowerChar(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

int LikeMatcher::SpecificityRank() const {
  switch (kind_) {
    case Kind::kLiteral:
      return 0;
    case Kind::kPrefix:
    case Kind::kSuffix:
      return 1;
    case Kind::kSubstring:
      return 2;
    case Kind::kGeneric:
      return 3;
    case Kind::kMatchAll:
      return 4;
  }
  return 4;
}

}  // namespace aiql
