#include "common/like_matcher.h"

#include <cctype>

namespace aiql {

namespace {

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool ContainsIgnoreCasePrecomputed(std::string_view haystack_any_case,
                                   std::string_view lowered_needle) {
  if (lowered_needle.empty()) return true;
  if (haystack_any_case.size() < lowered_needle.size()) return false;
  const size_t limit = haystack_any_case.size() - lowered_needle.size();
  for (size_t i = 0; i <= limit; ++i) {
    size_t j = 0;
    while (j < lowered_needle.size() &&
           LowerChar(haystack_any_case[i + j]) == lowered_needle[j]) {
      ++j;
    }
    if (j == lowered_needle.size()) return true;
  }
  return false;
}

bool EqualsLowered(std::string_view any_case, std::string_view lowered) {
  if (any_case.size() != lowered.size()) return false;
  for (size_t i = 0; i < any_case.size(); ++i) {
    if (LowerChar(any_case[i]) != lowered[i]) return false;
  }
  return true;
}

}  // namespace

LikeMatcher::LikeMatcher(std::string_view pattern) : pattern_(pattern) {
  // Resolve escapes into (char, is-wildcard) pairs. A backslash escapes an
  // immediately following '%', '_', or '\'; before anything else (or at the
  // end of the pattern) it is an ordinary character, so Windows paths need
  // no doubling.
  chars_.reserve(pattern.size());
  wild_.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (IsEscape(pattern, i)) {
      chars_.push_back(pattern[++i]);
      wild_.push_back('\0');
      continue;
    }
    chars_.push_back(LowerChar(c));
    wild_.push_back(c == '%' || c == '_' ? c : '\0');
  }

  bool has_underscore = false;
  size_t pct_count = 0;
  for (char w : wild_) {
    if (w == '_') has_underscore = true;
    if (w == '%') ++pct_count;
  }
  if (has_underscore) {
    kind_ = Kind::kGeneric;
    return;
  }
  if (pct_count == 0) {
    kind_ = Kind::kLiteral;
    literal_ = chars_;
    return;
  }
  // Only '%' wildcards from here on.
  bool leading = wild_.front() == '%';
  bool trailing = wild_.back() == '%';
  std::string_view body(chars_);
  std::string_view body_wild(wild_);
  if (leading) {
    body.remove_prefix(1);
    body_wild.remove_prefix(1);
  }
  if (trailing && !body.empty()) {
    body.remove_suffix(1);
    body_wild.remove_suffix(1);
  }
  if (body_wild.find('%') != std::string_view::npos) {
    kind_ = Kind::kGeneric;  // interior '%' beyond the simple shapes
    return;
  }
  literal_ = std::string(body);
  if (literal_.empty()) {
    kind_ = Kind::kMatchAll;
  } else if (leading && trailing) {
    kind_ = Kind::kSubstring;
  } else if (leading) {
    kind_ = Kind::kSuffix;
  } else if (trailing) {
    kind_ = Kind::kPrefix;
  } else {
    kind_ = Kind::kGeneric;  // unreachable: pct_count>0 implies an edge '%'
  }
}

bool LikeMatcher::Matches(std::string_view text) const {
  switch (kind_) {
    case Kind::kLiteral:
      return EqualsLowered(text, literal_);
    case Kind::kMatchAll:
      return true;
    case Kind::kPrefix:
      return text.size() >= literal_.size() &&
             EqualsLowered(text.substr(0, literal_.size()), literal_);
    case Kind::kSuffix:
      return text.size() >= literal_.size() &&
             EqualsLowered(text.substr(text.size() - literal_.size()),
                           literal_);
    case Kind::kSubstring:
      return ContainsIgnoreCasePrecomputed(text, literal_);
    case Kind::kGeneric:
      return GenericMatch(chars_, wild_, text);
  }
  return false;
}

// Iterative two-pointer LIKE matching with backtracking to the last '%'.
// `chars` holds the lowered, escape-resolved pattern; `wild[p]` marks
// whether position p is a wildcard. Runs in O(|pattern| * |text|) worst
// case, linear in practice.
bool LikeMatcher::GenericMatch(std::string_view chars, std::string_view wild,
                               std::string_view text) {
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < chars.size() &&
        (wild[p] == '_' ||
         (wild[p] == '\0' && chars[p] == LowerChar(text[t])))) {
      ++p;
      ++t;
    } else if (p < chars.size() && wild[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < chars.size() && wild[p] == '%') ++p;
  return p == chars.size();
}

int LikeMatcher::SpecificityRank() const {
  switch (kind_) {
    case Kind::kLiteral:
      return 0;
    case Kind::kPrefix:
    case Kind::kSuffix:
      return 1;
    case Kind::kSubstring:
      return 2;
    case Kind::kGeneric:
      return 3;
    case Kind::kMatchAll:
      return 4;
  }
  return 4;
}

}  // namespace aiql
