#include "common/interner.h"

namespace aiql {

StringId StringInterner::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), id);
  return id;
}

StringId StringInterner::Lookup(std::string_view text) const {
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidStringId : it->second;
}

}  // namespace aiql
