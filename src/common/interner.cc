#include "common/interner.h"

namespace aiql {

StringId StringInterner::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), id);
  return id;
}

StringId StringInterner::Lookup(std::string_view text) const {
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidStringId : it->second;
}

std::shared_ptr<const DictionaryBitset> DictionaryMatchCache::Match(
    const StringInterner& dict, const LikeMatcher& matcher) {
  const uint64_t version = dict.version();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(matcher.pattern());
  if (it != cache_.end() && it->second->version == version) {
    return it->second;
  }
  auto fresh = std::make_shared<DictionaryBitset>();
  StringId from = 0;
  if (it != cache_.end()) {
    // Stale entry: the dictionary is append-only, so the old words stay
    // correct — copy them and match only the appended tail.
    fresh->bits = it->second->bits;
    from = static_cast<StringId>(it->second->version);
  }
  fresh->bits.Grow(version);
  fresh->version = version;
  for (StringId id = from; id < version; ++id) {
    if (matcher.Matches(dict.Get(id))) fresh->bits.Add(id);
  }
  if (it != cache_.end()) {
    it->second = std::move(fresh);
    return it->second;
  }
  if (cache_.size() >= kMaxEntries) cache_.clear();
  return cache_.emplace(matcher.pattern(), std::move(fresh)).first->second;
}

size_t DictionaryMatchCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace aiql
