#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace aiql {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

/// Shared claim state of one ParallelFor call. Heap-allocated and owned
/// jointly by the caller and the helper tasks: a helper enqueued behind a
/// long task may only start (and observe next >= n) after the caller has
/// already returned.
struct ParallelForState {
  explicit ParallelForState(size_t total, const std::function<void(size_t)>& f,
                            const std::function<bool()>* stop_fn = nullptr)
      : n(total), fn(&f), stop(stop_fn) {}

  std::atomic<size_t> next{0};  ///< next unclaimed iteration
  std::atomic<size_t> done{0};  ///< completed iterations
  size_t n;
  /// Points at the caller's fn; only dereferenced for claimed iterations
  /// (i < n), all of which complete before the caller's wait returns.
  const std::function<void(size_t)>* fn;
  /// Optional early-exit predicate (nullptr = never stop). Once it returns
  /// true, claimed iterations are counted done without running fn.
  const std::function<bool()>* stop;
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  ///< first exception thrown by fn (guarded by mu)
};

/// Claims and runs iterations until the counter is exhausted. An iteration
/// that throws still counts as done (so the caller never hangs waiting for
/// it); the first exception is stashed for the caller to rethrow.
void DrainParallelFor(const std::shared_ptr<ParallelForState>& state) {
  size_t ran = 0;
  while (true) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) break;
    // A claimed iteration after stop still counts toward done (the claim
    // was consumed) but skips the work, so all helpers unwind promptly.
    if (state->stop == nullptr || !(*state->stop)()) {
      try {
        (*state->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
    }
    ++ran;
  }
  if (ran == 0) return;
  size_t done = state->done.fetch_add(ran, std::memory_order_acq_rel) + ran;
  if (done == state->n) {
    // Taking the mutex pairs with the caller's predicate check, closing the
    // check-then-sleep window.
    std::lock_guard<std::mutex> lock(state->mu);
    state->cv.notify_all();
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn);
  // Helpers beyond the caller; more than n - 1 could never claim anything.
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { DrainParallelFor(state); });
  }
  // The caller participates: every iteration no helper has claimed runs
  // inline here, so ParallelFor completes even when all workers are busy —
  // including when the caller itself is the only worker of a 1-thread pool.
  DrainParallelFor(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  // Rethrow the first iteration failure on the calling thread, wherever it
  // ran (the pre-claim-counter implementation surfaced it via future.get()).
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const std::function<bool()>& stop) {
  if (n == 0) return;
  if (n == 1) {
    if (!stop()) fn(0);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn, &stop);
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { DrainParallelFor(state); });
  }
  DrainParallelFor(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace aiql
