#include "common/thread_pool.h"

namespace aiql {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
}

}  // namespace aiql
