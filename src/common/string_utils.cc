#include "common/string_utils.h"

#include <cctype>

namespace aiql {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

size_t CountWords(std::string_view text) {
  size_t count = 0;
  bool in_word = false;
  for (char c : text) {
    bool space = std::isspace(static_cast<unsigned char>(c));
    if (!space && !in_word) ++count;
    in_word = !space;
  }
  return count;
}

size_t CountNonSpaceChars(std::string_view text) {
  size_t count = 0;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) ++count;
  }
  return count;
}

std::string SqlQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '\'';
  for (char c : text) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

}  // namespace aiql
