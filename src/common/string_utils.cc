#include "common/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace aiql {

namespace {

/// Pre-validates the shape strtoll/strtoull/strtod cannot be trusted to
/// reject on their own: empty input, leading whitespace (strto* skips it),
/// and a stray sign for the unsigned parser (strtoull accepts '-'!).
Status CheckNumericShape(std::string_view text, bool allow_sign,
                         const char* what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("empty ") + what);
  }
  char first = text.front();
  bool signed_first = first == '-' || first == '+';
  if (std::isspace(static_cast<unsigned char>(first)) ||
      (signed_first && !allow_sign)) {
    return Status::InvalidArgument("'" + std::string(text) +
                                   "' is not a valid " + what);
  }
  return Status::OK();
}

}  // namespace

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

size_t CountWords(std::string_view text) {
  size_t count = 0;
  bool in_word = false;
  for (char c : text) {
    bool space = std::isspace(static_cast<unsigned char>(c));
    if (!space && !in_word) ++count;
    in_word = !space;
  }
  return count;
}

size_t CountNonSpaceChars(std::string_view text) {
  size_t count = 0;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) ++count;
  }
  return count;
}

Result<int64_t> ParseInt64(std::string_view text) {
  AIQL_RETURN_IF_ERROR(CheckNumericShape(text, /*allow_sign=*/true,
                                         "integer"));
  std::string owned(text);  // strtoll needs NUL termination
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size() || end == owned.c_str()) {
    return Status::InvalidArgument("'" + owned + "' is not a valid integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + owned +
                                   "' is out of range for a 64-bit integer");
  }
  return static_cast<int64_t>(value);
}

Result<uint64_t> ParseUint64(std::string_view text) {
  AIQL_RETURN_IF_ERROR(CheckNumericShape(text, /*allow_sign=*/false,
                                         "unsigned integer"));
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size() || end == owned.c_str()) {
    return Status::InvalidArgument("'" + owned +
                                   "' is not a valid unsigned integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument(
        "'" + owned + "' is out of range for a 64-bit unsigned integer");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  AIQL_RETURN_IF_ERROR(CheckNumericShape(text, /*allow_sign=*/true,
                                         "number"));
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || end == owned.c_str()) {
    return Status::InvalidArgument("'" + owned + "' is not a valid number");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + owned +
                                   "' is out of range for a double");
  }
  return value;
}

std::string SqlQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '\'';
  for (char c : text) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

}  // namespace aiql
