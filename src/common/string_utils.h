// Small string helpers shared across modules.

#ifndef AIQL_COMMON_STRING_UTILS_H_
#define AIQL_COMMON_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace aiql {

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Counts whitespace-separated words (used for query conciseness metrics).
size_t CountWords(std::string_view text);

/// Counts non-whitespace characters (paper excludes spaces).
size_t CountNonSpaceChars(std::string_view text);

/// Escapes a string for embedding in single-quoted SQL ('' doubling).
std::string SqlQuote(std::string_view text);

// Checked numeric parsing: the whole of `text` must be one well-formed
// number with no trailing garbage, and the value must fit the result type
// (strtoll-style ERANGE saturation is an error, not a silently accepted
// LLONG_MAX). Shared by command parsers that must reject typos — the
// failpoint spec grammar, the shell's timeout/budget/shards/connect
// commands, and the server's option handling.

/// Parses a signed decimal integer (optional leading '-').
Result<int64_t> ParseInt64(std::string_view text);

/// Parses an unsigned decimal integer (no sign allowed).
Result<uint64_t> ParseUint64(std::string_view text);

/// Parses a floating-point literal (strtod grammar, fully consumed).
Result<double> ParseDouble(std::string_view text);

}  // namespace aiql

#endif  // AIQL_COMMON_STRING_UTILS_H_
