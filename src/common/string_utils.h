// Small string helpers shared across modules.

#ifndef AIQL_COMMON_STRING_UTILS_H_
#define AIQL_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aiql {

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Counts whitespace-separated words (used for query conciseness metrics).
size_t CountWords(std::string_view text);

/// Counts non-whitespace characters (paper excludes spaces).
size_t CountNonSpaceChars(std::string_view text);

/// Escapes a string for embedding in single-quoted SQL ('' doubling).
std::string SqlQuote(std::string_view text);

}  // namespace aiql

#endif  // AIQL_COMMON_STRING_UTILS_H_
