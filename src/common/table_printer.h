// Fixed-width text table rendering for the REPL shell, examples, and the
// benchmark harnesses (which print paper-style result tables).

#ifndef AIQL_COMMON_TABLE_PRINTER_H_
#define AIQL_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace aiql {

/// Accumulates rows and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with +---+ borders, e.g.
  ///   +------+-------+
  ///   | proc | bytes |
  ///   +------+-------+
  ///   | cmd  | 4096  |
  ///   +------+-------+
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aiql

#endif  // AIQL_COMMON_TABLE_PRINTER_H_
