#include "common/cancellation.h"

#include <algorithm>
#include <thread>

namespace aiql {

QueryContext::QueryContext(const QueryLimits& limits) : limits_(limits) {
  if (limits_.timeout.count() > 0) {
    deadline_ = start_ + limits_.timeout;
    has_deadline_.store(true, std::memory_order_release);
  }
}

void QueryContext::Violate(StatusCode code) {
  int expected = static_cast<int>(StatusCode::kOk);
  violation_.compare_exchange_strong(expected, static_cast<int>(code),
                                     std::memory_order_relaxed);
}

Status QueryContext::ViolationStatus() const {
  switch (static_cast<StatusCode>(violation_.load(std::memory_order_relaxed))) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(
          "query deadline of " + std::to_string(limits_.timeout.count()) +
          "ms exceeded");
    case StatusCode::kResourceExhausted: {
      std::string what;
      if (limits_.max_rows != 0 && rows_charged() > limits_.max_rows) {
        what = "row budget of " + std::to_string(limits_.max_rows) +
               " exhausted (" + std::to_string(rows_charged()) + " charged)";
      } else if (limits_.max_nodes != 0 &&
                 nodes_charged() > limits_.max_nodes) {
        what = "node budget of " + std::to_string(limits_.max_nodes) +
               " exhausted (" + std::to_string(nodes_charged()) + " charged)";
      } else {
        what = "memory budget of " + std::to_string(limits_.max_bytes) +
               " bytes exhausted (" + std::to_string(bytes_charged()) +
               " charged)";
      }
      return Status::ResourceExhausted("query " + what);
    }
    default:
      return Status::Internal("unexpected governance violation code");
  }
}

Status QueryContext::Check() {
  if (stopped()) return ViolationStatus();
  if (cancelled_.load(std::memory_order_relaxed)) {
    Violate(StatusCode::kCancelled);
    return ViolationStatus();
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    Violate(StatusCode::kDeadlineExceeded);
    return ViolationStatus();
  }
  return Status::OK();
}

Status QueryContext::ChargeRows(uint64_t n) {
  uint64_t total = rows_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_rows != 0 && total > limits_.max_rows) {
    Violate(StatusCode::kResourceExhausted);
    return ViolationStatus();
  }
  return Check();
}

Status QueryContext::ChargeNodes(uint64_t n) {
  uint64_t total = nodes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_nodes != 0 && total > limits_.max_nodes) {
    Violate(StatusCode::kResourceExhausted);
    return ViolationStatus();
  }
  return Check();
}

Status QueryContext::ChargeMemory(uint64_t n) {
  uint64_t total = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_bytes != 0 && total > limits_.max_bytes) {
    Violate(StatusCode::kResourceExhausted);
    return ViolationStatus();
  }
  return Check();
}

std::chrono::milliseconds QueryContext::remaining() const {
  if (!has_deadline_.load(std::memory_order_acquire)) {
    return std::chrono::milliseconds::max();
  }
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline_ - std::chrono::steady_clock::now());
  return std::max(left, std::chrono::milliseconds(0));
}

void QueryContext::LiftDeadline() {
  has_deadline_.store(false, std::memory_order_release);
  // If the deadline already latched, un-latch it so the bounded merge of
  // surviving shards can complete; cancel/budget latches are left intact.
  int expected = static_cast<int>(StatusCode::kDeadlineExceeded);
  violation_.compare_exchange_strong(expected,
                                     static_cast<int>(StatusCode::kOk),
                                     std::memory_order_relaxed);
}

namespace {
thread_local QueryContext* g_current_context = nullptr;
}  // namespace

ScopedQueryContext::ScopedQueryContext(QueryContext* ctx)
    : previous_(g_current_context) {
  g_current_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { g_current_context = previous_; }

QueryContext* ScopedQueryContext::Current() { return g_current_context; }

void InterruptibleSleep(std::chrono::microseconds duration) {
  auto end = std::chrono::steady_clock::now() + duration;
  constexpr auto kSlice = std::chrono::milliseconds(1);
  while (true) {
    QueryContext* ctx = ScopedQueryContext::Current();
    if (ctx != nullptr && !ctx->Check().ok()) return;
    auto now = std::chrono::steady_clock::now();
    if (now >= end) return;
    auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        end - now);
    std::this_thread::sleep_for(
        std::min(left, std::chrono::duration_cast<std::chrono::microseconds>(
                           kSlice)));
  }
}

}  // namespace aiql
