// Dense uint32-keyed bitsets shared by the query engine's id-set machinery.
//
// Candidate entity sets, dictionary-match sets, and agent filters are all
// "set of small uint32 ids" — DenseBitset is the one flat-word
// representation behind them, exposing its raw words so the batch scan
// kernels can test membership with a shift+mask and no bounds branch when
// the caller guarantees ids < universe. IdFilter layers a guarded hybrid on
// top for ids with no universe bound (agent ids come straight from query
// text): dense words below a cap, sorted overflow above it, so a hostile
// id near UINT32_MAX cannot force a multi-hundred-MB allocation.

#ifndef AIQL_COMMON_BITSET_H_
#define AIQL_COMMON_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace aiql {

/// Dense bitset over [0, universe). The word array never shrinks after
/// construction, so `words()[id >> 6]` is in bounds for every id < the
/// construction universe — the invariant the scan kernels rely on.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t universe) : bits_((universe + 63) / 64, 0) {}

  void Add(uint32_t id) { bits_[id >> 6] |= 1ULL << (id & 63); }

  /// Guarded membership: ids at/above the universe are absent, not UB.
  bool Contains(uint32_t id) const {
    size_t word = id >> 6;
    return word < bits_.size() && (bits_[word] >> (id & 63)) & 1;
  }

  /// Unguarded membership for hot loops. Precondition: id >> 6 < num_words().
  bool ContainsUnchecked(uint32_t id) const {
    return (bits_[id >> 6] >> (id & 63)) & 1;
  }

  /// Keeps only ids also present in `other`. Returns the surviving member
  /// count, fused into the same word-at-a-time pass (popcount, no bit loop)
  /// so callers need no separate Count() scan.
  size_t IntersectWith(const DenseBitset& other) {
    size_t n = std::min(bits_.size(), other.bits_.size());
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      bits_[i] &= other.bits_[i];
      count += static_cast<size_t>(std::popcount(bits_[i]));
    }
    for (size_t i = n; i < bits_.size(); ++i) {
      bits_[i] = 0;
    }
    return count;
  }

  /// Adds every id present in `other` (other may be larger; this grows).
  void UnionWith(const DenseBitset& other) {
    if (other.bits_.size() > bits_.size()) bits_.resize(other.bits_.size(), 0);
    for (size_t i = 0; i < other.bits_.size(); ++i) {
      bits_[i] |= other.bits_[i];
    }
  }

  size_t Count() const {
    size_t count = 0;
    for (uint64_t word : bits_) {
      count += static_cast<size_t>(std::popcount(word));
    }
    return count;
  }

  /// Materializes the member ids in ascending order.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    for (size_t w = 0; w < bits_.size(); ++w) {
      uint64_t word = bits_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        out.push_back(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
    return out;
  }

  /// Grows the universe, preserving members (append-only dictionaries).
  void Grow(size_t universe) {
    size_t words = (universe + 63) / 64;
    if (words > bits_.size()) bits_.resize(words, 0);
  }

  /// Raw word access for batch kernels (shift+mask membership tests).
  const uint64_t* words() const { return bits_.data(); }
  size_t num_words() const { return bits_.size(); }

 private:
  std::vector<uint64_t> bits_;
};

/// Membership filter over arbitrary uint32 ids with no universe bound.
/// Ids below kDenseLimit (or below max_id + 1, whichever is smaller) live
/// in a dense bitset; larger ids fall back to a sorted vector, so a query
/// naming agentid = 4000000000 costs a binary search, not a 500MB bitset.
class IdFilter {
 public:
  /// Ids above this go to the sorted-overflow representation.
  static constexpr uint32_t kDenseLimit = 1u << 20;

  explicit IdFilter(const std::vector<uint32_t>& ids) {
    uint32_t dense_max = 0;
    for (uint32_t id : ids) {
      if (id < kDenseLimit) {
        dense_max = std::max(dense_max, id);
      } else {
        sparse_.push_back(id);
      }
    }
    dense_ = DenseBitset(static_cast<size_t>(dense_max) + 1);
    for (uint32_t id : ids) {
      if (id < kDenseLimit) dense_.Add(id);
    }
    std::sort(sparse_.begin(), sparse_.end());
    sparse_.erase(std::unique(sparse_.begin(), sparse_.end()), sparse_.end());
  }

  bool Contains(uint32_t id) const {
    if (id < kDenseLimit) return dense_.Contains(id);
    return std::binary_search(sparse_.begin(), sparse_.end(), id);
  }

 private:
  DenseBitset dense_;
  std::vector<uint32_t> sparse_;
};

}  // namespace aiql

#endif  // AIQL_COMMON_BITSET_H_
