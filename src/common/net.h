// Minimal TCP transport with length-prefixed binary framing — the wire
// substrate of the AIQL query server (src/server). Deliberately small:
// blocking POSIX sockets, one reader/one writer per connection, and a
// bounded frame codec whose failure modes are explicit Status values
// (short reads, oversized declarations, peer resets) rather than crashes
// or silent truncation.
//
// Frame layout: a 4-byte little-endian payload length followed by exactly
// that many payload bytes. The payload's first byte is the server
// protocol's message type (src/server/protocol.h); this layer treats the
// payload as opaque. Both directions enforce `max_frame_bytes`, so a
// hostile or buggy peer declaring a multi-gigabyte frame is rejected
// before any allocation.

#ifndef AIQL_COMMON_NET_H_
#define AIQL_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace aiql {

/// Owning POSIX file descriptor; closes on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the descriptor (no-op when invalid).
  void Reset();

 private:
  int fd_ = -1;
};

/// Default per-frame payload cap (16 MiB): generous for result tables,
/// small enough that a bogus length prefix cannot OOM the server.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// One established TCP stream carrying length-prefixed frames.
///
/// Thread model: at most one thread reading and one thread writing at a
/// time (frames are not interleaved mid-stream). Shutdown() may be called
/// from any thread to unblock both.
class Connection {
 public:
  Connection() = default;
  explicit Connection(UniqueFd fd) : fd_(std::move(fd)) {}

  Connection(Connection&&) noexcept = default;
  Connection& operator=(Connection&&) noexcept = default;

  bool valid() const { return fd_.valid(); }

  /// Writes one frame (length prefix + payload). Fails with
  /// InvalidArgument when `payload` exceeds max_frame_bytes, IOError when
  /// the peer is gone (no SIGPIPE is raised).
  Status WriteFrame(std::string_view payload);

  /// Reads one full frame payload. Failure modes:
  ///  - clean peer close at a frame boundary: kUnavailable
  ///    (IsConnectionClosed() returns true);
  ///  - EOF mid-prefix or mid-payload (truncated frame): kIOError naming
  ///    the bytes received vs expected;
  ///  - declared length above max_frame_bytes: kInvalidArgument, before
  ///    any payload allocation;
  ///  - transport errors: kIOError with errno text.
  Result<std::string> ReadFrame();

  /// Raw byte writer, bypassing framing. Used internally and by protocol
  /// torture tests that need to send deliberately malformed prefixes.
  Status WriteBytes(const void* data, size_t size);

  /// Half-closes both directions (shutdown(2)): a thread blocked in
  /// ReadFrame() on this or the peer connection observes EOF promptly.
  /// The descriptor stays owned until destruction/Close().
  void Shutdown();

  void Close() { fd_.Reset(); }

  size_t max_frame_bytes() const { return max_frame_bytes_; }
  void set_max_frame_bytes(size_t bytes) { max_frame_bytes_ = bytes; }

 private:
  UniqueFd fd_;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

/// True when `status` is ReadFrame's clean end-of-stream sentinel (peer
/// closed between frames) rather than a real error.
bool IsConnectionClosed(const Status& status);

/// Listening TCP socket. Bind once, Accept in a loop from one thread,
/// Shutdown from any other to stop accepting.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  /// Binds and listens on host:port. Port 0 picks an ephemeral port,
  /// reported by port() afterwards.
  static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog = 64);

  /// Blocks for the next connection. Returns kCancelled once Shutdown()
  /// has been called, kIOError on transport failure.
  Result<Connection> Accept();

  /// Unblocks Accept() from any thread; subsequent Accepts fail with
  /// kCancelled.
  void Shutdown();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.valid(); }

 private:
  UniqueFd fd_;
  uint16_t port_ = 0;
};

/// Connects to host:port (numeric or resolvable host).
Result<Connection> ConnectTo(const std::string& host, uint16_t port);

}  // namespace aiql

#endif  // AIQL_COMMON_NET_H_
