#include "common/time_utils.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/string_utils.h"

namespace aiql {

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month];
}

// Days since 1970-01-01 for a UTC calendar date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(year + (*m <= 2));
}

Result<int> ParseIntField(std::string_view text) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("invalid numeric field '" +
                                   std::string(text) + "'");
  }
  return value;
}

// Parses "mm/dd/yyyy".
Result<Timestamp> ParseDate(std::string_view text) {
  auto parts = SplitString(text, '/');
  if (parts.size() != 3) {
    return Status::InvalidArgument("expected mm/dd/yyyy date, got '" +
                                   std::string(text) + "'");
  }
  AIQL_ASSIGN_OR_RETURN(int month, ParseIntField(parts[0]));
  AIQL_ASSIGN_OR_RETURN(int day, ParseIntField(parts[1]));
  AIQL_ASSIGN_OR_RETURN(int year, ParseIntField(parts[2]));
  return MakeTimestamp(year, month, day);
}

// Parses "HH:MM:SS".
Result<Duration> ParseClock(std::string_view text) {
  auto parts = SplitString(text, ':');
  if (parts.size() != 3) {
    return Status::InvalidArgument("expected HH:MM:SS time, got '" +
                                   std::string(text) + "'");
  }
  AIQL_ASSIGN_OR_RETURN(int hour, ParseIntField(parts[0]));
  AIQL_ASSIGN_OR_RETURN(int minute, ParseIntField(parts[1]));
  AIQL_ASSIGN_OR_RETURN(int second, ParseIntField(parts[2]));
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return Status::OutOfRange("clock field out of range in '" +
                              std::string(text) + "'");
  }
  return hour * kHour + minute * kMinute + second * kSecond;
}

}  // namespace

Result<Timestamp> MakeTimestamp(int year, int month, int day, int hour,
                                int minute, int second, int64_t micros) {
  if (year < 1970 || year > 9999) {
    return Status::OutOfRange("year out of range: " + std::to_string(year));
  }
  if (month < 1 || month > 12) {
    return Status::OutOfRange("month out of range: " + std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::OutOfRange("day out of range: " + std::to_string(day));
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59 || micros < 0 || micros >= kSecond) {
    return Status::OutOfRange("time-of-day component out of range");
  }
  int64_t days = DaysFromCivil(year, month, day);
  return days * kDay + hour * kHour + minute * kMinute + second * kSecond +
         micros;
}

Result<Timestamp> ParseTimestamp(std::string_view text) {
  std::string_view trimmed = TrimString(text);
  // "HH:MM:SS mm/dd/yyyy" or "mm/dd/yyyy".
  size_t space = trimmed.find(' ');
  if (space == std::string_view::npos) {
    return ParseDate(trimmed);
  }
  AIQL_ASSIGN_OR_RETURN(Duration clock, ParseClock(trimmed.substr(0, space)));
  AIQL_ASSIGN_OR_RETURN(
      Timestamp date,
      ParseDate(TrimString(trimmed.substr(space + 1))));
  return date + clock;
}

Result<TimeRange> ParseTimePoint(std::string_view text) {
  std::string_view trimmed = TrimString(text);
  AIQL_ASSIGN_OR_RETURN(Timestamp start, ParseTimestamp(trimmed));
  // Date-only points cover the whole day.
  if (trimmed.find(' ') == std::string_view::npos) {
    return TimeRange{start, start + kDay};
  }
  return TimeRange{start, start + 1};
}

Result<Duration> ParseDuration(std::string_view text) {
  std::string_view trimmed = TrimString(text);
  size_t i = 0;
  while (i < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[i])) ||
          trimmed[i] == '.')) {
    ++i;
  }
  if (i == 0) {
    return Status::InvalidArgument("duration must start with a number: '" +
                                   std::string(trimmed) + "'");
  }
  double magnitude = 0;
  try {
    magnitude = std::stod(std::string(trimmed.substr(0, i)));
  } catch (...) {
    return Status::InvalidArgument("invalid duration magnitude in '" +
                                   std::string(trimmed) + "'");
  }
  std::string unit = ToLower(std::string(TrimString(trimmed.substr(i))));
  Duration scale;
  if (unit.empty() || unit == "s" || unit == "sec" || unit == "secs" ||
      unit == "second" || unit == "seconds") {
    scale = kSecond;
  } else if (unit == "us" || unit == "usec" || unit == "micros") {
    scale = kMicrosecond;
  } else if (unit == "ms" || unit == "msec" || unit == "millis") {
    scale = kMillisecond;
  } else if (unit == "min" || unit == "mins" || unit == "minute" ||
             unit == "minutes" || unit == "m") {
    scale = kMinute;
  } else if (unit == "h" || unit == "hour" || unit == "hours" ||
             unit == "hr") {
    scale = kHour;
  } else if (unit == "d" || unit == "day" || unit == "days") {
    scale = kDay;
  } else {
    return Status::InvalidArgument("unknown duration unit '" + unit + "'");
  }
  return static_cast<Duration>(magnitude * static_cast<double>(scale));
}

std::string FormatTimestamp(Timestamp ts) {
  int64_t days = ts / kDay;
  int64_t rem = ts % kDay;
  if (rem < 0) {
    rem += kDay;
    days -= 1;
  }
  int year, month, day;
  CivilFromDays(days, &year, &month, &day);
  int hour = static_cast<int>(rem / kHour);
  rem %= kHour;
  int minute = static_cast<int>(rem / kMinute);
  rem %= kMinute;
  int second = static_cast<int>(rem / kSecond);
  int millis = static_cast<int>((rem % kSecond) / kMillisecond);
  // 64 bytes accommodates the widest int renderings GCC's
  // -Wformat-truncation value analysis derives for extreme timestamps.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d", year,
                month, day, hour, minute, second, millis);
  return buf;
}

std::string FormatDuration(Duration d) {
  char buf[40];
  double v = static_cast<double>(d);
  if (d >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f min", v / kMinute);
  } else if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / kSecond);
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%ld us", static_cast<long>(d));
  }
  return buf;
}

}  // namespace aiql
