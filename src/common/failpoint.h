// Named failpoints for fault injection (LevelDB/TiKV "fail::cfg" idiom).
//
// Production code declares a site with a stable name and calls
// `Failpoint::Hit(name, ...)` (or AIQL_FAILPOINT) on the hot path. With no
// failpoints armed the cost is one relaxed atomic load of a global counter.
// Tests / chaos harnesses arm sites programmatically via Failpoint::Set or
// through the AIQL_FAILPOINTS environment variable at process start:
//
//   AIQL_FAILPOINTS="snapshot.read.partition=error(IOError);shard.scatter=latency(500000)@arg2"
//
// Spec grammar (per `;`-separated entry):  name=action[@modifiers]
//   action:   error(CodeName)  |  latency(us)  |  corrupt
//   modifier: @argN      trigger only when the site's integer arg == N
//             @p0.25     trigger each hit with probability 0.25
//                        (deterministic: hash of hit index and seed)
//             @nth3      trigger only the 3rd hit (1-based)
//             @once      trigger the first hit then disarm
//
// Injected latency sleeps interruptibly (common/cancellation.h), so an
// armed 500ms stall still honors a 50ms query deadline.

#ifndef AIQL_COMMON_FAILPOINT_H_
#define AIQL_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace aiql {

/// What an armed failpoint does when it triggers.
enum class FailpointAction {
  kReturnError,    ///< Hit() returns the configured Status
  kInjectLatency,  ///< Hit() sleeps (interruptibly) then returns OK
  kCorruptRead,    ///< HitBuffer() flips a bit in the caller's buffer
};

/// One armed failpoint configuration.
struct FailpointSpec {
  FailpointAction action = FailpointAction::kReturnError;
  StatusCode code = StatusCode::kIOError;  ///< for kReturnError
  uint64_t latency_us = 0;                 ///< for kInjectLatency
  /// Trigger probability in [0,1]; 1.0 = every hit. Deterministic per hit
  /// index given `seed`.
  double probability = 1.0;
  uint64_t seed = 0;
  /// When nonzero, trigger only on this 1-based hit count.
  uint64_t nth = 0;
  /// When true, disarm after the first triggered hit.
  bool once = false;
  /// When >= 0, trigger only for hits whose integer arg matches (e.g. a
  /// shard index); hits with a different arg pass through untriggered.
  int64_t arg_filter = -1;
};

/// Global registry of named failpoints. All methods are thread-safe.
class Failpoint {
 public:
  /// Arms `name` with `spec`, replacing any existing configuration.
  static void Set(const std::string& name, const FailpointSpec& spec);

  /// Disarms `name` (no-op when not armed).
  static void Clear(const std::string& name);

  /// Disarms everything and resets hit counters.
  static void ClearAll();

  /// Parses and arms an AIQL_FAILPOINTS-style spec string. Returns
  /// InvalidArgument on grammar errors (nothing armed from the bad entry).
  static Status Configure(const std::string& spec_string);

  /// Number of times `name` has been hit (armed or not, counted only while
  /// armed) since last armed. For test assertions.
  static uint64_t HitCount(const std::string& name);

  /// The hot-path check. Returns OK when unarmed / filtered / untriggered;
  /// returns the configured error or sleeps for kInjectLatency. `arg` is a
  /// site-specific integer (shard index, attempt number) matched against
  /// `arg_filter`.
  static Status Hit(const char* name, int64_t arg = -1);

  /// Like Hit(), plus kCorruptRead support: flips one bit of
  /// `buffer[0..size)` when a corrupt action triggers (no-op on empty
  /// buffers) and returns OK so checksum validation sees the damage.
  static Status HitBuffer(const char* name, char* buffer, size_t size,
                          int64_t arg = -1);

  /// True when any failpoint is armed (relaxed; used to skip all work on
  /// the hot path). The first call loads AIQL_FAILPOINTS, so env-armed
  /// specs work in any binary without an explicit InitFromEnv().
  static bool AnyActive() {
    if (!env_checked_.load(std::memory_order_acquire)) InitFromEnv();
    return active_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Names of all currently armed failpoints (for diagnostics).
  static std::vector<std::string> ActiveNames();

  /// Loads AIQL_FAILPOINTS from the environment; called lazily by the
  /// first AnyActive(), or explicitly from main(). Safe to call
  /// repeatedly.
  static void InitFromEnv();

 private:
  static std::atomic<int> active_count_;
  static std::atomic<bool> env_checked_;
};

#define AIQL_FAILPOINT(name)                            \
  do {                                                  \
    if (::aiql::Failpoint::AnyActive()) {               \
      ::aiql::Status _aiql_fp = ::aiql::Failpoint::Hit(name); \
      if (!_aiql_fp.ok()) return _aiql_fp;              \
    }                                                   \
  } while (false)

}  // namespace aiql

#endif  // AIQL_COMMON_FAILPOINT_H_
