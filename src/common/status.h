// Status / Result error-handling primitives (RocksDB / Arrow idiom).
//
// Library code returns Status (or Result<T>) instead of throwing exceptions.
// The AIQL_RETURN_IF_ERROR / AIQL_ASSIGN_OR_RETURN macros keep call sites
// compact.

#ifndef AIQL_COMMON_STATUS_H_
#define AIQL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace aiql {

/// Broad error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller passed something malformed
  kParseError,       ///< AIQL / SQL text failed to parse
  kSemanticError,    ///< query parsed but is semantically invalid
  kNotFound,         ///< entity / attribute / file does not exist
  kAlreadyExists,    ///< duplicate registration
  kOutOfRange,       ///< index / timestamp outside valid bounds
  kIOError,          ///< filesystem-level failure
  kCorruption,       ///< persistent data failed validation
  kUnimplemented,    ///< feature intentionally not supported
  kInternal,         ///< invariant violation (bug)
  kCancelled,        ///< caller cancelled the query cooperatively
  kDeadlineExceeded, ///< query ran past its wall-clock deadline
  kResourceExhausted, ///< query exceeded a row / node / memory budget
  kUnavailable,      ///< shard / backend transiently unreachable
};

/// Human-readable name for a StatusCode ("Ok", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Cheap value type describing the outcome of an operation.
///
/// An ok Status carries no message and no allocation. Error statuses carry a
/// code plus a message intended for the analyst (parser errors include
/// line/column context).
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status (Arrow's Result /
/// absl::StatusOr). Accessing the value of an error result is a programming
/// error caught by assert in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value (ok result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be an ok status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from ok Status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from ok Status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// Error status; Status::OK() when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // ok iff value_ present
};

// Propagates errors to the caller. `expr` must evaluate to a Status.
#define AIQL_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::aiql::Status _aiql_status = (expr);            \
    if (!_aiql_status.ok()) return _aiql_status;     \
  } while (false)

// Token-pasting helpers for unique temporary names.
#define AIQL_MACRO_CONCAT_INNER(x, y) x##y
#define AIQL_MACRO_CONCAT(x, y) AIQL_MACRO_CONCAT_INNER(x, y)

// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise moves the
// value into `lhs` (which may be a declaration: `auto v`).
#define AIQL_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  AIQL_ASSIGN_OR_RETURN_IMPL(AIQL_MACRO_CONCAT(_aiql_res_, __LINE__), \
                             lhs, rexpr)

#define AIQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace aiql

#endif  // AIQL_COMMON_STATUS_H_
