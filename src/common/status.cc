#include "common/status.h"

namespace aiql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aiql
