// Fixed-size thread pool used for partition-parallel scan execution.
//
// The AIQL engine partitions per-pattern data queries along the temporal and
// spatial dimensions and executes the sub-queries in parallel (paper §2.3).
// This pool provides the execution substrate; it is deliberately simple:
// a lock-protected FIFO queue and Wait()-style join via futures.

#ifndef AIQL_COMMON_THREAD_POOL_H_
#define AIQL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aiql {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns a future for its completion.
  template <typename Fn>
  std::future<void> Submit(Fn&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<Fn>(task));
    std::future<void> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete. fn must be safe to invoke concurrently.
  ///
  /// Safe to call from inside a pool worker: iterations are claimed from a
  /// shared counter and the caller runs not-yet-started iterations inline,
  /// so completion never depends on another worker becoming free (workers
  /// merely help). If any iteration throws, the first exception is rethrown
  /// on the calling thread after all iterations finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// ParallelFor with cooperative early exit: once `stop` returns true,
  /// remaining unclaimed iterations are skipped (already-running ones
  /// finish). `stop` must be safe to call concurrently; it is polled once
  /// before each claimed iteration. Iterations are not guaranteed to run
  /// for any i after the first true — callers must tolerate gaps.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const std::function<bool()>& stop);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

}  // namespace aiql

#endif  // AIQL_COMMON_THREAD_POOL_H_
