#include "common/net.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aiql {

namespace {

constexpr char kClosedMessage[] = "connection closed by peer";

Status ErrnoStatus(const char* what, int err) {
  return Status::IOError(std::string(what) + ": " + std::strerror(err));
}

/// getaddrinfo over (host, port); `passive` requests a bindable address.
Result<UniqueFd> OpenSocket(const std::string& host, uint16_t port,
                            bool passive, struct addrinfo** out_info,
                            struct addrinfo** out_head) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  std::string port_text = std::to_string(port);
  struct addrinfo* head = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         port_text.c_str(), &hints, &head);
  if (rc != 0) {
    return Status::IOError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  for (struct addrinfo* info = head; info != nullptr; info = info->ai_next) {
    UniqueFd fd(::socket(info->ai_family, info->ai_socktype,
                         info->ai_protocol));
    if (!fd.valid()) continue;
    *out_info = info;
    *out_head = head;
    return fd;
  }
  ::freeaddrinfo(head);
  return Status::IOError("no usable address for '" + host + "'");
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Connection::WriteBytes(const void* data, size_t size) {
  if (!fd_.valid()) return Status::IOError("write on closed connection");
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE, not
    // a process-killing SIGPIPE.
    ssize_t n = ::send(fd_.get(), p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Connection::WriteFrame(std::string_view payload) {
  if (payload.size() > max_frame_bytes_) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte frame cap");
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(length & 0xFF),
                    static_cast<char>((length >> 8) & 0xFF),
                    static_cast<char>((length >> 16) & 0xFF),
                    static_cast<char>((length >> 24) & 0xFF)};
  // One buffered write so small frames go out in a single segment.
  std::string wire;
  wire.reserve(sizeof(prefix) + payload.size());
  wire.append(prefix, sizeof(prefix));
  wire.append(payload.data(), payload.size());
  return WriteBytes(wire.data(), wire.size());
}

Result<std::string> Connection::ReadFrame() {
  if (!fd_.valid()) return Status::IOError("read on closed connection");
  // Phase 1: the 4-byte little-endian length prefix. EOF before any byte
  // is a clean close; EOF after 1-3 bytes is a truncated prefix.
  char prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    ssize_t n = ::recv(fd_.get(), prefix + got, sizeof(prefix) - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv", errno);
    }
    if (n == 0) {
      if (got == 0) return Status::Unavailable(kClosedMessage);
      return Status::IOError("short read: connection closed after " +
                             std::to_string(got) +
                             " of 4 frame length prefix bytes");
    }
    got += static_cast<size_t>(n);
  }
  uint32_t length = static_cast<uint32_t>(static_cast<uint8_t>(prefix[0])) |
                    static_cast<uint32_t>(static_cast<uint8_t>(prefix[1])) << 8 |
                    static_cast<uint32_t>(static_cast<uint8_t>(prefix[2])) << 16 |
                    static_cast<uint32_t>(static_cast<uint8_t>(prefix[3])) << 24;
  if (length > max_frame_bytes_) {
    return Status::InvalidArgument(
        "oversized frame: peer declared " + std::to_string(length) +
        " bytes, cap is " + std::to_string(max_frame_bytes_));
  }
  // Phase 2: the payload. EOF here is always a truncated frame.
  std::string payload(length, '\0');
  size_t have = 0;
  while (have < length) {
    ssize_t n = ::recv(fd_.get(), payload.data() + have, length - have, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv", errno);
    }
    if (n == 0) {
      return Status::IOError(
          "short read: connection closed mid-frame after " +
          std::to_string(have) + " of " + std::to_string(length) +
          " payload bytes");
    }
    have += static_cast<size_t>(n);
  }
  return payload;
}

void Connection::Shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

bool IsConnectionClosed(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kClosedMessage;
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  struct addrinfo* info = nullptr;
  struct addrinfo* head = nullptr;
  AIQL_ASSIGN_OR_RETURN(UniqueFd fd,
                        OpenSocket(host, port, /*passive=*/true, &info,
                                   &head));
  int enable = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  int rc = ::bind(fd.get(), info->ai_addr, info->ai_addrlen);
  ::freeaddrinfo(head);
  if (rc != 0) return ErrnoStatus("bind", errno);
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen", errno);
  // Recover the actual port for ephemeral binds (port 0).
  struct sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t actual_port = port;
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      actual_port = ntohs(
          reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      actual_port = ntohs(
          reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  Listener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = actual_port;
  return listener;
}

Result<Connection> Listener::Accept() {
  if (!fd_.valid()) return Status::Cancelled("listener shut down");
  while (true) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return Connection(UniqueFd(fd));
    if (errno == EINTR) continue;
    // Shutdown() on the listening socket surfaces as EINVAL (Linux) or
    // ECONNABORTED; both mean "stop accepting", not a transport fault.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) {
      return Status::Cancelled("listener shut down");
    }
    return ErrnoStatus("accept", errno);
  }
}

void Listener::Shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<Connection> ConnectTo(const std::string& host, uint16_t port) {
  struct addrinfo* info = nullptr;
  struct addrinfo* head = nullptr;
  AIQL_ASSIGN_OR_RETURN(UniqueFd fd,
                        OpenSocket(host, port, /*passive=*/false, &info,
                                   &head));
  int rc = ::connect(fd.get(), info->ai_addr, info->ai_addrlen);
  ::freeaddrinfo(head);
  if (rc != 0) return ErrnoStatus("connect", errno);
  int enable = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return Connection(std::move(fd));
}

}  // namespace aiql
