// SQL-LIKE wildcard matching.
//
// AIQL entity constraints such as proc p1["%cmd.exe"] use SQL LIKE syntax:
// '%' matches any run of characters (including empty), '_' matches exactly
// one character. Matching is case-insensitive to mirror how analysts query
// Windows paths. LikeMatcher pre-compiles a pattern so that matching against
// many interned strings is cheap (literal fast paths for patterns without
// wildcards, prefix/suffix/substring specializations, and a linear-time
// two-pointer general matcher).

#ifndef AIQL_COMMON_LIKE_MATCHER_H_
#define AIQL_COMMON_LIKE_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

namespace aiql {

/// Compiled LIKE pattern.
class LikeMatcher {
 public:
  /// Compiles `pattern`. Always succeeds (every string is a valid pattern).
  explicit LikeMatcher(std::string_view pattern);

  /// True if `text` matches the pattern.
  bool Matches(std::string_view text) const;

  /// The original pattern text.
  const std::string& pattern() const { return pattern_; }

  /// True if the pattern contains no wildcards (pure equality).
  bool is_literal() const { return kind_ == Kind::kLiteral; }

  /// Rough selectivity proxy: literal < prefix/suffix < substring < generic.
  /// Lower values mean "expected to match fewer strings". Used by the
  /// pruning-power estimator as a tie-breaker.
  int SpecificityRank() const;

 private:
  enum class Kind {
    kLiteral,     // no wildcards
    kPrefix,      // lit%
    kSuffix,      // %lit
    kSubstring,   // %lit%
    kMatchAll,    // % or empty-of-% runs
    kGeneric,     // anything else (may include '_')
  };

  static bool GenericMatch(std::string_view pattern, std::string_view text);

  std::string pattern_;       // original
  std::string lowered_;       // lower-cased pattern
  std::string literal_;       // payload for specialized kinds
  Kind kind_ = Kind::kGeneric;
};

}  // namespace aiql

#endif  // AIQL_COMMON_LIKE_MATCHER_H_
