// SQL-LIKE wildcard matching.
//
// AIQL entity constraints such as proc p1["%cmd.exe"] use SQL LIKE syntax:
// '%' matches any run of characters (including empty), '_' matches exactly
// one character, and a backslash escapes an immediately following '%', '_',
// or '\' so it matches literally ("100\%" matches the four characters
// "100%"). A backslash before any other character is an ordinary character,
// so Windows paths like "C:\Windows\System32\cmd.exe" need no doubling —
// but note that a backslash directly before a wildcard IS an escape:
// "C:\Temp\%" matches the literal path "C:\Temp%"; write "C:\Temp\\%" for
// "everything under C:\Temp\".
// Matching is case-insensitive to mirror how analysts query Windows paths.
// LikeMatcher pre-compiles a pattern so that matching against many interned
// strings is cheap (literal fast paths for patterns without wildcards,
// prefix/suffix/substring specializations, and a linear-time two-pointer
// general matcher).

#ifndef AIQL_COMMON_LIKE_MATCHER_H_
#define AIQL_COMMON_LIKE_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

namespace aiql {

/// Compiled LIKE pattern.
class LikeMatcher {
 public:
  /// Compiles `pattern`. Always succeeds (every string is a valid pattern).
  explicit LikeMatcher(std::string_view pattern);

  /// True if `text` matches the pattern.
  bool Matches(std::string_view text) const;

  /// The original pattern text.
  const std::string& pattern() const { return pattern_; }

  /// True if the pattern contains no wildcards (pure equality).
  bool is_literal() const { return kind_ == Kind::kLiteral; }

  /// Rough selectivity proxy: literal < prefix/suffix < substring < generic.
  /// Lower values mean "expected to match fewer strings". Used by the
  /// pruning-power estimator as a tie-breaker.
  int SpecificityRank() const;

  /// True when pattern[i] is a backslash escaping the next character —
  /// the single definition of the escape rule, shared by the matcher and
  /// the SQL/Cypher translators so their LIKE semantics stay in lockstep.
  static bool IsEscape(std::string_view pattern, size_t i) {
    return pattern[i] == '\\' && i + 1 < pattern.size() &&
           (pattern[i + 1] == '%' || pattern[i + 1] == '_' ||
            pattern[i + 1] == '\\');
  }

 private:
  enum class Kind {
    kLiteral,     // no wildcards
    kPrefix,      // lit%
    kSuffix,      // %lit
    kSubstring,   // %lit%
    kMatchAll,    // % or empty-of-% runs
    kGeneric,     // anything else (may include '_')
  };

  static bool GenericMatch(std::string_view chars, std::string_view wild,
                           std::string_view text);

  std::string pattern_;  // original
  // Compiled form: lower-cased pattern characters with escapes resolved.
  // wild_ is parallel to chars_: '\0' marks a literal character, '%'/'_'
  // mark the wildcard occupying that position.
  std::string chars_;
  std::string wild_;
  std::string literal_;  // payload for specialized kinds
  Kind kind_ = Kind::kGeneric;
};

}  // namespace aiql

#endif  // AIQL_COMMON_LIKE_MATCHER_H_
