// Deterministic pseudo-random generator for the workload simulator.
//
// All experiments must be reproducible, so the simulator never touches
// std::random_device or wall-clock seeds; every stream derives from an
// explicit 64-bit seed via SplitMix64 (public-domain algorithm).

#ifndef AIQL_COMMON_RNG_H_
#define AIQL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aiql {

/// SplitMix64 deterministic RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks an index from unnormalized weights. Returns 0 if weights empty.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child stream (for per-host determinism that is
  /// stable under reordering of generation).
  Rng Fork(uint64_t salt) const {
    Rng child(state_ ^ (salt * 0xD1B54A32D192ED03ULL + 0x9E3779B97F4A7C15ULL));
    child.Next();
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace aiql

#endif  // AIQL_COMMON_RNG_H_
