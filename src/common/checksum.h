// FNV-1a 64-bit checksum.
//
// Guards every snapshot section (segments, footer) against truncation and
// bit flips. FNV-1a is not cryptographic — it detects accidental corruption,
// not adversarial tampering — but it is fast, incremental, and dependency
// free, which is what the storage layer needs.

#ifndef AIQL_COMMON_CHECKSUM_H_
#define AIQL_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aiql {

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ bytes[i]) * kPrime;
    }
  }

  uint64_t digest() const { return hash_; }

  static constexpr uint64_t kOffset = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

 private:
  uint64_t hash_ = kOffset;
};

/// One-shot FNV-1a 64 of a byte string.
inline uint64_t Checksum64(std::string_view data) {
  Fnv1a64 hasher;
  hasher.Update(data.data(), data.size());
  return hasher.digest();
}

}  // namespace aiql

#endif  // AIQL_COMMON_CHECKSUM_H_
