#include "common/table_printer.h"

namespace aiql {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto border = [&] {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      line += ' ';
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = border();
  out += render_row(headers_);
  out += border();
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += border();
  return out;
}

}  // namespace aiql
