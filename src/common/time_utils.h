// Timestamp representation and parsing for AIQL time windows.
//
// System monitoring data is timestamped with microsecond precision. AIQL
// time-window clauses accept calendar dates ("05/10/2018"), date-times
// ("10:30:00 05/10/2018"), and durations ("1 min", "10 sec").
// All calendar math is UTC-based so results are host-independent.

#ifndef AIQL_COMMON_TIME_UTILS_H_
#define AIQL_COMMON_TIME_UTILS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace aiql {

/// Microseconds since the UNIX epoch (UTC).
using Timestamp = int64_t;

/// Microsecond duration.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// Inclusive-exclusive time interval [start, end).
struct TimeRange {
  Timestamp start = INT64_MIN;
  Timestamp end = INT64_MAX;

  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Overlaps(const TimeRange& other) const {
    return start < other.end && other.start < end;
  }
  /// Intersection of two ranges; may be empty (start >= end).
  TimeRange Intersect(const TimeRange& other) const {
    return TimeRange{start > other.start ? start : other.start,
                     end < other.end ? end : other.end};
  }
  bool empty() const { return start >= end; }

  bool operator==(const TimeRange& other) const = default;
};

/// Builds a timestamp from UTC calendar components. Month is 1-12,
/// day is 1-31. Validates ranges (including leap-year day counts).
Result<Timestamp> MakeTimestamp(int year, int month, int day, int hour = 0,
                                int minute = 0, int second = 0,
                                int64_t micros = 0);

/// Parses "mm/dd/yyyy" or "HH:MM:SS mm/dd/yyyy" into a timestamp.
Result<Timestamp> ParseTimestamp(std::string_view text);

/// Parses "(at "mm/dd/yyyy")"-style point into the whole-day range, i.e.
/// [00:00:00, 24:00:00) of that date; a full date-time maps to a
/// one-microsecond range starting at that instant.
Result<TimeRange> ParseTimePoint(std::string_view text);

/// Parses a duration such as "10 sec", "1 min", "2 hour", "1 day", "500 ms".
/// Units: us|usec, ms|msec, s|sec|second(s), min|minute(s), h|hour(s),
/// d|day(s). A bare number is interpreted as seconds.
Result<Duration> ParseDuration(std::string_view text);

/// Formats as "YYYY-MM-DD HH:MM:SS.mmm" (UTC).
std::string FormatTimestamp(Timestamp ts);

/// Formats a duration compactly, e.g. "1.50 s", "250 ms", "3.2 min".
std::string FormatDuration(Duration d);

}  // namespace aiql

#endif  // AIQL_COMMON_TIME_UTILS_H_
