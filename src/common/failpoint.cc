#include "common/failpoint.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/cancellation.h"
#include "common/string_utils.h"

namespace aiql {

std::atomic<int> Failpoint::active_count_{0};
std::atomic<bool> Failpoint::env_checked_{false};

namespace {

struct ArmedPoint {
  FailpointSpec spec;
  uint64_t hits = 0;  ///< hits observed while armed (guarded by registry mu)
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmedPoint> points;
  bool env_loaded = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

/// splitmix64: deterministic per-hit trigger decision for @p specs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool Triggers(const FailpointSpec& spec, uint64_t hit_index) {
  if (spec.nth != 0) return hit_index == spec.nth;
  if (spec.probability >= 1.0) return true;
  if (spec.probability <= 0.0) return false;
  uint64_t h = Mix64(hit_index ^ Mix64(spec.seed));
  double unit = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return unit < spec.probability;
}

Status MakeInjectedError(const char* name, StatusCode code) {
  std::string msg = "injected by failpoint '" + std::string(name) + "'";
  return Status(code, std::move(msg));
}

Result<StatusCode> ParseCodeName(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    if (name == StatusCodeToString(static_cast<StatusCode>(c))) {
      return static_cast<StatusCode>(c);
    }
  }
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

/// Parses one `name=action[@mod...]` entry into (name, spec).
Status ParseEntry(const std::string& entry, std::string* name,
                  FailpointSpec* spec) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + entry +
                                   "' missing name=action");
  }
  *name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  // Split off @modifiers.
  std::vector<std::string> mods;
  size_t at;
  while ((at = rest.rfind('@')) != std::string::npos) {
    mods.push_back(rest.substr(at + 1));
    rest = rest.substr(0, at);
  }
  if (rest.rfind("error(", 0) == 0 && rest.back() == ')') {
    spec->action = FailpointAction::kReturnError;
    AIQL_ASSIGN_OR_RETURN(spec->code,
                          ParseCodeName(rest.substr(6, rest.size() - 7)));
  } else if (rest.rfind("latency(", 0) == 0 && rest.back() == ')') {
    spec->action = FailpointAction::kInjectLatency;
    // Strict parse: `latency(abc)` must fail loudly, not arm a 0us sleep —
    // a typo'd AIQL_FAILPOINTS would otherwise run with no injection.
    auto us = ParseUint64(rest.substr(8, rest.size() - 9));
    if (!us.ok()) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' has a bad latency: " +
                                     us.status().message());
    }
    spec->latency_us = *us;
  } else if (rest == "corrupt") {
    spec->action = FailpointAction::kCorruptRead;
  } else {
    return Status::InvalidArgument("failpoint entry '" + entry +
                                   "' has unknown action '" + rest + "'");
  }
  for (const std::string& mod : mods) {
    // Numeric modifier payloads are parsed strictly: every digit must be
    // consumed and the value must be in range, so `@arg1x` or `@nth` with
    // a saturating count is a configuration error, not a silent no-op.
    auto bad_mod = [&](const Status& why) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' has a bad modifier '@" + mod +
                                     "': " + why.message());
    };
    if (mod.rfind("arg", 0) == 0) {
      auto arg = ParseInt64(mod.substr(3));
      if (!arg.ok()) return bad_mod(arg.status());
      if (*arg < 0) {
        return bad_mod(Status::InvalidArgument("arg filter must be >= 0"));
      }
      spec->arg_filter = *arg;
    } else if (mod.rfind("p", 0) == 0 && mod.size() > 1 &&
               (std::isdigit(static_cast<unsigned char>(mod[1])) ||
                mod[1] == '.')) {
      auto probability = ParseDouble(mod.substr(1));
      if (!probability.ok()) return bad_mod(probability.status());
      if (*probability < 0.0 || *probability > 1.0) {
        return bad_mod(
            Status::InvalidArgument("probability must be in [0, 1]"));
      }
      spec->probability = *probability;
    } else if (mod.rfind("nth", 0) == 0) {
      auto nth = ParseUint64(mod.substr(3));
      if (!nth.ok()) return bad_mod(nth.status());
      if (*nth == 0) {
        return bad_mod(Status::InvalidArgument("hit counts are 1-based"));
      }
      spec->nth = *nth;
    } else if (mod == "once") {
      spec->once = true;
    } else if (mod.rfind("seed", 0) == 0) {
      auto seed = ParseUint64(mod.substr(4));
      if (!seed.ok()) return bad_mod(seed.status());
      spec->seed = *seed;
    } else {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' has unknown modifier '@" + mod + "'");
    }
  }
  return Status::OK();
}

/// Looks up `name`, advances its hit counter, and decides the action.
/// Returns false when nothing triggers. `*erased` reports a consumed @once
/// point — the caller owns the active-count decrement.
bool Resolve(const char* name, int64_t arg, FailpointSpec* out,
             bool* erased) {
  *erased = false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return false;
  ArmedPoint& point = it->second;
  if (point.spec.arg_filter >= 0 && arg != point.spec.arg_filter) {
    return false;  // filtered hits do not consume the counter
  }
  uint64_t hit_index = ++point.hits;
  if (!Triggers(point.spec, hit_index)) return false;
  *out = point.spec;
  if (point.spec.once) {
    registry.points.erase(it);
    *erased = true;
  }
  return true;
}

}  // namespace

void Failpoint::Set(const std::string& name, const FailpointSpec& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.insert_or_assign(
      name, ArmedPoint{spec, /*hits=*/0});
  (void)it;
  if (inserted) active_count_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoint::Clear(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) != 0) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoint::ClearAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  active_count_.fetch_sub(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

Status Failpoint::Configure(const std::string& spec_string) {
  size_t start = 0;
  while (start < spec_string.size()) {
    size_t end = spec_string.find(';', start);
    if (end == std::string::npos) end = spec_string.size();
    std::string entry = spec_string.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    std::string name;
    FailpointSpec spec;
    AIQL_RETURN_IF_ERROR(ParseEntry(entry, &name, &spec));
    Set(name, spec);
  }
  return Status::OK();
}

uint64_t Failpoint::HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> Failpoint::ActiveNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) names.push_back(name);
  return names;
}

void Failpoint::InitFromEnv() {
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    if (registry.env_loaded) {
      env_checked_.store(true, std::memory_order_release);
      return;
    }
    registry.env_loaded = true;
  }
  const char* env = std::getenv("AIQL_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status configured = Configure(env);
    if (!configured.ok()) {
      std::fprintf(stderr, "AIQL_FAILPOINTS ignored: %s\n",
                   configured.ToString().c_str());
    }
  }
  env_checked_.store(true, std::memory_order_release);
}

Status Failpoint::Hit(const char* name, int64_t arg) {
  if (!AnyActive()) return Status::OK();
  FailpointSpec spec;
  bool erased = false;
  bool triggered = Resolve(name, arg, &spec, &erased);
  if (erased) active_count_.fetch_sub(1, std::memory_order_relaxed);
  if (!triggered) return Status::OK();
  switch (spec.action) {
    case FailpointAction::kReturnError:
      return MakeInjectedError(name, spec.code);
    case FailpointAction::kInjectLatency:
      InterruptibleSleep(std::chrono::microseconds(spec.latency_us));
      return Status::OK();
    case FailpointAction::kCorruptRead:
      // No buffer at this site; treat as a read error so the injection is
      // still visible rather than silently dropped.
      return MakeInjectedError(name, StatusCode::kCorruption);
  }
  return Status::OK();
}

Status Failpoint::HitBuffer(const char* name, char* buffer, size_t size,
                            int64_t arg) {
  if (!AnyActive()) return Status::OK();
  FailpointSpec spec;
  bool erased = false;
  bool triggered = Resolve(name, arg, &spec, &erased);
  if (erased) active_count_.fetch_sub(1, std::memory_order_relaxed);
  if (!triggered) return Status::OK();
  switch (spec.action) {
    case FailpointAction::kReturnError:
      return MakeInjectedError(name, spec.code);
    case FailpointAction::kInjectLatency:
      InterruptibleSleep(std::chrono::microseconds(spec.latency_us));
      return Status::OK();
    case FailpointAction::kCorruptRead:
      if (size != 0 && buffer != nullptr) {
        buffer[size / 2] ^= 0x40;  // flip one bit mid-buffer
      }
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace aiql
