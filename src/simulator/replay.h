// Live audit-stream replay: streams scenario records into an AuditDatabase
// from a background thread at a pinned rate, mimicking the deployed
// system's continuous ingestion while analysts query mid-attack (the
// streaming direction of SAQL / ZEBRA in PAPERS.md). The replayer is the
// database's single writer; queries on other threads open ReadViews and
// observe sealed partitions at bounded staleness.

#ifndef AIQL_SIMULATOR_REPLAY_H_
#define AIQL_SIMULATOR_REPLAY_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace aiql {

/// Replay pacing knobs.
struct ReplayOptions {
  /// Ingest rate in records per wall-clock second; 0 = unthrottled.
  double events_per_second = 0;

  /// Records handed to AppendBatch per call (also the throttle check
  /// granularity).
  size_t batch_size = 256;
};

/// Replays a time-ordered record vector into a database on a background
/// thread. The records are borrowed, not copied — the caller keeps the
/// database and the records alive beyond Join()/destruction. The replayer
/// flushes at the end but does not Seal(), so the caller decides when (and
/// whether) to freeze the database.
class StreamReplayer {
 public:
  StreamReplayer(AuditDatabase* db, const std::vector<EventRecord>* records,
                 ReplayOptions options = {});

  /// Joins the ingest thread if still running.
  ~StreamReplayer();

  StreamReplayer(const StreamReplayer&) = delete;
  StreamReplayer& operator=(const StreamReplayer&) = delete;

  /// Starts the ingest thread. Call at most once.
  void Start();

  /// Waits for the replay to finish; returns the first append error (the
  /// replay stops at the first failure).
  Status Join();

  /// True once the ingest thread has finished (success or failure).
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Records appended so far (monotone; readable while running).
  uint64_t ingested() const {
    return ingested_.load(std::memory_order_relaxed);
  }

  /// Ingest wall time in microseconds (valid after done()).
  int64_t wall_us() const { return wall_us_.load(std::memory_order_acquire); }

 private:
  void Run();

  AuditDatabase* db_;
  const std::vector<EventRecord>* records_;
  ReplayOptions options_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  std::atomic<uint64_t> ingested_{0};
  std::atomic<int64_t> wall_us_{0};
  Status status_;  // written by the ingest thread, read after join
};

}  // namespace aiql

#endif  // AIQL_SIMULATOR_REPLAY_H_
