// The demo APT attack (paper §3, steps a1-a5).
//
//  a1 Initial compromise — UnrealIRCd RCE on the web server spawns a shell
//     and a telnet session back to the attacker.
//  a2 Malware infection — the attacker uploads a malware dropper that
//     infects a Windows client across the intranet.
//  a3 Privilege escalation — CVE-2015-1701 exploit, then Mimikatz/Kiwi
//     memory dumping on the client.
//  a4 User credentials — penetration of the domain controller, password
//     dumping with PwDump7 / WCE.
//  a5 Data exfiltration — on the database server, an OSQL-driven dump is
//     written by sqlservr (db.bak), read by powershell, and shipped to the
//     attacker's address in repeated large transfers (the anomaly query's
//     target).

#ifndef AIQL_SIMULATOR_ATTACK_DEMO_H_
#define AIQL_SIMULATOR_ATTACK_DEMO_H_

#include <string>
#include <vector>

#include "common/time_utils.h"
#include "simulator/topology.h"
#include "storage/data_model.h"

namespace aiql {

/// Ground-truth markers for tests and examples.
struct DemoAttackTruth {
  Timestamp start = 0;             ///< a1 begins
  Timestamp exfil_start = 0;       ///< first large transfer (a5)
  std::string attacker_ip;
  AgentId web_server = 0;
  AgentId client = 0;
  AgentId domain_controller = 0;
  AgentId database_server = 0;
};

/// Injects the attack into `out` starting at `start` (unfolds over ~2h).
DemoAttackTruth InjectDemoAttack(const Enterprise& enterprise,
                                 Timestamp start,
                                 std::vector<EventRecord>* out);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_ATTACK_DEMO_H_
