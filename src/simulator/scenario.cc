#include "simulator/scenario.h"

#include <algorithm>

namespace aiql {

namespace {

Timestamp DayStart(const ScenarioOptions& options) {
  auto ts = MakeTimestamp(options.year, options.month, options.day);
  return ts.ok() ? *ts : 0;
}

void SortRecords(std::vector<EventRecord>* records) {
  std::stable_sort(records->begin(), records->end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.start_ts < b.start_ts;
                   });
}

}  // namespace

DemoScenarioData GenerateDemoScenario(const ScenarioOptions& options) {
  DemoScenarioData data;
  data.enterprise = BuildEnterprise(options.num_clients);
  Timestamp start = DayStart(options);
  data.window = TimeRange{start, start + options.duration};

  BackgroundOptions background;
  background.events_per_host_per_hour = options.events_per_host_per_hour;
  background.seed = options.seed;
  GenerateBackground(data.enterprise, data.window.start, data.window.end,
                     background, &data.records);
  data.truth = InjectDemoAttack(data.enterprise,
                                start + options.attack_offset, &data.records);
  SortRecords(&data.records);
  return data;
}

AtcScenarioData GenerateAtcScenario(const ScenarioOptions& options) {
  AtcScenarioData data;
  data.enterprise = BuildEnterprise(options.num_clients);
  Timestamp start = DayStart(options);
  data.window = TimeRange{start, start + options.duration};

  BackgroundOptions background;
  background.events_per_host_per_hour = options.events_per_host_per_hour;
  background.seed = options.seed + 1;
  GenerateBackground(data.enterprise, data.window.start, data.window.end,
                     background, &data.records);
  data.truth = InjectAtcAttack(data.enterprise,
                               start + options.attack_offset, &data.records);
  SortRecords(&data.records);
  return data;
}

ExfilScenarioData GenerateExfilScenario(const ScenarioOptions& options) {
  ExfilScenarioData data;
  data.enterprise = BuildEnterprise(options.num_clients);
  Timestamp start = DayStart(options);
  data.window = TimeRange{start, start + options.duration};

  BackgroundOptions background;
  background.events_per_host_per_hour = options.events_per_host_per_hour;
  background.seed = options.seed + 2;
  GenerateBackground(data.enterprise, data.window.start, data.window.end,
                     background, &data.records);
  data.truth = InjectExfilChain(data.enterprise,
                                start + options.attack_offset, &data.records);
  SortRecords(&data.records);
  return data;
}

CampaignScenarioData GenerateCampaignScenario(const ScenarioOptions& options) {
  CampaignScenarioData data;
  data.enterprise = BuildEnterprise(options.num_clients);
  Timestamp start = DayStart(options);
  data.window = TimeRange{start, start + options.duration};

  BackgroundOptions background;
  background.events_per_host_per_hour = options.events_per_host_per_hour;
  background.seed = options.seed + 3;
  GenerateBackground(data.enterprise, data.window.start, data.window.end,
                     background, &data.records);
  data.truth = InjectCampaignChain(
      data.enterprise, start + options.attack_offset, &data.records);
  SortRecords(&data.records);
  return data;
}

Result<AuditDatabase> IngestRecords(const std::vector<EventRecord>& records,
                                    const StorageOptions& storage) {
  AuditDatabase db(storage);
  for (const EventRecord& record : records) {
    AIQL_RETURN_IF_ERROR(db.Append(record));
  }
  AIQL_RETURN_IF_ERROR(db.Seal());
  return db;
}

}  // namespace aiql
