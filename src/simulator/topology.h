// Simulated enterprise topology (paper Fig. 2).
//
// The demo environment contains Windows clients, a Linux web server, a
// database server, a Windows domain controller, and a router, with the
// attacker outside. Agents (data collectors) run on every host.

#ifndef AIQL_SIMULATOR_TOPOLOGY_H_
#define AIQL_SIMULATOR_TOPOLOGY_H_

#include <string>
#include <vector>

#include "storage/data_model.h"

namespace aiql {

/// Host roles in the simulated enterprise.
enum class HostRole {
  kWindowsClient,
  kLinuxWebServer,
  kDatabaseServer,
  kDomainController,
  kRouter,
};

const char* HostRoleToString(HostRole role);

/// One monitored host.
struct Host {
  AgentId agent_id = 0;
  std::string name;
  std::string ip;
  HostRole role = HostRole::kWindowsClient;

  bool is_windows() const {
    return role == HostRole::kWindowsClient ||
           role == HostRole::kDatabaseServer ||
           role == HostRole::kDomainController;
  }
};

/// The enterprise: fixed infrastructure hosts (agents 1-4) plus
/// `num_clients` Windows clients (agents 5+), and the attacker's external
/// address.
struct Enterprise {
  std::vector<Host> hosts;
  std::string attacker_ip;

  const Host& web_server() const { return hosts[0]; }       // agent 1
  const Host& client0() const { return hosts[4]; }          // agent 5
  const Host& domain_controller() const { return hosts[2]; }  // agent 3
  const Host& database_server() const { return hosts[3]; }  // agent 4
  const Host& router() const { return hosts[1]; }           // agent 2

  const Host& HostByAgent(AgentId agent) const {
    return hosts[agent - 1];
  }
};

/// Builds the topology: agent 1 = Linux web server, 2 = router, 3 = domain
/// controller, 4 = database server, 5..4+num_clients = Windows clients.
Enterprise BuildEnterprise(int num_clients);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_TOPOLOGY_H_
