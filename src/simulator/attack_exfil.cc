#include "simulator/attack_exfil.h"

namespace aiql {

namespace {

EventRecord Make(AgentId agent, OpType op, Timestamp t, Duration len,
                 ProcessRef subject, ObjectRef object, uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

std::string ConnName(const NetworkRef& net) {
  return net.src_ip + ':' + std::to_string(net.src_port) + "->" +
         net.dst_ip + ':' + std::to_string(net.dst_port);
}

}  // namespace

ExfilChainTruth InjectExfilChain(const Enterprise& enterprise,
                                 Timestamp start,
                                 std::vector<EventRecord>* out) {
  const Host& web = enterprise.web_server();
  const Host& db = enterprise.database_server();
  const std::string& attacker = enterprise.attacker_ip;

  ExfilChainTruth truth;
  truth.start = start;
  truth.attacker_ip = attacker;
  truth.web_server = web.agent_id;
  truth.database_server = db.agent_id;

  // --- chain entities --------------------------------------------------------
  ProcessRef sshd{web.agent_id, 7400, "/usr/sbin/sshd", "root"};
  ProcessRef bash{web.agent_id, 7401, "/bin/bash", "root"};
  ProcessRef wsm{db.agent_id, 960, "C:\\Windows\\System32\\wsmprovhost.exe",
                 "system"};
  ProcessRef loader{db.agent_id, 5300, "C:\\Windows\\Temp\\stage-loader.exe",
                    "system"};
  ProcessRef helper{db.agent_id, 5301, "C:\\Windows\\Temp\\sysupd.exe",
                    "system"};
  FileRef stage2{db.agent_id, "C:\\Windows\\Temp\\stage2.ps1"};
  FileRef secrets{db.agent_id, "C:\\Data\\customer.db"};
  NetworkRef conn_in{web.agent_id, attacker, web.ip, 55555, 22, "tcp"};
  NetworkRef conn_out{db.agent_id, db.ip, attacker, 40444, 443, "tcp"};

  Timestamp t = start;
  auto emit = [&](EventRecord record) { out->push_back(std::move(record)); };

  // --- the chain (information flows left to right) ---------------------------
  // conn_in -> sshd
  emit(Make(web.agent_id, OpType::kAccept, t, kSecond, sshd, conn_in));
  // sshd -> bash
  emit(Make(web.agent_id, OpType::kStart, t + 10 * kSecond, kSecond, sshd,
            bash));
  // bash -> wsm (cross-host session stitched by the agents)
  emit(Make(web.agent_id, OpType::kConnect, t + 20 * kSecond, kSecond, bash,
            wsm));
  // wsm -> stage2.ps1
  emit(Make(db.agent_id, OpType::kWrite, t + 40 * kSecond, kSecond, wsm,
            stage2, 8192));
  // wsm -> stage-loader
  emit(Make(db.agent_id, OpType::kStart, t + 50 * kSecond, kSecond, wsm,
            loader));
  // stage2.ps1 -> stage-loader (image/script load)
  emit(Make(db.agent_id, OpType::kExecute, t + 60 * kSecond, kSecond, loader,
            stage2));
  // stage-loader -> sysupd.exe
  emit(Make(db.agent_id, OpType::kStart, t + 80 * kSecond, kSecond, loader,
            helper));
  // customer.db -> sysupd.exe
  emit(Make(db.agent_id, OpType::kRead, t + 100 * kSecond, 5 * kSecond,
            helper, secrets, 536870912));
  // sysupd.exe -> conn_out: session setup plus three exfil bursts.
  emit(Make(db.agent_id, OpType::kConnect, t + 110 * kSecond, kSecond,
            helper, conn_out));
  for (int burst = 0; burst < 3; ++burst) {
    emit(Make(db.agent_id, OpType::kWrite,
              t + (120 + burst * 20) * kSecond, 10 * kSecond, helper,
              conn_out, 178956971));
  }
  // Last write covers [t+160, t+170); anchor just after it.
  truth.anchor = t + 171 * kSecond;

  // --- decoys a correct backward track must not pick up ----------------------
  // In-flow into stage2.ps1 AFTER the loader consumed it: time-monotonic
  // pruning (bound = the execute's start) must reject it even though it
  // happens before the anchor.
  ProcessRef avscan{db.agent_id, 5400,
                    "C:\\Program Files\\avscan\\avscan.exe", "system"};
  emit(Make(db.agent_id, OpType::kWrite, t + 70 * kSecond, kSecond, avscan,
            stage2, 512));
  // In-flow into conn_out after the anchor.
  emit(Make(db.agent_id, OpType::kWrite, t + 200 * kSecond, kSecond, helper,
            conn_out, 4096));
  // Unrelated out-flow of customer.db (reads never flow INTO a file).
  ProcessRef backup{db.agent_id, 5401,
                    "C:\\Windows\\System32\\backup-agent.exe", "system"};
  emit(Make(db.agent_id, OpType::kRead, t + 300 * kSecond, kSecond, backup,
            secrets, 1048576));

  // --- ground truth ----------------------------------------------------------
  truth.poi_name = ConnName(conn_out);
  truth.poi_like = attacker;  // unique dst ip: resolves conn_out only
  truth.chain = {
      {EntityType::kNetwork, truth.poi_name},
      {EntityType::kProcess, helper.exe_name},
      {EntityType::kFile, secrets.path},
      {EntityType::kProcess, loader.exe_name},
      {EntityType::kFile, stage2.path},
      {EntityType::kProcess, wsm.exe_name},
      {EntityType::kProcess, bash.exe_name},
      {EntityType::kProcess, sshd.exe_name},
      {EntityType::kNetwork, ConnName(conn_in)},
  };
  truth.chain_events = 12;  // 8 single-edge stages + connect + 3 bursts
  truth.chain_depth = 6;
  return truth;
}

}  // namespace aiql
