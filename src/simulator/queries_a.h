// Investigation query catalog for the demo APT attack (paper Fig. 4).
//
// 19 queries (a1-1 .. a5-5) mirroring the live end-to-end investigation of
// §3: 18 multievent queries plus the anomaly query a5-1 that starts the a5
// investigation ("a process transferring large data to a suspicious
// external IP from the database server"). The figure's x-axis lists these
// 19 ids; the running text counts 19 multievent + 1 anomaly — we follow the
// figure.
//
// Queries are parameterized by the scenario ground truth (agent ids,
// attacker address) and assume the default scenario date (05/10/2018).

#ifndef AIQL_SIMULATOR_QUERIES_A_H_
#define AIQL_SIMULATOR_QUERIES_A_H_

#include <string>
#include <vector>

#include "simulator/attack_demo.h"

namespace aiql {

/// One catalog entry.
struct CatalogQuery {
  std::string id;           ///< e.g. "a2-2"
  std::string description;  ///< what the analyst is asking
  std::string text;         ///< AIQL source
  size_t min_expected_rows = 1;  ///< ground-truth lower bound on results
};

/// The 19 investigation queries for the demo attack.
std::vector<CatalogQuery> DemoInvestigationQueries(
    const DemoAttackTruth& truth);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_QUERIES_A_H_
