#include "simulator/attack_atc.h"

namespace aiql {

namespace {

EventRecord Make(AgentId agent, OpType op, Timestamp t, Duration len,
                 ProcessRef subject, ObjectRef object, uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

}  // namespace

AtcAttackTruth InjectAtcAttack(const Enterprise& enterprise, Timestamp start,
                               std::vector<EventRecord>* out) {
  const Host& client = enterprise.client0();
  const Host& server = enterprise.database_server();

  AtcAttackTruth truth;
  truth.start = start;
  truth.attacker_ip = enterprise.attacker_ip;
  truth.c2_ip = "45.55.66.77";
  truth.client = client.agent_id;
  truth.server = server.agent_id;

  const AgentId ca = client.agent_id;
  const AgentId sa = server.agent_id;
  std::string user = "alice";
  Timestamp t = start;
  auto emit = [&](EventRecord record) { out->push_back(std::move(record)); };

  // ---- c1: phishing attachment executed -----------------------------------
  ProcessRef outlook{ca, 1100, "C:\\Office\\outlook.exe", user};
  ProcessRef explorer{ca, 1101, "C:\\Windows\\explorer.exe", user};
  FileRef attachment{ca, "C:\\Users\\" + user +
                             "\\Downloads\\invoice_2018.doc.exe"};
  ProcessRef trojan{ca, 6100,
                    "C:\\Users\\" + user + "\\Downloads\\invoice_2018.doc.exe",
                    user};
  emit(Make(ca, OpType::kWrite, t, 2 * kSecond, outlook, attachment, 94208));
  emit(Make(ca, OpType::kExecute, t + kMinute, kSecond, explorer,
            attachment));
  emit(Make(ca, OpType::kStart, t + kMinute + kSecond, kSecond, explorer,
            trojan));

  // ---- c2: foothold & reconnaissance ----------------------------------------
  t += 5 * kMinute;
  FileRef dropper_dll{ca, "C:\\Users\\" + user +
                              "\\AppData\\Roaming\\winhlp\\mslib64.dll"};
  ProcessRef rundll{ca, 6101, "C:\\Windows\\System32\\rundll32.exe", user};
  NetworkRef c2{ca, client.ip, truth.c2_ip, 50100, 443, "tcp"};
  emit(Make(ca, OpType::kWrite, t, kSecond, trojan, dropper_dll, 229376));
  emit(Make(ca, OpType::kStart, t + 10 * kSecond, kSecond, trojan, rundll));
  emit(Make(ca, OpType::kConnect, t + 30 * kSecond, kSecond, rundll, c2));
  // Beaconing: small periodic writes to C2 for an hour.
  for (int beacon = 0; beacon < 60; ++beacon) {
    emit(Make(ca, OpType::kWrite, t + kMinute + beacon * kMinute, kSecond,
              rundll, c2, 256));
  }
  // Host enumeration.
  ProcessRef net_exe{ca, 6102, "C:\\Windows\\System32\\net.exe", user};
  ProcessRef ipconfig{ca, 6103, "C:\\Windows\\System32\\ipconfig.exe", user};
  ProcessRef whoami{ca, 6104, "C:\\Windows\\System32\\whoami.exe", user};
  emit(Make(ca, OpType::kStart, t + 2 * kMinute, kSecond, rundll, net_exe));
  emit(Make(ca, OpType::kStart, t + 3 * kMinute, kSecond, rundll, ipconfig));
  emit(Make(ca, OpType::kStart, t + 4 * kMinute, kSecond, rundll, whoami));
  // Browser credential theft.
  FileRef chrome_creds{ca, "C:\\Users\\" + user +
                               "\\AppData\\Local\\Google\\Login Data"};
  emit(Make(ca, OpType::kRead, t + 6 * kMinute, kSecond, rundll,
            chrome_creds, 32768));
  // Scheduled-task persistence.
  ProcessRef schtasks{ca, 6105, "C:\\Windows\\System32\\schtasks.exe", user};
  FileRef task_file{ca, "C:\\Windows\\System32\\Tasks\\WinHelp64"};
  emit(Make(ca, OpType::kStart, t + 7 * kMinute, kSecond, rundll, schtasks));
  emit(Make(ca, OpType::kWrite, t + 7 * kMinute + 5 * kSecond, kSecond,
            schtasks, task_file, 2048));
  // Recon results staged and shipped to C2.
  FileRef recon{ca, "C:\\Users\\" + user + "\\AppData\\Roaming\\winhlp\\sysinfo.dat"};
  emit(Make(ca, OpType::kWrite, t + 8 * kMinute, kSecond, rundll, recon,
            16384));
  emit(Make(ca, OpType::kRead, t + 9 * kMinute, kSecond, rundll, recon,
            16384));
  emit(Make(ca, OpType::kWrite, t + 10 * kMinute, 2 * kSecond, rundll, c2,
            16384));

  // ---- c3: lateral movement to the server ------------------------------------
  t += 40 * kMinute;
  ProcessRef srv_svc{sa, 902, "C:\\Windows\\System32\\svchost.exe",
                     "system"};
  emit(Make(ca, OpType::kConnect, t, kSecond, rundll, srv_svc));
  ProcessRef remote_cmd{sa, 7200, "C:\\Windows\\System32\\cmd.exe",
                        "system"};
  emit(Make(sa, OpType::kStart, t + 20 * kSecond, kSecond, srv_svc,
            remote_cmd));

  // ---- c4: credential dumping & persistence on the server ---------------------
  t += 5 * kMinute;
  ProcessRef procdump{sa, 7201, "C:\\Windows\\Temp\\procdump64.exe",
                      "system"};
  ProcessRef mimikatz{sa, 7202, "C:\\Windows\\Temp\\mk64.exe", "system"};
  FileRef lsass_dmp{sa, "C:\\Windows\\Temp\\lsass_srv.dmp"};
  FileRef sam_copy{sa, "C:\\Windows\\Temp\\sam.save"};
  emit(Make(sa, OpType::kStart, t, kSecond, remote_cmd, procdump));
  emit(Make(sa, OpType::kWrite, t + 30 * kSecond, 4 * kSecond, procdump,
            lsass_dmp, 52428800));
  emit(Make(sa, OpType::kStart, t + kMinute, kSecond, remote_cmd, mimikatz));
  emit(Make(sa, OpType::kRead, t + kMinute + 20 * kSecond, 2 * kSecond,
            mimikatz, lsass_dmp, 52428800));
  emit(Make(sa, OpType::kWrite, t + 2 * kMinute, kSecond, mimikatz,
            sam_copy, 65536));
  // Backdoor account + run-key persistence.
  ProcessRef srv_net{sa, 7203, "C:\\Windows\\System32\\net.exe", "system"};
  FileRef sam_hive{sa, "C:\\Windows\\System32\\config\\SAM"};
  emit(Make(sa, OpType::kStart, t + 3 * kMinute, kSecond, remote_cmd,
            srv_net));
  emit(Make(sa, OpType::kWrite, t + 3 * kMinute + 10 * kSecond, kSecond,
            srv_net, sam_hive, 4096));
  ProcessRef reg{sa, 7204, "C:\\Windows\\System32\\reg.exe", "system"};
  FileRef run_key{sa, "C:\\Windows\\System32\\config\\SOFTWARE"};
  FileRef backdoor{sa, "C:\\ProgramData\\svchost_.exe"};
  emit(Make(sa, OpType::kWrite, t + 4 * kMinute, kSecond, remote_cmd,
            backdoor, 311296));
  emit(Make(sa, OpType::kStart, t + 4 * kMinute + 30 * kSecond, kSecond,
            remote_cmd, reg));
  emit(Make(sa, OpType::kWrite, t + 4 * kMinute + 40 * kSecond, kSecond, reg,
            run_key, 1024));
  // Log clearing.
  ProcessRef wevtutil{sa, 7205, "C:\\Windows\\System32\\wevtutil.exe",
                      "system"};
  FileRef seclog{sa, "C:\\Windows\\System32\\winevt\\security.evtx"};
  emit(Make(sa, OpType::kStart, t + 5 * kMinute, kSecond, remote_cmd,
            wevtutil));
  emit(Make(sa, OpType::kDelete, t + 5 * kMinute + 10 * kSecond, kSecond,
            wevtutil, seclog));

  // ---- c5: staging & exfiltration ----------------------------------------------
  t += 30 * kMinute;
  ProcessRef sevenzip{sa, 7206, "C:\\Windows\\Temp\\7z.exe", "system"};
  FileRef master_mdf{sa, "C:\\SQLData\\master.mdf"};
  FileRef archive{sa, "C:\\Windows\\Temp\\upd.7z"};
  NetworkRef exfil{sa, server.ip, truth.attacker_ip, 40400, 443, "tcp"};
  emit(Make(sa, OpType::kStart, t, kSecond, remote_cmd, sevenzip));
  emit(Make(sa, OpType::kRead, t + 20 * kSecond, 20 * kSecond, sevenzip,
            master_mdf, 1073741824));
  emit(Make(sa, OpType::kWrite, t + kMinute, 30 * kSecond, sevenzip, archive,
            268435456));
  // Split transfer: repeated sends to the attacker.
  ProcessRef ps{sa, 7207, "C:\\Windows\\System32\\powershell.exe", "system"};
  emit(Make(sa, OpType::kStart, t + 2 * kMinute, kSecond, remote_cmd, ps));
  emit(Make(sa, OpType::kConnect, t + 2 * kMinute + 30 * kSecond, kSecond,
            ps, exfil));
  for (int chunk = 0; chunk < 8; ++chunk) {
    Timestamp bt = t + 3 * kMinute + chunk * 30 * kSecond;
    emit(Make(sa, OpType::kRead, bt, 5 * kSecond, ps, archive, 33554432));
    emit(Make(sa, OpType::kWrite, bt + 6 * kSecond, 15 * kSecond, ps, exfil,
              33554432));
  }
  // Cleanup: delete the archive and the dump, final beacon.
  Timestamp cleanup = t + 10 * kMinute;
  emit(Make(sa, OpType::kDelete, cleanup, kSecond, ps, archive));
  emit(Make(sa, OpType::kDelete, cleanup + 10 * kSecond, kSecond, ps,
            lsass_dmp));
  emit(Make(ca, OpType::kWrite, cleanup + kMinute, kSecond, rundll, c2,
            512));
  return truth;
}

}  // namespace aiql
