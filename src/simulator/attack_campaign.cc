#include "simulator/attack_campaign.h"

namespace aiql {

namespace {

EventRecord Make(AgentId agent, OpType op, Timestamp t, Duration len,
                 ProcessRef subject, ObjectRef object, uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

std::string ConnName(const NetworkRef& net) {
  return net.src_ip + ':' + std::to_string(net.src_port) + "->" +
         net.dst_ip + ':' + std::to_string(net.dst_port);
}

}  // namespace

CampaignChainTruth InjectCampaignChain(const Enterprise& enterprise,
                                       Timestamp start,
                                       std::vector<EventRecord>* out) {
  const Host& web = enterprise.web_server();          // agent 1
  const Host& dc = enterprise.domain_controller();    // agent 3
  const Host& db = enterprise.database_server();      // agent 4
  const Host& client = enterprise.client0();          // agent 5
  const std::string& attacker = enterprise.attacker_ip;

  CampaignChainTruth truth;
  truth.start = start;
  truth.attacker_ip = attacker;
  truth.agents = {web.agent_id, client.agent_id, dc.agent_id, db.agent_id};

  // --- chain entities --------------------------------------------------------
  ProcessRef httpd{web.agent_id, 8100, "/usr/sbin/httpd", "root"};
  ProcessRef sh{web.agent_id, 8101, "/bin/sh", "root"};
  ProcessRef beacon{client.agent_id, 6200,
                    "C:\\Users\\Public\\beacon.exe", "corp\\alice"};
  ProcessRef stager{client.agent_id, 6201,
                    "C:\\Users\\Public\\stager.exe", "corp\\alice"};
  ProcessRef svchelper{dc.agent_id, 3300,
                       "C:\\Windows\\Temp\\svchelper.exe", "system"};
  ProcessRef dbtool{db.agent_id, 4400, "C:\\Windows\\Temp\\dbtool.exe",
                    "system"};
  FileRef dropper{client.agent_id, "C:\\Users\\Public\\dropper.bat"};
  FileRef secrets{db.agent_id, "C:\\Data\\customers.dat"};
  NetworkRef conn_in{web.agent_id, attacker, web.ip, 51515, 443, "tcp"};
  NetworkRef conn_out{db.agent_id, db.ip, attacker, 40321, 443, "tcp"};

  Timestamp t = start;
  auto emit = [&](EventRecord record) { out->push_back(std::move(record)); };

  // --- the chain (information flows left to right) ---------------------------
  // conn_in -> httpd
  emit(Make(web.agent_id, OpType::kAccept, t, kSecond, httpd, conn_in));
  // httpd -> sh
  emit(Make(web.agent_id, OpType::kStart, t + 10 * kSecond, kSecond, httpd,
            sh));
  // sh -> beacon (cross-host session stitched by the agents: the event is
  // observed on the web server, its object is a client-host process)
  emit(Make(web.agent_id, OpType::kConnect, t + 30 * kSecond, kSecond, sh,
            beacon));
  // beacon -> dropper.bat
  emit(Make(client.agent_id, OpType::kWrite, t + 60 * kSecond, kSecond,
            beacon, dropper, 4096));
  // beacon -> stager
  emit(Make(client.agent_id, OpType::kStart, t + 70 * kSecond, kSecond,
            beacon, stager));
  // dropper.bat -> stager (script load)
  emit(Make(client.agent_id, OpType::kExecute, t + 80 * kSecond, kSecond,
            stager, dropper));
  // stager -> svchelper (client -> domain controller)
  emit(Make(client.agent_id, OpType::kConnect, t + 110 * kSecond, kSecond,
            stager, svchelper));
  // svchelper -> dbtool (domain controller -> database server)
  emit(Make(dc.agent_id, OpType::kConnect, t + 140 * kSecond, kSecond,
            svchelper, dbtool));
  // customers.dat -> dbtool
  emit(Make(db.agent_id, OpType::kRead, t + 170 * kSecond, 5 * kSecond,
            dbtool, secrets, 268435456));
  // dbtool -> conn_out: session setup plus three exfil bursts.
  emit(Make(db.agent_id, OpType::kConnect, t + 180 * kSecond, kSecond,
            dbtool, conn_out));
  for (int burst = 0; burst < 3; ++burst) {
    emit(Make(db.agent_id, OpType::kWrite,
              t + (190 + burst * 15) * kSecond, 10 * kSecond, dbtool,
              conn_out, 89478485));
  }
  // Last write covers [t+220, t+230); anchor just after it.
  truth.anchor = t + 231 * kSecond;

  // --- decoys a correct backward track must not pick up ----------------------
  // In-flow into dropper.bat AFTER the stager consumed it: dropper's bound
  // is the execute's start (t+80), so this write (ending t+91) must be
  // rejected by time-monotonic pruning.
  ProcessRef avupdate{client.agent_id, 6300,
                      "C:\\Program Files\\avscan\\avupdate.exe", "system"};
  emit(Make(client.agent_id, OpType::kWrite, t + 90 * kSecond, kSecond,
            avupdate, dropper, 512));
  // Cross-shard monotonicity decoy: an inbound connect into beacon from the
  // domain controller at t+150. Beacon's bound (t+70) was established by an
  // event on the CLIENT host — under agent-range sharding the decoy event
  // lives on a different shard, so rejecting it proves the tighter bound
  // was exchanged across shards rather than re-derived loosely per shard.
  ProcessRef scanner{dc.agent_id, 3400,
                     "C:\\Windows\\System32\\netscan.exe", "system"};
  emit(Make(dc.agent_id, OpType::kConnect, t + 150 * kSecond, kSecond,
            scanner, beacon));
  // In-flow into conn_out after the anchor.
  emit(Make(db.agent_id, OpType::kWrite, t + 260 * kSecond, kSecond, dbtool,
            conn_out, 4096));
  // Unrelated out-flow of customers.dat (reads never flow INTO a file).
  ProcessRef backup{db.agent_id, 4500,
                    "C:\\Windows\\System32\\backup-agent.exe", "system"};
  emit(Make(db.agent_id, OpType::kRead, t + 300 * kSecond, kSecond, backup,
            secrets, 1048576));

  // --- ground truth ----------------------------------------------------------
  truth.poi_name = ConnName(conn_out);
  truth.poi_like = attacker;  // unique dst ip: resolves conn_out only
  // Discovery order of an exact backward track: per hop, per frontier
  // entity, candidates closest-in-time (latest end) first.
  truth.chain = {
      {EntityType::kNetwork, truth.poi_name},             // depth 0
      {EntityType::kProcess, dbtool.exe_name},            // depth 1
      {EntityType::kFile, secrets.path},                  // depth 2
      {EntityType::kProcess, svchelper.exe_name},         // depth 2
      {EntityType::kProcess, stager.exe_name},            // depth 3
      {EntityType::kFile, dropper.path},                  // depth 4
      {EntityType::kProcess, beacon.exe_name},            // depth 4
      {EntityType::kProcess, sh.exe_name},                // depth 5
      {EntityType::kProcess, httpd.exe_name},             // depth 6
      {EntityType::kNetwork, ConnName(conn_in)},          // depth 7
  };
  truth.chain_depths = {0, 1, 2, 2, 3, 4, 4, 5, 6, 7};
  truth.chain_bounds = {
      truth.anchor,        t + 220 * kSecond, t + 170 * kSecond,
      t + 140 * kSecond,   t + 110 * kSecond, t + 80 * kSecond,
      t + 70 * kSecond,    t + 30 * kSecond,  t + 10 * kSecond,
      t,
  };
  truth.decoy_names = {avupdate.exe_name, scanner.exe_name, backup.exe_name};
  truth.chain_events = 13;  // 9 single-edge stages + connect + 3 bursts
  truth.chain_depth = 7;
  return truth;
}

}  // namespace aiql
