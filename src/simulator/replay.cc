#include "simulator/replay.h"

#include <algorithm>
#include <chrono>

namespace aiql {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

StreamReplayer::StreamReplayer(AuditDatabase* db,
                               const std::vector<EventRecord>* records,
                               ReplayOptions options)
    : db_(db), records_(records), options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

StreamReplayer::~StreamReplayer() {
  if (thread_.joinable()) thread_.join();
}

void StreamReplayer::Start() {
  thread_ = std::thread([this] { Run(); });
}

Status StreamReplayer::Join() {
  if (thread_.joinable()) thread_.join();
  return status_;
}

void StreamReplayer::Run() {
  auto start = Clock::now();
  const std::vector<EventRecord>& records = *records_;
  size_t offset = 0;
  while (offset < records.size()) {
    size_t n = std::min(options_.batch_size, records.size() - offset);
    std::vector<EventRecord> batch(records.begin() + offset,
                                   records.begin() + offset + n);
    Status status = db_->AppendBatch(std::move(batch));
    if (!status.ok()) {
      status_ = std::move(status);
      break;
    }
    offset += n;
    ingested_.store(offset, std::memory_order_relaxed);
    if (options_.events_per_second > 0) {
      // Pinned rate: the i-th record is due at start + i / rate; sleep off
      // any lead the batch built up.
      auto due = start + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(offset) /
                                 options_.events_per_second));
      std::this_thread::sleep_until(due);
    }
  }
  if (status_.ok()) {
    // Make the tail batch commit (visibility still lags until partitions
    // seal — rotation, size threshold, or the caller's final Seal()).
    status_ = db_->Flush();
  }
  wall_us_.store(std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - start)
                     .count(),
                 std::memory_order_release);
  done_.store(true, std::memory_order_release);
}

}  // namespace aiql
