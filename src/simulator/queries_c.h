// Investigation query catalog for the ATC case-study attack (paper Fig. 5).
//
// 26 queries grouped by attack phase exactly as the figure's x-axis:
// c1-1, c2-1..c2-8, c3-1..c3-2, c4-1..c4-8, c5-1..c5-7. All are multievent
// or dependency queries (the three baseline engines can all evaluate them).

#ifndef AIQL_SIMULATOR_QUERIES_C_H_
#define AIQL_SIMULATOR_QUERIES_C_H_

#include <vector>

#include "simulator/attack_atc.h"
#include "simulator/queries_a.h"  // CatalogQuery

namespace aiql {

/// The 26 investigation queries for the ATC case-study attack.
std::vector<CatalogQuery> AtcInvestigationQueries(
    const AtcAttackTruth& truth);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_QUERIES_C_H_
