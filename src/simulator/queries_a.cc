#include "simulator/queries_a.h"

namespace aiql {

namespace {
const std::string kDate = "(at \"05/10/2018\")\n";
}  // namespace

std::vector<CatalogQuery> DemoInvestigationQueries(
    const DemoAttackTruth& truth) {
  const std::string web = std::to_string(truth.web_server);
  const std::string client = std::to_string(truth.client);
  const std::string dc = std::to_string(truth.domain_controller);
  const std::string db = std::to_string(truth.database_server);
  const std::string attacker = truth.attacker_ip;

  std::vector<CatalogQuery> queries;
  auto add = [&](std::string id, std::string description, std::string text,
                 size_t min_rows = 1) {
    queries.push_back(CatalogQuery{std::move(id), std::move(description),
                                   std::move(text), min_rows});
  };

  // ---- a1: initial compromise ------------------------------------------------
  add("a1-1", "inbound connections from the suspicious external address",
      kDate + "agentid = " + web +
          "\nproc p accept ip i[src_ip = \"" + attacker +
          "\"] as e\nreturn distinct p, i");
  add("a1-2", "processes spawned by the IRC daemon",
      kDate + "agentid = " + web +
          "\nproc p1[\"%unrealircd%\"] start proc p2 as e1\n"
          "return distinct p1, p2");
  add("a1-3", "shell chain spawned from the IRC daemon",
      kDate + "agentid = " + web +
          "\nproc p1[\"%unrealircd%\"] start proc p2[\"%/bin/sh%\"] as e1\n"
          "proc p2 start proc p3 as e2\n"
          "with e1 before e2\n"
          "return distinct p1, p2, p3");
  add("a1-4", "telnet session back to the attacker",
      kDate + "agentid = " + web +
          "\nproc p[\"%telnetd%\"] write ip i[dst_ip = \"" + attacker +
          "\"] as e\nreturn distinct p, i, e.amount");

  // ---- a2: malware infection ---------------------------------------------------
  add("a2-1", "files dropped through the telnet session",
      kDate + "agentid = " + web +
          "\nproc p[\"%telnetd%\"] write file f as e\n"
          "return distinct p, f");
  add("a2-2", "malware execution and cross-host propagation",
      kDate +
          "proc p1[\"%/bin/sh%\", agentid = " + web +
          "] execute file f1[\"%malnet%\"] as e1\n"
          "proc p2[\"%malnet%\", agentid = " + web +
          "] connect proc p3[agentid = " + client + "] as e2\n"
          "proc p3 write file f2[\"%malnet%\"] as e3\n"
          "with e1 before e2, e2 before e3\n"
          "return distinct f1, p2, p3, f2");
  add("a2-3", "forward tracking of the dropped malware binary",
      kDate +
          "forward: proc p1[\"%telnetd%\", agentid = " + web +
          "] ->[write] file f1[\"%malnet%\"]\n"
          "<-[execute] proc p2[\"%/bin/sh%\"]\n"
          "return p1, f1, p2");

  // ---- a3: privilege escalation --------------------------------------------------
  add("a3-1", "who started the memory dumping tool",
      kDate + "agentid = " + client +
          "\nproc p1 start proc p2[\"%mimikatz%\"] as e\n"
          "return distinct p1, p2");
  add("a3-2", "memory dumps written by mimikatz",
      kDate + "agentid = " + client +
          "\nproc p[\"%mimikatz%\"] write file f as e\n"
          "return distinct p, f, e.amount");
  add("a3-3", "full escalation chain on the client",
      kDate + "agentid = " + client +
          "\nproc p1[\"%malnet.exe%\"] start proc p2[\"%cve-2015-1701%\"] as "
          "e1\n"
          "proc p2 start proc p3[\"%kiwi%\"] as e2\n"
          "proc p3 read file f1[\"%lsass.dmp%\"] as e3\n"
          "proc p3 write file f2[\"%creds%\"] as e4\n"
          "with e1 before e2, e2 before e3, e3 before e4\n"
          "return distinct p1, p2, p3, f1, f2");

  // ---- a4: user credentials ---------------------------------------------------------
  add("a4-1", "cross-host sessions from the client malware to the DC",
      kDate + "proc p1[\"%malnet%\", agentid = " + client +
          "] connect proc p2[agentid = " + dc +
          "] as e\nreturn distinct p1, p2");
  add("a4-2", "password dumping tools started on the DC",
      kDate + "agentid = " + dc +
          "\nproc p1 start proc p2[\"%PwDump7%\"] as e\n"
          "return distinct p1, p2");
  add("a4-3", "files touched by the password dumper",
      kDate + "agentid = " + dc +
          "\nproc p[\"%pwdump7%\"] read || write file f as e\n"
          "return distinct p, f");
  add("a4-4", "credential exfiltration chain on the DC",
      kDate + "agentid = " + dc +
          "\nproc p1[\"%PwDump7%\"] write file f1[\"%alluser.pw%\"] as e1\n"
          "proc p2[\"%WCE%\"] read file f1 as e2\n"
          "proc p2 write ip i[dst_ip = \"" + attacker +
          "\"] as e3\n"
          "with e1 before e2, e2 before e3\n"
          "return distinct p1, f1, p2, i");

  // ---- a5: data exfiltration -----------------------------------------------------------
  add("a5-1",
      "anomaly: processes on the DB server moving unusually large volumes "
      "to the suspicious address",
      kDate + "agentid = " + db +
          "\nwindow = 1 min, step = 10 sec\n"
          "proc p write ip i[dst_ip = \"" + attacker +
          "\"] as evt\n"
          "return p, avg(evt.amount) as amt\n"
          "group by p\n"
          "having amt > 2 * (amt + amt[1] + amt[2]) / 3");
  add("a5-2", "files read by the transferring process",
      kDate + "agentid = " + db +
          "\nproc p[\"%powershell%\"] read file f as e\n"
          "return distinct p, f");
  add("a5-3", "which process created the database dump",
      kDate + "agentid = " + db +
          "\nproc p write file f[\"%db.bak%\"] as e\n"
          "return distinct p, f");
  add("a5-4", "connection to the attacker before the transfer",
      kDate + "agentid = " + db +
          "\nproc p[\"%powershell%\"] connect ip i[dst_ip = \"" + attacker +
          "\"] as e1\n"
          "proc p write ip i as e2\n"
          "with e1 before e2\n"
          "return distinct p, i");
  add("a5-5", "full exfiltration chain on the database server",
      kDate + "agentid = " + db +
          "\nproc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1\n"
          "proc p3[\"%sqlservr.exe\"] write file f1[\"%db.bak%\"] as e2\n"
          "proc p4[\"%powershell%\"] read file f1 as e3\n"
          "proc p4 connect ip i1[dst_ip = \"" + attacker +
          "\"] as e4\n"
          "proc p4 write ip i1 as e5\n"
          "with e1 before e2, e2 before e3, e4 before e5, e3 before e5\n"
          "return distinct p1, p2, p3, f1, p4, i1");

  return queries;
}

}  // namespace aiql
