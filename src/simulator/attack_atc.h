// The second APT case study (the ATC'18 paper's evaluation attack, used for
// Fig. 5's 26-query investigation, ids c1-* .. c5-*).
//
// Five phases on the simulated enterprise:
//  c1 Initial compromise — phishing attachment executed on a client.
//  c2 Foothold & reconnaissance — dropper, C2 beaconing, host enumeration,
//     scheduled-task persistence, browser-credential theft.
//  c3 Lateral movement — remote session from the client to the database
//     server, remote shell spawned.
//  c4 Credential dumping & persistence on the server — procdump/mimikatz,
//     backdoor account, run-key persistence, log clearing.
//  c5 Staging & exfiltration — archive staging of database files, split
//     transfer to the attacker, cleanup.

#ifndef AIQL_SIMULATOR_ATTACK_ATC_H_
#define AIQL_SIMULATOR_ATTACK_ATC_H_

#include <string>
#include <vector>

#include "common/time_utils.h"
#include "simulator/topology.h"
#include "storage/data_model.h"

namespace aiql {

/// Ground-truth markers for the ATC attack.
struct AtcAttackTruth {
  Timestamp start = 0;
  std::string attacker_ip;
  std::string c2_ip;          ///< command-and-control address
  AgentId client = 0;         ///< initially compromised client
  AgentId server = 0;         ///< lateral-movement target (database server)
};

/// Injects the attack into `out` starting at `start` (unfolds over ~3h).
AtcAttackTruth InjectAtcAttack(const Enterprise& enterprise, Timestamp start,
                               std::vector<EventRecord>* out);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_ATTACK_ATC_H_
