#include "simulator/topology.h"

namespace aiql {

const char* HostRoleToString(HostRole role) {
  switch (role) {
    case HostRole::kWindowsClient:
      return "windows-client";
    case HostRole::kLinuxWebServer:
      return "linux-web-server";
    case HostRole::kDatabaseServer:
      return "database-server";
    case HostRole::kDomainController:
      return "domain-controller";
    case HostRole::kRouter:
      return "router";
  }
  return "?";
}

Enterprise BuildEnterprise(int num_clients) {
  Enterprise enterprise;
  enterprise.attacker_ip = "66.77.88.129";  // the paper's obfuscated XXX.129

  auto add = [&](std::string name, std::string ip, HostRole role) {
    Host host;
    host.agent_id = static_cast<AgentId>(enterprise.hosts.size() + 1);
    host.name = std::move(name);
    host.ip = std::move(ip);
    host.role = role;
    enterprise.hosts.push_back(std::move(host));
  };

  add("web-01", "10.10.0.1", HostRole::kLinuxWebServer);
  add("router-01", "10.10.0.2", HostRole::kRouter);
  add("dc-01", "10.10.0.3", HostRole::kDomainController);
  add("db-01", "10.10.0.4", HostRole::kDatabaseServer);
  for (int i = 0; i < num_clients; ++i) {
    add("client-" + std::to_string(i + 1),
        "10.10.1." + std::to_string(i + 1), HostRole::kWindowsClient);
  }
  return enterprise;
}

}  // namespace aiql
