#include "simulator/queries_c.h"

namespace aiql {

namespace {
const std::string kDate = "(at \"05/10/2018\")\n";
}  // namespace

std::vector<CatalogQuery> AtcInvestigationQueries(
    const AtcAttackTruth& truth) {
  const std::string client = std::to_string(truth.client);
  const std::string server = std::to_string(truth.server);
  const std::string attacker = truth.attacker_ip;
  const std::string c2 = truth.c2_ip;

  std::vector<CatalogQuery> queries;
  auto add = [&](std::string id, std::string description, std::string text,
                 size_t min_rows = 1) {
    queries.push_back(CatalogQuery{std::move(id), std::move(description),
                                   std::move(text), min_rows});
  };

  // ---- c1: initial compromise -------------------------------------------------
  add("c1-1", "phishing attachment written by the mail client and executed",
      kDate + "agentid = " + client +
          "\nproc p1[\"%outlook%\"] write file f1[\"%invoice%\"] as e1\n"
          "proc p2[\"%explorer%\"] execute file f1 as e2\n"
          "with e1 before e2\n"
          "return distinct p1, f1, p2");

  // ---- c2: foothold & reconnaissance --------------------------------------------
  add("c2-1", "processes spawned by the trojan",
      kDate + "agentid = " + client +
          "\nproc p1[\"%invoice_2018%\"] start proc p2 as e\n"
          "return distinct p1, p2");
  add("c2-2", "payload DLL dropped by the trojan",
      kDate + "agentid = " + client +
          "\nproc p1[\"%invoice_2018%\"] write file f[\"%mslib64.dll%\"] as "
          "e\nreturn distinct p1, f");
  add("c2-3", "command-and-control connections",
      kDate + "agentid = " + client +
          "\nproc p[\"%rundll32%\"] connect ip i[dst_ip = \"" + c2 +
          "\"] as e\nreturn distinct p, i");
  add("c2-4", "beaconing traffic to the C2 address",
      kDate + "agentid = " + client +
          "\nproc p[\"%rundll32%\"] write ip i[dst_ip = \"" + c2 +
          "\"] as e\nreturn distinct p, i");
  add("c2-5", "host enumeration tooling launched by the implant",
      kDate + "agentid = " + client +
          "\nproc p1[\"%rundll32%\"] start proc p2[\"%net.exe\"] as e\n"
          "return distinct p1, p2");
  add("c2-6", "browser credential store access",
      kDate + "agentid = " + client +
          "\nproc p[\"%rundll32%\"] read file f[\"%Login Data%\"] as e\n"
          "return distinct p, f");
  add("c2-7", "scheduled-task persistence",
      kDate + "agentid = " + client +
          "\nproc p1[\"%rundll32%\"] start proc p2[\"%schtasks%\"] as e1\n"
          "proc p2 write file f[\"%Tasks%\"] as e2\n"
          "with e1 before e2\n"
          "return distinct p1, p2, f");
  add("c2-8", "recon results staged and shipped to C2",
      kDate + "agentid = " + client +
          "\nproc p[\"%rundll32%\"] write file f[\"%sysinfo.dat%\"] as e1\n"
          "proc p read file f as e2\n"
          "proc p write ip i[dst_ip = \"" + c2 +
          "\"] as e3\n"
          "with e1 before e2, e2 before e3\n"
          "return distinct p, f, i");

  // ---- c3: lateral movement --------------------------------------------------------
  add("c3-1", "cross-host session from the implant to the server",
      kDate + "proc p1[\"%rundll32%\", agentid = " + client +
          "] connect proc p2[agentid = " + server +
          "] as e\nreturn distinct p1, p2");
  add("c3-2", "remote shell spawned on the server",
      kDate + "agentid = " + server +
          "\nproc p1[\"%svchost%\"] start proc p2[\"%cmd.exe\"] as e\n"
          "return distinct p1, p2");

  // ---- c4: credential dumping & persistence ------------------------------------------
  add("c4-1", "process dumper launched from the remote shell",
      kDate + "agentid = " + server +
          "\nproc p1[\"%cmd.exe\"] start proc p2[\"%procdump%\"] as e\n"
          "return distinct p1, p2");
  add("c4-2", "LSASS memory dump written",
      kDate + "agentid = " + server +
          "\nproc p[\"%procdump%\"] write file f[\"%lsass%\"] as e\n"
          "return distinct p, f, e.amount");
  add("c4-3", "credential tool reading the memory dump",
      kDate + "agentid = " + server +
          "\nproc p[\"%mk64%\"] read file f[\"%lsass%\"] as e\n"
          "return distinct p, f");
  add("c4-4", "dump-then-harvest chain",
      kDate + "agentid = " + server +
          "\nproc p1[\"%procdump%\"] write file f[\"%lsass%\"] as e1\n"
          "proc p2[\"%mk64%\"] read file f as e2\n"
          "with e1 before e2\n"
          "return distinct p1, f, p2");
  add("c4-5", "SAM hive modification (backdoor account)",
      kDate + "agentid = " + server +
          "\nproc p[\"%net.exe\"] write file f[\"%config\\SAM%\"] as e\n"
          "return distinct p, f");
  add("c4-6", "backdoor binary dropped",
      kDate + "agentid = " + server +
          "\nproc p[\"%cmd.exe\"] write file f[\"%svchost_.exe%\"] as e\n"
          "return distinct p, f");
  add("c4-7", "run-key persistence via reg.exe",
      kDate + "agentid = " + server +
          "\nproc p1[\"%cmd.exe\"] start proc p2[\"%reg.exe\"] as e1\n"
          "proc p2 write file f[\"%SOFTWARE%\"] as e2\n"
          "with e1 before e2\n"
          "return distinct p2, f");
  add("c4-8", "security log cleared",
      kDate + "agentid = " + server +
          "\nproc p1 start proc p2[\"%wevtutil%\"] as e1\n"
          "proc p2 delete file f[\"%security.evtx%\"] as e2\n"
          "with e1 before e2\n"
          "return distinct p1, p2, f");

  // ---- c5: staging & exfiltration ------------------------------------------------------
  add("c5-1", "database files staged into an archive",
      kDate + "agentid = " + server +
          "\nproc p[\"%7z.exe\"] read file f1[\"%master.mdf%\"] as e1\n"
          "proc p write file f2[\"%upd.7z%\"] as e2\n"
          "with e1 before e2\n"
          "return distinct p, f1, f2");
  add("c5-2", "connection to the attacker's drop host",
      kDate + "agentid = " + server +
          "\nproc p[\"%powershell%\"] connect ip i[dst_ip = \"" + attacker +
          "\"] as e\nreturn distinct p, i");
  add("c5-3", "split transfer of the staged archive",
      kDate + "agentid = " + server +
          "\nproc p[\"%powershell%\"] read file f[\"%upd.7z%\"] as e1\n"
          "proc p write ip i[dst_ip = \"" + attacker +
          "\"] as e2\n"
          "with e1 before e2\n"
          "return distinct p, f, i");
  add("c5-4", "exfiltrated volumes per transfer",
      kDate + "agentid = " + server +
          "\nproc p[\"%powershell%\"] write ip i[dst_ip = \"" + attacker +
          "\"] as e\nreturn distinct p, i, e.amount");
  add("c5-5", "cleanup: files deleted by the exfiltration process",
      kDate + "agentid = " + server +
          "\nproc p[\"%powershell%\"] delete file f as e\n"
          "return distinct p, f");
  add("c5-6", "full staging-to-exfiltration chain",
      kDate + "agentid = " + server +
          "\nproc p1[\"%cmd.exe\"] start proc p2[\"%7z.exe\"] as e1\n"
          "proc p2 write file f1[\"%upd.7z%\"] as e2\n"
          "proc p3[\"%powershell%\"] read file f1 as e3\n"
          "proc p3 write ip i[dst_ip = \"" + attacker +
          "\"] as e4\n"
          "proc p3 delete file f1 as e5\n"
          "with e1 before e2, e2 before e3, e3 before e4, e4 before e5\n"
          "return distinct p1, p2, f1, p3, i");
  add("c5-7", "end-to-end provenance from the implant to the exfiltration",
      kDate +
          "forward: proc p1[\"%rundll32%\", agentid = " + client +
          "] ->[connect] proc p2[agentid = " + server +
          "]\n->[start] proc p3[\"%cmd.exe\"]\n"
          "->[start] proc p4[\"%powershell%\"]\n"
          "->[write] ip i[dst_ip = \"" + attacker +
          "\"]\nreturn p1, p2, p3, p4, i");

  return queries;
}

}  // namespace aiql
