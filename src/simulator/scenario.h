// Scenario assembly: enterprise + background noise + attack -> records,
// plus ingestion into an AuditDatabase under chosen storage options.

#ifndef AIQL_SIMULATOR_SCENARIO_H_
#define AIQL_SIMULATOR_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "simulator/attack_atc.h"
#include "simulator/attack_campaign.h"
#include "simulator/attack_demo.h"
#include "simulator/attack_exfil.h"
#include "simulator/background.h"
#include "simulator/topology.h"
#include "storage/database.h"

namespace aiql {

/// Knobs for scenario generation. Defaults suit unit tests; benchmarks
/// scale events_per_host_per_hour / num_clients up.
struct ScenarioOptions {
  int num_clients = 4;
  /// Monitored day (the catalogs' `(at "05/10/2018")` window).
  int year = 2018, month = 5, day = 10;
  Duration duration = 6 * kHour;
  double events_per_host_per_hour = 2000;
  uint64_t seed = 42;
  /// Attack injection offset from the window start.
  Duration attack_offset = 2 * kHour;
};

/// Generated scenario with the demo attack (a1-a5).
struct DemoScenarioData {
  Enterprise enterprise;
  DemoAttackTruth truth;
  std::vector<EventRecord> records;  ///< time-ordered
  TimeRange window;
};

/// Generated scenario with the ATC case-study attack (c1-c5).
struct AtcScenarioData {
  Enterprise enterprise;
  AtcAttackTruth truth;
  std::vector<EventRecord> records;
  TimeRange window;
};

/// Generated scenario with the multi-stage exfiltration chain (provenance
/// tracking's needle-in-a-haystack workload).
struct ExfilScenarioData {
  Enterprise enterprise;
  ExfilChainTruth truth;
  std::vector<EventRecord> records;  ///< time-ordered
  TimeRange window;
};

/// Generated scenario with the multi-host campaign chain (cross-shard
/// provenance tracking's ground-truth workload).
struct CampaignScenarioData {
  Enterprise enterprise;
  CampaignChainTruth truth;
  std::vector<EventRecord> records;  ///< time-ordered
  TimeRange window;
};

/// Builds background + demo attack records (deterministic under options).
DemoScenarioData GenerateDemoScenario(const ScenarioOptions& options);

/// Builds background + ATC attack records.
AtcScenarioData GenerateAtcScenario(const ScenarioOptions& options);

/// Builds background + the exfiltration chain.
ExfilScenarioData GenerateExfilScenario(const ScenarioOptions& options);

/// Builds background + the multi-host campaign chain.
CampaignScenarioData GenerateCampaignScenario(const ScenarioOptions& options);

/// Ingests records into a database under `storage` and seals it.
Result<AuditDatabase> IngestRecords(const std::vector<EventRecord>& records,
                                    const StorageOptions& storage);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_SCENARIO_H_
