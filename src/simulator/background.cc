#include "simulator/background.h"

#include <algorithm>

namespace aiql {

namespace {

/// A small pool of long-running processes on one host.
struct ProcPool {
  std::vector<ProcessRef> procs;

  const ProcessRef& Pick(Rng* rng) const {
    return procs[rng->Uniform(procs.size())];
  }
};

ProcessRef MakeProc(AgentId agent, uint32_t pid, std::string exe,
                    std::string user) {
  return ProcessRef{agent, pid, std::move(exe), std::move(user)};
}

const char* kWebsites[] = {"93.184.216.34", "142.250.72.14", "151.101.1.69",
                           "104.16.132.229", "13.107.42.14"};

std::string ClientUser(AgentId agent) {
  static const char* kUsers[] = {"alice", "bob",   "carol", "dave",
                                 "erin",  "frank", "grace", "heidi"};
  return kUsers[agent % 8];
}

EventRecord Record(AgentId agent, OpType op, Timestamp t, ProcessRef subject,
                   ObjectRef object, uint64_t amount, Rng* rng) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + static_cast<Duration>(rng->Uniform(900) + 100) *
                          kMillisecond;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

void GenerateClientHost(const Host& host,
                        Timestamp start, Timestamp end, size_t count,
                        Rng* rng, std::vector<EventRecord>* out) {
  const AgentId agent = host.agent_id;
  std::string user = ClientUser(agent);
  uint32_t pid = 1000 + agent * 1000;
  ProcessRef explorer = MakeProc(agent, pid + 1, "C:\\Windows\\explorer.exe",
                                 user);
  // Applications churn through process instances over the day (pid reuse
  // sessions), so the entity store sees realistic process cardinality
  // rather than one long-lived instance per application.
  auto session_proc = [&](uint32_t slot, const char* exe,
                          const std::string& owner, Rng* rng) {
    uint32_t session = static_cast<uint32_t>(rng->Uniform(24));
    return MakeProc(agent, pid + slot * 32 + session, exe, owner);
  };
  ProcessRef svchost = MakeProc(agent, pid + 6,
                                "C:\\Windows\\System32\\svchost.exe",
                                "system");
  ProcPool launch_targets{{
      MakeProc(agent, pid + 2, "C:\\Program Files\\Google\\chrome.exe",
               user),
      MakeProc(agent, pid + 3, "C:\\Office\\winword.exe", user),
      MakeProc(agent, pid + 4, "C:\\Office\\excel.exe", user),
      MakeProc(agent, pid + 5, "C:\\Office\\outlook.exe", user),
  }};
  Duration span = end - start;
  for (size_t i = 0; i < count; ++i) {
    Timestamp t = start + rng->Uniform(static_cast<uint64_t>(span));
    size_t behavior = rng->WeightedIndex({4, 3, 2, 1, 1, 0.5});
    switch (behavior) {
      case 0: {  // browsing
        NetworkRef net{agent, host.ip, kWebsites[rng->Uniform(5)],
                       static_cast<uint16_t>(49000 + rng->Uniform(8000)),
                       443, "tcp"};
        OpType op = rng->Chance(0.5) ? OpType::kWrite : OpType::kRead;
        out->push_back(Record(
            agent, op, t,
            session_proc(2, "C:\\Program Files\\Google\\chrome.exe", user,
                         rng),
            net, 200 + rng->Uniform(40000), rng));
        break;
      }
      case 1: {  // document work
        FileRef doc{agent, "C:\\Users\\" + user + "\\Documents\\doc" +
                               std::to_string(rng->Uniform(240)) + ".docx"};
        ProcessRef office =
            rng->Chance(0.5)
                ? session_proc(3, "C:\\Office\\winword.exe", user, rng)
                : session_proc(4, "C:\\Office\\excel.exe", user, rng);
        OpType op = rng->Chance(0.4) ? OpType::kWrite : OpType::kRead;
        out->push_back(
            Record(agent, op, t, office, doc, 1000 + rng->Uniform(90000),
                   rng));
        break;
      }
      case 2: {  // mail
        NetworkRef mail{agent, host.ip, "10.10.0.3", 52000, 993, "tcp"};
        out->push_back(Record(
            agent,
            rng->Chance(0.5) ? OpType::kRead : OpType::kWrite, t,
            session_proc(5, "C:\\Office\\outlook.exe", user, rng), mail,
            500 + rng->Uniform(20000), rng));
        break;
      }
      case 3: {  // app launches
        out->push_back(Record(agent, OpType::kStart, t, explorer,
                              launch_targets.Pick(rng), 0, rng));
        break;
      }
      case 4: {  // system services touching system files
        FileRef sys{agent, "C:\\Windows\\System32\\cfg" +
                               std::to_string(rng->Uniform(220)) + ".dll"};
        out->push_back(Record(agent, OpType::kRead, t, svchost, sys,
                              256 + rng->Uniform(4096), rng));
        break;
      }
      default: {  // auth to the domain controller
        NetworkRef auth{agent, host.ip, "10.10.0.3", 53000, 88, "tcp"};
        out->push_back(Record(agent, OpType::kWrite, t, svchost, auth,
                              128 + rng->Uniform(512), rng));
        break;
      }
    }
  }
}

void GenerateWebServer(const Enterprise& enterprise, const Host& host,
                       Timestamp start, Timestamp end, size_t count,
                       Rng* rng, std::vector<EventRecord>* out) {
  const AgentId agent = host.agent_id;
  ProcessRef apache = MakeProc(agent, 700, "/usr/sbin/apache2", "www-data");
  ProcessRef sshd = MakeProc(agent, 701, "/usr/sbin/sshd", "root");
  ProcessRef cron = MakeProc(agent, 702, "/usr/sbin/cron", "root");
  ProcessRef bash = MakeProc(agent, 703, "/bin/bash", "admin");
  ProcessRef ircd = MakeProc(agent, 704, "/opt/unrealircd/unrealircd",
                             "ircd");
  Duration span = end - start;
  for (size_t i = 0; i < count; ++i) {
    Timestamp t = start + rng->Uniform(static_cast<uint64_t>(span));
    size_t behavior = rng->WeightedIndex({5, 3, 1, 1, 0.5});
    switch (behavior) {
      case 0: {  // serve a page: accept + read file + write socket
        const Host& client =
            enterprise.hosts[4 + rng->Uniform(enterprise.hosts.size() - 4)];
        NetworkRef conn{agent, client.ip, host.ip,
                        static_cast<uint16_t>(40000 + rng->Uniform(9000)),
                        80, "tcp"};
        out->push_back(Record(agent, OpType::kAccept, t, apache, conn, 0,
                              rng));
        FileRef page{agent, "/var/www/html/page" +
                                std::to_string(rng->Uniform(400)) + ".html"};
        out->push_back(Record(agent, OpType::kRead, t + 10 * kMillisecond,
                              apache, page, 2000 + rng->Uniform(30000),
                              rng));
        out->push_back(Record(agent, OpType::kWrite, t + 20 * kMillisecond,
                              apache, conn, 2000 + rng->Uniform(30000),
                              rng));
        break;
      }
      case 1: {  // logging
        FileRef log{agent, "/var/log/apache2/access.log"};
        out->push_back(Record(agent, OpType::kWrite, t, apache, log,
                              80 + rng->Uniform(400), rng));
        break;
      }
      case 2: {  // admin ssh session
        out->push_back(Record(agent, OpType::kStart, t, sshd, bash, 0, rng));
        FileRef conf{agent, "/etc/app/conf" +
                                std::to_string(rng->Uniform(10)) + ".yaml"};
        out->push_back(Record(agent, OpType::kRead, t + kSecond, bash, conf,
                              100 + rng->Uniform(2000), rng));
        break;
      }
      case 3: {  // cron job
        ProcessRef sh = MakeProc(agent, 800 + static_cast<uint32_t>(
                                                  rng->Uniform(20)),
                                 "/bin/sh", "root");
        out->push_back(Record(agent, OpType::kStart, t, cron, sh, 0, rng));
        FileRef log{agent, "/var/log/cron.log"};
        out->push_back(Record(agent, OpType::kWrite, t + kSecond, sh, log,
                              64 + rng->Uniform(128), rng));
        break;
      }
      default: {  // benign IRC traffic
        NetworkRef conn{agent, "10.10.1.9", host.ip, 51000, 6667, "tcp"};
        out->push_back(Record(agent, OpType::kAccept, t, ircd, conn, 0,
                              rng));
        break;
      }
    }
  }
}

void GenerateDatabaseServer(const Enterprise& enterprise, const Host& host,
                            Timestamp start, Timestamp end, size_t count,
                            Rng* rng, std::vector<EventRecord>* out) {
  const AgentId agent = host.agent_id;
  ProcessRef sqlservr = MakeProc(agent, 900,
                                 "C:\\SQL\\MSSQL\\Binn\\sqlservr.exe",
                                 "system");
  ProcessRef agentproc = MakeProc(agent, 901, "C:\\SQL\\sqlagent.exe",
                                  "system");
  Duration span = end - start;
  for (size_t i = 0; i < count; ++i) {
    Timestamp t = start + rng->Uniform(static_cast<uint64_t>(span));
    size_t behavior = rng->WeightedIndex({5, 2, 1, 1});
    switch (behavior) {
      case 0: {  // data file I/O
        FileRef mdf{agent, rng->Chance(0.7) ? "C:\\SQLData\\master.mdf"
                                            : "C:\\SQLData\\tempdb.ldf"};
        out->push_back(Record(agent,
                              rng->Chance(0.5) ? OpType::kRead
                                               : OpType::kWrite,
                              t, sqlservr, mdf,
                              4096 + rng->Uniform(1 << 18), rng));
        break;
      }
      case 1: {  // query traffic from the web server
        NetworkRef conn{agent, enterprise.web_server().ip, host.ip,
                        static_cast<uint16_t>(45000 + rng->Uniform(2000)),
                        1433, "tcp"};
        out->push_back(Record(agent, OpType::kAccept, t, sqlservr, conn, 0,
                              rng));
        out->push_back(Record(agent, OpType::kWrite, t + 5 * kMillisecond,
                              sqlservr, conn, 500 + rng->Uniform(100000),
                              rng));
        break;
      }
      case 2: {  // scheduled maintenance
        out->push_back(
            Record(agent, OpType::kStart, t, agentproc, sqlservr, 0, rng));
        break;
      }
      default: {  // nightly backup
        FileRef bak{agent, "C:\\SQLBackup\\nightly" +
                               std::to_string(rng->Uniform(7)) + ".bak"};
        out->push_back(Record(agent, OpType::kWrite, t, sqlservr, bak,
                              (1 << 20) + rng->Uniform(1 << 22), rng));
        break;
      }
    }
  }
}

void GenerateDomainController(const Enterprise& enterprise, const Host& host,
                              Timestamp start, Timestamp end, size_t count,
                              Rng* rng, std::vector<EventRecord>* out) {
  const AgentId agent = host.agent_id;
  ProcessRef lsass = MakeProc(agent, 600, "C:\\Windows\\System32\\lsass.exe",
                              "system");
  ProcessRef svchost = MakeProc(agent, 601,
                                "C:\\Windows\\System32\\svchost.exe",
                                "system");
  Duration span = end - start;
  for (size_t i = 0; i < count; ++i) {
    Timestamp t = start + rng->Uniform(static_cast<uint64_t>(span));
    if (rng->Chance(0.6)) {
      const Host& client =
          enterprise.hosts[4 + rng->Uniform(enterprise.hosts.size() - 4)];
      NetworkRef conn{agent, client.ip, host.ip,
                      static_cast<uint16_t>(50000 + rng->Uniform(5000)), 88,
                      "tcp"};
      out->push_back(Record(agent, OpType::kAccept, t, lsass, conn, 0, rng));
    } else if (rng->Chance(0.5)) {
      FileRef ntds{agent, "C:\\Windows\\NTDS\\ntds.dit"};
      out->push_back(Record(agent, OpType::kRead, t, lsass, ntds,
                            512 + rng->Uniform(8192), rng));
    } else {
      FileRef log{agent, "C:\\Windows\\System32\\winevt\\security.evtx"};
      out->push_back(Record(agent, OpType::kWrite, t, svchost, log,
                            256 + rng->Uniform(1024), rng));
    }
  }
}

void GenerateRouter(const Host& host, Timestamp start, Timestamp end,
                    size_t count, Rng* rng, std::vector<EventRecord>* out) {
  const AgentId agent = host.agent_id;
  ProcessRef routerd = MakeProc(agent, 500, "/usr/sbin/routerd", "root");
  Duration span = end - start;
  for (size_t i = 0; i < count; ++i) {
    Timestamp t = start + rng->Uniform(static_cast<uint64_t>(span));
    FileRef log{agent, "/var/log/router/flow.log"};
    out->push_back(Record(agent, OpType::kWrite, t, routerd, log,
                          64 + rng->Uniform(256), rng));
  }
}

}  // namespace

void GenerateBackground(const Enterprise& enterprise, Timestamp start,
                        Timestamp end, const BackgroundOptions& options,
                        std::vector<EventRecord>* out) {
  double hours = static_cast<double>(end - start) / kHour;
  size_t per_host =
      static_cast<size_t>(options.events_per_host_per_hour * hours);
  Rng root(options.seed);
  for (const Host& host : enterprise.hosts) {
    Rng rng = root.Fork(host.agent_id);
    switch (host.role) {
      case HostRole::kWindowsClient:
        GenerateClientHost(host, start, end, per_host, &rng, out);
        break;
      case HostRole::kLinuxWebServer:
        GenerateWebServer(enterprise, host, start, end, per_host, &rng, out);
        break;
      case HostRole::kDatabaseServer:
        GenerateDatabaseServer(enterprise, host, start, end, per_host, &rng,
                               out);
        break;
      case HostRole::kDomainController:
        GenerateDomainController(enterprise, host, start, end, per_host,
                                 &rng, out);
        break;
      case HostRole::kRouter:
        GenerateRouter(host, start, end, per_host / 4, &rng, out);
        break;
    }
  }
  // Ingest in global time order (agents stream roughly in order).
  std::sort(out->begin(), out->end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.start_ts < b.start_ts;
            });
}

}  // namespace aiql
