// A multi-stage exfiltration chain built for provenance tracking.
//
// Unlike the demo APT (attack_demo.h), whose stages branch and share
// infrastructure processes, this scenario plants one clean causal chain
// from an external attacker to a data exfiltration connection:
//
//   conn_in  -> sshd -> bash -> wsmprovhost (cross-host) -> stage2.ps1
//            -> stage_loader -> sysupd.exe <- customer.db
//            -> conn_out (exfiltration to the attacker)
//
// plus deliberate decoys that a correct backward track from conn_out must
// NOT pick up: events that happen after the anchor, an in-flow into an
// already-consumed chain file that postdates its use (time-monotonic
// pruning must reject it), and out-flows that never feed the chain.
// Every chain entity carries a globally unique name so tests and the bench
// harness can assert exact recovery.

#ifndef AIQL_SIMULATOR_ATTACK_EXFIL_H_
#define AIQL_SIMULATOR_ATTACK_EXFIL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "simulator/topology.h"
#include "storage/data_model.h"

namespace aiql {

/// Ground truth of the planted chain.
struct ExfilChainTruth {
  Timestamp start = 0;   ///< first chain event (conn_in accept)
  Timestamp anchor = 0;  ///< just after the final exfil write (POI anchor)
  std::string attacker_ip;
  AgentId web_server = 0;
  AgentId database_server = 0;

  /// Display name (EntityStore::EntityName) of the exfiltration connection
  /// — the point-of-interest a backward track starts from.
  std::string poi_name;
  /// LIKE pattern that resolves the POI uniquely (the attacker's dst ip).
  std::string poi_like;

  /// Every chain entity as (type, display name), POI first, in discovery
  /// order of an exact backward track.
  std::vector<std::pair<EntityType, std::string>> chain;
  /// Number of planted chain events (the edges a full track recovers).
  size_t chain_events = 0;
  /// Hops a backward track needs to recover the whole chain.
  int chain_depth = 0;
};

/// Injects the chain (plus decoys) into `out` starting at `start`; the
/// chain unfolds over ~4 minutes.
ExfilChainTruth InjectExfilChain(const Enterprise& enterprise,
                                 Timestamp start,
                                 std::vector<EventRecord>* out);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_ATTACK_EXFIL_H_
