// Benign background activity generator.
//
// Emits per-role system activity — process trees, file I/O, network
// sessions — at a configurable rate so attack traces are needles in a
// realistic haystack. Generation is fully deterministic under a seed
// (independent per-host RNG streams).

#ifndef AIQL_SIMULATOR_BACKGROUND_H_
#define AIQL_SIMULATOR_BACKGROUND_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time_utils.h"
#include "simulator/topology.h"
#include "storage/data_model.h"

namespace aiql {

/// Background workload parameters.
struct BackgroundOptions {
  /// Average benign events per host per hour.
  double events_per_host_per_hour = 2000;
  uint64_t seed = 0x5EED;
};

/// Generates background records for all hosts across [start, end) and
/// appends them to `out`. Records are roughly time-ordered per host.
void GenerateBackground(const Enterprise& enterprise, Timestamp start,
                        Timestamp end, const BackgroundOptions& options,
                        std::vector<EventRecord>* out);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_BACKGROUND_H_
