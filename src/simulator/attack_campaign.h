// A multi-host campaign: one causal chain spread across four agents.
//
// Built for cross-shard provenance tracking — under any agent-range
// sharding of the fleet the chain crosses shard boundaries several times,
// so recovering it exercises frontier exchange between shards:
//
//   conn_in -> httpd -> sh            (web server, agent 1)
//           -> beacon.exe             (client 0, agent 5; stitched connect)
//           -> dropper.bat -> stager  (client 0)
//           -> svchelper.exe          (domain controller, agent 3)
//           -> dbtool.exe <- customers.dat   (database server, agent 4)
//           -> conn_out               (exfiltration to the attacker)
//
// Decoys a correct backward track from conn_out must NOT pick up:
//   * a write into dropper.bat after the stager consumed it (classic
//     time-monotonicity decoy, within one host);
//   * an inbound connect into beacon.exe from the domain controller that
//     postdates beacon's time bound — the bound was established by an event
//     on beacon's own host, so pruning this decoy requires the bound to be
//     exchanged correctly across shards (the decoy event and the
//     bound-setting event live on different shards under 2/4/8-way
//     sharding);
//   * an in-flow into conn_out after the anchor;
//   * an out-flow of customers.dat that never feeds the chain.

#ifndef AIQL_SIMULATOR_ATTACK_CAMPAIGN_H_
#define AIQL_SIMULATOR_ATTACK_CAMPAIGN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "simulator/topology.h"
#include "storage/data_model.h"

namespace aiql {

/// Ground truth of the planted multi-host chain.
struct CampaignChainTruth {
  Timestamp start = 0;   ///< first chain event (conn_in accept)
  Timestamp anchor = 0;  ///< just after the final exfil write (POI anchor)
  std::string attacker_ip;
  /// Hosts the chain touches, in information-flow order.
  std::vector<AgentId> agents;

  /// Display name of the exfiltration connection (the backward POI).
  std::string poi_name;
  /// LIKE pattern resolving the POI uniquely (the attacker's dst ip).
  std::string poi_like;

  /// Every chain entity as (type, display name), POI first, in the
  /// discovery order of an exact backward track.
  std::vector<std::pair<EntityType, std::string>> chain;
  /// Hop depth at which each chain entity is discovered (parallel to
  /// `chain`).
  std::vector<int> chain_depths;
  /// Time bound each chain entity carries when discovered (parallel to
  /// `chain`): the anchor for the POI, the discovering event's start
  /// otherwise.
  std::vector<Timestamp> chain_bounds;
  /// Display names of decoy-only entities — a correct track contains none.
  std::vector<std::string> decoy_names;
  /// Number of planted chain events (the edges a full track recovers).
  size_t chain_events = 0;
  /// Depth of the deepest chain entity in a backward track.
  int chain_depth = 0;
};

/// Injects the campaign (plus decoys) into `out` starting at `start`; the
/// chain unfolds over ~4 minutes. Requires the standard enterprise layout
/// (web server, domain controller, database server, >= 1 client).
CampaignChainTruth InjectCampaignChain(const Enterprise& enterprise,
                                       Timestamp start,
                                       std::vector<EventRecord>* out);

}  // namespace aiql

#endif  // AIQL_SIMULATOR_ATTACK_CAMPAIGN_H_
