#include "simulator/attack_demo.h"

namespace aiql {

namespace {

EventRecord Make(AgentId agent, OpType op, Timestamp t, Duration len,
                 ProcessRef subject, ObjectRef object, uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

}  // namespace

DemoAttackTruth InjectDemoAttack(const Enterprise& enterprise,
                                 Timestamp start,
                                 std::vector<EventRecord>* out) {
  const Host& web = enterprise.web_server();
  const Host& client = enterprise.client0();
  const Host& dc = enterprise.domain_controller();
  const Host& db = enterprise.database_server();
  const std::string& attacker = enterprise.attacker_ip;

  DemoAttackTruth truth;
  truth.start = start;
  truth.attacker_ip = attacker;
  truth.web_server = web.agent_id;
  truth.client = client.agent_id;
  truth.domain_controller = dc.agent_id;
  truth.database_server = db.agent_id;

  Timestamp t = start;
  auto emit = [&](EventRecord record) { out->push_back(std::move(record)); };

  // ---- a1: initial compromise of the IRC server ---------------------------
  ProcessRef ircd{web.agent_id, 704, "/opt/unrealircd/unrealircd", "ircd"};
  ProcessRef sh{web.agent_id, 7100, "/bin/sh", "ircd"};
  ProcessRef telnetd{web.agent_id, 7101, "/usr/sbin/telnetd", "ircd"};
  NetworkRef exploit_conn{web.agent_id, attacker, web.ip, 31337, 6667,
                          "tcp"};
  NetworkRef telnet_back{web.agent_id, web.ip, attacker, 40001, 4444, "tcp"};

  emit(Make(web.agent_id, OpType::kAccept, t, kSecond, ircd, exploit_conn));
  emit(Make(web.agent_id, OpType::kStart, t + 2 * kSecond, kSecond, ircd,
            sh));
  emit(Make(web.agent_id, OpType::kStart, t + 4 * kSecond, kSecond, sh,
            telnetd));
  emit(Make(web.agent_id, OpType::kWrite, t + 6 * kSecond, kSecond, telnetd,
            telnet_back, 2048));

  // ---- a2: malware upload + infection of a client --------------------------
  t += 5 * kMinute;
  FileRef dropper{web.agent_id, "/tmp/.X11/malnet.bin"};
  ProcessRef malware{web.agent_id, 7102, "/tmp/.X11/malnet.bin", "ircd"};
  emit(Make(web.agent_id, OpType::kWrite, t, 3 * kSecond, telnetd, dropper,
            524288));
  emit(Make(web.agent_id, OpType::kExecute, t + 10 * kSecond, kSecond, sh,
            dropper));
  emit(Make(web.agent_id, OpType::kStart, t + 11 * kSecond, kSecond, sh,
            malware));
  // Cross-host session: the malware reaches a client service.
  ProcessRef client_svc{client.agent_id, 1100 + client.agent_id * 40,
                        "C:\\Windows\\System32\\svchost.exe", "system"};
  emit(Make(web.agent_id, OpType::kConnect, t + 30 * kSecond, kSecond,
            malware, client_svc));
  FileRef client_dropper{client.agent_id, "C:\\Windows\\Temp\\malnet.exe"};
  ProcessRef client_malware{client.agent_id, 4100,
                            "C:\\Windows\\Temp\\malnet.exe", "system"};
  emit(Make(client.agent_id, OpType::kWrite, t + 45 * kSecond, 2 * kSecond,
            client_svc, client_dropper, 524288));
  emit(Make(client.agent_id, OpType::kExecute, t + 60 * kSecond, kSecond,
            client_svc, client_dropper));
  emit(Make(client.agent_id, OpType::kStart, t + 61 * kSecond, kSecond,
            client_svc, client_malware));

  // ---- a3: privilege escalation + memory dumping ---------------------------
  t += 10 * kMinute;
  ProcessRef cve{client.agent_id, 4101, "C:\\Windows\\Temp\\cve-2015-1701.exe",
                 "system"};
  ProcessRef mimikatz{client.agent_id, 4102,
                      "C:\\Windows\\Temp\\mimikatz.exe", "system"};
  ProcessRef kiwi{client.agent_id, 4103, "C:\\Windows\\Temp\\kiwi.exe",
                  "system"};
  FileRef lsass_mem{client.agent_id, "C:\\Windows\\Temp\\lsass.dmp"};
  FileRef creds{client.agent_id, "C:\\Windows\\Temp\\creds.txt"};
  emit(Make(client.agent_id, OpType::kStart, t, kSecond, client_malware,
            cve));
  emit(Make(client.agent_id, OpType::kStart, t + 20 * kSecond, kSecond, cve,
            mimikatz));
  emit(Make(client.agent_id, OpType::kWrite, t + 40 * kSecond, 5 * kSecond,
            mimikatz, lsass_mem, 41943040));
  emit(Make(client.agent_id, OpType::kStart, t + 50 * kSecond, kSecond, cve,
            kiwi));
  emit(Make(client.agent_id, OpType::kRead, t + 60 * kSecond, 2 * kSecond,
            kiwi, lsass_mem, 41943040));
  emit(Make(client.agent_id, OpType::kWrite, t + 70 * kSecond, kSecond, kiwi,
            creds, 4096));

  // ---- a4: domain controller penetration + password dumping ----------------
  t += 15 * kMinute;
  ProcessRef dc_svc{dc.agent_id, 601, "C:\\Windows\\System32\\svchost.exe",
                    "system"};
  emit(Make(client.agent_id, OpType::kConnect, t, kSecond, client_malware,
            dc_svc));
  ProcessRef pwdump{dc.agent_id, 5100, "C:\\Windows\\Temp\\PwDump7.exe",
                    "system"};
  ProcessRef wce{dc.agent_id, 5101, "C:\\Windows\\Temp\\WCE.exe", "system"};
  FileRef ntds{dc.agent_id, "C:\\Windows\\NTDS\\ntds.dit"};
  FileRef pwdump_out{dc.agent_id, "C:\\Windows\\Temp\\alluser.pw"};
  NetworkRef dc_exfil{dc.agent_id, dc.ip, attacker, 40100, 4444, "tcp"};
  emit(Make(dc.agent_id, OpType::kStart, t + 30 * kSecond, kSecond, dc_svc,
            pwdump));
  emit(Make(dc.agent_id, OpType::kRead, t + 40 * kSecond, 3 * kSecond,
            pwdump, ntds, 8388608));
  emit(Make(dc.agent_id, OpType::kWrite, t + 50 * kSecond, kSecond, pwdump,
            pwdump_out, 65536));
  emit(Make(dc.agent_id, OpType::kStart, t + 70 * kSecond, kSecond, dc_svc,
            wce));
  emit(Make(dc.agent_id, OpType::kRead, t + 80 * kSecond, kSecond, wce,
            pwdump_out, 65536));
  emit(Make(dc.agent_id, OpType::kWrite, t + 90 * kSecond, 2 * kSecond, wce,
            dc_exfil, 65536));

  // ---- a5: data exfiltration from the database server -----------------------
  t += 20 * kMinute;
  ProcessRef db_svc{db.agent_id, 902, "C:\\Windows\\System32\\svchost.exe",
                    "system"};
  ProcessRef cmd{db.agent_id, 5200, "C:\\Windows\\System32\\cmd.exe",
                 "system"};
  ProcessRef osql{db.agent_id, 5201, "C:\\SQL\\Tools\\osql.exe", "system"};
  ProcessRef sqlservr{db.agent_id, 900, "C:\\SQL\\MSSQL\\Binn\\sqlservr.exe",
                      "system"};
  ProcessRef powershell{db.agent_id, 5202,
                        "C:\\Windows\\System32\\powershell.exe", "system"};
  FileRef dbbak{db.agent_id, "C:\\SQLBackup\\db.bak"};
  NetworkRef exfil{db.agent_id, db.ip, attacker, 40200, 443, "tcp"};

  emit(Make(client.agent_id, OpType::kConnect, t, kSecond, client_malware,
            db_svc));
  emit(Make(db.agent_id, OpType::kStart, t + 30 * kSecond, kSecond, db_svc,
            cmd));
  emit(Make(db.agent_id, OpType::kStart, t + 60 * kSecond, kSecond, cmd,
            osql));
  emit(Make(db.agent_id, OpType::kWrite, t + 2 * kMinute, 30 * kSecond,
            sqlservr, dbbak, 2147483648ULL));
  emit(Make(db.agent_id, OpType::kStart, t + 3 * kMinute, kSecond, cmd,
            powershell));
  // powershell connects to the attacker before the data transfer (§3).
  emit(Make(db.agent_id, OpType::kConnect, t + 4 * kMinute, kSecond,
            powershell, exfil));
  truth.exfil_start = t + 5 * kMinute;
  // Repeated large reads + sends: the anomaly query's frequency spike.
  for (int burst = 0; burst < 12; ++burst) {
    Timestamp bt = truth.exfil_start + burst * 20 * kSecond;
    emit(Make(db.agent_id, OpType::kRead, bt, 5 * kSecond, powershell, dbbak,
              134217728));
    emit(Make(db.agent_id, OpType::kWrite, bt + 6 * kSecond, 10 * kSecond,
              powershell, exfil, 134217728));
  }
  return truth;
}

}  // namespace aiql
