#include "query/metrics.h"

#include "common/string_utils.h"

namespace aiql {

namespace {

size_t CountHavingComparisons(const HavingExpr* node) {
  if (node == nullptr) return 0;
  size_t count = node->kind == HavingExpr::Kind::kCompare ? 1 : 0;
  return count + CountHavingComparisons(node->lhs.get()) +
         CountHavingComparisons(node->rhs.get());
}

size_t CountGlobalConstraints(const GlobalConstraints& globals) {
  size_t count = globals.attrs.size();
  if (globals.time_window.has_value()) count += 1;
  return count;
}

size_t CountEntityConstraints(const EntityDeclAst& decl) {
  return decl.constraints.size();
}

}  // namespace

QueryTextMetrics ComputeAiqlMetrics(const ParsedQuery& query) {
  QueryTextMetrics metrics;
  metrics.words = CountWords(query.text);
  metrics.chars = CountNonSpaceChars(query.text);

  if (query.dependency != nullptr) {
    const DependencyQueryAst& dep = *query.dependency;
    metrics.constraints += CountGlobalConstraints(dep.globals);
    metrics.constraints += CountEntityConstraints(dep.start);
    for (const DependencyEdgeAst& edge : dep.edges) {
      metrics.constraints += 1;  // the edge itself (op + direction)
      metrics.constraints += CountEntityConstraints(edge.target);
    }
    return metrics;
  }

  const MultieventQueryAst& ast = *query.multievent;
  metrics.constraints += CountGlobalConstraints(ast.globals);
  if (ast.window.has_value()) metrics.constraints += 1;
  for (const EventPatternAst& pattern : ast.patterns) {
    metrics.constraints += CountEntityConstraints(pattern.subject);
    metrics.constraints += CountEntityConstraints(pattern.object);
  }
  metrics.constraints += ast.temporal_rels.size();
  metrics.constraints += ast.attr_rels.size();
  metrics.constraints += CountHavingComparisons(ast.having.get());
  return metrics;
}

}  // namespace aiql
