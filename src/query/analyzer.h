// Semantic analysis for parsed AIQL queries.
//
// The analyzer validates a MultieventQueryAst (dependency queries are first
// rewritten to multievent form by the engine) and produces the binding
// tables the executor consumes: event-variable indexes, shared entity
// variables (the implicit attribute relationships of §2.2.1), the resolved
// time window, and the spatial (agent) filter.

#ifndef AIQL_QUERY_ANALYZER_H_
#define AIQL_QUERY_ANALYZER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/attributes.h"

namespace aiql {

/// One occurrence of an entity variable inside a pattern.
struct VarOccurrence {
  int pattern = 0;
  bool is_subject = true;
};

/// The validated, bound form of a multievent (or anomaly) query.
struct AnalyzedQuery {
  const MultieventQueryAst* ast = nullptr;  ///< borrowed; caller keeps alive
  QueryKind kind = QueryKind::kMultievent;

  /// Event variable name of each pattern (auto-assigned when omitted).
  std::vector<std::string> event_vars;
  /// Event variable name -> pattern index.
  std::unordered_map<std::string, int> event_index;
  /// Entity variable -> all its occurrences (>=2 occurrences means the
  /// patterns join on that entity — an implicit attribute relationship).
  std::unordered_map<std::string, std::vector<VarOccurrence>>
      entity_occurrences;
  /// Entity variable -> its (consistent) entity type.
  std::unordered_map<std::string, EntityType> entity_types;

  /// Resolved global time window (whole time line when unconstrained).
  TimeRange time_window{INT64_MIN, INT64_MAX};
  /// Global agent filter (nullopt = all agents).
  std::optional<std::vector<AgentId>> agent_filter;
};

/// Validates `ast` and builds the binding tables. `kind` is the parser's
/// classification (multievent or anomaly).
Result<AnalyzedQuery> AnalyzeMultievent(const MultieventQueryAst& ast,
                                        QueryKind kind);

/// Validates a dependency query's declarations (entity types, ops,
/// constraints). Path rewriting itself lives in the engine.
Status ValidateDependency(const DependencyQueryAst& ast);

}  // namespace aiql

#endif  // AIQL_QUERY_ANALYZER_H_
