#include "query/parser.h"

#include <unordered_set>

#include "common/string_utils.h"
#include "query/lexer.h"

namespace aiql {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kLike:
      return "like";
    case CmpOp::kIn:
      return "in";
  }
  return "?";
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

const char* QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMultievent:
      return "multievent";
    case QueryKind::kDependency:
      return "dependency";
    case QueryKind::kAnomaly:
      return "anomaly";
  }
  return "?";
}

std::string ValueLiteral::ToString() const {
  switch (kind) {
    case Kind::kString:
      return "\"" + str + "\"";
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kFloat: {
      std::string s = std::to_string(f);
      return s;
    }
  }
  return "?";
}

namespace {

bool IsOpKeyword(const std::string& text) {
  return ParseOpType(text).ok();
}

bool IsEntityKeyword(const std::string& text) {
  std::string lowered = ToLower(text);
  return lowered == "proc" || lowered == "process" || lowered == "file" ||
         lowered == "ip" || lowered == "conn" || lowered == "connection";
}

bool IsAggKeyword(const std::string& text) {
  std::string lowered = ToLower(text);
  return lowered == "count" || lowered == "sum" || lowered == "avg" ||
         lowered == "min" || lowered == "max";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ParsedQuery> Run() {
    AIQL_ASSIGN_OR_RETURN(tokens_, LexQuery(text_));

    GlobalConstraints globals;
    std::optional<WindowSpec> window;
    AIQL_RETURN_IF_ERROR(ParseGlobals(&globals, &window));

    ParsedQuery query;
    query.text = std::string(text_);

    if (PeekKeyword("forward") || PeekKeyword("backward")) {
      AIQL_ASSIGN_OR_RETURN(auto dep, ParseDependencyBody());
      if (window.has_value()) {
        return ErrorAt(Peek(),
                       "window specifications are not valid in dependency "
                       "queries");
      }
      dep->globals = std::move(globals);
      query.kind = QueryKind::kDependency;
      query.dependency = std::move(dep);
    } else {
      AIQL_ASSIGN_OR_RETURN(auto multi, ParseMultieventBody());
      multi->globals = std::move(globals);
      multi->window = window;
      query.kind =
          multi->is_anomaly() ? QueryKind::kAnomaly : QueryKind::kMultievent;
      query.multievent = std::move(multi);
    }
    AIQL_RETURN_IF_ERROR(ExpectEnd());
    return query;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // kEnd sentinel
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status ErrorAt(const Token& token, std::string msg) const {
    std::string got = token.kind == TokenKind::kIdent ||
                              token.kind == TokenKind::kString ||
                              token.kind == TokenKind::kNumber
                          ? "'" + token.text + "'"
                          : TokenKindToString(token.kind);
    return Status::ParseError("line " + std::to_string(token.line) +
                              ", col " + std::to_string(token.column) + ": " +
                              std::move(msg) + " (got " + got + ")");
  }

  Result<Token> ExpectToken(TokenKind kind, std::string_view what) {
    if (!Check(kind)) {
      return ErrorAt(Peek(), "expected " + std::string(what));
    }
    return Advance();
  }

  Result<Token> ExpectIdent(std::string_view what) {
    return ExpectToken(TokenKind::kIdent, what);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return ErrorAt(Peek(), "expected '" + std::string(kw) + "'");
    }
    return Status::OK();
  }

  Status ExpectEnd() {
    if (!Check(TokenKind::kEnd)) {
      return ErrorAt(Peek(), "unexpected trailing input");
    }
    return Status::OK();
  }

  // --- globals -------------------------------------------------------------

  Status ParseGlobals(GlobalConstraints* globals,
                      std::optional<WindowSpec>* window) {
    while (true) {
      if (Check(TokenKind::kLParen)) {
        AIQL_RETURN_IF_ERROR(ParseTimeGlobal(globals));
        continue;
      }
      if (PeekKeyword("window") && Peek(1).kind == TokenKind::kEq) {
        AIQL_RETURN_IF_ERROR(ParseWindowSpec(window));
        continue;
      }
      // `IDENT = value` is a global attribute constraint, but only when the
      // IDENT is not the start of an event pattern / dependency body.
      if (Check(TokenKind::kIdent) && !IsEntityKeyword(Peek().text) &&
          !PeekKeyword("forward") && !PeekKeyword("backward") &&
          Peek(1).kind == TokenKind::kEq) {
        Token name = Advance();
        Advance();  // '='
        AIQL_ASSIGN_OR_RETURN(ValueLiteral value, ParseValue());
        AttrConstraint constraint;
        constraint.attr = ToLower(name.text);
        constraint.op = CmpOp::kEq;
        constraint.values.push_back(std::move(value));
        constraint.line = name.line;
        constraint.column = name.column;
        globals->attrs.push_back(std::move(constraint));
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseTimeGlobal(GlobalConstraints* globals) {
    Advance();  // '('
    TimeRange range;
    if (MatchKeyword("at")) {
      AIQL_ASSIGN_OR_RETURN(Token point,
                            ExpectToken(TokenKind::kString, "a time string"));
      auto parsed = ParseTimePoint(point.text);
      if (!parsed.ok()) return ErrorAt(point, parsed.status().message());
      range = *parsed;
    } else if (MatchKeyword("from")) {
      AIQL_ASSIGN_OR_RETURN(Token from,
                            ExpectToken(TokenKind::kString, "a time string"));
      AIQL_RETURN_IF_ERROR(ExpectKeyword("to"));
      AIQL_ASSIGN_OR_RETURN(Token to,
                            ExpectToken(TokenKind::kString, "a time string"));
      auto from_parsed = ParseTimePoint(from.text);
      if (!from_parsed.ok()) return ErrorAt(from, from_parsed.status().message());
      auto to_parsed = ParseTimePoint(to.text);
      if (!to_parsed.ok()) return ErrorAt(to, to_parsed.status().message());
      range = TimeRange{from_parsed->start, to_parsed->end};
      if (range.empty()) {
        return ErrorAt(from, "time window is empty ('from' not before 'to')");
      }
    } else {
      return ErrorAt(Peek(), "expected 'at' or 'from' in time window");
    }
    AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'").status());
    if (globals->time_window.has_value()) {
      range = globals->time_window->Intersect(range);
    }
    globals->time_window = range;
    return Status::OK();
  }

  Status ParseWindowSpec(std::optional<WindowSpec>* window) {
    Advance();  // 'window'
    Advance();  // '='
    WindowSpec spec;
    AIQL_ASSIGN_OR_RETURN(spec.length, ParseDurationTokens());
    AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kComma, "','").status());
    AIQL_RETURN_IF_ERROR(ExpectKeyword("step"));
    AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kEq, "'='").status());
    AIQL_ASSIGN_OR_RETURN(spec.step, ParseDurationTokens());
    if (spec.length <= 0 || spec.step <= 0) {
      return ErrorAt(Peek(), "window and step must be positive");
    }
    *window = spec;
    return Status::OK();
  }

  // `NUMBER unit?` or a quoted duration string.
  Result<Duration> ParseDurationTokens() {
    if (Check(TokenKind::kString)) {
      Token s = Advance();
      auto parsed = ParseDuration(s.text);
      if (!parsed.ok()) return ErrorAt(s, parsed.status().message());
      return *parsed;
    }
    AIQL_ASSIGN_OR_RETURN(Token num,
                          ExpectToken(TokenKind::kNumber, "a duration"));
    std::string spec = num.text;
    if (Check(TokenKind::kIdent)) {
      spec += " " + Advance().text;
    }
    auto parsed = ParseDuration(spec);
    if (!parsed.ok()) return ErrorAt(num, parsed.status().message());
    return *parsed;
  }

  // --- values & constraints ------------------------------------------------

  Result<ValueLiteral> ParseValue() {
    if (Check(TokenKind::kString)) {
      return ValueLiteral::String(Advance().text);
    }
    bool negative = Match(TokenKind::kMinus);
    if (Check(TokenKind::kNumber)) {
      Token num = Advance();
      if (num.number_is_integer) {
        int64_t v = static_cast<int64_t>(num.number);
        return ValueLiteral::Int(negative ? -v : v);
      }
      return ValueLiteral::Float(negative ? -num.number : num.number);
    }
    return ErrorAt(Peek(), "expected a string or numeric value");
  }

  Result<CmpOp> ParseCmpOp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Advance();
        return CmpOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CmpOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CmpOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CmpOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CmpOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CmpOp::kGe;
      case TokenKind::kIdent:
        if (MatchKeyword("like")) return CmpOp::kLike;
        if (MatchKeyword("in")) return CmpOp::kIn;
        break;
      default:
        break;
    }
    return ErrorAt(Peek(), "expected a comparison operator");
  }

  Result<AttrConstraint> ParseConstraint() {
    AttrConstraint constraint;
    constraint.line = Peek().line;
    constraint.column = Peek().column;
    if (Check(TokenKind::kString)) {
      // Bare string: default attribute matched with LIKE.
      constraint.op = CmpOp::kLike;
      constraint.values.push_back(ValueLiteral::String(Advance().text));
      return constraint;
    }
    AIQL_ASSIGN_OR_RETURN(Token attr, ExpectIdent("an attribute name"));
    constraint.attr = ToLower(attr.text);
    AIQL_ASSIGN_OR_RETURN(constraint.op, ParseCmpOp());
    if (constraint.op == CmpOp::kIn) {
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'('").status());
      do {
        AIQL_ASSIGN_OR_RETURN(ValueLiteral v, ParseValue());
        constraint.values.push_back(std::move(v));
      } while (Match(TokenKind::kComma));
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'").status());
    } else {
      AIQL_ASSIGN_OR_RETURN(ValueLiteral v, ParseValue());
      constraint.values.push_back(std::move(v));
    }
    return constraint;
  }

  Result<EntityDeclAst> ParseEntityDecl() {
    AIQL_ASSIGN_OR_RETURN(
        Token type_token,
        ExpectIdent("an entity type ('proc', 'file', or 'ip')"));
    EntityDeclAst decl;
    decl.line = type_token.line;
    decl.column = type_token.column;
    std::string lowered = ToLower(type_token.text);
    if (lowered == "proc" || lowered == "process") {
      decl.type = EntityType::kProcess;
    } else if (lowered == "file") {
      decl.type = EntityType::kFile;
    } else if (lowered == "ip" || lowered == "conn" ||
               lowered == "connection") {
      decl.type = EntityType::kNetwork;
    } else {
      return ErrorAt(type_token, "unknown entity type '" + type_token.text +
                                     "' (expected proc, file, or ip)");
    }
    // Optional variable: an identifier that is not an operation keyword.
    if (Check(TokenKind::kIdent) && !IsOpKeyword(Peek().text) &&
        !PeekKeyword("as") && !PeekKeyword("return") && !PeekKeyword("with")) {
      decl.var = Advance().text;
    }
    if (Match(TokenKind::kLBracket)) {
      if (!Check(TokenKind::kRBracket)) {
        do {
          AIQL_ASSIGN_OR_RETURN(AttrConstraint c, ParseConstraint());
          decl.constraints.push_back(std::move(c));
        } while (Match(TokenKind::kComma));
      }
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRBracket, "']'").status());
    }
    return decl;
  }

  Result<std::vector<OpType>> ParseOps() {
    std::vector<OpType> ops;
    do {
      AIQL_ASSIGN_OR_RETURN(Token op_token, ExpectIdent("an operation"));
      auto op = ParseOpType(op_token.text);
      if (!op.ok()) return ErrorAt(op_token, op.status().message());
      ops.push_back(*op);
    } while (Match(TokenKind::kOrOr));
    return ops;
  }

  // --- multievent body -----------------------------------------------------

  Result<std::unique_ptr<MultieventQueryAst>> ParseMultieventBody() {
    auto query = std::make_unique<MultieventQueryAst>();
    // Event patterns until 'with' / 'return'.
    while (!PeekKeyword("with") && !PeekKeyword("return")) {
      if (Check(TokenKind::kEnd)) {
        return ErrorAt(Peek(), "expected an event pattern or 'return'");
      }
      AIQL_ASSIGN_OR_RETURN(EventPatternAst pattern, ParseEventPattern());
      query->patterns.push_back(std::move(pattern));
    }
    if (query->patterns.empty()) {
      return ErrorAt(Peek(), "query declares no event patterns");
    }
    if (MatchKeyword("with")) {
      AIQL_RETURN_IF_ERROR(ParseWithClause(query.get()));
    }
    AIQL_RETURN_IF_ERROR(ParseReturnClause(&query->distinct,
                                           &query->return_items));
    if (PeekKeyword("group")) {
      Advance();
      AIQL_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        AIQL_ASSIGN_OR_RETURN(AttrRefAst ref, ParseAttrRef());
        query->group_by.push_back(std::move(ref));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("having")) {
      AIQL_ASSIGN_OR_RETURN(query->having, ParseHavingOr());
    }
    AIQL_RETURN_IF_ERROR(ParseOptionalOrderBy(&query->order_by));
    AIQL_RETURN_IF_ERROR(ParseOptionalLimit(&query->limit));
    return query;
  }

  Status ParseOptionalOrderBy(std::vector<OrderItemAst>* order_by) {
    if (!PeekKeyword("order") && !PeekKeyword("sort")) return Status::OK();
    Advance();
    AIQL_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderItemAst item;
      AIQL_ASSIGN_OR_RETURN(item.ref, ParseAttrRef());
      if (MatchKeyword("desc")) {
        item.desc = true;
      } else {
        MatchKeyword("asc");
      }
      order_by->push_back(std::move(item));
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  Result<EventPatternAst> ParseEventPattern() {
    EventPatternAst pattern;
    pattern.line = Peek().line;
    pattern.column = Peek().column;
    AIQL_ASSIGN_OR_RETURN(pattern.subject, ParseEntityDecl());
    AIQL_ASSIGN_OR_RETURN(pattern.ops, ParseOps());
    AIQL_ASSIGN_OR_RETURN(pattern.object, ParseEntityDecl());
    if (MatchKeyword("as")) {
      AIQL_ASSIGN_OR_RETURN(Token name, ExpectIdent("an event name"));
      pattern.event_var = name.text;
    }
    return pattern;
  }

  Status ParseWithClause(MultieventQueryAst* query) {
    do {
      // Temporal relation: IDENT before/after [dur] IDENT — recognizable by
      // the before/after keyword right after a bare identifier.
      if (Check(TokenKind::kIdent) &&
          (PeekKeyword("before", 1) || PeekKeyword("after", 1))) {
        TemporalRelAst rel;
        rel.line = Peek().line;
        rel.column = Peek().column;
        rel.left = Advance().text;
        rel.before = EqualsIgnoreCase(Advance().text, "before");
        if (Match(TokenKind::kLBracket)) {
          AIQL_ASSIGN_OR_RETURN(rel.within, ParseDurationTokens());
          AIQL_RETURN_IF_ERROR(
              ExpectToken(TokenKind::kRBracket, "']'").status());
        }
        AIQL_ASSIGN_OR_RETURN(Token right, ExpectIdent("an event name"));
        rel.right = right.text;
        query->temporal_rels.push_back(std::move(rel));
        continue;
      }
      // Attribute relation: attr_ref cmp attr_ref.
      AttrRelAst rel;
      AIQL_ASSIGN_OR_RETURN(rel.left, ParseAttrRef());
      AIQL_ASSIGN_OR_RETURN(rel.op, ParseCmpOp());
      AIQL_ASSIGN_OR_RETURN(rel.right, ParseAttrRef());
      query->attr_rels.push_back(std::move(rel));
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  Result<AttrRefAst> ParseAttrRef() {
    AIQL_ASSIGN_OR_RETURN(Token var, ExpectIdent("a variable reference"));
    AttrRefAst ref;
    ref.var = var.text;
    ref.line = var.line;
    ref.column = var.column;
    if (Match(TokenKind::kDot)) {
      AIQL_ASSIGN_OR_RETURN(Token attr, ExpectIdent("an attribute name"));
      ref.attr = ToLower(attr.text);
    }
    return ref;
  }

  Status ParseReturnClause(bool* distinct,
                           std::vector<ReturnItemAst>* items) {
    AIQL_RETURN_IF_ERROR(ExpectKeyword("return"));
    *distinct = MatchKeyword("distinct");
    do {
      ReturnItemAst item;
      if (Check(TokenKind::kIdent) && IsAggKeyword(Peek().text) &&
          Peek(1).kind == TokenKind::kLParen) {
        AIQL_ASSIGN_OR_RETURN(AggCallAst agg, ParseAggCall());
        item.expr = std::move(agg);
      } else {
        AIQL_ASSIGN_OR_RETURN(AttrRefAst ref, ParseAttrRef());
        item.expr = std::move(ref);
      }
      if (MatchKeyword("as")) {
        AIQL_ASSIGN_OR_RETURN(Token alias, ExpectIdent("an alias"));
        item.alias = alias.text;
      }
      items->push_back(std::move(item));
    } while (Match(TokenKind::kComma));
    if (items->empty()) {
      return ErrorAt(Peek(), "return clause lists no items");
    }
    return Status::OK();
  }

  Result<AggCallAst> ParseAggCall() {
    Token func = Advance();
    AggCallAst agg;
    std::string lowered = ToLower(func.text);
    if (lowered == "count") {
      agg.func = AggFunc::kCount;
    } else if (lowered == "sum") {
      agg.func = AggFunc::kSum;
    } else if (lowered == "avg") {
      agg.func = AggFunc::kAvg;
    } else if (lowered == "min") {
      agg.func = AggFunc::kMin;
    } else {
      agg.func = AggFunc::kMax;
    }
    Advance();  // '('
    if (Match(TokenKind::kStar)) {
      agg.star = true;
    } else {
      AIQL_ASSIGN_OR_RETURN(agg.arg, ParseAttrRef());
    }
    AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'").status());
    return agg;
  }

  Status ParseOptionalLimit(std::optional<int64_t>* limit) {
    if (!MatchKeyword("limit")) return Status::OK();
    AIQL_ASSIGN_OR_RETURN(Token num,
                          ExpectToken(TokenKind::kNumber, "a limit count"));
    if (!num.number_is_integer || num.number < 1) {
      return ErrorAt(num, "limit must be a positive integer");
    }
    *limit = static_cast<int64_t>(num.number);
    return Status::OK();
  }

  // --- having expression ---------------------------------------------------

  Result<std::unique_ptr<HavingExpr>> ParseHavingOr() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseHavingAnd());
    while (PeekKeyword("or")) {
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseHavingAnd());
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingAnd() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseHavingNot());
    while (PeekKeyword("and")) {
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseHavingNot());
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingNot() {
    if (MatchKeyword("not")) {
      AIQL_ASSIGN_OR_RETURN(auto operand, ParseHavingNot());
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    return ParseHavingCompare();
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingCompare() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseHavingAdd());
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe: {
        AIQL_ASSIGN_OR_RETURN(CmpOp cmp, ParseCmpOp());
        AIQL_ASSIGN_OR_RETURN(auto rhs, ParseHavingAdd());
        auto node = std::make_unique<HavingExpr>();
        node->kind = HavingExpr::Kind::kCompare;
        node->cmp = cmp;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        return node;
      }
      default:
        return lhs;
    }
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingAdd() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseHavingMul());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      char op = Check(TokenKind::kPlus) ? '+' : '-';
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseHavingMul());
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kArith;
      node->arith_op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingMul() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseHavingUnary());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      char op = Check(TokenKind::kStar) ? '*' : '/';
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseHavingUnary());
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kArith;
      node->arith_op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingUnary() {
    if (Match(TokenKind::kMinus)) {
      AIQL_ASSIGN_OR_RETURN(auto operand, ParseHavingUnary());
      auto zero = std::make_unique<HavingExpr>();
      zero->kind = HavingExpr::Kind::kNumber;
      zero->number = 0;
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kArith;
      node->arith_op = '-';
      node->lhs = std::move(zero);
      node->rhs = std::move(operand);
      return node;
    }
    return ParseHavingPrimary();
  }

  Result<std::unique_ptr<HavingExpr>> ParseHavingPrimary() {
    if (Check(TokenKind::kNumber)) {
      Token num = Advance();
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kNumber;
      node->number = num.number;
      return node;
    }
    if (Check(TokenKind::kLParen)) {
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto inner, ParseHavingOr());
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'").status());
      return inner;
    }
    if (Check(TokenKind::kIdent)) {
      Token name = Advance();
      auto node = std::make_unique<HavingExpr>();
      node->kind = HavingExpr::Kind::kAggRef;
      node->agg_alias = name.text;
      node->history = 0;
      if (Match(TokenKind::kLBracket)) {
        AIQL_ASSIGN_OR_RETURN(
            Token idx, ExpectToken(TokenKind::kNumber, "a history index"));
        if (!idx.number_is_integer || idx.number < 0) {
          return ErrorAt(idx, "history index must be a non-negative integer");
        }
        node->history = static_cast<int>(idx.number);
        AIQL_RETURN_IF_ERROR(
            ExpectToken(TokenKind::kRBracket, "']'").status());
      }
      return node;
    }
    return ErrorAt(Peek(), "expected a number, aggregate reference, or '('");
  }

  // --- dependency body -----------------------------------------------------

  Result<std::unique_ptr<DependencyQueryAst>> ParseDependencyBody() {
    auto query = std::make_unique<DependencyQueryAst>();
    query->forward = EqualsIgnoreCase(Advance().text, "forward");
    AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kColon, "':'").status());
    AIQL_ASSIGN_OR_RETURN(query->start, ParseEntityDecl());
    while (Check(TokenKind::kArrowRight) || Check(TokenKind::kArrowLeft)) {
      DependencyEdgeAst edge;
      edge.line = Peek().line;
      edge.column = Peek().column;
      edge.arrow_forward = Check(TokenKind::kArrowRight);
      Advance();
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kLBracket, "'['").status());
      AIQL_ASSIGN_OR_RETURN(edge.ops, ParseOps());
      // Optional hop window: `->[write, 5 min]` bounds the gap between this
      // edge's event and the previous edge's event.
      if (Match(TokenKind::kComma)) {
        AIQL_ASSIGN_OR_RETURN(edge.within, ParseDurationTokens());
      }
      AIQL_RETURN_IF_ERROR(ExpectToken(TokenKind::kRBracket, "']'").status());
      AIQL_ASSIGN_OR_RETURN(edge.target, ParseEntityDecl());
      query->edges.push_back(std::move(edge));
    }
    if (query->edges.empty()) {
      return ErrorAt(Peek(),
                     "dependency query needs at least one '->' or '<-' edge");
    }
    AIQL_RETURN_IF_ERROR(ParseReturnClause(&query->distinct,
                                           &query->return_items));
    AIQL_RETURN_IF_ERROR(ParseOptionalOrderBy(&query->order_by));
    AIQL_RETURN_IF_ERROR(ParseOptionalLimit(&query->limit));
    return query;
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseAiql(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace aiql
