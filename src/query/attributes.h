// Canonical attribute model shared by the analyzer, engine, and the SQL /
// Cypher translators.
//
// Each entity type exposes a fixed attribute set; bare-string constraints and
// bare-variable returns resolve to the type's *default* attribute (the
// paper's context-aware syntax shortcut: p1 -> p1.exe_name, f1 -> f1.path,
// i1 -> i1.dst_ip).

#ifndef AIQL_QUERY_ATTRIBUTES_H_
#define AIQL_QUERY_ATTRIBUTES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/data_model.h"

namespace aiql {

/// Value domain of an attribute.
enum class AttrKind { kString, kInt };

/// Canonical attribute descriptor.
struct AttrInfo {
  std::string canonical;  ///< canonical snake_case name
  AttrKind kind = AttrKind::kString;
};

/// Canonical default attribute of an entity type:
/// proc -> "exe_name", file -> "path", ip -> "dst_ip".
const char* DefaultEntityAttr(EntityType type);

/// Resolves an entity attribute name (empty = default). Accepts aliases
/// (exename/name for exe_name; name for file path; dstip for dst_ip; ...).
/// Every entity type also exposes "agentid" (int).
Result<AttrInfo> ResolveEntityAttr(EntityType type, std::string_view name);

/// Resolves an event attribute: amount (int), start_time (int), end_time
/// (int), agentid (int), op (string).
Result<AttrInfo> ResolveEventAttr(std::string_view name);

}  // namespace aiql

#endif  // AIQL_QUERY_ATTRIBUTES_H_
