#include "query/analyzer.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_utils.h"

namespace aiql {

namespace {

constexpr int kMaxHistoryIndex = 64;

Status LocError(int line, int column, std::string msg) {
  return Status::SemanticError("line " + std::to_string(line) + ", col " +
                               std::to_string(column) + ": " +
                               std::move(msg));
}

// Operations legal for each object entity type.
bool OpValidForObject(OpType op, EntityType object_type) {
  switch (object_type) {
    case EntityType::kProcess:
      return op == OpType::kStart || op == OpType::kEnd ||
             op == OpType::kConnect;
    case EntityType::kFile:
      return op == OpType::kRead || op == OpType::kWrite ||
             op == OpType::kExecute || op == OpType::kDelete ||
             op == OpType::kRename;
    case EntityType::kNetwork:
      return op == OpType::kRead || op == OpType::kWrite ||
             op == OpType::kConnect || op == OpType::kAccept;
  }
  return false;
}

// Checks one entity constraint: attribute exists, value types line up,
// LIKE only applies to strings.
Status ValidateConstraint(EntityType type, const AttrConstraint& constraint) {
  auto info = ResolveEntityAttr(type, constraint.attr);
  if (!info.ok()) {
    return LocError(constraint.line, constraint.column,
                    info.status().message());
  }
  if (constraint.values.empty()) {
    return LocError(constraint.line, constraint.column,
                    "constraint has no value");
  }
  for (const ValueLiteral& value : constraint.values) {
    bool is_string = value.kind == ValueLiteral::Kind::kString;
    if (info->kind == AttrKind::kString && !is_string) {
      return LocError(constraint.line, constraint.column,
                      "attribute '" + info->canonical +
                          "' is a string; got a numeric value");
    }
    if (info->kind == AttrKind::kInt && is_string) {
      return LocError(constraint.line, constraint.column,
                      "attribute '" + info->canonical +
                          "' is numeric; got a string value");
    }
  }
  if (constraint.op == CmpOp::kLike && info->kind != AttrKind::kString) {
    return LocError(constraint.line, constraint.column,
                    "LIKE requires a string attribute");
  }
  if ((constraint.op == CmpOp::kLt || constraint.op == CmpOp::kLe ||
       constraint.op == CmpOp::kGt || constraint.op == CmpOp::kGe) &&
      info->kind != AttrKind::kInt) {
    return LocError(constraint.line, constraint.column,
                    "ordered comparison requires a numeric attribute");
  }
  return Status::OK();
}

Status ValidateEntityDecl(const EntityDeclAst& decl) {
  for (const AttrConstraint& constraint : decl.constraints) {
    AIQL_RETURN_IF_ERROR(ValidateConstraint(decl.type, constraint));
  }
  return Status::OK();
}

// Resolves the global constraints: only agentid is meaningful globally.
Status ResolveGlobals(const GlobalConstraints& globals,
                      AnalyzedQuery* analyzed) {
  if (globals.time_window.has_value()) {
    analyzed->time_window = *globals.time_window;
  }
  for (const AttrConstraint& constraint : globals.attrs) {
    if (constraint.attr != "agentid" && constraint.attr != "agent_id") {
      return LocError(constraint.line, constraint.column,
                      "unsupported global constraint '" + constraint.attr +
                          "' (only agentid)");
    }
    if (constraint.op != CmpOp::kEq && constraint.op != CmpOp::kIn) {
      return LocError(constraint.line, constraint.column,
                      "global agentid supports '=' or 'in' only");
    }
    std::vector<AgentId> agents;
    for (const ValueLiteral& value : constraint.values) {
      if (value.kind == ValueLiteral::Kind::kString) {
        return LocError(constraint.line, constraint.column,
                        "agentid must be numeric");
      }
      agents.push_back(static_cast<AgentId>(value.i));
    }
    if (!analyzed->agent_filter.has_value()) {
      analyzed->agent_filter = std::move(agents);
    } else {
      // Conjunction of global constraints: intersect candidate sets.
      std::vector<AgentId> merged;
      for (AgentId agent : *analyzed->agent_filter) {
        if (std::find(agents.begin(), agents.end(), agent) != agents.end()) {
          merged.push_back(agent);
        }
      }
      analyzed->agent_filter = std::move(merged);
    }
  }
  return Status::OK();
}

}  // namespace

Result<AnalyzedQuery> AnalyzeMultievent(const MultieventQueryAst& ast,
                                        QueryKind kind) {
  AnalyzedQuery analyzed;
  analyzed.ast = &ast;
  analyzed.kind = kind;

  if (ast.patterns.empty()) {
    return Status::SemanticError("query declares no event patterns");
  }

  AIQL_RETURN_IF_ERROR(ResolveGlobals(ast.globals, &analyzed));

  // --- patterns: types, ops, constraints, variable tables -------------------
  std::unordered_set<std::string> used_event_vars;
  int auto_counter = 0;
  for (int i = 0; i < static_cast<int>(ast.patterns.size()); ++i) {
    const EventPatternAst& pattern = ast.patterns[i];
    if (pattern.subject.type != EntityType::kProcess) {
      return LocError(pattern.subject.line, pattern.subject.column,
                      "event subjects must be processes");
    }
    if (pattern.ops.empty()) {
      return LocError(pattern.line, pattern.column,
                      "event pattern has no operation");
    }
    for (OpType op : pattern.ops) {
      if (!OpValidForObject(op, pattern.object.type)) {
        return LocError(
            pattern.line, pattern.column,
            std::string("operation '") + OpTypeToString(op) +
                "' is not valid for object type '" +
                EntityTypeToString(pattern.object.type) + "'");
      }
    }
    AIQL_RETURN_IF_ERROR(ValidateEntityDecl(pattern.subject));
    AIQL_RETURN_IF_ERROR(ValidateEntityDecl(pattern.object));

    // Event variable.
    // Auto-assigned names start with '$' so they can never be referenced
    // from query text (the lexer rejects '$' in identifiers).
    std::string event_var = pattern.event_var;
    if (event_var.empty()) {
      event_var = "$evt" + std::to_string(++auto_counter);
    }
    if (!used_event_vars.insert(event_var).second) {
      return LocError(pattern.line, pattern.column,
                      "duplicate event name '" + event_var + "'");
    }
    analyzed.event_vars.push_back(event_var);
    analyzed.event_index[event_var] = i;

    // Entity variables (subject + object).
    auto note_var = [&](const EntityDeclAst& decl,
                        bool is_subject) -> Status {
      if (decl.var.empty()) return Status::OK();
      auto [it, inserted] =
          analyzed.entity_types.emplace(decl.var, decl.type);
      if (!inserted && it->second != decl.type) {
        return LocError(decl.line, decl.column,
                        "variable '" + decl.var + "' was previously a '" +
                            EntityTypeToString(it->second) +
                            "' but is redeclared as '" +
                            EntityTypeToString(decl.type) + "'");
      }
      analyzed.entity_occurrences[decl.var].push_back(
          VarOccurrence{i, is_subject});
      return Status::OK();
    };
    AIQL_RETURN_IF_ERROR(note_var(pattern.subject, /*is_subject=*/true));
    AIQL_RETURN_IF_ERROR(note_var(pattern.object, /*is_subject=*/false));
  }

  // Entity variables must not collide with event variables.
  for (const auto& [var, occurrences] : analyzed.entity_occurrences) {
    if (analyzed.event_index.count(var) > 0) {
      return Status::SemanticError("name '" + var +
                                   "' is used for both an entity and an "
                                   "event");
    }
  }

  // --- temporal relationships ----------------------------------------------
  for (const TemporalRelAst& rel : ast.temporal_rels) {
    if (analyzed.event_index.count(rel.left) == 0) {
      return LocError(rel.line, rel.column,
                      "unknown event '" + rel.left + "' in 'with' clause");
    }
    if (analyzed.event_index.count(rel.right) == 0) {
      return LocError(rel.line, rel.column,
                      "unknown event '" + rel.right + "' in 'with' clause");
    }
    if (rel.left == rel.right) {
      return LocError(rel.line, rel.column,
                      "temporal relation relates '" + rel.left +
                          "' to itself");
    }
    if (rel.within < 0) {
      return LocError(rel.line, rel.column,
                      "temporal bound must be non-negative");
    }
  }

  // --- attribute relationships ----------------------------------------------
  auto resolve_rel_ref = [&](const AttrRefAst& ref) -> Result<AttrInfo> {
    auto entity_it = analyzed.entity_types.find(ref.var);
    if (entity_it != analyzed.entity_types.end()) {
      auto info = ResolveEntityAttr(entity_it->second, ref.attr);
      if (!info.ok()) {
        return LocError(ref.line, ref.column, info.status().message());
      }
      return info;
    }
    if (analyzed.event_index.count(ref.var) > 0) {
      auto info = ResolveEventAttr(ref.attr.empty() ? "amount" : ref.attr);
      if (!info.ok()) {
        return LocError(ref.line, ref.column, info.status().message());
      }
      return info;
    }
    return LocError(ref.line, ref.column,
                    "unknown variable '" + ref.var + "'");
  };
  for (const AttrRelAst& rel : ast.attr_rels) {
    AIQL_ASSIGN_OR_RETURN(AttrInfo left, resolve_rel_ref(rel.left));
    AIQL_ASSIGN_OR_RETURN(AttrInfo right, resolve_rel_ref(rel.right));
    if (left.kind != right.kind) {
      return LocError(rel.left.line, rel.left.column,
                      "attribute relation compares a string with a number");
    }
    if (rel.op == CmpOp::kLike || rel.op == CmpOp::kIn) {
      return LocError(rel.left.line, rel.left.column,
                      "attribute relations support =, !=, <, <=, >, >=");
    }
  }

  // --- return / group by / having ------------------------------------------
  bool is_anomaly = kind == QueryKind::kAnomaly || ast.is_anomaly();
  bool has_aggregate = false;
  std::unordered_set<std::string> agg_aliases;
  for (const ReturnItemAst& item : ast.return_items) {
    if (const auto* ref = std::get_if<AttrRefAst>(&item.expr)) {
      AIQL_RETURN_IF_ERROR(resolve_rel_ref(*ref).status());
    } else {
      const AggCallAst& agg = std::get<AggCallAst>(item.expr);
      has_aggregate = true;
      if (!is_anomaly) {
        return Status::SemanticError(
            "aggregate '" + std::string(AggFuncToString(agg.func)) +
            "' requires a sliding window (anomaly query)");
      }
      if (!agg.star) {
        if (analyzed.event_index.count(agg.arg.var) == 0) {
          return LocError(agg.arg.line, agg.arg.column,
                          "aggregate argument must reference an event "
                          "variable");
        }
        auto info =
            ResolveEventAttr(agg.arg.attr.empty() ? "amount" : agg.arg.attr);
        if (!info.ok()) {
          return LocError(agg.arg.line, agg.arg.column,
                          info.status().message());
        }
        if (info->kind != AttrKind::kInt) {
          return LocError(agg.arg.line, agg.arg.column,
                          "aggregates require a numeric event attribute");
        }
      } else if (agg.func != AggFunc::kCount) {
        return Status::SemanticError("only count(*) may aggregate '*'");
      }
      if (!item.alias.empty()) agg_aliases.insert(item.alias);
    }
  }

  if (is_anomaly) {
    if (ast.patterns.size() != 1) {
      return Status::SemanticError(
          "anomaly queries aggregate over a single event pattern; found " +
          std::to_string(ast.patterns.size()));
    }
    if (!has_aggregate) {
      return Status::SemanticError(
          "anomaly query returns no aggregate; add e.g. avg(evt.amount)");
    }
  }

  for (const AttrRefAst& ref : ast.group_by) {
    if (!is_anomaly) {
      return Status::SemanticError("group by requires a sliding window");
    }
    AIQL_RETURN_IF_ERROR(resolve_rel_ref(ref).status());
  }

  // Order-by items must reference return items (by alias or expression).
  for (const OrderItemAst& item : ast.order_by) {
    bool found = false;
    for (const ReturnItemAst& ret : ast.return_items) {
      if (!ret.alias.empty() && ret.alias == item.ref.var &&
          item.ref.attr.empty()) {
        found = true;
        break;
      }
      if (const auto* ref = std::get_if<AttrRefAst>(&ret.expr)) {
        if (ref->var == item.ref.var && ref->attr == item.ref.attr) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return LocError(item.ref.line, item.ref.column,
                      "order by '" + item.ref.ToString() +
                          "' does not match any return item");
    }
  }

  if (ast.having != nullptr) {
    if (!is_anomaly) {
      return Status::SemanticError("having requires a sliding window");
    }
    // Walk the expression tree validating aggregate references.
    std::vector<const HavingExpr*> stack{ast.having.get()};
    while (!stack.empty()) {
      const HavingExpr* node = stack.back();
      stack.pop_back();
      if (node == nullptr) continue;
      if (node->kind == HavingExpr::Kind::kAggRef) {
        if (agg_aliases.count(node->agg_alias) == 0) {
          return Status::SemanticError(
              "having references '" + node->agg_alias +
              "', which is not an aggregate alias from the return clause");
        }
        if (node->history < 0 || node->history > kMaxHistoryIndex) {
          return Status::SemanticError(
              "history index out of range in having clause");
        }
      }
      stack.push_back(node->lhs.get());
      stack.push_back(node->rhs.get());
    }
  }

  return analyzed;
}

Status ValidateDependency(const DependencyQueryAst& ast) {
  AIQL_RETURN_IF_ERROR(ValidateEntityDecl(ast.start));
  const EntityDeclAst* previous = &ast.start;
  for (const DependencyEdgeAst& edge : ast.edges) {
    AIQL_RETURN_IF_ERROR(ValidateEntityDecl(edge.target));
    // The arrow points subject -> object; the subject side must be a process.
    const EntityDeclAst& subject =
        edge.arrow_forward ? *previous : edge.target;
    const EntityDeclAst& object = edge.arrow_forward ? edge.target : *previous;
    if (subject.type != EntityType::kProcess) {
      return LocError(edge.line, edge.column,
                      "the subject side of a dependency edge must be a "
                      "process");
    }
    if (edge.ops.empty()) {
      return LocError(edge.line, edge.column, "edge has no operation");
    }
    for (OpType op : edge.ops) {
      if (!OpValidForObject(op, object.type)) {
        return LocError(edge.line, edge.column,
                        std::string("operation '") + OpTypeToString(op) +
                            "' is not valid for object type '" +
                            EntityTypeToString(object.type) + "'");
      }
    }
    previous = &edge.target;
  }
  return Status::OK();
}

}  // namespace aiql
