#include "query/lexer.h"

#include <cctype>

namespace aiql {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kArrowRight:
      return "'->'";
    case TokenKind::kArrowLeft:
      return "'<-'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      AIQL_ASSIGN_OR_RETURN(Token token, NextToken());
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    end.column = column_;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status ErrorHere(std::string msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ", col " +
                              std::to_string(column_) + ": " + std::move(msg));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token MakeToken(TokenKind kind, int line, int column) const {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  }

  Result<Token> NextToken() {
    int line = line_;
    int column = column_;
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent(line, column);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(line, column);
    }
    if (c == '"') {
      return LexString(line, column);
    }

    Advance();
    switch (c) {
      case '(':
        return MakeToken(TokenKind::kLParen, line, column);
      case ')':
        return MakeToken(TokenKind::kRParen, line, column);
      case '[':
        return MakeToken(TokenKind::kLBracket, line, column);
      case ']':
        return MakeToken(TokenKind::kRBracket, line, column);
      case ',':
        return MakeToken(TokenKind::kComma, line, column);
      case '.':
        return MakeToken(TokenKind::kDot, line, column);
      case ':':
        return MakeToken(TokenKind::kColon, line, column);
      case '+':
        return MakeToken(TokenKind::kPlus, line, column);
      case '*':
        return MakeToken(TokenKind::kStar, line, column);
      case '/':
        return MakeToken(TokenKind::kSlash, line, column);
      case '=':
        return MakeToken(TokenKind::kEq, line, column);
      case '!':
        if (Peek() == '=') {
          Advance();
          return MakeToken(TokenKind::kNe, line, column);
        }
        return ErrorHere("unexpected '!'");
      case '|':
        if (Peek() == '|') {
          Advance();
          return MakeToken(TokenKind::kOrOr, line, column);
        }
        return ErrorHere("unexpected '|' (did you mean '||'?)");
      case '-':
        if (Peek() == '>') {
          Advance();
          return MakeToken(TokenKind::kArrowRight, line, column);
        }
        return MakeToken(TokenKind::kMinus, line, column);
      case '<':
        if (Peek() == '=') {
          Advance();
          return MakeToken(TokenKind::kLe, line, column);
        }
        // '<-' is the dependency arrow unless it is a comparison against a
        // negative number ("< -5"), which keeps both syntaxes available.
        if (Peek() == '-' &&
            !std::isdigit(static_cast<unsigned char>(Peek(1)))) {
          Advance();
          return MakeToken(TokenKind::kArrowLeft, line, column);
        }
        return MakeToken(TokenKind::kLt, line, column);
      case '>':
        if (Peek() == '=') {
          Advance();
          return MakeToken(TokenKind::kGe, line, column);
        }
        return MakeToken(TokenKind::kGt, line, column);
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Token> LexIdent(int line, int column) {
    std::string text;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        text += Advance();
      } else {
        break;
      }
    }
    Token t = MakeToken(TokenKind::kIdent, line, column);
    t.text = std::move(text);
    return t;
  }

  Result<Token> LexNumber(int line, int column) {
    std::string text;
    bool has_dot = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        text += Advance();
      } else if (c == '.' && !has_dot &&
                 std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        has_dot = true;
        text += Advance();
      } else {
        break;
      }
    }
    Token t = MakeToken(TokenKind::kNumber, line, column);
    t.text = text;
    t.number = std::stod(text);
    t.number_is_integer = !has_dot;
    return t;
  }

  Result<Token> LexString(int line, int column) {
    Advance();  // opening quote
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("line " + std::to_string(line) + ", col " +
                                  std::to_string(column) +
                                  ": unterminated string literal");
      }
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) {
          return ErrorHere("dangling escape at end of input");
        }
        char escaped = Advance();
        switch (escaped) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          case '\\':
            text += '\\';
            break;
          case '"':
            text += '"';
            break;
          default:
            // Keep unknown escapes verbatim: Windows paths like "C:\Users"
            // are common in constraints.
            text += '\\';
            text += escaped;
        }
        continue;
      }
      text += c;
    }
    Token t = MakeToken(TokenKind::kString, line, column);
    t.text = std::move(text);
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> LexQuery(std::string_view text) {
  return LexerImpl(text).Run();
}

}  // namespace aiql
