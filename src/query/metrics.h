// Query conciseness metrics (paper §3, post-demo evaluation).
//
// The paper reports that semantically equivalent SQL contains >= 3.0x more
// constraints, 3.5x more words, and 5.2x more characters (excluding spaces)
// than the AIQL originals. These helpers compute the three metrics for AIQL
// text/ASTs; the SQL and Cypher translators compute theirs at generation
// time.

#ifndef AIQL_QUERY_METRICS_H_
#define AIQL_QUERY_METRICS_H_

#include <cstddef>

#include "query/ast.h"

namespace aiql {

/// The three conciseness metrics.
struct QueryTextMetrics {
  size_t constraints = 0;
  size_t words = 0;
  size_t chars = 0;  ///< excluding whitespace
};

/// Computes metrics for a parsed AIQL query. Constraints counted: entity
/// attribute constraints, global constraints (time window, agentid, window
/// spec), temporal and attribute relationships, dependency edges, and
/// having-clause comparisons.
QueryTextMetrics ComputeAiqlMetrics(const ParsedQuery& query);

}  // namespace aiql

#endif  // AIQL_QUERY_METRICS_H_
