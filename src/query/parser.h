// Recursive-descent parser for the AIQL language.
//
// Grammar overview (keywords case-insensitive):
//
//   query        := global* ( multievent_body | dependency_body )
//   global       := '(' 'at' STRING ')'
//                 | '(' 'from' STRING 'to' STRING ')'
//                 | IDENT '=' value                    // e.g. agentid = 1
//                 | 'window' '=' duration ',' 'step' '=' duration
//   multievent_body := event_pattern+ with_clause? return_clause
//                      group_clause? having_clause? order_clause?
//                      limit_clause?
//   event_pattern := entity_decl op ('||' op)* entity_decl ('as' IDENT)?
//   entity_decl  := ('proc'|'file'|'ip') IDENT? ('[' constraints? ']')?
//   constraints  := constraint (',' constraint)*
//   constraint   := STRING                             // default attr LIKE
//                 | IDENT cmp value
//                 | IDENT 'in' '(' value (',' value)* ')'
//   with_clause  := 'with' relation (',' relation)*
//   relation     := IDENT ('before'|'after') ('[' duration ']')? IDENT
//                 | attr_ref cmp attr_ref
//   return_clause := 'return' 'distinct'? item (',' item)*
//   item         := (attr_ref | agg '(' (attr_ref|'*') ')') ('as' IDENT)?
//   group_clause := 'group' 'by' attr_ref (',' attr_ref)*
//   having_clause := 'having' bool_expr                // arithmetic + cmp +
//                                                      // and/or/not + hist[k]
//   order_clause := ('order'|'sort') 'by' attr_ref ('asc'|'desc')?
//                   (',' attr_ref ('asc'|'desc')?)*
//   dependency_body := ('forward'|'backward') ':' entity_decl dep_edge+
//                      return_clause order_clause? limit_clause?
//   dep_edge     := ('->'|'<-') '[' op ('||' op)* ']' entity_decl
//
// Durations are `NUMBER unit` (e.g. `1 min`) or a quoted string ("10 sec").

#ifndef AIQL_QUERY_PARSER_H_
#define AIQL_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace aiql {

/// Parses AIQL text into an AST. Errors carry line/column context suitable
/// for the UI's syntax checker.
Result<ParsedQuery> ParseAiql(std::string_view text);

}  // namespace aiql

#endif  // AIQL_QUERY_PARSER_H_
