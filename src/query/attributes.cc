#include "query/attributes.h"

#include "common/string_utils.h"

namespace aiql {

const char* DefaultEntityAttr(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "exe_name";
    case EntityType::kFile:
      return "path";
    case EntityType::kNetwork:
      return "dst_ip";
  }
  return "?";
}

Result<AttrInfo> ResolveEntityAttr(EntityType type, std::string_view name) {
  std::string lowered = ToLower(name);
  if (lowered.empty()) lowered = DefaultEntityAttr(type);
  if (lowered == "agentid" || lowered == "agent_id") {
    return AttrInfo{"agentid", AttrKind::kInt};
  }
  switch (type) {
    case EntityType::kProcess:
      if (lowered == "exe_name" || lowered == "exename" || lowered == "name" ||
          lowered == "exe") {
        return AttrInfo{"exe_name", AttrKind::kString};
      }
      if (lowered == "pid") return AttrInfo{"pid", AttrKind::kInt};
      if (lowered == "user" || lowered == "username") {
        return AttrInfo{"user", AttrKind::kString};
      }
      break;
    case EntityType::kFile:
      if (lowered == "path" || lowered == "name" || lowered == "filename") {
        return AttrInfo{"path", AttrKind::kString};
      }
      break;
    case EntityType::kNetwork:
      if (lowered == "dst_ip" || lowered == "dstip" || lowered == "dip") {
        return AttrInfo{"dst_ip", AttrKind::kString};
      }
      if (lowered == "src_ip" || lowered == "srcip" || lowered == "sip") {
        return AttrInfo{"src_ip", AttrKind::kString};
      }
      if (lowered == "dst_port" || lowered == "dstport" || lowered == "dport") {
        return AttrInfo{"dst_port", AttrKind::kInt};
      }
      if (lowered == "src_port" || lowered == "srcport" || lowered == "sport") {
        return AttrInfo{"src_port", AttrKind::kInt};
      }
      if (lowered == "protocol" || lowered == "proto") {
        return AttrInfo{"protocol", AttrKind::kString};
      }
      break;
  }
  return Status::SemanticError("entity type '" +
                               std::string(EntityTypeToString(type)) +
                               "' has no attribute '" + lowered + "'");
}

Result<AttrInfo> ResolveEventAttr(std::string_view name) {
  std::string lowered = ToLower(name);
  if (lowered == "amount" || lowered == "bytes") {
    return AttrInfo{"amount", AttrKind::kInt};
  }
  if (lowered == "start_time" || lowered == "starttime" ||
      lowered == "start_ts") {
    return AttrInfo{"start_time", AttrKind::kInt};
  }
  if (lowered == "end_time" || lowered == "endtime" || lowered == "end_ts") {
    return AttrInfo{"end_time", AttrKind::kInt};
  }
  if (lowered == "agentid" || lowered == "agent_id") {
    return AttrInfo{"agentid", AttrKind::kInt};
  }
  if (lowered == "op" || lowered == "operation") {
    return AttrInfo{"op", AttrKind::kString};
  }
  return Status::SemanticError("events have no attribute '" + lowered + "'");
}

}  // namespace aiql
