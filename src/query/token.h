// Token definitions for the AIQL lexer.

#ifndef AIQL_QUERY_TOKEN_H_
#define AIQL_QUERY_TOKEN_H_

#include <string>

namespace aiql {

/// Lexical token kinds. Keywords are lexed as kIdent and matched
/// case-insensitively by the parser, which keeps the keyword set open
/// (attribute names are free-form identifiers).
enum class TokenKind {
  kIdent,       ///< identifiers and keywords
  kString,      ///< double-quoted string literal (unescaped payload)
  kNumber,      ///< unsigned numeric literal (parser applies unary minus)
  kLParen,      ///< (
  kRParen,      ///< )
  kLBracket,    ///< [
  kRBracket,    ///< ]
  kComma,       ///< ,
  kDot,         ///< .
  kColon,       ///< :
  kEq,          ///< =
  kNe,          ///< !=
  kLt,          ///< <
  kLe,          ///< <=
  kGt,          ///< >
  kGe,          ///< >=
  kOrOr,        ///< ||
  kArrowRight,  ///< ->
  kArrowLeft,   ///< <-
  kPlus,        ///< +
  kMinus,       ///< -
  kStar,        ///< *
  kSlash,       ///< /
  kEnd,         ///< end of input
};

/// Printable name of a token kind (for diagnostics).
const char* TokenKindToString(TokenKind kind);

/// One lexed token with its source location (1-based).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< identifier text or unescaped string payload
  double number = 0; ///< value for kNumber
  bool number_is_integer = true;
  int line = 1;
  int column = 1;
};

}  // namespace aiql

#endif  // AIQL_QUERY_TOKEN_H_
