// Abstract syntax tree for the AIQL language (paper §2.2).
//
// Three query forms share one AST family:
//  * multievent queries  — event patterns + global constraints + `with`
//    temporal/attribute relationships + `return`;
//  * dependency queries  — `forward:`/`backward:` event paths, compiled by
//    the engine into equivalent multievent queries;
//  * anomaly queries     — a multievent body plus a sliding-window spec,
//    aggregate return items, `group by`, and a `having` filter that may
//    access historical window aggregates (`amt[1]`).

#ifndef AIQL_QUERY_AST_H_
#define AIQL_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/time_utils.h"
#include "storage/data_model.h"

namespace aiql {

/// Comparison operators usable in constraints and relationships.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike, kIn };

const char* CmpOpToString(CmpOp op);

/// A literal constraint value.
struct ValueLiteral {
  enum class Kind { kString, kInt, kFloat };
  Kind kind = Kind::kString;
  std::string str;
  int64_t i = 0;
  double f = 0;

  static ValueLiteral String(std::string s) {
    ValueLiteral v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static ValueLiteral Int(int64_t i) {
    ValueLiteral v;
    v.kind = Kind::kInt;
    v.i = i;
    v.f = static_cast<double>(i);
    return v;
  }
  static ValueLiteral Float(double f) {
    ValueLiteral v;
    v.kind = Kind::kFloat;
    v.f = f;
    v.i = static_cast<int64_t>(f);
    return v;
  }
  /// Renders the literal as it would appear in query text.
  std::string ToString() const;
};

/// One attribute constraint inside an entity declaration, e.g.
/// `exe_name = "%cmd.exe"` or the bare-string shorthand `"%cmd.exe"`
/// (attr empty => the entity type's default attribute, matched with LIKE).
struct AttrConstraint {
  std::string attr;  ///< empty = default attribute of the entity type
  CmpOp op = CmpOp::kEq;
  std::vector<ValueLiteral> values;  ///< one value unless op == kIn
  int line = 0;
  int column = 0;
};

/// An entity declaration, e.g. `proc p1["%cmd.exe", pid = 4]`.
struct EntityDeclAst {
  EntityType type = EntityType::kProcess;
  std::string var;  ///< empty when anonymous (analyzer assigns a name)
  std::vector<AttrConstraint> constraints;
  int line = 0;
  int column = 0;
};

/// One event pattern, e.g. `proc p1["%cmd"] read || write file f1[...] as e1`.
struct EventPatternAst {
  EntityDeclAst subject;
  std::vector<OpType> ops;  ///< disjunction (`read || write`)
  EntityDeclAst object;
  std::string event_var;  ///< empty when unnamed (analyzer assigns "evtN")
  int line = 0;
  int column = 0;
};

/// Reference to `var` or `var.attr` (attr empty => context-aware default).
struct AttrRefAst {
  std::string var;
  std::string attr;
  int line = 0;
  int column = 0;

  std::string ToString() const {
    return attr.empty() ? var : var + "." + attr;
  }
};

/// Temporal relationship `e1 before e2` / `e2 after e1`, optionally bounded:
/// `e1 before[2 min] e2` requires e2 to start within 2 minutes of e1 ending.
struct TemporalRelAst {
  std::string left;
  std::string right;
  bool before = true;
  Duration within = 0;  ///< 0 = unbounded
  int line = 0;
  int column = 0;
};

/// Explicit attribute relationship in the `with` clause, e.g.
/// `p1.pid = p4.pid`.
struct AttrRelAst {
  AttrRefAst left;
  CmpOp op = CmpOp::kEq;
  AttrRefAst right;
};

/// Aggregation functions for anomaly queries.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc func);

/// An aggregate call, e.g. `avg(evt.amount)` or `count(*)`.
struct AggCallAst {
  AggFunc func = AggFunc::kCount;
  bool star = false;     ///< count(*)
  AttrRefAst arg;        ///< unused when star
};

/// One item of the return clause.
struct ReturnItemAst {
  std::variant<AttrRefAst, AggCallAst> expr;
  std::string alias;  ///< from `as`, may be empty

  bool is_aggregate() const {
    return std::holds_alternative<AggCallAst>(expr);
  }
};

/// Expression tree for `having`. Aggregate references resolve against return
/// aliases; `history` selects the aggregate of an earlier window
/// (`amt[2]` = the value two windows ago; 0/absent = current window).
struct HavingExpr {
  enum class Kind {
    kNumber,
    kAggRef,    ///< alias + history index
    kArith,     ///< lhs op rhs with op in {+,-,*,/}
    kCompare,   ///< lhs cmp rhs
    kAnd,
    kOr,
    kNot,
  };
  Kind kind = Kind::kNumber;
  double number = 0;
  std::string agg_alias;
  int history = 0;
  char arith_op = '+';
  CmpOp cmp = CmpOp::kEq;
  std::unique_ptr<HavingExpr> lhs;
  std::unique_ptr<HavingExpr> rhs;
};

/// One `order by` item: references a return item by alias or by the same
/// var/attr expression; `desc` flips the direction.
struct OrderItemAst {
  AttrRefAst ref;
  bool desc = false;
};

/// Sliding-window specification: `window = 1 min, step = 10 sec`.
struct WindowSpec {
  Duration length = kMinute;
  Duration step = 10 * kSecond;
};

/// Global constraints that scope the whole query.
struct GlobalConstraints {
  std::optional<TimeRange> time_window;      ///< from `(at ...)`/`(from..to)`
  std::vector<AttrConstraint> attrs;         ///< e.g. `agentid = 1`
};

/// Multievent query AST; also carries anomaly-query extensions (window /
/// group by / having), which are null for plain multievent queries.
struct MultieventQueryAst {
  GlobalConstraints globals;
  std::vector<EventPatternAst> patterns;
  std::vector<TemporalRelAst> temporal_rels;
  std::vector<AttrRelAst> attr_rels;
  bool distinct = false;
  std::vector<ReturnItemAst> return_items;
  std::vector<AttrRefAst> group_by;
  std::unique_ptr<HavingExpr> having;
  std::optional<WindowSpec> window;
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;

  /// An anomaly query is a multievent body with a sliding-window spec.
  bool is_anomaly() const { return window.has_value(); }
};

/// One edge of a dependency path. The arrow points from the event's subject
/// to its object: `a ->[write] b` == (a write b); `a <-[read] b` == (b read
/// a). An optional hop window (`a ->[write, 5 min] b`) bounds the temporal
/// gap between this edge's event and the previous edge's event.
struct DependencyEdgeAst {
  bool arrow_forward = true;  ///< true: previous node is the subject
  std::vector<OpType> ops;
  Duration within = 0;  ///< hop window vs the previous edge; 0 = unbounded
  EntityDeclAst target;
  int line = 0;
  int column = 0;
};

/// Dependency query: `forward:`/`backward:` start node + edges + return.
struct DependencyQueryAst {
  GlobalConstraints globals;
  bool forward = true;
  EntityDeclAst start;
  std::vector<DependencyEdgeAst> edges;
  bool distinct = false;
  std::vector<ReturnItemAst> return_items;
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;
};

/// Discriminated query kind (reported by the parser).
enum class QueryKind { kMultievent, kDependency, kAnomaly };

const char* QueryKindToString(QueryKind kind);

/// A parsed query: the original text plus its AST.
struct ParsedQuery {
  QueryKind kind = QueryKind::kMultievent;
  std::string text;
  std::unique_ptr<MultieventQueryAst> multievent;  ///< set unless dependency
  std::unique_ptr<DependencyQueryAst> dependency;  ///< set when dependency
};

}  // namespace aiql

#endif  // AIQL_QUERY_AST_H_
