// Hand-written lexer for the AIQL language.
//
// The deployed system built its grammar with ANTLR 4 (paper §2.2); this
// reproduction uses a hand-rolled lexer + recursive-descent parser to stay
// dependency-free while providing the same diagnostics (line/column errors
// for the web UI's syntax checking feature).

#ifndef AIQL_QUERY_LEXER_H_
#define AIQL_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/token.h"

namespace aiql {

/// Tokenizes AIQL text. `//` comments run to end of line. Strings use
/// double quotes with backslash escapes. Returns a ParseError with
/// line/column context on malformed input.
Result<std::vector<Token>> LexQuery(std::string_view text);

}  // namespace aiql

#endif  // AIQL_QUERY_LEXER_H_
