// Traversal-based pattern matching — the Neo4j/Cypher execution stand-in.
//
// Patterns are matched in *query order* by backtracking edge expansion:
// the first pattern enumerates candidate edges (seeded from a node-property
// index when a side is constrained, like Neo4j's label/property indexes);
// subsequent patterns expand adjacency from nodes bound by shared
// variables, or fall back to full edge scans. Temporal and attribute
// relationships are checked per partial assignment. Single-threaded, no
// join reordering, no semi-join pruning — the evaluated Neo4j behavior
// ("runs generally slower than PostgreSQL since it lacks support for
// efficient joins", paper §3).

#ifndef AIQL_GRAPH_GRAPH_EXECUTOR_H_
#define AIQL_GRAPH_GRAPH_EXECUTOR_H_

#include "common/status.h"
#include "engine/result.h"
#include "graph/graph_store.h"
#include "query/analyzer.h"
#include "query/ast.h"

namespace aiql {

/// Executes multievent queries (and dependency queries rewritten to
/// multievent form) by graph traversal. Anomaly queries are unsupported
/// (return kUnimplemented), matching the catalogs used in Fig. 5.
class GraphExecutor {
 public:
  explicit GraphExecutor(const GraphStore* graph) : graph_(graph) {}

  Result<QueryResult> Execute(const AnalyzedQuery& analyzed);

  /// Parses + analyzes + executes AIQL text (rewriting dependency queries).
  Result<QueryResult> ExecuteAiql(std::string_view text);

 private:
  const GraphStore* graph_;
};

}  // namespace aiql

#endif  // AIQL_GRAPH_GRAPH_EXECUTOR_H_
