// Property-graph view of the audit data — the Neo4j stand-in substrate.
//
// Entities become nodes, events become edges carrying (op, timestamps,
// amount, agent). Nodes keep adjacency lists in both directions. As in
// Neo4j, node properties can be index-looked-up (we reuse the entity
// store's attribute postings), but edge pattern matching proceeds by
// traversal/expansion — there is no hash-join machinery, which is exactly
// the weakness the paper's Fig. 5 exposes on multi-step behaviors.

#ifndef AIQL_GRAPH_GRAPH_STORE_H_
#define AIQL_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/database.h"

namespace aiql {

/// Dense graph node id: processes, then files, then networks.
using NodeId = uint32_t;

/// One event edge (subject node -> object node).
struct GraphEdge {
  Event event;      ///< the original event (timestamps, op, amount, ...)
  NodeId subject = 0;
  NodeId object = 0;
};

/// Immutable property graph built from a sealed database.
class GraphStore {
 public:
  explicit GraphStore(const AuditDatabase* db);

  const AuditDatabase& db() const { return *db_; }
  const EntityStore& entities() const { return db_->entities(); }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  NodeId NodeOf(EntityType type, EntityId id) const {
    switch (type) {
      case EntityType::kProcess:
        return id;
      case EntityType::kFile:
        return file_base_ + id;
      case EntityType::kNetwork:
        return net_base_ + id;
    }
    return 0;
  }
  EntityType NodeType(NodeId node) const {
    if (node >= net_base_) return EntityType::kNetwork;
    if (node >= file_base_) return EntityType::kFile;
    return EntityType::kProcess;
  }
  EntityId NodeEntity(NodeId node) const {
    if (node >= net_base_) return node - net_base_;
    if (node >= file_base_) return node - file_base_;
    return node;
  }

  const std::vector<GraphEdge>& edges() const { return edges_; }
  /// Edge indexes leaving `node` (node is the subject).
  const std::vector<uint32_t>& OutEdges(NodeId node) const {
    return out_[node];
  }
  /// Edge indexes entering `node` (node is the object).
  const std::vector<uint32_t>& InEdges(NodeId node) const {
    return in_[node];
  }

 private:
  const AuditDatabase* db_;
  NodeId file_base_ = 0;
  NodeId net_base_ = 0;
  size_t num_nodes_ = 0;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
};

}  // namespace aiql

#endif  // AIQL_GRAPH_GRAPH_STORE_H_
