// Property-graph view of the audit data — the Neo4j stand-in substrate.
//
// Entities become nodes, events become edges carrying (op, timestamps,
// amount, agent). Nodes keep adjacency lists in both directions. As in
// Neo4j, node properties can be index-looked-up (we reuse the entity
// store's attribute postings), but edge pattern matching proceeds by
// traversal/expansion — there is no hash-join machinery, which is exactly
// the weakness the paper's Fig. 5 exposes on multi-step behaviors.
//
// A GraphStore can also be built from a provenance tracking result
// (engine/provenance.h): the recovered dependency graph becomes a small
// traversable property graph over the same node-id space, and can be
// exported as Graphviz DOT for the analyst.

#ifndef AIQL_GRAPH_GRAPH_STORE_H_
#define AIQL_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/provenance.h"
#include "storage/database.h"

namespace aiql {

/// Dense graph node id: processes, then files, then networks.
using NodeId = uint32_t;

/// One event edge (subject node -> object node).
struct GraphEdge {
  Event event;      ///< the original event (timestamps, op, amount, ...)
  NodeId subject = 0;
  NodeId object = 0;
};

/// Immutable property graph built from a sealed database or a provenance
/// tracking result.
class GraphStore {
 public:
  /// Builds the full graph of a sealed database.
  explicit GraphStore(const AuditDatabase* db);

  /// Builds the dependency subgraph a provenance track recovered. Only the
  /// recovered entities and events become nodes and edges; `entities` must
  /// outlive the store (it is the store the track ran against — a database
  /// or a snapshot entity store).
  GraphStore(const EntityStore* entities, const ProvenanceResult& result);

  const EntityStore& entities() const { return *entities_; }

  /// Entities in the graph: every store entity for the database form,
  /// the recovered entities for the provenance-subgraph form (whose node
  /// ids still live in the global NodeOf space).
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  NodeId NodeOf(EntityType type, EntityId id) const {
    switch (type) {
      case EntityType::kProcess:
        return id;
      case EntityType::kFile:
        return file_base_ + id;
      case EntityType::kNetwork:
        return net_base_ + id;
    }
    return 0;
  }
  EntityType NodeType(NodeId node) const {
    if (node >= net_base_) return EntityType::kNetwork;
    if (node >= file_base_) return EntityType::kFile;
    return EntityType::kProcess;
  }
  EntityId NodeEntity(NodeId node) const {
    if (node >= net_base_) return node - net_base_;
    if (node >= file_base_) return node - file_base_;
    return node;
  }

  const std::vector<GraphEdge>& edges() const { return edges_; }
  /// Edge indexes leaving `node` (node is the subject). Nodes beyond the
  /// adjacency range (possible for the provenance-subgraph form, whose
  /// arrays stop at the highest referenced id) have no edges.
  const std::vector<uint32_t>& OutEdges(NodeId node) const {
    static const std::vector<uint32_t> kNoEdges;
    return node < out_.size() ? out_[node] : kNoEdges;
  }
  /// Edge indexes entering `node` (node is the object).
  const std::vector<uint32_t>& InEdges(NodeId node) const {
    static const std::vector<uint32_t> kNoEdges;
    return node < in_.size() ? in_[node] : kNoEdges;
  }

 private:
  void AddEdge(const Event& event);

  const EntityStore* entities_;
  NodeId file_base_ = 0;
  NodeId net_base_ = 0;
  size_t num_nodes_ = 0;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
};

/// Renders a provenance result as a Graphviz DOT digraph: entities as
/// typed nodes (box = process, note = file, ellipse = connection; the
/// depth-0 roots double-ringed), events as edges labeled with operation and
/// start time, ordered cause -> effect.
std::string ProvenanceToDot(const ProvenanceResult& result,
                            const EntityStore& entities);

}  // namespace aiql

#endif  // AIQL_GRAPH_GRAPH_STORE_H_
