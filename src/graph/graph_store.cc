#include "graph/graph_store.h"

namespace aiql {

GraphStore::GraphStore(const AuditDatabase* db) : db_(db) {
  const EntityStore& es = db->entities();
  file_base_ = static_cast<NodeId>(es.processes().size());
  net_base_ = file_base_ + static_cast<NodeId>(es.files().size());
  num_nodes_ = net_base_ + es.networks().size();

  out_.resize(num_nodes_);
  in_.resize(num_nodes_);

  for (const auto& [key, partition] :
       db->SelectPartitions(TimeRange{INT64_MIN, INT64_MAX}, std::nullopt)) {
    for (const Event& event : partition->events()) {
      GraphEdge edge;
      edge.event = event;
      edge.subject = NodeOf(EntityType::kProcess, event.subject);
      edge.object = NodeOf(event.object_type, event.object);
      uint32_t index = static_cast<uint32_t>(edges_.size());
      out_[edge.subject].push_back(index);
      in_[edge.object].push_back(index);
      edges_.push_back(edge);
    }
  }
}

}  // namespace aiql
