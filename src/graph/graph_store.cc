#include "graph/graph_store.h"

#include <algorithm>

#include "common/time_utils.h"

namespace aiql {

void GraphStore::AddEdge(const Event& event) {
  GraphEdge edge;
  edge.event = event;
  edge.subject = NodeOf(EntityType::kProcess, event.subject);
  edge.object = NodeOf(event.object_type, event.object);
  uint32_t index = static_cast<uint32_t>(edges_.size());
  out_[edge.subject].push_back(index);
  in_[edge.object].push_back(index);
  edges_.push_back(edge);
}

GraphStore::GraphStore(const AuditDatabase* db) : entities_(&db->entities()) {
  const EntityStore& es = *entities_;
  file_base_ = static_cast<NodeId>(es.processes().size());
  net_base_ = file_base_ + static_cast<NodeId>(es.files().size());
  num_nodes_ = net_base_ + es.networks().size();

  out_.resize(num_nodes_);
  in_.resize(num_nodes_);

  for (const auto& [key, partition] :
       db->SelectPartitions(TimeRange{INT64_MIN, INT64_MAX}, std::nullopt)) {
    (void)key;
    for (const Event& event : partition->events()) {
      AddEdge(event);
    }
  }
}

GraphStore::GraphStore(const EntityStore* entities,
                       const ProvenanceResult& result)
    : entities_(entities) {
  const EntityStore& es = *entities_;
  file_base_ = static_cast<NodeId>(es.processes().size());
  net_base_ = file_base_ + static_cast<NodeId>(es.files().size());
  num_nodes_ = result.nodes.size();

  // Node ids stay in the store's global NodeOf space (so callers can map
  // entities to nodes without a translation table), but the adjacency
  // arrays only extend to the highest id the subgraph actually touches —
  // not to the whole entity store.
  NodeId max_node = 0;
  for (const ProvenanceEdge& edge : result.edges) {
    max_node = std::max(max_node,
                        NodeOf(EntityType::kProcess, edge.event.subject));
    max_node = std::max(
        max_node, NodeOf(edge.event.object_type, edge.event.object));
  }
  if (!result.edges.empty()) {
    out_.resize(static_cast<size_t>(max_node) + 1);
    in_.resize(static_cast<size_t>(max_node) + 1);
  }

  // Provenance edges are already cause -> effect; the underlying events
  // keep their subject/object orientation, which is what the property
  // graph stores.
  for (const ProvenanceEdge& edge : result.edges) {
    AddEdge(edge.event);
  }
}

std::string ProvenanceToDot(const ProvenanceResult& result,
                            const EntityStore& entities) {
  auto escape = [](const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };

  std::string dot = "digraph provenance {\n  rankdir=LR;\n";
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    const ProvenanceNode& node = result.nodes[i];
    const char* shape = node.type == EntityType::kProcess ? "box"
                        : node.type == EntityType::kFile  ? "note"
                                                          : "ellipse";
    dot += "  n" + std::to_string(i) + " [shape=" + shape + ", label=\"" +
           escape(entities.EntityName(node.type, node.id)) + "\"";
    if (i < result.num_roots) dot += ", peripheries=2";
    dot += "];\n";
  }
  for (const ProvenanceEdge& edge : result.edges) {
    dot += "  n" + std::to_string(edge.from) + " -> n" +
           std::to_string(edge.to) + " [label=\"" +
           OpTypeToString(edge.event.op) + " @ " +
           FormatTimestamp(edge.event.start_ts) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace aiql
