// AIQL -> Cypher translation (conciseness comparison, paper §3).
//
// Generates the Cypher a Neo4j analyst would write for the same behavior:
// one MATCH relationship per event pattern, WHERE predicates for entity
// constraints (LIKE patterns become case-insensitive regexes), operation
// and global constraints repeated per relationship, and explicit timestamp
// comparisons for temporal relationships.

#ifndef AIQL_GRAPH_CYPHER_GEN_H_
#define AIQL_GRAPH_CYPHER_GEN_H_

#include <string>

#include "common/status.h"
#include "engine/provenance.h"
#include "query/ast.h"
#include "query/metrics.h"
#include "storage/entity_store.h"

namespace aiql {

/// A generated Cypher statement plus its conciseness metrics.
struct CypherTranslation {
  std::string cypher;
  QueryTextMetrics metrics;
};

/// Translates a multievent or dependency AIQL query to Cypher. Anomaly
/// queries are not translated (the Fig. 5 catalog is multievent-only).
Result<CypherTranslation> TranslateToCypher(const ParsedQuery& query);

/// Renders a provenance tracking result as Cypher: one MERGE per recovered
/// entity (labeled with its type, tagged with hop depth and poi flag) and
/// one CREATE per event edge, so the recovered dependency graph can be
/// loaded into Neo4j for visualization.
std::string ProvenanceToCypher(const ProvenanceResult& result,
                               const EntityStore& entities);

}  // namespace aiql

#endif  // AIQL_GRAPH_CYPHER_GEN_H_
