#include "graph/cypher_gen.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/string_utils.h"
#include "engine/dependency.h"
#include "query/analyzer.h"
#include "query/attributes.h"

namespace aiql {

namespace {

const char* NodeLabel(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "Process";
    case EntityType::kFile:
      return "File";
    case EntityType::kNetwork:
      return "Connection";
  }
  return "?";
}

// SQL LIKE -> case-insensitive Cypher regex: % -> .*, _ -> ., an escaped
// wildcard ("\%", "\_", "\\") -> its literal character, rest escaped.
std::string LikeToRegex(const std::string& pattern) {
  const std::string regex_meta = ".\\+*?[^]$(){}=!<>|:-#";
  std::string out = "(?i)";
  auto emit_literal = [&](char c) {
    if (regex_meta.find(c) != std::string::npos) out += '\\';
    out += c;
  };
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (LikeMatcher::IsEscape(pattern, i)) {
      emit_literal(pattern[++i]);
    } else if (c == '%') {
      out += ".*";
    } else if (c == '_') {
      out += '.';
    } else {
      emit_literal(c);
    }
  }
  return out;
}

std::string CypherString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'' || c == '\\') out += '\\';
    out += c;
  }
  out += '\'';
  return out;
}

class CypherTranslator {
 public:
  CypherTranslator(const MultieventQueryAst& ast,
                   const AnalyzedQuery& analyzed)
      : ast_(ast), analyzed_(analyzed) {}

  Result<CypherTranslation> Run() {
    if (ast_.is_anomaly()) {
      return Status::Unimplemented(
          "anomaly queries are not translated to Cypher");
    }
    // MATCH clause: one relationship pattern per event.
    std::vector<std::string> matches;
    for (int i = 0; i < static_cast<int>(ast_.patterns.size()); ++i) {
      const EventPatternAst& pattern = ast_.patterns[i];
      std::string subj = NodeRef(pattern.subject);
      std::string obj = NodeRef(pattern.object);
      std::string rel = "e" + std::to_string(i + 1);
      matches.push_back("(" + subj + ")-[" + rel + ":EVENT]->(" + obj + ")");
      EmitPatternPredicates(pattern, rel, i);
    }
    EmitRelations();

    std::string cypher = "MATCH " + JoinStrings(matches, ",\n      ");
    if (!predicates_.empty()) {
      cypher += "\nWHERE " + JoinStrings(predicates_, "\n  AND ");
    }
    cypher += "\nRETURN ";
    if (ast_.distinct) cypher += "DISTINCT ";
    std::vector<std::string> items;
    for (const ReturnItemAst& item : ast_.return_items) {
      const auto* ref = std::get_if<AttrRefAst>(&item.expr);
      if (ref == nullptr) {
        return Status::Unimplemented("aggregates not translated to Cypher");
      }
      AIQL_ASSIGN_OR_RETURN(std::string expr, RefCypher(*ref));
      if (!item.alias.empty()) expr += " AS " + item.alias;
      items.push_back(std::move(expr));
    }
    cypher += JoinStrings(items, ", ");
    if (ast_.limit.has_value()) {
      cypher += "\nLIMIT " + std::to_string(*ast_.limit);
    }
    cypher += ";";

    CypherTranslation out;
    out.metrics.constraints = constraint_count_;
    out.metrics.words = CountWords(cypher);
    out.metrics.chars = CountNonSpaceChars(cypher);
    out.cypher = std::move(cypher);
    return out;
  }

 private:
  void AddPredicate(std::string text) {
    predicates_.push_back(std::move(text));
    ++constraint_count_;
  }

  // Node reference: first occurrence gets the label, later ones only the
  // variable (Cypher node reuse == the implicit attribute relationship).
  std::string NodeRef(const EntityDeclAst& decl) {
    std::string var = decl.var;
    if (var.empty()) var = "n" + std::to_string(++anon_counter_);
    bool first = seen_.insert(var).second;
    if (first) var_type_[var] = decl.type;
    for (const AttrConstraint& constraint : decl.constraints) {
      EmitConstraint(var, decl.type, constraint);
    }
    if (first) {
      return var + ":" + NodeLabel(decl.type);
    }
    return var;
  }

  void EmitConstraint(const std::string& var, EntityType type,
                      const AttrConstraint& constraint) {
    auto info = ResolveEntityAttr(type, constraint.attr);
    std::string attr = info.ok() ? info->canonical : constraint.attr;
    std::string ref = var + "." + attr;
    if (constraint.op == CmpOp::kIn) {
      std::string list;
      for (size_t i = 0; i < constraint.values.size(); ++i) {
        if (i > 0) list += ", ";
        list += RenderValue(constraint.values[i]);
      }
      AddPredicate(ref + " IN [" + list + "]");
      return;
    }
    const ValueLiteral& value = constraint.values.front();
    bool is_string = value.kind == ValueLiteral::Kind::kString;
    if (is_string &&
        (constraint.op == CmpOp::kLike || constraint.op == CmpOp::kEq)) {
      AddPredicate(ref + " =~ " + CypherString(LikeToRegex(value.str)));
      return;
    }
    const char* op = CmpOpToString(constraint.op);
    AddPredicate(ref + " " + op + " " + RenderValue(value));
  }

  std::string RenderValue(const ValueLiteral& value) {
    if (value.kind == ValueLiteral::Kind::kString) {
      return CypherString(value.str);
    }
    return value.kind == ValueLiteral::Kind::kInt ? std::to_string(value.i)
                                                  : std::to_string(value.f);
  }

  void EmitPatternPredicates(const EventPatternAst& pattern,
                             const std::string& rel, int index) {
    (void)index;
    if (pattern.ops.size() == 1) {
      AddPredicate(rel + ".op = '" +
                   OpTypeToString(pattern.ops.front()) + "'");
    } else {
      std::string list;
      for (size_t k = 0; k < pattern.ops.size(); ++k) {
        if (k > 0) list += ", ";
        list += std::string("'") + OpTypeToString(pattern.ops[k]) + "'";
      }
      AddPredicate(rel + ".op IN [" + list + "]");
    }
    for (const AttrConstraint& g : ast_.globals.attrs) {
      AddPredicate(rel + ".agentid = " + RenderValue(g.values.front()));
    }
    if (ast_.globals.time_window.has_value()) {
      const TimeRange& w = *ast_.globals.time_window;
      AddPredicate(rel + ".start_ts >= " + std::to_string(w.start));
      AddPredicate(rel + ".start_ts < " + std::to_string(w.end));
    }
  }

  void EmitRelations() {
    for (const TemporalRelAst& temporal : ast_.temporal_rels) {
      int left = analyzed_.event_index.at(temporal.left);
      int right = analyzed_.event_index.at(temporal.right);
      if (!temporal.before) std::swap(left, right);
      std::string l = "e" + std::to_string(left + 1);
      std::string r = "e" + std::to_string(right + 1);
      AddPredicate(l + ".end_ts <= " + r + ".start_ts");
      if (temporal.within > 0) {
        AddPredicate(r + ".start_ts - " + l + ".end_ts <= " +
                     std::to_string(temporal.within));
      }
    }
    for (const AttrRelAst& rel : ast_.attr_rels) {
      auto left = RefCypher(rel.left);
      auto right = RefCypher(rel.right);
      if (left.ok() && right.ok()) {
        AddPredicate(*left + " " + CmpOpToString(rel.op) + " " + *right);
      }
    }
  }

  Result<std::string> RefCypher(const AttrRefAst& ref) {
    auto event_it = analyzed_.event_index.find(ref.var);
    if (event_it != analyzed_.event_index.end()) {
      AIQL_ASSIGN_OR_RETURN(
          AttrInfo info,
          ResolveEventAttr(ref.attr.empty() ? "amount" : ref.attr));
      std::string attr = info.canonical == "start_time" ? "start_ts"
                         : info.canonical == "end_time" ? "end_ts"
                                                        : info.canonical;
      return "e" + std::to_string(event_it->second + 1) + "." + attr;
    }
    auto type_it = var_type_.find(ref.var);
    if (type_it == var_type_.end()) {
      return Status::SemanticError("unknown variable '" + ref.var + "'");
    }
    AIQL_ASSIGN_OR_RETURN(AttrInfo info,
                          ResolveEntityAttr(type_it->second, ref.attr));
    return ref.var + "." + info.canonical;
  }

  const MultieventQueryAst& ast_;
  const AnalyzedQuery& analyzed_;
  std::vector<std::string> predicates_;
  size_t constraint_count_ = 0;
  int anon_counter_ = 0;
  std::unordered_set<std::string> seen_;
  std::unordered_map<std::string, EntityType> var_type_;
};

}  // namespace

Result<CypherTranslation> TranslateToCypher(const ParsedQuery& query) {
  if (query.kind == QueryKind::kDependency) {
    AIQL_ASSIGN_OR_RETURN(auto rewritten,
                          RewriteDependency(*query.dependency));
    AIQL_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
    return CypherTranslator(*rewritten, analyzed).Run();
  }
  AIQL_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                        AnalyzeMultievent(*query.multievent, query.kind));
  return CypherTranslator(*query.multievent, analyzed).Run();
}

std::string ProvenanceToCypher(const ProvenanceResult& result,
                               const EntityStore& entities) {
  std::string cypher;
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    const ProvenanceNode& node = result.nodes[i];
    // `uid` (the entity's dense id within its type) keeps distinct entities
    // that share a display name — two svchost.exe instances, say — from
    // collapsing into one MERGEd Neo4j node.
    cypher += "MERGE (n" + std::to_string(i) + ":" + NodeLabel(node.type) +
              " {uid: " + std::to_string(node.id) + ", name: " +
              CypherString(entities.EntityName(node.type, node.id)) +
              ", depth: " + std::to_string(node.depth) +
              (i < result.num_roots ? ", poi: true" : "") + "})\n";
  }
  for (const ProvenanceEdge& edge : result.edges) {
    std::string op = OpTypeToString(edge.event.op);
    for (char& c : op) c = static_cast<char>(std::toupper(c));
    cypher += "CREATE (n" + std::to_string(edge.from) + ")-[:" + op +
              " {start_ts: " + std::to_string(edge.event.start_ts) +
              ", end_ts: " + std::to_string(edge.event.end_ts) +
              ", amount: " + std::to_string(edge.event.amount) +
              ", agentid: " + std::to_string(edge.event.agent_id) +
              ", hop: " + std::to_string(edge.hop) + "}]->(n" +
              std::to_string(edge.to) + ")\n";
  }
  return cypher;
}

}  // namespace aiql
