#include "graph/graph_executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include <regex>

#include "engine/data_query.h"
#include "engine/dependency.h"
#include "engine/projector.h"
#include "query/parser.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

// SQL LIKE -> case-insensitive regex source (same conversion the Cypher
// generator emits as '=~ (?i)...').
std::string LikeToRegexSource(const std::string& pattern) {
  std::string out;
  for (char c : pattern) {
    if (c == '%') {
      out += ".*";
    } else if (c == '_') {
      out += '.';
    } else if (std::string(".\\+*?[^]$(){}=!<>|:-#").find(c) !=
               std::string::npos) {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

/// Property filters for one side of a pattern, evaluated the way a Cypher
/// runtime evaluates them: string predicates are (java-style) regex matches
/// against property values fetched per row — no index, no interning
/// shortcut; numeric predicates are plain comparisons.
struct CypherSideFilter {
  EntityType type = EntityType::kProcess;
  // (attribute, compiled regex, negate).
  std::vector<std::tuple<std::string, std::regex, bool>> regexes;
  std::vector<CompiledPredicate> numeric;

  void Compile(const EntityFilter& filter) {
    type = filter.type;
    for (const CompiledPredicate& pred : filter.predicates) {
      if (pred.kind == AttrKind::kString) {
        bool negate = pred.op == CmpOp::kNe;
        std::string source;
        for (const LikeMatcher& matcher : pred.matchers) {
          if (!source.empty()) source += "|";
          source += LikeToRegexSource(matcher.pattern());
        }
        regexes.emplace_back(pred.attr,
                             std::regex(source, std::regex::icase),
                             negate);
      } else {
        numeric.push_back(pred);
      }
    }
  }

  bool Matches(const EntityStore& store, const Projector& projector,
               EntityId id) const {
    for (const auto& [attr, regex, negate] : regexes) {
      Value value = projector.EntityAttr(type, id, attr);
      const std::string* text = std::get_if<std::string>(&value);
      if (text == nullptr) return false;
      bool hit = std::regex_match(*text, regex);
      if (hit == negate) return false;
    }
    if (!numeric.empty() &&
        !EntityMatchesPredicates(store, type, id, numeric)) {
      return false;
    }
    return true;
  }
};

}  // namespace

Result<QueryResult> GraphExecutor::Execute(const AnalyzedQuery& analyzed) {
  const MultieventQueryAst& ast = *analyzed.ast;
  if (ast.is_anomaly()) {
    return Status::Unimplemented(
        "the graph baseline does not evaluate anomaly queries");
  }

  QueryResult result;
  QueryStats& stats = result.stats;
  stats.patterns = static_cast<int>(ast.patterns.size());
  result.plan = "graph traversal in query order (single-threaded)";

  auto plan_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(std::vector<CompiledPattern> patterns,
                        CompilePatterns(analyzed, graph_->entities()));
  stats.plan_time = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - plan_start)
                        .count();

  auto exec_start = Clock::now();

  // Column names.
  for (const ReturnItemAst& item : ast.return_items) {
    if (!item.alias.empty()) {
      result.table.columns.push_back(item.alias);
    } else if (const auto* ref = std::get_if<AttrRefAst>(&item.expr)) {
      result.table.columns.push_back(ref->ToString());
    } else {
      result.table.columns.push_back("agg");
    }
  }

  const int num_patterns = static_cast<int>(patterns.size());
  Projector projector(graph_->entities(), analyzed);
  // Cypher-style property filters (regex per row; see CypherSideFilter).
  std::vector<CypherSideFilter> subject_filters(num_patterns);
  std::vector<CypherSideFilter> object_filters(num_patterns);
  for (int i = 0; i < num_patterns; ++i) {
    subject_filters[i].Compile(patterns[i].subject);
    object_filters[i].Compile(patterns[i].object);
  }
  std::vector<const Event*> assignment(num_patterns, nullptr);
  std::unordered_map<std::string, NodeId> node_bindings;
  std::unordered_set<std::string> distinct_rows;
  bool limit_reached = false;

  auto relations_ok = [&](int pattern_index) {
    for (const TemporalRelAst& rel : ast.temporal_rels) {
      int left = analyzed.event_index.at(rel.left);
      int right = analyzed.event_index.at(rel.right);
      if (left != pattern_index && right != pattern_index) continue;
      if (assignment[left] == nullptr || assignment[right] == nullptr) {
        continue;
      }
      bool holds = rel.before
                       ? TemporalHolds(*assignment[left], *assignment[right],
                                       rel.within)
                       : TemporalHolds(*assignment[right], *assignment[left],
                                       rel.within);
      if (!holds) return false;
    }
    for (const AttrRelAst& rel : ast.attr_rels) {
      auto pattern_of = [&](const AttrRefAst& ref) -> int {
        auto it = analyzed.event_index.find(ref.var);
        if (it != analyzed.event_index.end()) return it->second;
        return analyzed.entity_occurrences.at(ref.var).front().pattern;
      };
      int lp = pattern_of(rel.left);
      int rp = pattern_of(rel.right);
      if (assignment[lp] == nullptr || assignment[rp] == nullptr) continue;
      if (lp != pattern_index && rp != pattern_index) continue;
      Value left = projector.Resolve(rel.left, assignment);
      Value right = projector.Resolve(rel.right, assignment);
      if (!CompareValues(left, rel.op, right)) return false;
    }
    return true;
  };

  auto emit = [&] {
    std::vector<Value> row;
    row.reserve(ast.return_items.size());
    for (const ReturnItemAst& item : ast.return_items) {
      const auto& ref = std::get<AttrRefAst>(item.expr);
      row.push_back(projector.Resolve(ref, assignment));
    }
    if (ast.distinct) {
      std::string key;
      for (const Value& value : row) {
        key += ValueToString(value);
        key += '\x1f';
      }
      if (!distinct_rows.insert(key).second) return;
    }
    result.table.rows.push_back(std::move(row));
    if (ast.order_by.empty() && ast.limit.has_value() &&
        result.table.rows.size() >= static_cast<size_t>(*ast.limit)) {
      limit_reached = true;
    }
  };

  // Checks one edge against pattern `i` and the current bindings; on match,
  // binds and recurses.
  auto match = [&](auto&& self, int i) -> void {
    if (limit_reached) return;
    if (i == num_patterns) {
      emit();
      return;
    }
    const CompiledPattern& pattern = patterns[i];
    const EventPatternAst& pattern_ast = ast.patterns[i];

    const std::string& subj_var = pattern_ast.subject.var;
    const std::string& obj_var = pattern_ast.object.var;
    auto subj_bound = subj_var.empty() ? node_bindings.end()
                                       : node_bindings.find(subj_var);
    auto obj_bound =
        obj_var.empty() ? node_bindings.end() : node_bindings.find(obj_var);
    bool have_subj = subj_bound != node_bindings.end();
    bool have_obj = obj_bound != node_bindings.end();

    auto try_edge = [&](uint32_t edge_index) {
      if (limit_reached) return;
      const GraphEdge& edge = graph_->edges()[edge_index];
      const Event& event = edge.event;
      ++stats.join_candidates;
      if (!OpMaskContains(pattern.op_mask, event.op)) return;
      if (event.object_type != pattern.object.type) return;
      if (!pattern.time_range.Contains(event.start_ts)) return;
      if (analyzed.agent_filter.has_value()) {
        const auto& agents = *analyzed.agent_filter;
        if (std::find(agents.begin(), agents.end(), event.agent_id) ==
            agents.end()) {
          return;
        }
      }
      if (have_subj && edge.subject != subj_bound->second) return;
      if (have_obj && edge.object != obj_bound->second) return;
      // Per-edge property filters: Neo4j evaluates the regex predicates on
      // each expanded row; there is no candidate-bitset shortcut.
      const EntityStore& store = graph_->entities();
      if (!subject_filters[i].Matches(store, projector, event.subject)) {
        return;
      }
      if (!object_filters[i].Matches(store, projector, event.object)) {
        return;
      }
      if (!subj_var.empty() && subj_var == obj_var &&
          event.subject != graph_->NodeEntity(edge.object)) {
        return;
      }

      assignment[i] = &event;
      bool bound_subj_here = false, bound_obj_here = false;
      if (!subj_var.empty() && !have_subj) {
        node_bindings[subj_var] = edge.subject;
        bound_subj_here = true;
      }
      if (!obj_var.empty() && !have_obj && obj_var != subj_var) {
        node_bindings[obj_var] = edge.object;
        bound_obj_here = true;
      }
      if (relations_ok(i)) self(self, i + 1);
      if (bound_subj_here) node_bindings.erase(subj_var);
      if (bound_obj_here) node_bindings.erase(obj_var);
      assignment[i] = nullptr;
    };

    if (have_subj) {
      const auto& edges = graph_->OutEdges(subj_bound->second);
      stats.events_scanned += edges.size();
      for (uint32_t e : edges) {
        try_edge(e);
        if (limit_reached) return;
      }
      return;
    }
    if (have_obj) {
      const auto& edges = graph_->InEdges(obj_bound->second);
      stats.events_scanned += edges.size();
      for (uint32_t e : edges) {
        try_edge(e);
        if (limit_reached) return;
      }
      return;
    }
    // Unbound on both sides: NodeByLabelScan + Filter, like Neo4j with a
    // regex predicate — iterate every node of the label and evaluate the
    // predicates per node, then expand its relationships.
    const EntityStore& store = graph_->entities();
    if (pattern.subject.has_constraints) {
      size_t universe = store.NumEntities(EntityType::kProcess);
      stats.events_scanned += universe;  // label-scan cost
      for (EntityId id = 0; id < universe; ++id) {
        if (!subject_filters[i].Matches(store, projector, id)) {
          continue;
        }
        NodeId node = graph_->NodeOf(EntityType::kProcess, id);
        const auto& edges = graph_->OutEdges(node);
        stats.events_scanned += edges.size();
        for (uint32_t e : edges) {
          try_edge(e);
          if (limit_reached) return;
        }
      }
      return;
    }
    if (pattern.object.has_constraints) {
      size_t universe = store.NumEntities(pattern.object.type);
      stats.events_scanned += universe;  // label-scan cost
      for (EntityId id = 0; id < universe; ++id) {
        if (!object_filters[i].Matches(store, projector, id)) {
          continue;
        }
        NodeId node = graph_->NodeOf(pattern.object.type, id);
        const auto& edges = graph_->InEdges(node);
        stats.events_scanned += edges.size();
        for (uint32_t e : edges) {
          try_edge(e);
          if (limit_reached) return;
        }
      }
      return;
    }
    // Full relationship scan.
    stats.events_scanned += graph_->num_edges();
    for (uint32_t e = 0; e < graph_->num_edges(); ++e) {
      try_edge(e);
      if (limit_reached) return;
    }
  };
  match(match, 0);

  if (!ast.order_by.empty()) {
    AIQL_ASSIGN_OR_RETURN(auto keys,
                          ResolveOrderColumns(ast.order_by,
                                              ast.return_items));
    OrderResultRows(&result.table, keys);
    if (ast.limit.has_value() &&
        result.table.rows.size() > static_cast<size_t>(*ast.limit)) {
      result.table.rows.resize(static_cast<size_t>(*ast.limit));
    }
  }

  stats.exec_time = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - exec_start)
                        .count();
  return result;
}

Result<QueryResult> GraphExecutor::ExecuteAiql(std::string_view text) {
  auto parse_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseAiql(text));
  Duration parse_time = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - parse_start)
                            .count();
  QueryResult result;
  if (parsed.kind == QueryKind::kDependency) {
    AIQL_ASSIGN_OR_RETURN(auto rewritten,
                          RewriteDependency(*parsed.dependency));
    AIQL_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
    AIQL_ASSIGN_OR_RETURN(result, Execute(analyzed));
  } else {
    AIQL_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                          AnalyzeMultievent(*parsed.multievent, parsed.kind));
    AIQL_ASSIGN_OR_RETURN(result, Execute(analyzed));
  }
  result.stats.parse_time = parse_time;
  return result;
}

}  // namespace aiql
