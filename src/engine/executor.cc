#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "engine/projector.h"
#include "engine/scan.h"
#include "query/attributes.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

Duration ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Matched events of one pattern plus timestamp envelope for pruning. The
/// events are pointers into sealed partitions — the scan path never copies
/// an Event.
struct PatternMatches {
  std::vector<const Event*> events;
  Timestamp min_start = INT64_MAX;
  Timestamp max_start = INT64_MIN;
  Timestamp min_end = INT64_MAX;
  Timestamp max_end = INT64_MIN;

  void Note(const Event& event) {
    min_start = std::min(min_start, event.start_ts);
    max_start = std::max(max_start, event.start_ts);
    min_end = std::min(min_end, event.end_ts);
    max_end = std::max(max_end, event.end_ts);
  }
};

struct JoinKeyHash {
  size_t operator()(const std::vector<EntityId>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (EntityId id : key) {
      h = (h ^ id) * 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// DISTINCT dedup key: the projected row itself, hashed value-wise — no
/// per-row string materialization.
struct RowHash {
  size_t operator()(const std::vector<Value>& row) const {
    uint64_t h = 1469598103934665603ULL;
    for (const Value& value : row) {
      h = (h ^ value.index()) * 1099511628211ULL;
      size_t vh = std::visit(
          [](const auto& v) {
            return std::hash<std::decay_t<decltype(v)>>{}(v);
          },
          value);
      h = (h ^ vh) * 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

MultieventExecutor::MultieventExecutor(const ReadView* view,
                                       EngineOptions options,
                                       ThreadPool* pool)
    : view_(view), options_(options), pool_(pool) {
  if (options_.enable_parallelism && pool_ == nullptr) {
    size_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

Result<QueryResult> MultieventExecutor::Execute(const AnalyzedQuery& analyzed,
                                                QueryContext* ctx) {
  // Entry checkpoint: a shard whose turn comes after the deadline (or after
  // a cancel/budget breach) must fail here even if it would scan nothing —
  // otherwise a stalled-but-empty shard reports success and the degraded
  // partial policy has no failure to drop.
  if (ctx != nullptr) {
    AIQL_RETURN_IF_ERROR(ctx->Check());
  }
  const MultieventQueryAst& ast = *analyzed.ast;
  QueryResult result;
  QueryStats& stats = result.stats;
  stats.patterns = static_cast<int>(ast.patterns.size());
  stats.threads_used =
      options_.enable_parallelism && pool_ != nullptr
          ? static_cast<int>(pool_->num_threads())
          : 1;

  auto plan_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(std::vector<CompiledPattern> patterns,
                        CompilePatterns(analyzed, view_->entities()));
  AIQL_ASSIGN_OR_RETURN(
      std::vector<size_t> order,
      SchedulePatterns(&patterns, *view_, analyzed.agent_filter, options_));
  stats.plan_time = ElapsedUs(plan_start);

  // Render the plan for Explain / debugging.
  {
    std::string plan = "multievent plan (scan order by pruning power):\n";
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const CompiledPattern& p = patterns[order[rank]];
      plan += "  " + std::to_string(rank + 1) + ". pattern #" +
              std::to_string(p.index + 1) + " [" + p.event_var +
              "] est=" + std::to_string(static_cast<int64_t>(
                             p.estimated_cardinality)) +
              "\n";
    }
    result.plan = std::move(plan);
  }

  auto exec_start = Clock::now();

  // --- scan phase -----------------------------------------------------------
  const int num_patterns = static_cast<int>(patterns.size());
  std::vector<PatternMatches> matches(num_patterns);
  // Entity bindings from already-scanned patterns: var -> matched ids.
  std::unordered_map<std::string, EntitySet> bindings;
  std::vector<bool> scanned(num_patterns, false);
  bool empty_result = false;

  // Agent filter as a hybrid bitset, built once per query. When partitioning
  // is on, SelectPartitions already restricts agents, so no per-event check
  // is needed at all; the flat-storage ablation still needs it.
  const AgentFilterSet* agent_filter = nullptr;
  std::optional<AgentFilterSet> agent_filter_storage;
  if (analyzed.agent_filter.has_value() &&
      !view_->options().enable_partitioning) {
    agent_filter_storage.emplace(*analyzed.agent_filter);
    agent_filter = &*agent_filter_storage;
  }

  for (size_t rank = 0; rank < order.size() && !empty_result; ++rank) {
    CompiledPattern& pattern = patterns[order[rank]];
    const EventPatternAst& pattern_ast = ast.patterns[pattern.index];

    // Semi-join pruning: intersect candidate sets with bindings of shared
    // variables scanned earlier.
    if (options_.enable_semi_join) {
      auto apply_binding = [&](const EntityDeclAst& decl,
                               EntityFilter* filter) {
        if (decl.var.empty()) return;
        auto it = bindings.find(decl.var);
        if (it == bindings.end()) return;
        if (filter->candidates.has_value()) {
          filter->candidates->IntersectWith(it->second);
        } else {
          filter->candidates = it->second;
        }
      };
      apply_binding(pattern_ast.subject, &pattern.subject);
      apply_binding(pattern_ast.object, &pattern.object);
    }

    // Temporal pruning: tighten this pattern's scan range using the
    // envelopes of already-scanned patterns.
    if (options_.enable_temporal_pruning) {
      for (const TemporalRelAst& rel : ast.temporal_rels) {
        int left = analyzed.event_index.at(rel.left);
        int right = analyzed.event_index.at(rel.right);
        if (!rel.before) std::swap(left, right);
        // Now: event[left] before event[right].
        if (right == pattern.index && scanned[left] &&
            !matches[left].events.empty()) {
          // This pattern must start at/after some left event's end.
          pattern.time_range.start =
              std::max(pattern.time_range.start, matches[left].min_end);
        }
        if (left == pattern.index && scanned[right] &&
            !matches[right].events.empty()) {
          // This pattern must end at/before some right event's start, so it
          // must start before the latest right start as well.
          pattern.time_range.end =
              std::min(pattern.time_range.end, matches[right].max_start + 1);
        }
      }
    }

    // Empty candidate sets cannot match anything: skip the scan (and the
    // whole query) outright.
    if ((pattern.subject.candidates.has_value() &&
         pattern.subject.candidates->Count() == 0) ||
        (pattern.object.candidates.has_value() &&
         pattern.object.candidates->Count() == 0)) {
      scanned[pattern.index] = true;
      empty_result = true;
      break;
    }

    // Subject == object inside a single pattern (e.g. `proc p connect proc
    // p`) requires an identity check during the scan.
    bool same_var_both_sides =
        !pattern_ast.subject.var.empty() &&
        pattern_ast.subject.var == pattern_ast.object.var;

    // Partition-parallel scan (zero-copy: pointers into sealed partitions).
    AIQL_ASSIGN_OR_RETURN(
        auto partitions,
        view_->SelectPartitions(pattern.time_range, analyzed.agent_filter));
    stats.partitions_scanned += partitions.size();
    std::vector<std::vector<const Event*>> local_matches(partitions.size());
    std::vector<uint64_t> local_scanned(partitions.size(), 0);

    auto scan_partition = [&](size_t pi) {
      // Workers inherit the query context binding so failpoint latency
      // injection inside partition materialization stays interruptible.
      ScopedQueryContext bind(ctx);
      local_scanned[pi] =
          ScanPartition(*partitions[pi].second, pattern, pattern.time_range,
                        agent_filter, same_var_both_sides,
                        &local_matches[pi], ctx,
                        options_.enable_batch_kernels);
    };

    if (options_.enable_parallelism && pool_ != nullptr &&
        partitions.size() > 1) {
      if (ctx != nullptr) {
        pool_->ParallelFor(partitions.size(), scan_partition,
                           [ctx] { return ctx->stopped(); });
      } else {
        pool_->ParallelFor(partitions.size(), scan_partition);
      }
    } else {
      for (size_t pi = 0; pi < partitions.size(); ++pi) {
        if (ctx != nullptr && ctx->stopped()) break;
        scan_partition(pi);
      }
    }
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

    // Merge without re-pushing: note the envelopes, then move the first
    // chunk wholesale and bulk-append the rest.
    PatternMatches& pm = matches[pattern.index];
    size_t total_matches = 0;
    for (size_t pi = 0; pi < partitions.size(); ++pi) {
      stats.events_scanned += local_scanned[pi];
      total_matches += local_matches[pi].size();
      for (const Event* event : local_matches[pi]) pm.Note(*event);
    }
    for (size_t pi = 0; pi < partitions.size(); ++pi) {
      if (local_matches[pi].empty()) continue;
      if (pm.events.empty()) {
        pm.events = std::move(local_matches[pi]);
        pm.events.reserve(total_matches);
      } else {
        pm.events.insert(pm.events.end(), local_matches[pi].begin(),
                         local_matches[pi].end());
      }
    }
    stats.events_matched += pm.events.size();
    scanned[pattern.index] = true;
    if (pm.events.empty()) {
      empty_result = true;
      break;
    }

    // Record bindings for semi-join pruning of later scans. First binding of
    // a var is built in place inside the map (no universe-sized bitset copy);
    // later occurrences intersect into it.
    if (options_.enable_semi_join) {
      auto record_binding = [&](const EntityDeclAst& decl, bool is_subject) {
        if (decl.var.empty()) return;
        size_t universe = view_->entities().NumEntities(decl.type);
        auto [it, inserted] = bindings.try_emplace(decl.var, universe);
        if (inserted) {
          for (const Event* event : pm.events) {
            it->second.Add(is_subject ? event->subject : event->object);
          }
        } else {
          EntitySet set(universe);
          for (const Event* event : pm.events) {
            set.Add(is_subject ? event->subject : event->object);
          }
          // The fused intersect-count spots an emptied binding for free: no
          // entity satisfies every occurrence of the var, so the join can
          // never produce a row.
          if (it->second.IntersectWith(set) == 0) empty_result = true;
        }
      };
      record_binding(pattern_ast.subject, true);
      record_binding(pattern_ast.object, false);
    }
  }

  // --- join phase ------------------------------------------------------------
  Projector projector(view_->entities(), analyzed);

  // Column names follow the return items (alias > rendered expression).
  for (const ReturnItemAst& item : ast.return_items) {
    if (!item.alias.empty()) {
      result.table.columns.push_back(item.alias);
    } else if (const auto* ref = std::get_if<AttrRefAst>(&item.expr)) {
      result.table.columns.push_back(ref->ToString());
    } else {
      const auto& agg = std::get<AggCallAst>(item.expr);
      result.table.columns.push_back(std::string(AggFuncToString(agg.func)) +
                                     "(...)");
    }
  }

  if (empty_result) {
    stats.exec_time = ElapsedUs(exec_start);
    return result;
  }

  // Join specs per rank: for each rank, the list of (side-is-subject)
  // whose var already appeared
  // in earlier-ranked patterns — these form the hash key.
  std::vector<std::vector<bool>> key_sides(num_patterns);
  std::unordered_map<std::string, std::pair<size_t, bool>> first_binding;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const EventPatternAst& pattern_ast = ast.patterns[patterns[order[rank]].index];
    auto note_side = [&](const EntityDeclAst& decl, bool is_subject) {
      if (decl.var.empty()) return;
      if (first_binding.count(decl.var) > 0) {
        key_sides[rank].push_back(is_subject);
      } else {
        first_binding.emplace(decl.var, std::make_pair(rank, is_subject));
      }
    };
    note_side(pattern_ast.subject, true);
    note_side(pattern_ast.object, false);
  }

  // Hash indexes for ranks joining on shared variables.
  using JoinIndex =
      std::unordered_map<std::vector<EntityId>, std::vector<const Event*>,
                         JoinKeyHash>;
  // var -> (rank, is_subject) of its first binding; used to derive keys from
  // the current partial assignment.
  std::vector<JoinIndex> join_indexes(num_patterns);
  std::vector<std::vector<std::pair<size_t, bool>>> key_sources(num_patterns);
  for (size_t rank = 1; rank < order.size(); ++rank) {
    const CompiledPattern& pattern = patterns[order[rank]];
    const EventPatternAst& pattern_ast = ast.patterns[pattern.index];
    std::vector<std::string> key_vars;
    auto consider = [&](const EntityDeclAst& decl, bool is_subject) {
      if (decl.var.empty()) return;
      auto it = first_binding.find(decl.var);
      if (it == first_binding.end() || it->second.first >= rank) return;
      // Guard against duplicate var on both sides (key once).
      for (const std::string& existing : key_vars) {
        if (existing == decl.var) return;
      }
      key_vars.push_back(decl.var);
      key_sides[rank].push_back(is_subject);  // rebuilt below, reset first
      key_sources[rank].push_back(it->second);
    };
    key_sides[rank].clear();
    consider(pattern_ast.subject, true);
    consider(pattern_ast.object, false);

    JoinIndex& index = join_indexes[rank];
    for (const Event* event : matches[pattern.index].events) {
      std::vector<EntityId> key;
      key.reserve(key_sides[rank].size());
      for (bool is_subject : key_sides[rank]) {
        key.push_back(is_subject ? event->subject : event->object);
      }
      index[key].push_back(event);
    }
  }

  std::unordered_set<std::vector<Value>, RowHash> distinct_rows;
  std::vector<const Event*> assignment(num_patterns, nullptr);
  bool limit_reached = false;
  // Join-phase governance checkpoint: every kCheckStride candidates the
  // context is charged and consulted; a violation unwinds the backtracking
  // like a reached limit, and the sticky status is returned below.
  uint64_t candidates_since_check = 0;
  auto governance_ok = [&]() {
    if (ctx == nullptr) return true;
    if (++candidates_since_check < QueryContext::kCheckStride) {
      return !ctx->stopped();
    }
    Status s = ctx->ChargeRows(candidates_since_check);
    candidates_since_check = 0;
    return s.ok();
  };

  // Emits one completed assignment through projection + distinct + limit.
  auto emit = [&] {
    std::vector<Value> row;
    row.reserve(ast.return_items.size());
    for (const ReturnItemAst& item : ast.return_items) {
      const auto& ref = std::get<AttrRefAst>(item.expr);
      row.push_back(projector.Resolve(ref, assignment));
    }
    if (ast.distinct && !distinct_rows.insert(row).second) return;
    result.table.rows.push_back(std::move(row));
    // With `order by`, every row must be produced before sorting; the limit
    // is applied afterwards.
    if (ast.order_by.empty() && ast.limit.has_value() &&
        result.table.rows.size() >= static_cast<size_t>(*ast.limit)) {
      limit_reached = true;
    }
  };

  // Checks all relations between `pattern_index` and already-assigned
  // patterns (by join rank).
  auto relations_ok = [&](int pattern_index) {
    for (const TemporalRelAst& rel : ast.temporal_rels) {
      int left = analyzed.event_index.at(rel.left);
      int right = analyzed.event_index.at(rel.right);
      int other = left == pattern_index ? right
                  : right == pattern_index ? left
                                           : -1;
      if (other < 0 || assignment[other] == nullptr) continue;
      const Event* a = assignment[left];
      const Event* b = assignment[right];
      Duration within = rel.within;
      bool holds = rel.before ? TemporalHolds(*a, *b, within)
                              : TemporalHolds(*b, *a, within);
      if (!holds) return false;
    }
    for (const AttrRelAst& rel : ast.attr_rels) {
      // Evaluate once both referenced patterns are assigned; attribute the
      // check to the later assignment.
      auto pattern_of = [&](const AttrRefAst& ref) -> int {
        auto event_it = analyzed.event_index.find(ref.var);
        if (event_it != analyzed.event_index.end()) return event_it->second;
        return analyzed.entity_occurrences.at(ref.var).front().pattern;
      };
      int lp = pattern_of(rel.left);
      int rp = pattern_of(rel.right);
      if (assignment[lp] == nullptr || assignment[rp] == nullptr) continue;
      if (lp != pattern_index && rp != pattern_index) continue;
      Value left = projector.Resolve(rel.left, assignment);
      Value right = projector.Resolve(rel.right, assignment);
      if (!CompareValues(left, rel.op, right)) return false;
    }
    return true;
  };

  // Backtracking join in scheduled order.
  auto join = [&](auto&& self, size_t rank) -> void {
    if (limit_reached) return;
    if (rank == order.size()) {
      emit();
      return;
    }
    const CompiledPattern& pattern = patterns[order[rank]];
    int pattern_index = pattern.index;
    auto try_event = [&](const Event* event) {
      if (limit_reached) return;
      if (!governance_ok()) {
        limit_reached = true;  // unwind the backtracking promptly
        return;
      }
      ++stats.join_candidates;
      assignment[pattern_index] = event;
      if (relations_ok(pattern_index)) self(self, rank + 1);
      assignment[pattern_index] = nullptr;
    };
    if (rank == 0 || key_sides[rank].empty()) {
      for (const Event* event : matches[pattern_index].events) {
        try_event(event);
        if (limit_reached) return;
      }
      return;
    }
    // Derive the key from already-assigned first bindings.
    std::vector<EntityId> key;
    key.reserve(key_sources[rank].size());
    for (const auto& [src_rank, src_is_subject] : key_sources[rank]) {
      const Event* src = assignment[patterns[order[src_rank]].index];
      key.push_back(src_is_subject ? src->subject : src->object);
    }
    auto it = join_indexes[rank].find(key);
    if (it == join_indexes[rank].end()) return;
    for (const Event* event : it->second) {
      try_event(event);
      if (limit_reached) return;
    }
  };
  join(join, 0);
  if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

  if (!ast.order_by.empty()) {
    AIQL_ASSIGN_OR_RETURN(auto keys,
                          ResolveOrderColumns(ast.order_by,
                                              ast.return_items));
    OrderResultRows(&result.table, keys);
    if (ast.limit.has_value() &&
        result.table.rows.size() > static_cast<size_t>(*ast.limit)) {
      result.table.rows.resize(static_cast<size_t>(*ast.limit));
    }
  }

  stats.exec_time = ElapsedUs(exec_start);
  return result;
}

}  // namespace aiql
