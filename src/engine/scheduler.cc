#include "engine/scheduler.h"

#include <algorithm>
#include <numeric>

namespace aiql {

Result<double> EstimateCardinality(
    const CompiledPattern& pattern, const ReadView& view,
    const std::optional<std::vector<AgentId>>& agents) {
  AIQL_ASSIGN_OR_RETURN(auto partitions,
                        view.SelectPartitions(pattern.time_range, agents));

  double op_events = 0;       // events with a matching operation, in range
  double subject_events = 0;  // events whose subject exe matches
  bool use_exe_counts = !pattern.subject.matched_exe_ids.empty();
  for (const auto& [key, partition] : partitions) {
    // Posting lists give the exact op count inside the pattern's time
    // range (zone-map clipped). Every partition in a read view is sealed,
    // so the postings exist.
    op_events += static_cast<double>(
        partition->OpCountInRange(pattern.op_mask, pattern.time_range));
    if (use_exe_counts) {
      for (StringId exe : pattern.subject.matched_exe_ids) {
        subject_events += static_cast<double>(partition->SubjectExeCount(exe));
      }
    }
  }

  double estimate = op_events;
  if (use_exe_counts) {
    estimate = std::min(estimate, subject_events);
  } else if (pattern.subject.candidates.has_value()) {
    // Non-exe subject constraints: scale by candidate fraction.
    size_t universe = view.entities().NumEntities(EntityType::kProcess);
    double fraction =
        universe == 0 ? 0.0
                      : static_cast<double>(
                            pattern.subject.candidates->Count()) /
                            static_cast<double>(universe);
    estimate *= fraction;
  }
  if (pattern.object.candidates.has_value()) {
    size_t universe = view.entities().NumEntities(pattern.object.type);
    double fraction =
        universe == 0
            ? 0.0
            : static_cast<double>(pattern.object.candidates->Count()) /
                  static_cast<double>(universe);
    estimate *= fraction;
  }
  return estimate;
}

Result<std::vector<size_t>> SchedulePatterns(
    std::vector<CompiledPattern>* patterns, const ReadView& view,
    const std::optional<std::vector<AgentId>>& agents,
    const EngineOptions& options) {
  for (CompiledPattern& pattern : *patterns) {
    AIQL_ASSIGN_OR_RETURN(pattern.estimated_cardinality,
                          EstimateCardinality(pattern, view, agents));
  }
  std::vector<size_t> order(patterns->size());
  std::iota(order.begin(), order.end(), 0);
  if (!options.enable_reordering) return order;

  auto constraint_count = [&](size_t i) {
    return (*patterns)[i].subject.predicates.size() +
           (*patterns)[i].object.predicates.size();
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ca = (*patterns)[a].estimated_cardinality;
    double cb = (*patterns)[b].estimated_cardinality;
    if (ca != cb) return ca < cb;
    // Tie-break: more constraints first (higher pruning power), then the
    // original order for determinism.
    return constraint_count(a) > constraint_count(b);
  });
  return order;
}

}  // namespace aiql
