// Gather-side result merging for the sharded scatter/gather executor.
//
// The fast execution path runs a complete single-shard query per shard and
// merges the per-shard tables here. Merge semantics mirror the single-db
// emit phase:
//   * ORDER BY: each shard's table is already sorted by the resolved order
//     keys, so the merge is a k-way top-k heap merge. Ties (equal keys)
//     break by (shard index, per-shard row index) — deterministic, and the
//     key *sequence* matches the single-db engine's (tie groups may permute,
//     which the tie-aware oracle comparison accepts).
//   * DISTINCT: rows are deduplicated again across shards — disjoint event
//     routing does not make projected rows disjoint (two shards can project
//     the same entity attributes), so per-shard dedup is not enough.
//   * LIMIT: the merge stops after `limit` emitted rows. Per-shard LIMIT
//     pushdown stays sound because the global top-L is contained in the
//     union of per-shard top-Ls.
// Statistics are summed across shards; any shard error fails the whole
// merge with an aggregate Status naming every failed shard and its cause
// (code taken from the lowest failed shard index).

#ifndef AIQL_ENGINE_SHARD_MERGE_H_
#define AIQL_ENGINE_SHARD_MERGE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "engine/result.h"

namespace aiql {

/// How to merge per-shard tables — derived from the query by the sharded
/// executor (ResolveOrderColumns for `order_keys`).
struct ShardMergeSpec {
  bool distinct = false;
  /// (column index, descending) sort keys; empty means unordered (concat).
  std::vector<std::pair<size_t, bool>> order_keys;
  /// Maximum rows to emit; negative means unlimited.
  int64_t limit = -1;
};

/// Three-way row comparison by the given keys, identical to the comparator
/// inside OrderResultRows (numbers numeric, strings lexicographic).
int CompareRowsByKeys(const std::vector<Value>& a, const std::vector<Value>& b,
                      const std::vector<std::pair<size_t, bool>>& keys);

/// Shard-layer transient-failure classification: storage-level faults
/// (I/O errors, checksum failures, unavailability) that are worth a bounded
/// retry, and that map to kUnavailable once retries exhaust. Query-level
/// errors (parse/semantic/deadline/cancel/budget) are never transient.
bool IsTransientShardError(StatusCode code);

/// Builds the aggregate failure Status for a scatter with errors: every
/// failed shard's index and cause appear in the message ("shard 1:
/// IOError: ...; shard 3: ..."); the code is the lowest failed shard's.
Status AggregateShardErrors(const std::vector<Result<QueryResult>>& results);

/// Merges per-shard query results into one. `shard_results` is indexed by
/// shard; errors in any slots fail the merge with their aggregate Status
/// (AggregateShardErrors — every failed shard named, not just the first).
/// Empty and single-shard inputs degenerate to (filtered) concatenation.
/// Column sets must agree across shards. `ctx` (optional) is charged one
/// row per emitted row and checked at stride granularity; a budget breach
/// mid-merge aborts with the context's sticky status.
Result<QueryResult> MergeShardResults(
    std::vector<Result<QueryResult>> shard_results, const ShardMergeSpec& spec,
    QueryContext* ctx = nullptr);

}  // namespace aiql

#endif  // AIQL_ENGINE_SHARD_MERGE_H_
