// Gather-side result merging for the sharded scatter/gather executor.
//
// The fast execution path runs a complete single-shard query per shard and
// merges the per-shard tables here. Merge semantics mirror the single-db
// emit phase:
//   * ORDER BY: each shard's table is already sorted by the resolved order
//     keys, so the merge is a k-way top-k heap merge. Ties (equal keys)
//     break by (shard index, per-shard row index) — deterministic, and the
//     key *sequence* matches the single-db engine's (tie groups may permute,
//     which the tie-aware oracle comparison accepts).
//   * DISTINCT: rows are deduplicated again across shards — disjoint event
//     routing does not make projected rows disjoint (two shards can project
//     the same entity attributes), so per-shard dedup is not enough.
//   * LIMIT: the merge stops after `limit` emitted rows. Per-shard LIMIT
//     pushdown stays sound because the global top-L is contained in the
//     union of per-shard top-Ls.
// Statistics are summed across shards; the first shard error (in shard
// order) fails the whole merge.

#ifndef AIQL_ENGINE_SHARD_MERGE_H_
#define AIQL_ENGINE_SHARD_MERGE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/result.h"

namespace aiql {

/// How to merge per-shard tables — derived from the query by the sharded
/// executor (ResolveOrderColumns for `order_keys`).
struct ShardMergeSpec {
  bool distinct = false;
  /// (column index, descending) sort keys; empty means unordered (concat).
  std::vector<std::pair<size_t, bool>> order_keys;
  /// Maximum rows to emit; negative means unlimited.
  int64_t limit = -1;
};

/// Three-way row comparison by the given keys, identical to the comparator
/// inside OrderResultRows (numbers numeric, strings lexicographic).
int CompareRowsByKeys(const std::vector<Value>& a, const std::vector<Value>& b,
                      const std::vector<std::pair<size_t, bool>>& keys);

/// Merges per-shard query results into one. `shard_results` is indexed by
/// shard; a Status error in any slot fails the merge with that Status
/// (lowest shard index wins). Empty and single-shard inputs degenerate to
/// (filtered) concatenation. Column sets must agree across shards.
Result<QueryResult> MergeShardResults(
    std::vector<Result<QueryResult>> shard_results, const ShardMergeSpec& spec);

}  // namespace aiql

#endif  // AIQL_ENGINE_SHARD_MERGE_H_
