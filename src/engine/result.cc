#include "engine/result.h"

#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"

namespace aiql {

std::string ValueToString(const Value& value) {
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  if (const auto* i = std::get_if<int64_t>(&value)) return std::to_string(*i);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", std::get<double>(value));
  return buf;
}

std::string DegradedInfo::ToString() const {
  if (!partial && shards_retried == 0) return "";
  std::string out = partial ? "PARTIAL result" : "complete result";
  out += " (" + std::to_string(shards_failed) + " shard(s) failed, " +
         std::to_string(shards_timed_out) + " timed out, " +
         std::to_string(shards_retried) + " retried)";
  for (const ShardExecStatus& s : shard_status) {
    if (s.status.ok() && s.attempts <= 1) continue;
    out += "\n  shard " + std::to_string(s.shard) + ": " +
           (s.dropped ? "DROPPED " : "") + s.status.ToString() +
           " after " + std::to_string(s.attempts) + " attempt(s)";
  }
  return out;
}

std::string ResultTable::ToString(size_t max_rows) const {
  TablePrinter printer(columns);
  size_t shown = std::min(max_rows, rows.size());
  for (size_t i = 0; i < shown; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& value : rows[i]) {
      cells.push_back(ValueToString(value));
    }
    printer.AddRow(std::move(cells));
  }
  std::string out = printer.ToString();
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

void ResultTable::SortRows() {
  auto render = [](const std::vector<Value>& row) {
    std::string key;
    for (const Value& value : row) {
      key += ValueToString(value);
      key += '\x1f';
    }
    return key;
  };
  std::sort(rows.begin(), rows.end(),
            [&](const std::vector<Value>& a, const std::vector<Value>& b) {
              return render(a) < render(b);
            });
}

Result<std::vector<std::pair<size_t, bool>>> ResolveOrderColumns(
    const std::vector<OrderItemAst>& order_by,
    const std::vector<ReturnItemAst>& return_items, size_t column_offset) {
  std::vector<std::pair<size_t, bool>> keys;
  for (const OrderItemAst& item : order_by) {
    bool found = false;
    for (size_t i = 0; i < return_items.size(); ++i) {
      const ReturnItemAst& ret = return_items[i];
      bool alias_match = !ret.alias.empty() && ret.alias == item.ref.var &&
                         item.ref.attr.empty();
      bool expr_match = false;
      if (const auto* ref = std::get_if<AttrRefAst>(&ret.expr)) {
        expr_match = ref->var == item.ref.var && ref->attr == item.ref.attr;
      }
      if (alias_match || expr_match) {
        keys.emplace_back(column_offset + i, item.desc);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::SemanticError("order by '" + item.ref.ToString() +
                                   "' does not match any return item");
    }
  }
  return keys;
}

void OrderResultRows(ResultTable* table,
                     const std::vector<std::pair<size_t, bool>>& keys) {
  if (keys.empty()) return;
  auto compare_values = [](const Value& a, const Value& b) {
    bool a_str = std::holds_alternative<std::string>(a);
    bool b_str = std::holds_alternative<std::string>(b);
    if (a_str && b_str) {
      return std::get<std::string>(a).compare(std::get<std::string>(b));
    }
    auto num = [](const Value& v) {
      if (const auto* i = std::get_if<int64_t>(&v)) {
        return static_cast<double>(*i);
      }
      if (const auto* d = std::get_if<double>(&v)) return *d;
      return 0.0;
    };
    double l = num(a), r = num(b);
    return l < r ? -1 : (l > r ? 1 : 0);
  };
  std::stable_sort(
      table->rows.begin(), table->rows.end(),
      [&](const std::vector<Value>& a, const std::vector<Value>& b) {
        for (const auto& [column, desc] : keys) {
          if (column >= a.size() || column >= b.size()) continue;
          int cmp = compare_values(a[column], b[column]);
          if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
        }
        return false;
      });
}

bool ResultTable::operator==(const ResultTable& other) const {
  if (columns != other.columns || rows.size() != other.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != other.rows[i].size()) return false;
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (ValueToString(rows[i][j]) != ValueToString(other.rows[i][j])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace aiql
