#include "engine/shard_exec.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/anomaly.h"
#include "engine/dependency.h"
#include "engine/executor.h"
#include "engine/scan.h"
#include "engine/shard_merge.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

Duration ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Globally merged matches of one pattern: per-shard event pointers (ids
/// are shard-local) plus the cross-shard timestamp envelope that drives
/// temporal pruning of later patterns.
struct GlobalMatches {
  std::vector<std::vector<const Event*>> per_shard;
  size_t total = 0;
  Timestamp min_start = INT64_MAX;
  Timestamp max_start = INT64_MIN;
  Timestamp min_end = INT64_MAX;
  Timestamp max_end = INT64_MIN;

  void Note(const Event& event) {
    min_start = std::min(min_start, event.start_ts);
    max_start = std::max(max_start, event.start_ts);
    min_end = std::min(min_end, event.end_ts);
    max_end = std::max(max_end, event.end_ts);
  }
};

}  // namespace

ShardedExecutor::ShardedExecutor(const ShardMap* shards, EngineOptions options,
                                 ThreadPool* pool)
    : shards_(shards), options_(options), pool_(pool) {
  if (options_.enable_parallelism && pool_ == nullptr) {
    size_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

Result<QueryResult> ShardedExecutor::Execute(const ParsedQuery& parsed) {
  if (shards_->num_shards() == 0) {
    return Status::InvalidArgument("shard map has no shards");
  }
  // Scatter-time consistency: every shard's view is taken here, before any
  // work, each atomic against its shard's concurrent ingestion.
  std::vector<ReadView> views = shards_->OpenReadViews();

  switch (parsed.kind) {
    case QueryKind::kMultievent: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      if (analyzed.ast->patterns.size() == 1) {
        return ExecuteFast(analyzed, views);
      }
      return ExecuteGathered(analyzed, views, /*anomaly=*/false);
    }
    case QueryKind::kAnomaly: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      // Window groups aggregate events regardless of host, so anomaly
      // always gathers (per-shard aggregates would not compose).
      return ExecuteGathered(analyzed, views, /*anomaly=*/true);
    }
    case QueryKind::kDependency: {
      AIQL_ASSIGN_OR_RETURN(auto rewritten,
                            RewriteDependency(*parsed.dependency));
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
      Result<QueryResult> result =
          analyzed.ast->patterns.size() == 1
              ? ExecuteFast(analyzed, views)
              : ExecuteGathered(analyzed, views, /*anomaly=*/false);
      if (!result.ok()) return result;
      result.value().plan = "dependency query rewritten to multievent:\n" +
                            result.value().plan;
      return result;
    }
  }
  return Status::Internal("unknown query kind");
}

Result<QueryResult> ShardedExecutor::ExecuteFast(const AnalyzedQuery& analyzed,
                                                 std::vector<ReadView>& views) {
  const MultieventQueryAst& ast = *analyzed.ast;
  const size_t num_shards = views.size();

  ShardMergeSpec spec;
  spec.distinct = ast.distinct;
  if (!ast.order_by.empty()) {
    AIQL_ASSIGN_OR_RETURN(
        spec.order_keys, ResolveOrderColumns(ast.order_by, ast.return_items));
  }
  if (ast.limit.has_value()) spec.limit = *ast.limit;

  // Fan the complete query across shards; each per-shard run is itself
  // partition-parallel on the shared pool (nested ParallelFor is safe:
  // callers participate).
  std::vector<std::optional<Result<QueryResult>>> scattered(num_shards);
  auto run_shard = [&](size_t s) {
    MultieventExecutor executor(&views[s], options_, pool_);
    scattered[s].emplace(executor.Execute(analyzed));
  };
  if (options_.enable_parallelism && pool_ != nullptr && num_shards > 1) {
    pool_->ParallelFor(num_shards, run_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  }

  std::string shard_plan;
  std::vector<Result<QueryResult>> shard_results;
  shard_results.reserve(num_shards);
  for (auto& r : scattered) {
    if (r->ok() && shard_plan.empty()) shard_plan = r->value().plan;
    shard_results.push_back(std::move(*r));
  }
  AIQL_ASSIGN_OR_RETURN(QueryResult merged,
                        MergeShardResults(std::move(shard_results), spec));
  merged.plan = "sharded scatter/gather over " + std::to_string(num_shards) +
                " shards (per-shard execute + order-aware merge)\n" +
                shard_plan;
  return merged;
}

Result<QueryResult> ShardedExecutor::ExecuteGathered(
    const AnalyzedQuery& analyzed, std::vector<ReadView>& views,
    bool anomaly) {
  const MultieventQueryAst& ast = *analyzed.ast;
  const size_t num_shards = views.size();
  const int num_patterns = static_cast<int>(ast.patterns.size());
  auto scatter_start = Clock::now();

  // Per-shard compiled patterns: candidate sets live in each shard's id
  // space, so compilation runs once per shard.
  std::vector<std::vector<CompiledPattern>> compiled(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    AIQL_ASSIGN_OR_RETURN(compiled[s],
                          CompilePatterns(analyzed, views[s].entities()));
  }

  // Global schedule: pruning power of a pattern is its fleet-wide match
  // count, so per-shard estimates sum before the (stable) ascending sort —
  // mirroring SchedulePatterns over a merged database.
  std::vector<size_t> order(num_patterns);
  std::iota(order.begin(), order.end(), size_t{0});
  if (options_.enable_reordering && num_patterns > 1) {
    std::vector<double> estimates(num_patterns, 0.0);
    for (size_t s = 0; s < num_shards; ++s) {
      for (int p = 0; p < num_patterns; ++p) {
        AIQL_ASSIGN_OR_RETURN(
            double estimate,
            EstimateCardinality(compiled[s][p], views[s],
                                analyzed.agent_filter));
        estimates[p] += estimate;
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return estimates[a] < estimates[b];
    });
  }

  // Per-shard per-event agent re-check, only needed where partition
  // selection cannot restrict agents (flat-storage ablation).
  std::vector<std::optional<AgentFilterSet>> agent_filters(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (analyzed.agent_filter.has_value() &&
        !views[s].options().enable_partitioning) {
      agent_filters[s].emplace(analyzed.agent_filter->begin(),
                               analyzed.agent_filter->end());
    }
  }

  QueryStats scatter_stats;
  std::vector<GlobalMatches> matches(num_patterns);
  for (auto& m : matches) m.per_shard.resize(num_shards);
  std::vector<TimeRange> ranges(num_patterns);
  for (int p = 0; p < num_patterns; ++p) ranges[p] = compiled[0][p].time_range;
  std::vector<bool> scanned(num_patterns, false);
  bool empty_result = false;

  // Global semi-join bindings: var -> the intersected set of matched
  // entities across the var's scanned occurrences, keyed by attribute tuple
  // (the only cross-shard entity name) with one representative ref kept for
  // re-resolution into shard id spaces.
  std::unordered_map<std::string, std::unordered_map<std::string, ObjectRef>>
      bindings;

  for (size_t rank = 0; rank < order.size() && !empty_result; ++rank) {
    const int p = static_cast<int>(order[rank]);
    const EventPatternAst& pattern_ast = ast.patterns[p];

    if (options_.enable_semi_join) {
      auto apply_binding = [&](const EntityDeclAst& decl, bool is_subject) {
        if (decl.var.empty()) return;
        auto it = bindings.find(decl.var);
        if (it == bindings.end()) return;
        for (size_t s = 0; s < num_shards; ++s) {
          EntitySet set(views[s].entities().NumEntities(decl.type));
          for (const auto& [key, ref] : it->second) {
            EntityId id = FindEntity(views[s].entities(), ref);
            if (id != kInvalidEntityId) set.Add(id);
          }
          EntityFilter* filter = is_subject ? &compiled[s][p].subject
                                            : &compiled[s][p].object;
          if (filter->candidates.has_value()) {
            filter->candidates->IntersectWith(set);
          } else {
            filter->candidates = std::move(set);
          }
        }
      };
      apply_binding(pattern_ast.subject, /*is_subject=*/true);
      apply_binding(pattern_ast.object, /*is_subject=*/false);
    }

    if (options_.enable_temporal_pruning) {
      for (const TemporalRelAst& rel : ast.temporal_rels) {
        int left = analyzed.event_index.at(rel.left);
        int right = analyzed.event_index.at(rel.right);
        if (!rel.before) std::swap(left, right);
        if (right == p && scanned[left] && matches[left].total > 0) {
          ranges[p].start = std::max(ranges[p].start, matches[left].min_end);
        }
        if (left == p && scanned[right] && matches[right].total > 0) {
          ranges[p].end = std::min(ranges[p].end,
                                   matches[right].max_start + 1);
        }
      }
    }

    bool same_var_both_sides =
        !pattern_ast.subject.var.empty() &&
        pattern_ast.subject.var == pattern_ast.object.var;

    // Scatter this pattern's scan over every shard's selected partitions in
    // one flat partition-parallel pass, ordered like a merged database
    // would order them ((bucket, agent); shards own disjoint agents).
    struct FlatPartition {
      uint32_t shard;
      PartitionKey key;
      const EventPartition* partition;
    };
    std::vector<FlatPartition> flat;
    for (size_t s = 0; s < num_shards; ++s) {
      // A shard whose candidate set emptied cannot match — skip its scan
      // (the global empty check is the summed match count below).
      if ((compiled[s][p].subject.candidates.has_value() &&
           compiled[s][p].subject.candidates->Count() == 0) ||
          (compiled[s][p].object.candidates.has_value() &&
           compiled[s][p].object.candidates->Count() == 0)) {
        continue;
      }
      AIQL_ASSIGN_OR_RETURN(
          auto selected,
          views[s].SelectPartitions(ranges[p], analyzed.agent_filter));
      flat.reserve(flat.size() + selected.size());
      for (const auto& [key, partition] : selected) {
        flat.push_back(
            FlatPartition{static_cast<uint32_t>(s), key, partition});
      }
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const FlatPartition& a, const FlatPartition& b) {
                       if (a.key.bucket != b.key.bucket) {
                         return a.key.bucket < b.key.bucket;
                       }
                       return a.key.agent_id < b.key.agent_id;
                     });
    scatter_stats.partitions_scanned += flat.size();

    std::vector<std::vector<const Event*>> local(flat.size());
    std::vector<uint64_t> local_scanned(flat.size(), 0);
    auto scan_partition = [&](size_t i) {
      const FlatPartition& fp = flat[i];
      const AgentFilterSet* agent_filter =
          agent_filters[fp.shard].has_value() ? &*agent_filters[fp.shard]
                                              : nullptr;
      // Anomaly's single-db scan never requires subject==object identity,
      // so its scatter must not either (central re-run settles semantics).
      local_scanned[i] = ScanPartition(
          *fp.partition, compiled[fp.shard][p], ranges[p], agent_filter,
          anomaly ? false : same_var_both_sides, &local[i]);
    };
    if (options_.enable_parallelism && pool_ != nullptr && flat.size() > 1) {
      pool_->ParallelFor(flat.size(), scan_partition);
    } else {
      for (size_t i = 0; i < flat.size(); ++i) scan_partition(i);
    }

    GlobalMatches& gm = matches[p];
    for (size_t i = 0; i < flat.size(); ++i) {
      scatter_stats.events_scanned += local_scanned[i];
      for (const Event* event : local[i]) gm.Note(*event);
      gm.total += local[i].size();
      std::vector<const Event*>& dest = gm.per_shard[flat[i].shard];
      dest.insert(dest.end(), local[i].begin(), local[i].end());
    }
    scatter_stats.events_matched += gm.total;
    scanned[p] = true;
    if (gm.total == 0) {
      empty_result = true;
      break;
    }

    if (options_.enable_semi_join) {
      auto record_binding = [&](const EntityDeclAst& decl, bool is_subject) {
        if (decl.var.empty()) return;
        std::unordered_map<std::string, ObjectRef> occurrence;
        for (size_t s = 0; s < num_shards; ++s) {
          std::unordered_set<EntityId> unique_ids;
          for (const Event* event : gm.per_shard[s]) {
            unique_ids.insert(is_subject ? event->subject : event->object);
          }
          for (EntityId id : unique_ids) {
            ObjectRef ref = MakeEntityRef(views[s].entities(), decl.type, id);
            std::string key = EntityRefKey(ref);
            occurrence.emplace(std::move(key), std::move(ref));
          }
        }
        auto [it, inserted] = bindings.try_emplace(decl.var);
        if (inserted) {
          it->second = std::move(occurrence);
          return;
        }
        // Later occurrence: intersect by attribute key; an emptied binding
        // proves no entity satisfies every occurrence — no join row exists.
        for (auto iter = it->second.begin(); iter != it->second.end();) {
          if (occurrence.count(iter->first) == 0) {
            iter = it->second.erase(iter);
          } else {
            ++iter;
          }
        }
        if (it->second.empty()) empty_result = true;
      };
      record_binding(pattern_ast.subject, /*is_subject=*/true);
      record_binding(pattern_ast.object, /*is_subject=*/false);
    }
  }

  // Gather: rebuild the matched-event superset as a transient single
  // database and let the ordinary executor settle joins / windows /
  // DISTINCT / ORDER BY centrally. Records are re-derived through each
  // owning shard's entity store; dedup stays off so the (already
  // deduplicated) events survive verbatim. Append order is the merged
  // partition order, keeping the rebuild deterministic.
  StorageOptions mini_options;
  mini_options.dedup_window = 0;
  mini_options.partition_duration = views[0].options().partition_duration;
  AuditDatabase mini(mini_options);
  std::unordered_set<const Event*> gathered;
  for (int p = 0; p < num_patterns; ++p) {
    for (size_t s = 0; s < num_shards; ++s) {
      for (const Event* event : matches[p].per_shard[s]) {
        if (!gathered.insert(event).second) continue;  // multi-pattern match
        AIQL_RETURN_IF_ERROR(
            mini.Append(RecordForEvent(*event, views[s].entities())));
      }
    }
  }
  AIQL_RETURN_IF_ERROR(mini.Seal());
  Duration scatter_time = ElapsedUs(scatter_start);

  ReadView mini_view = mini.OpenReadView();
  QueryResult result;
  if (anomaly) {
    AnomalyExecutor central(&mini_view, options_, pool_);
    AIQL_ASSIGN_OR_RETURN(result, central.Execute(analyzed));
  } else {
    MultieventExecutor central(&mini_view, options_, pool_);
    AIQL_ASSIGN_OR_RETURN(result, central.Execute(analyzed));
  }
  result.stats.events_scanned += scatter_stats.events_scanned;
  result.stats.events_matched = scatter_stats.events_matched;
  result.stats.partitions_scanned += scatter_stats.partitions_scanned;
  result.stats.exec_time += scatter_time;
  result.plan = "sharded scatter/gather over " + std::to_string(num_shards) +
                " shards (gathered " + std::to_string(gathered.size()) +
                " events into a transient database)\n" +
                result.plan;
  return result;
}

}  // namespace aiql
