#include "engine/shard_exec.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "engine/anomaly.h"
#include "engine/dependency.h"
#include "engine/executor.h"
#include "engine/scan.h"
#include "engine/shard_merge.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

Duration ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Runs `attempt` with bounded retry/backoff for transient storage faults
/// (engine options shard_max_attempts / shard_retry_backoff). The backoff
/// doubles per retry and sleeps interruptibly, so deadline/cancel cut it
/// short. After retries exhaust, a transient error is mapped to
/// kUnavailable naming the shard and the underlying cause. `attempts_out`
/// reports the total attempts made.
template <typename Fn>
auto AttemptShard(size_t shard, const EngineOptions& options, QueryContext* ctx,
                  int* attempts_out, Fn&& attempt)
    -> decltype(attempt()) {
  const int max_attempts = std::max(1, options.shard_max_attempts);
  auto backoff = options.shard_retry_backoff;
  int attempts = 0;
  decltype(attempt()) last = Status::Internal("shard not attempted");
  while (attempts < max_attempts) {
    ++attempts;
    if (ctx != nullptr) {
      Status governed = ctx->Check();
      if (!governed.ok()) {
        last = governed;
        break;
      }
    }
    last = attempt();
    if (last.ok() || !IsTransientShardError(last.status().code())) break;
    if (attempts >= max_attempts) break;
    InterruptibleSleep(
        std::chrono::duration_cast<std::chrono::microseconds>(backoff));
    backoff *= 2;
  }
  *attempts_out = attempts;
  if (!last.ok() && IsTransientShardError(last.status().code())) {
    last = Status::Unavailable(
        "shard " + std::to_string(shard) + " unavailable after " +
        std::to_string(attempts) + " attempt(s): " + last.status().ToString());
  }
  return last;
}

/// Fills the DegradedInfo summary counters from per-shard annotations.
DegradedInfo SummarizeShards(std::vector<ShardExecStatus> shard_status) {
  DegradedInfo info;
  for (const ShardExecStatus& s : shard_status) {
    if (s.attempts > 1) ++info.shards_retried;
    if (!s.dropped) continue;
    info.partial = true;
    if (s.status.code() == StatusCode::kDeadlineExceeded) {
      ++info.shards_timed_out;
    } else {
      ++info.shards_failed;
    }
  }
  info.shard_status = std::move(shard_status);
  return info;
}

/// Globally merged matches of one pattern: per-shard event pointers (ids
/// are shard-local) plus the cross-shard timestamp envelope that drives
/// temporal pruning of later patterns.
struct GlobalMatches {
  std::vector<std::vector<const Event*>> per_shard;
  size_t total = 0;
  Timestamp min_start = INT64_MAX;
  Timestamp max_start = INT64_MIN;
  Timestamp min_end = INT64_MAX;
  Timestamp max_end = INT64_MIN;

  void Note(const Event& event) {
    min_start = std::min(min_start, event.start_ts);
    max_start = std::max(max_start, event.start_ts);
    min_end = std::min(min_end, event.end_ts);
    max_end = std::max(max_end, event.end_ts);
  }
};

}  // namespace

ShardedExecutor::ShardedExecutor(const ShardMap* shards, EngineOptions options,
                                 ThreadPool* pool)
    : shards_(shards), options_(options), pool_(pool) {
  if (options_.enable_parallelism && pool_ == nullptr) {
    size_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

Result<QueryResult> ShardedExecutor::Execute(const ParsedQuery& parsed,
                                             QueryContext* ctx) {
  if (shards_->num_shards() == 0) {
    return Status::InvalidArgument("shard map has no shards");
  }
  // Scatter-time consistency: every shard's view is taken here, before any
  // work, each atomic against its shard's concurrent ingestion.
  std::vector<ReadView> views = shards_->OpenReadViews();

  switch (parsed.kind) {
    case QueryKind::kMultievent: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      if (analyzed.ast->patterns.size() == 1) {
        return ExecuteFast(analyzed, views, ctx);
      }
      return ExecuteGathered(analyzed, views, /*anomaly=*/false, ctx);
    }
    case QueryKind::kAnomaly: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      // Window groups aggregate events regardless of host, so anomaly
      // always gathers (per-shard aggregates would not compose).
      return ExecuteGathered(analyzed, views, /*anomaly=*/true, ctx);
    }
    case QueryKind::kDependency: {
      AIQL_ASSIGN_OR_RETURN(auto rewritten,
                            RewriteDependency(*parsed.dependency));
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
      Result<QueryResult> result =
          analyzed.ast->patterns.size() == 1
              ? ExecuteFast(analyzed, views, ctx)
              : ExecuteGathered(analyzed, views, /*anomaly=*/false, ctx);
      if (!result.ok()) return result;
      result.value().plan = "dependency query rewritten to multievent:\n" +
                            result.value().plan;
      return result;
    }
  }
  return Status::Internal("unknown query kind");
}

Result<QueryResult> ShardedExecutor::ExecuteFast(const AnalyzedQuery& analyzed,
                                                 std::vector<ReadView>& views,
                                                 QueryContext* ctx) {
  const MultieventQueryAst& ast = *analyzed.ast;
  const size_t num_shards = views.size();

  ShardMergeSpec spec;
  spec.distinct = ast.distinct;
  if (!ast.order_by.empty()) {
    AIQL_ASSIGN_OR_RETURN(
        spec.order_keys, ResolveOrderColumns(ast.order_by, ast.return_items));
  }
  if (ast.limit.has_value()) spec.limit = *ast.limit;

  // Fan the complete query across shards; each per-shard run is itself
  // partition-parallel on the shared pool (nested ParallelFor is safe:
  // callers participate). Each shard runs under AttemptShard: transient
  // storage faults (and the `shard.scatter` failpoint) get bounded retries
  // with interruptible backoff, then map to kUnavailable.
  std::vector<std::optional<Result<QueryResult>>> scattered(num_shards);
  std::vector<ShardExecStatus> shard_status(num_shards);
  auto run_shard = [&](size_t s) {
    // Bind the query context for this worker so injected failpoint latency
    // deep inside snapshot reads stays interruptible by the deadline.
    ScopedQueryContext bind(ctx);
    shard_status[s].shard = static_cast<uint32_t>(s);
    Result<QueryResult> result = AttemptShard(
        s, options_, ctx, &shard_status[s].attempts,
        [&]() -> Result<QueryResult> {
          AIQL_RETURN_IF_ERROR(
              Failpoint::Hit("shard.scatter", static_cast<int64_t>(s)));
          MultieventExecutor executor(&views[s], options_, pool_);
          return executor.Execute(analyzed, ctx);
        });
    shard_status[s].status = result.ok() ? Status::OK() : result.status();
    scattered[s].emplace(std::move(result));
  };
  if (options_.enable_parallelism && pool_ != nullptr && num_shards > 1) {
    pool_->ParallelFor(num_shards, run_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  }

  std::string shard_plan;
  std::vector<Result<QueryResult>> shard_results;
  shard_results.reserve(num_shards);
  size_t failed = 0;
  for (auto& r : scattered) {
    if (r->ok() && shard_plan.empty()) shard_plan = r->value().plan;
    if (!r->ok()) ++failed;
    shard_results.push_back(std::move(*r));
  }

  if (failed > 0) {
    if (options_.shard_policy == ShardPolicy::kStrict || failed == num_shards) {
      // Strict (or nothing survived): fail with every shard error named.
      return AggregateShardErrors(shard_results);
    }
    // Partial: drop the failed shards and merge the survivors. A dropped
    // deadline must not also kill the bounded merge below, so the deadline
    // (and only the deadline) is lifted; cancel/budget stay fatal.
    if (ctx != nullptr) ctx->LiftDeadline();
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_results[s].ok()) continue;
      shard_status[s].dropped = true;
      shard_results[s] = QueryResult{};  // empty table, no columns
    }
    // Empty placeholder tables have no columns; give them the survivor
    // column set so the merge's column check passes.
    std::vector<std::string> columns;
    for (const auto& r : shard_results) {
      if (!r.value().table.columns.empty()) {
        columns = r.value().table.columns;
        break;
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_status[s].dropped) {
        shard_results[s].value().table.columns = columns;
      }
    }
  }

  AIQL_ASSIGN_OR_RETURN(QueryResult merged,
                        MergeShardResults(std::move(shard_results), spec, ctx));
  merged.degraded = SummarizeShards(std::move(shard_status));
  merged.plan = "sharded scatter/gather over " + std::to_string(num_shards) +
                " shards (per-shard execute + order-aware merge)\n" +
                shard_plan;
  return merged;
}

Result<QueryResult> ShardedExecutor::ExecuteGathered(
    const AnalyzedQuery& analyzed, std::vector<ReadView>& views,
    bool anomaly, QueryContext* ctx) {
  const MultieventQueryAst& ast = *analyzed.ast;
  const size_t num_shards = views.size();
  const int num_patterns = static_cast<int>(ast.patterns.size());
  const bool partial = options_.shard_policy == ShardPolicy::kPartial;
  auto scatter_start = Clock::now();

  // Per-shard degradation state: a shard that fails a storage-level
  // operation (after retries) is either fatal (strict) or dropped for the
  // rest of the scatter (partial) — its earlier contributions stay (they
  // are real events; the central re-execution re-checks every predicate,
  // so the result remains a sound subset of the full answer).
  std::vector<ShardExecStatus> shard_status(num_shards);
  std::vector<bool> shard_dropped(num_shards, false);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_status[s].shard = static_cast<uint32_t>(s);
  }
  auto drop_or_fail = [&](size_t s, const Status& status) -> Status {
    shard_status[s].status = status;
    if (!partial) return status;
    shard_status[s].dropped = true;
    shard_dropped[s] = true;
    return Status::OK();
  };

  // Per-shard compiled patterns: candidate sets live in each shard's id
  // space, so compilation runs once per shard.
  std::vector<std::vector<CompiledPattern>> compiled(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    AIQL_ASSIGN_OR_RETURN(compiled[s],
                          CompilePatterns(analyzed, views[s].entities()));
  }

  // Global schedule: pruning power of a pattern is its fleet-wide match
  // count, so per-shard estimates sum before the (stable) ascending sort —
  // mirroring SchedulePatterns over a merged database.
  std::vector<size_t> order(num_patterns);
  std::iota(order.begin(), order.end(), size_t{0});
  if (options_.enable_reordering && num_patterns > 1) {
    std::vector<double> estimates(num_patterns, 0.0);
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_dropped[s]) continue;
      for (int p = 0; p < num_patterns; ++p) {
        int attempts = 0;
        Result<double> estimate =
            AttemptShard(s, options_, ctx, &attempts, [&] {
              return EstimateCardinality(compiled[s][p], views[s],
                                         analyzed.agent_filter);
            });
        shard_status[s].attempts = std::max(shard_status[s].attempts, attempts);
        if (!estimate.ok()) {
          AIQL_RETURN_IF_ERROR(drop_or_fail(s, estimate.status()));
          break;
        }
        estimates[p] += *estimate;
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return estimates[a] < estimates[b];
    });
  }

  // Per-shard per-event agent re-check, only needed where partition
  // selection cannot restrict agents (flat-storage ablation). The filter is
  // a hybrid bitset, so the re-check is an id-compare, not a hash probe.
  std::vector<std::optional<AgentFilterSet>> agent_filters(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (analyzed.agent_filter.has_value() &&
        !views[s].options().enable_partitioning) {
      agent_filters[s].emplace(*analyzed.agent_filter);
    }
  }

  QueryStats scatter_stats;
  std::vector<GlobalMatches> matches(num_patterns);
  for (auto& m : matches) m.per_shard.resize(num_shards);
  std::vector<TimeRange> ranges(num_patterns);
  for (int p = 0; p < num_patterns; ++p) ranges[p] = compiled[0][p].time_range;
  std::vector<bool> scanned(num_patterns, false);
  bool empty_result = false;

  // Global semi-join bindings: var -> the intersected set of matched
  // entities across the var's scanned occurrences, keyed by attribute tuple
  // (the only cross-shard entity name) with one representative ref kept for
  // re-resolution into shard id spaces.
  std::unordered_map<std::string, std::unordered_map<std::string, ObjectRef>>
      bindings;

  for (size_t rank = 0; rank < order.size() && !empty_result; ++rank) {
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());
    const int p = static_cast<int>(order[rank]);
    const EventPatternAst& pattern_ast = ast.patterns[p];

    if (options_.enable_semi_join) {
      auto apply_binding = [&](const EntityDeclAst& decl, bool is_subject) {
        if (decl.var.empty()) return;
        auto it = bindings.find(decl.var);
        if (it == bindings.end()) return;
        for (size_t s = 0; s < num_shards; ++s) {
          EntitySet set(views[s].entities().NumEntities(decl.type));
          for (const auto& [key, ref] : it->second) {
            EntityId id = FindEntity(views[s].entities(), ref);
            if (id != kInvalidEntityId) set.Add(id);
          }
          EntityFilter* filter = is_subject ? &compiled[s][p].subject
                                            : &compiled[s][p].object;
          if (filter->candidates.has_value()) {
            filter->candidates->IntersectWith(set);
          } else {
            filter->candidates = std::move(set);
          }
        }
      };
      apply_binding(pattern_ast.subject, /*is_subject=*/true);
      apply_binding(pattern_ast.object, /*is_subject=*/false);
    }

    if (options_.enable_temporal_pruning) {
      for (const TemporalRelAst& rel : ast.temporal_rels) {
        int left = analyzed.event_index.at(rel.left);
        int right = analyzed.event_index.at(rel.right);
        if (!rel.before) std::swap(left, right);
        if (right == p && scanned[left] && matches[left].total > 0) {
          ranges[p].start = std::max(ranges[p].start, matches[left].min_end);
        }
        if (left == p && scanned[right] && matches[right].total > 0) {
          ranges[p].end = std::min(ranges[p].end,
                                   matches[right].max_start + 1);
        }
      }
    }

    bool same_var_both_sides =
        !pattern_ast.subject.var.empty() &&
        pattern_ast.subject.var == pattern_ast.object.var;

    // Scatter this pattern's scan over every shard's selected partitions in
    // one flat partition-parallel pass, ordered like a merged database
    // would order them ((bucket, agent); shards own disjoint agents).
    struct FlatPartition {
      uint32_t shard;
      PartitionKey key;
      const EventPartition* partition;
    };
    std::vector<FlatPartition> flat;
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_dropped[s]) continue;
      // A shard whose candidate set emptied cannot match — skip its scan
      // (the global empty check is the summed match count below).
      if ((compiled[s][p].subject.candidates.has_value() &&
           compiled[s][p].subject.candidates->Count() == 0) ||
          (compiled[s][p].object.candidates.has_value() &&
           compiled[s][p].object.candidates->Count() == 0)) {
        continue;
      }
      // Partition selection materializes lazily for snapshot-backed shards
      // — the transient-fault site; retried with backoff, then degraded
      // per policy. The `shard.scatter` failpoint covers the gathered path
      // here too (same site name as the fast path, arg = shard index).
      int attempts = 0;
      auto selected = AttemptShard(
          s, options_, ctx, &attempts,
          [&]() -> Result<std::vector<
                       std::pair<PartitionKey, const EventPartition*>>> {
            AIQL_RETURN_IF_ERROR(
                Failpoint::Hit("shard.scatter", static_cast<int64_t>(s)));
            return views[s].SelectPartitions(ranges[p],
                                             analyzed.agent_filter);
          });
      shard_status[s].attempts = std::max(shard_status[s].attempts, attempts);
      if (!selected.ok()) {
        AIQL_RETURN_IF_ERROR(drop_or_fail(s, selected.status()));
        continue;
      }
      flat.reserve(flat.size() + selected->size());
      for (const auto& [key, partition] : *selected) {
        flat.push_back(
            FlatPartition{static_cast<uint32_t>(s), key, partition});
      }
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const FlatPartition& a, const FlatPartition& b) {
                       if (a.key.bucket != b.key.bucket) {
                         return a.key.bucket < b.key.bucket;
                       }
                       return a.key.agent_id < b.key.agent_id;
                     });
    scatter_stats.partitions_scanned += flat.size();

    std::vector<std::vector<const Event*>> local(flat.size());
    std::vector<uint64_t> local_scanned(flat.size(), 0);
    auto scan_partition = [&](size_t i) {
      ScopedQueryContext bind(ctx);
      const FlatPartition& fp = flat[i];
      const AgentFilterSet* agent_filter =
          agent_filters[fp.shard].has_value() ? &*agent_filters[fp.shard]
                                              : nullptr;
      // Anomaly's single-db scan never requires subject==object identity,
      // so its scatter must not either (central re-run settles semantics).
      local_scanned[i] = ScanPartition(
          *fp.partition, compiled[fp.shard][p], ranges[p], agent_filter,
          anomaly ? false : same_var_both_sides, &local[i], ctx,
          options_.enable_batch_kernels);
    };
    if (options_.enable_parallelism && pool_ != nullptr && flat.size() > 1) {
      if (ctx != nullptr) {
        pool_->ParallelFor(flat.size(), scan_partition,
                           [ctx] { return ctx->stopped(); });
      } else {
        pool_->ParallelFor(flat.size(), scan_partition);
      }
    } else {
      for (size_t i = 0; i < flat.size(); ++i) {
        if (ctx != nullptr && ctx->stopped()) break;
        scan_partition(i);
      }
    }
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

    GlobalMatches& gm = matches[p];
    for (size_t i = 0; i < flat.size(); ++i) {
      scatter_stats.events_scanned += local_scanned[i];
      for (const Event* event : local[i]) gm.Note(*event);
      gm.total += local[i].size();
      std::vector<const Event*>& dest = gm.per_shard[flat[i].shard];
      dest.insert(dest.end(), local[i].begin(), local[i].end());
    }
    scatter_stats.events_matched += gm.total;
    scanned[p] = true;
    if (gm.total == 0) {
      empty_result = true;
      break;
    }

    if (options_.enable_semi_join) {
      auto record_binding = [&](const EntityDeclAst& decl, bool is_subject) {
        if (decl.var.empty()) return;
        std::unordered_map<std::string, ObjectRef> occurrence;
        for (size_t s = 0; s < num_shards; ++s) {
          std::unordered_set<EntityId> unique_ids;
          for (const Event* event : gm.per_shard[s]) {
            unique_ids.insert(is_subject ? event->subject : event->object);
          }
          for (EntityId id : unique_ids) {
            ObjectRef ref = MakeEntityRef(views[s].entities(), decl.type, id);
            std::string key = EntityRefKey(ref);
            occurrence.emplace(std::move(key), std::move(ref));
          }
        }
        auto [it, inserted] = bindings.try_emplace(decl.var);
        if (inserted) {
          it->second = std::move(occurrence);
          return;
        }
        // Later occurrence: intersect by attribute key; an emptied binding
        // proves no entity satisfies every occurrence — no join row exists.
        for (auto iter = it->second.begin(); iter != it->second.end();) {
          if (occurrence.count(iter->first) == 0) {
            iter = it->second.erase(iter);
          } else {
            ++iter;
          }
        }
        if (it->second.empty()) empty_result = true;
      };
      record_binding(pattern_ast.subject, /*is_subject=*/true);
      record_binding(pattern_ast.object, /*is_subject=*/false);
    }
  }

  // Nothing survived: a fully-degraded scatter is a failure, not an empty
  // answer (mirrors the fast path).
  if (partial && num_shards > 0) {
    bool all_dropped = true;
    for (size_t s = 0; s < num_shards; ++s) {
      all_dropped = all_dropped && shard_dropped[s];
    }
    if (all_dropped) {
      std::vector<Result<QueryResult>> statuses;
      statuses.reserve(num_shards);
      for (const ShardExecStatus& st : shard_status) {
        statuses.emplace_back(st.status);
      }
      return AggregateShardErrors(statuses);
    }
  }

  // Gather: rebuild the matched-event superset as a transient single
  // database and let the ordinary executor settle joins / windows /
  // DISTINCT / ORDER BY centrally. Records are re-derived through each
  // owning shard's entity store; dedup stays off so the (already
  // deduplicated) events survive verbatim. Append order is the merged
  // partition order, keeping the rebuild deterministic.
  StorageOptions mini_options;
  mini_options.dedup_window = 0;
  mini_options.partition_duration = views[0].options().partition_duration;
  AuditDatabase mini(mini_options);
  std::unordered_set<const Event*> gathered;
  for (int p = 0; p < num_patterns; ++p) {
    for (size_t s = 0; s < num_shards; ++s) {
      for (const Event* event : matches[p].per_shard[s]) {
        if (!gathered.insert(event).second) continue;  // multi-pattern match
        // Cross-shard gathering is the memory-amplifying step: charge the
        // context per rebuilt event so a memory budget caps the rebuild.
        if (ctx != nullptr) {
          AIQL_RETURN_IF_ERROR(ctx->ChargeMemory(sizeof(EventRecord)));
        }
        AIQL_RETURN_IF_ERROR(
            mini.Append(RecordForEvent(*event, views[s].entities())));
      }
    }
  }
  AIQL_RETURN_IF_ERROR(mini.Seal());
  Duration scatter_time = ElapsedUs(scatter_start);

  ReadView mini_view = mini.OpenReadView();
  QueryResult result;
  if (anomaly) {
    AnomalyExecutor central(&mini_view, options_, pool_);
    AIQL_ASSIGN_OR_RETURN(result, central.Execute(analyzed, ctx));
  } else {
    MultieventExecutor central(&mini_view, options_, pool_);
    AIQL_ASSIGN_OR_RETURN(result, central.Execute(analyzed, ctx));
  }
  result.stats.events_scanned += scatter_stats.events_scanned;
  result.stats.events_matched = scatter_stats.events_matched;
  result.stats.partitions_scanned += scatter_stats.partitions_scanned;
  result.stats.exec_time += scatter_time;
  result.degraded = SummarizeShards(std::move(shard_status));
  result.plan = "sharded scatter/gather over " + std::to_string(num_shards) +
                " shards (gathered " + std::to_string(gathered.size()) +
                " events into a transient database)\n" +
                result.plan;
  return result;
}

}  // namespace aiql
