#include "engine/data_query.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace aiql {

namespace {

// An attribute value pulled out of a stored entity.
struct AttrValue {
  bool is_string = true;
  std::string_view str;
  int64_t num = 0;
};

AttrValue GetEntityAttr(const EntityStore& store, EntityType type,
                        EntityId id, const std::string& attr) {
  AttrValue out;
  switch (type) {
    case EntityType::kProcess: {
      const ProcessEntity& p = store.processes()[id];
      if (attr == "exe_name") {
        out.str = store.exe_names().Get(p.exe_name);
      } else if (attr == "user") {
        out.str = store.users().Get(p.user);
      } else if (attr == "pid") {
        out.is_string = false;
        out.num = p.pid;
      } else {  // agentid
        out.is_string = false;
        out.num = p.agent_id;
      }
      break;
    }
    case EntityType::kFile: {
      const FileEntity& f = store.files()[id];
      if (attr == "path") {
        out.str = store.paths().Get(f.path);
      } else {  // agentid
        out.is_string = false;
        out.num = f.agent_id;
      }
      break;
    }
    case EntityType::kNetwork: {
      const NetworkEntity& n = store.networks()[id];
      if (attr == "dst_ip") {
        out.str = store.ips().Get(n.dst_ip);
      } else if (attr == "src_ip") {
        out.str = store.ips().Get(n.src_ip);
      } else if (attr == "protocol") {
        out.str = store.protocols().Get(n.protocol);
      } else if (attr == "dst_port") {
        out.is_string = false;
        out.num = n.dst_port;
      } else if (attr == "src_port") {
        out.is_string = false;
        out.num = n.src_port;
      } else {  // agentid
        out.is_string = false;
        out.num = n.agent_id;
      }
      break;
    }
  }
  return out;
}

// Maps a (type, canonical attr) pair onto its interned dictionary, or
// nullopt for numeric attrs (pid, ports, agentid).
std::optional<DictAttr> DictAttrFor(EntityType type, const std::string& attr) {
  switch (type) {
    case EntityType::kProcess:
      if (attr == "exe_name") return DictAttr::kExeName;
      if (attr == "user") return DictAttr::kUser;
      return std::nullopt;
    case EntityType::kFile:
      if (attr == "path") return DictAttr::kPath;
      return std::nullopt;
    case EntityType::kNetwork:
      if (attr == "dst_ip") return DictAttr::kDstIp;
      if (attr == "src_ip") return DictAttr::kSrcIp;
      if (attr == "protocol") return DictAttr::kProtocol;
      return std::nullopt;
  }
  return std::nullopt;
}

// The entity's interned value id for a dictionary attr.
StringId GetEntityAttrId(const EntityStore& store, EntityType type,
                         EntityId id, DictAttr attr) {
  switch (attr) {
    case DictAttr::kExeName:
      return store.processes()[id].exe_name;
    case DictAttr::kUser:
      return store.processes()[id].user;
    case DictAttr::kPath:
      return store.files()[id].path;
    case DictAttr::kDstIp:
      return store.networks()[id].dst_ip;
    case DictAttr::kSrcIp:
      return store.networks()[id].src_ip;
    case DictAttr::kProtocol:
      return store.networks()[id].protocol;
  }
  (void)type;
  return kInvalidStringId;
}

bool EvalStringPredicate(const CompiledPredicate& pred,
                         std::string_view text) {
  switch (pred.op) {
    case CmpOp::kEq:
    case CmpOp::kLike:
    case CmpOp::kIn: {
      for (const LikeMatcher& matcher : pred.matchers) {
        if (matcher.Matches(text)) return true;
      }
      return false;
    }
    case CmpOp::kNe: {
      for (const LikeMatcher& matcher : pred.matchers) {
        if (matcher.Matches(text)) return false;
      }
      return true;
    }
    default:
      return false;  // analyzer rejects ordered comparisons on strings
  }
}

bool EvalIntPredicate(const CompiledPredicate& pred, int64_t value) {
  switch (pred.op) {
    case CmpOp::kEq:
      return value == pred.ints[0];
    case CmpOp::kNe:
      return value != pred.ints[0];
    case CmpOp::kLt:
      return value < pred.ints[0];
    case CmpOp::kLe:
      return value <= pred.ints[0];
    case CmpOp::kGt:
      return value > pred.ints[0];
    case CmpOp::kGe:
      return value >= pred.ints[0];
    case CmpOp::kIn:
      // ints are sorted + deduped at compile time, so IN is a binary search
      // instead of the linear std::find the row path used to pay per value.
      return std::binary_search(pred.ints.begin(), pred.ints.end(), value);
    default:
      return false;
  }
}

bool EvalPredicate(const EntityStore& store, EntityType type, EntityId id,
                   const CompiledPredicate& pred) {
  // Dictionary form: the predicate was evaluated against the whole
  // dictionary at compile time, so testing an entity is one u32 membership
  // test on its interned value id — no string touches.
  if (pred.matched_ids != nullptr) {
    StringId sid = GetEntityAttrId(store, type, id, *pred.dict_attr);
    bool matched = pred.matched_ids->bits.Contains(sid);
    return pred.op == CmpOp::kNe ? !matched : matched;
  }
  AttrValue value = GetEntityAttr(store, type, id, pred.attr);
  return value.is_string ? EvalStringPredicate(pred, value.str)
                         : EvalIntPredicate(pred, value.num);
}

Result<CompiledPredicate> CompileConstraint(EntityType type,
                                            const AttrConstraint& constraint) {
  AIQL_ASSIGN_OR_RETURN(AttrInfo info,
                        ResolveEntityAttr(type, constraint.attr));
  CompiledPredicate pred;
  pred.attr = info.canonical;
  pred.op = constraint.op;
  pred.kind = info.kind;
  for (const ValueLiteral& value : constraint.values) {
    if (info.kind == AttrKind::kString) {
      // '=' against a wildcard-free string is exact (case-insensitive)
      // equality; with wildcards (or explicit LIKE / bare-string shorthand)
      // it is a LIKE match.
      pred.matchers.emplace_back(value.str);
    } else {
      pred.ints.push_back(value.i);
    }
  }
  if (pred.kind != AttrKind::kString && pred.op == CmpOp::kIn) {
    std::sort(pred.ints.begin(), pred.ints.end());
    pred.ints.erase(std::unique(pred.ints.begin(), pred.ints.end()),
                    pred.ints.end());
  }
  return pred;
}

// Compiles the dictionary-id form of a string predicate on an interned
// attr: one cached dictionary evaluation per matcher, unioned. After this,
// every per-entity (and per-event, via candidate sets) evaluation of the
// predicate is a u32 bitset test.
void CompilePredicateIdSet(const EntityStore& store, EntityType type,
                           CompiledPredicate* pred) {
  if (pred->kind != AttrKind::kString) return;
  if (pred->op != CmpOp::kEq && pred->op != CmpOp::kNe &&
      pred->op != CmpOp::kLike && pred->op != CmpOp::kIn) {
    return;  // analyzer rejects ordered string comparisons; keep legacy path
  }
  std::optional<DictAttr> attr = DictAttrFor(type, pred->attr);
  if (!attr.has_value() || pred->matchers.empty()) return;
  pred->dict_attr = attr;
  if (pred->matchers.size() == 1) {
    pred->matched_ids = store.MatchDictionary(*attr, pred->matchers[0]);
    return;
  }
  auto combined = std::make_shared<DictionaryBitset>();
  for (const LikeMatcher& matcher : pred->matchers) {
    auto part = store.MatchDictionary(*attr, matcher);
    combined->bits.UnionWith(part->bits);
    combined->version = part->version;
  }
  pred->matched_ids = std::move(combined);
}

// True if `pred` constrains the attribute that has a postings index.
bool IsIndexedAttr(EntityType type, const CompiledPredicate& pred) {
  switch (type) {
    case EntityType::kProcess:
      return pred.attr == "exe_name";
    case EntityType::kFile:
      return pred.attr == "path";
    case EntityType::kNetwork:
      return pred.attr == "dst_ip" || pred.attr == "src_ip";
  }
  return false;
}

bool IsPositiveMatch(const CompiledPredicate& pred) {
  return pred.op == CmpOp::kEq || pred.op == CmpOp::kLike ||
         pred.op == CmpOp::kIn;
}

// Seeds candidate ids from the attribute index for an indexed predicate.
std::vector<EntityId> SeedFromIndex(const EntityStore& store, EntityType type,
                                    const CompiledPredicate& pred) {
  std::vector<EntityId> seed;
  if (pred.matched_ids != nullptr) {
    // Dictionary form: expand the (already unioned) matching value ids
    // through the attribute postings in one pass.
    store.ExpandMatches(*pred.dict_attr, pred.matched_ids->bits, &seed);
  } else {
    for (const LikeMatcher& matcher : pred.matchers) {
      std::vector<EntityId> ids;
      switch (type) {
        case EntityType::kProcess:
          ids = store.FindProcessesByExe(matcher);
          break;
        case EntityType::kFile:
          ids = store.FindFilesByPath(matcher);
          break;
        case EntityType::kNetwork:
          ids = store.FindNetworksByIp(matcher, pred.attr == "src_ip");
          break;
      }
      seed.insert(seed.end(), ids.begin(), ids.end());
    }
  }
  std::sort(seed.begin(), seed.end());
  seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
  return seed;
}

// Builds the candidate set for a filter with at least one predicate.
void ResolveCandidates(const EntityStore& store, EntityFilter* filter) {
  const size_t universe = store.NumEntities(filter->type);
  // Prefer an indexed, positively-matching predicate as the seed.
  const CompiledPredicate* indexed = nullptr;
  for (const CompiledPredicate& pred : filter->predicates) {
    if (IsIndexedAttr(filter->type, pred) && IsPositiveMatch(pred)) {
      indexed = &pred;
      break;
    }
  }
  EntitySet set(universe);
  if (indexed != nullptr) {
    for (EntityId id : SeedFromIndex(store, filter->type, *indexed)) {
      bool pass = true;
      for (const CompiledPredicate& pred : filter->predicates) {
        if (&pred == indexed) continue;
        if (!EvalPredicate(store, filter->type, id, pred)) {
          pass = false;
          break;
        }
      }
      if (pass) set.Add(id);
    }
  } else {
    for (EntityId id = 0; id < universe; ++id) {
      bool pass = true;
      for (const CompiledPredicate& pred : filter->predicates) {
        if (!EvalPredicate(store, filter->type, id, pred)) {
          pass = false;
          break;
        }
      }
      if (pass) set.Add(id);
    }
  }
  filter->candidates = std::move(set);
}

// Collects exe-name string ids matched by the subject's exe predicates.
std::vector<StringId> MatchExeIds(const EntityStore& store,
                                  const EntityFilter& filter) {
  std::vector<const CompiledPredicate*> exe_preds;
  for (const CompiledPredicate& pred : filter.predicates) {
    if (pred.attr == "exe_name" && IsPositiveMatch(pred)) {
      exe_preds.push_back(&pred);
    }
  }
  std::vector<StringId> out;
  if (exe_preds.empty()) return out;
  // All-dictionary form: the matching ids per predicate are already cached
  // bitsets, so the conjunction is a word-wise intersection.
  bool all_compiled = true;
  for (const CompiledPredicate* pred : exe_preds) {
    all_compiled = all_compiled && pred->matched_ids != nullptr;
  }
  if (all_compiled) {
    DenseBitset acc = exe_preds.front()->matched_ids->bits;
    for (size_t i = 1; i < exe_preds.size(); ++i) {
      acc.IntersectWith(exe_preds[i]->matched_ids->bits);
    }
    return acc.ToVector();
  }
  store.exe_names().ForEach([&](StringId id, std::string_view text) {
    for (const CompiledPredicate* pred : exe_preds) {
      if (!EvalStringPredicate(*pred, text)) return;
    }
    out.push_back(id);
  });
  return out;
}

}  // namespace

bool FilterAccepts(const EntityFilter& filter, EntityId id) {
  return !filter.candidates.has_value() || filter.candidates->Contains(id);
}

bool EntityMatchesPredicates(const EntityStore& store, EntityType type,
                             EntityId id,
                             const std::vector<CompiledPredicate>& preds) {
  for (const CompiledPredicate& pred : preds) {
    if (!EvalPredicate(store, type, id, pred)) return false;
  }
  return true;
}

Result<std::vector<CompiledPattern>> CompilePatterns(
    const AnalyzedQuery& analyzed, const EntityStore& store) {
  const MultieventQueryAst& ast = *analyzed.ast;

  // Merge constraints of shared variables across all their occurrences: the
  // constraints written on any occurrence of `f1` apply to every pattern
  // that mentions `f1`.
  std::unordered_map<std::string, std::vector<const AttrConstraint*>>
      merged_constraints;
  for (const EventPatternAst& pattern : ast.patterns) {
    for (const EntityDeclAst* decl : {&pattern.subject, &pattern.object}) {
      if (decl->var.empty()) continue;
      auto& list = merged_constraints[decl->var];
      for (const AttrConstraint& constraint : decl->constraints) {
        list.push_back(&constraint);
      }
    }
  }

  std::vector<CompiledPattern> compiled;
  compiled.reserve(ast.patterns.size());
  for (int i = 0; i < static_cast<int>(ast.patterns.size()); ++i) {
    const EventPatternAst& pattern = ast.patterns[i];
    CompiledPattern cp;
    cp.index = i;
    cp.event_var = analyzed.event_vars[i];
    for (OpType op : pattern.ops) {
      cp.op_mask |= OpBit(op);
    }
    cp.time_range = analyzed.time_window;

    auto compile_side = [&](const EntityDeclAst& decl,
                            EntityFilter* filter) -> Status {
      filter->type = decl.type;
      std::vector<const AttrConstraint*> constraints;
      if (!decl.var.empty()) {
        constraints = merged_constraints[decl.var];
      } else {
        for (const AttrConstraint& constraint : decl.constraints) {
          constraints.push_back(&constraint);
        }
      }
      for (const AttrConstraint* constraint : constraints) {
        AIQL_ASSIGN_OR_RETURN(CompiledPredicate pred,
                              CompileConstraint(decl.type, *constraint));
        CompilePredicateIdSet(store, decl.type, &pred);
        filter->predicates.push_back(std::move(pred));
      }
      filter->has_constraints = !filter->predicates.empty();
      if (filter->has_constraints) {
        ResolveCandidates(store, filter);
      }
      return Status::OK();
    };
    AIQL_RETURN_IF_ERROR(compile_side(pattern.subject, &cp.subject));
    AIQL_RETURN_IF_ERROR(compile_side(pattern.object, &cp.object));
    cp.subject.matched_exe_ids = MatchExeIds(store, cp.subject);
    compiled.push_back(std::move(cp));
  }
  return compiled;
}

}  // namespace aiql
