#include "engine/data_query.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace aiql {

size_t EntitySet::IntersectWith(const EntitySet& other) {
  size_t n = std::min(bits_.size(), other.bits_.size());
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    bits_[i] &= other.bits_[i];
    count += static_cast<size_t>(std::popcount(bits_[i]));
  }
  for (size_t i = n; i < bits_.size(); ++i) {
    bits_[i] = 0;
  }
  return count;
}

size_t EntitySet::Count() const {
  size_t count = 0;
  for (uint64_t word : bits_) {
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

std::vector<EntityId> EntitySet::ToVector() const {
  std::vector<EntityId> out;
  for (size_t w = 0; w < bits_.size(); ++w) {
    uint64_t word = bits_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(static_cast<EntityId>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

namespace {

// An attribute value pulled out of a stored entity.
struct AttrValue {
  bool is_string = true;
  std::string_view str;
  int64_t num = 0;
};

AttrValue GetEntityAttr(const EntityStore& store, EntityType type,
                        EntityId id, const std::string& attr) {
  AttrValue out;
  switch (type) {
    case EntityType::kProcess: {
      const ProcessEntity& p = store.processes()[id];
      if (attr == "exe_name") {
        out.str = store.exe_names().Get(p.exe_name);
      } else if (attr == "user") {
        out.str = store.users().Get(p.user);
      } else if (attr == "pid") {
        out.is_string = false;
        out.num = p.pid;
      } else {  // agentid
        out.is_string = false;
        out.num = p.agent_id;
      }
      break;
    }
    case EntityType::kFile: {
      const FileEntity& f = store.files()[id];
      if (attr == "path") {
        out.str = store.paths().Get(f.path);
      } else {  // agentid
        out.is_string = false;
        out.num = f.agent_id;
      }
      break;
    }
    case EntityType::kNetwork: {
      const NetworkEntity& n = store.networks()[id];
      if (attr == "dst_ip") {
        out.str = store.ips().Get(n.dst_ip);
      } else if (attr == "src_ip") {
        out.str = store.ips().Get(n.src_ip);
      } else if (attr == "protocol") {
        out.str = store.protocols().Get(n.protocol);
      } else if (attr == "dst_port") {
        out.is_string = false;
        out.num = n.dst_port;
      } else if (attr == "src_port") {
        out.is_string = false;
        out.num = n.src_port;
      } else {  // agentid
        out.is_string = false;
        out.num = n.agent_id;
      }
      break;
    }
  }
  return out;
}

bool EvalStringPredicate(const CompiledPredicate& pred,
                         std::string_view text) {
  switch (pred.op) {
    case CmpOp::kEq:
    case CmpOp::kLike:
    case CmpOp::kIn: {
      for (const LikeMatcher& matcher : pred.matchers) {
        if (matcher.Matches(text)) return true;
      }
      return false;
    }
    case CmpOp::kNe: {
      for (const LikeMatcher& matcher : pred.matchers) {
        if (matcher.Matches(text)) return false;
      }
      return true;
    }
    default:
      return false;  // analyzer rejects ordered comparisons on strings
  }
}

bool EvalIntPredicate(const CompiledPredicate& pred, int64_t value) {
  switch (pred.op) {
    case CmpOp::kEq:
      return value == pred.ints[0];
    case CmpOp::kNe:
      return value != pred.ints[0];
    case CmpOp::kLt:
      return value < pred.ints[0];
    case CmpOp::kLe:
      return value <= pred.ints[0];
    case CmpOp::kGt:
      return value > pred.ints[0];
    case CmpOp::kGe:
      return value >= pred.ints[0];
    case CmpOp::kIn:
      return std::find(pred.ints.begin(), pred.ints.end(), value) !=
             pred.ints.end();
    default:
      return false;
  }
}

bool EvalPredicate(const EntityStore& store, EntityType type, EntityId id,
                   const CompiledPredicate& pred) {
  AttrValue value = GetEntityAttr(store, type, id, pred.attr);
  return value.is_string ? EvalStringPredicate(pred, value.str)
                         : EvalIntPredicate(pred, value.num);
}

Result<CompiledPredicate> CompileConstraint(EntityType type,
                                            const AttrConstraint& constraint) {
  AIQL_ASSIGN_OR_RETURN(AttrInfo info,
                        ResolveEntityAttr(type, constraint.attr));
  CompiledPredicate pred;
  pred.attr = info.canonical;
  pred.op = constraint.op;
  pred.kind = info.kind;
  for (const ValueLiteral& value : constraint.values) {
    if (info.kind == AttrKind::kString) {
      // '=' against a wildcard-free string is exact (case-insensitive)
      // equality; with wildcards (or explicit LIKE / bare-string shorthand)
      // it is a LIKE match.
      pred.matchers.emplace_back(value.str);
    } else {
      pred.ints.push_back(value.i);
    }
  }
  return pred;
}

// True if `pred` constrains the attribute that has a postings index.
bool IsIndexedAttr(EntityType type, const CompiledPredicate& pred) {
  switch (type) {
    case EntityType::kProcess:
      return pred.attr == "exe_name";
    case EntityType::kFile:
      return pred.attr == "path";
    case EntityType::kNetwork:
      return pred.attr == "dst_ip" || pred.attr == "src_ip";
  }
  return false;
}

bool IsPositiveMatch(const CompiledPredicate& pred) {
  return pred.op == CmpOp::kEq || pred.op == CmpOp::kLike ||
         pred.op == CmpOp::kIn;
}

// Seeds candidate ids from the attribute index for an indexed predicate.
std::vector<EntityId> SeedFromIndex(const EntityStore& store, EntityType type,
                                    const CompiledPredicate& pred) {
  std::vector<EntityId> seed;
  for (const LikeMatcher& matcher : pred.matchers) {
    std::vector<EntityId> ids;
    switch (type) {
      case EntityType::kProcess:
        ids = store.FindProcessesByExe(matcher);
        break;
      case EntityType::kFile:
        ids = store.FindFilesByPath(matcher);
        break;
      case EntityType::kNetwork:
        ids = store.FindNetworksByIp(matcher, pred.attr == "src_ip");
        break;
    }
    seed.insert(seed.end(), ids.begin(), ids.end());
  }
  std::sort(seed.begin(), seed.end());
  seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
  return seed;
}

// Builds the candidate set for a filter with at least one predicate.
void ResolveCandidates(const EntityStore& store, EntityFilter* filter) {
  const size_t universe = store.NumEntities(filter->type);
  // Prefer an indexed, positively-matching predicate as the seed.
  const CompiledPredicate* indexed = nullptr;
  for (const CompiledPredicate& pred : filter->predicates) {
    if (IsIndexedAttr(filter->type, pred) && IsPositiveMatch(pred)) {
      indexed = &pred;
      break;
    }
  }
  EntitySet set(universe);
  if (indexed != nullptr) {
    for (EntityId id : SeedFromIndex(store, filter->type, *indexed)) {
      bool pass = true;
      for (const CompiledPredicate& pred : filter->predicates) {
        if (&pred == indexed) continue;
        if (!EvalPredicate(store, filter->type, id, pred)) {
          pass = false;
          break;
        }
      }
      if (pass) set.Add(id);
    }
  } else {
    for (EntityId id = 0; id < universe; ++id) {
      bool pass = true;
      for (const CompiledPredicate& pred : filter->predicates) {
        if (!EvalPredicate(store, filter->type, id, pred)) {
          pass = false;
          break;
        }
      }
      if (pass) set.Add(id);
    }
  }
  filter->candidates = std::move(set);
}

// Collects exe-name string ids matched by the subject's exe predicates.
std::vector<StringId> MatchExeIds(const EntityStore& store,
                                  const EntityFilter& filter) {
  std::vector<const CompiledPredicate*> exe_preds;
  for (const CompiledPredicate& pred : filter.predicates) {
    if (pred.attr == "exe_name" && IsPositiveMatch(pred)) {
      exe_preds.push_back(&pred);
    }
  }
  std::vector<StringId> out;
  if (exe_preds.empty()) return out;
  store.exe_names().ForEach([&](StringId id, std::string_view text) {
    for (const CompiledPredicate* pred : exe_preds) {
      if (!EvalStringPredicate(*pred, text)) return;
    }
    out.push_back(id);
  });
  return out;
}

}  // namespace

bool FilterAccepts(const EntityFilter& filter, EntityId id) {
  return !filter.candidates.has_value() || filter.candidates->Contains(id);
}

bool EntityMatchesPredicates(const EntityStore& store, EntityType type,
                             EntityId id,
                             const std::vector<CompiledPredicate>& preds) {
  for (const CompiledPredicate& pred : preds) {
    if (!EvalPredicate(store, type, id, pred)) return false;
  }
  return true;
}

Result<std::vector<CompiledPattern>> CompilePatterns(
    const AnalyzedQuery& analyzed, const EntityStore& store) {
  const MultieventQueryAst& ast = *analyzed.ast;

  // Merge constraints of shared variables across all their occurrences: the
  // constraints written on any occurrence of `f1` apply to every pattern
  // that mentions `f1`.
  std::unordered_map<std::string, std::vector<const AttrConstraint*>>
      merged_constraints;
  for (const EventPatternAst& pattern : ast.patterns) {
    for (const EntityDeclAst* decl : {&pattern.subject, &pattern.object}) {
      if (decl->var.empty()) continue;
      auto& list = merged_constraints[decl->var];
      for (const AttrConstraint& constraint : decl->constraints) {
        list.push_back(&constraint);
      }
    }
  }

  std::vector<CompiledPattern> compiled;
  compiled.reserve(ast.patterns.size());
  for (int i = 0; i < static_cast<int>(ast.patterns.size()); ++i) {
    const EventPatternAst& pattern = ast.patterns[i];
    CompiledPattern cp;
    cp.index = i;
    cp.event_var = analyzed.event_vars[i];
    for (OpType op : pattern.ops) {
      cp.op_mask |= OpBit(op);
    }
    cp.time_range = analyzed.time_window;

    auto compile_side = [&](const EntityDeclAst& decl,
                            EntityFilter* filter) -> Status {
      filter->type = decl.type;
      std::vector<const AttrConstraint*> constraints;
      if (!decl.var.empty()) {
        constraints = merged_constraints[decl.var];
      } else {
        for (const AttrConstraint& constraint : decl.constraints) {
          constraints.push_back(&constraint);
        }
      }
      for (const AttrConstraint* constraint : constraints) {
        AIQL_ASSIGN_OR_RETURN(CompiledPredicate pred,
                              CompileConstraint(decl.type, *constraint));
        filter->predicates.push_back(std::move(pred));
      }
      filter->has_constraints = !filter->predicates.empty();
      if (filter->has_constraints) {
        ResolveCandidates(store, filter);
      }
      return Status::OK();
    };
    AIQL_RETURN_IF_ERROR(compile_side(pattern.subject, &cp.subject));
    AIQL_RETURN_IF_ERROR(compile_side(pattern.object, &cp.object));
    cp.subject.matched_exe_ids = MatchExeIds(store, cp.subject);
    compiled.push_back(std::move(cp));
  }
  return compiled;
}

}  // namespace aiql
