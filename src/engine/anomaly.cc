#include "engine/anomaly.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <unordered_map>

#include "engine/data_query.h"
#include "query/attributes.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

Duration ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Per-aggregate-item accumulator for one (window, group).
struct AggAccumulator {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Add(double value) {
    if (count == 0) {
      min = max = value;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
    }
    ++count;
    sum += value;
  }

  double Finalize(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return static_cast<double>(count);
      case AggFunc::kSum:
        return sum;
      case AggFunc::kAvg:
        return count == 0 ? 0 : sum / static_cast<double>(count);
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return 0;
  }
};

/// One group's per-window accumulators (ordered by window index).
struct GroupState {
  std::vector<Value> display;              ///< rendered group-by values
  std::map<int64_t, std::vector<AggAccumulator>> windows;
};

// Evaluates the having expression for one (group, window). Returns nullopt
// when the expression references history that predates the first window
// (insufficient data for the anomaly model — the row is filtered out rather
// than compared against fabricated zeros). A window with no activity for
// the group (but inside the time range) contributes 0.
std::optional<double> EvalHaving(
    const HavingExpr& node,
    const std::unordered_map<std::string, size_t>& alias_index,
    const std::vector<AggFunc>& agg_funcs,
    const std::map<int64_t, std::vector<AggAccumulator>>& wins,
    int64_t window) {
  switch (node.kind) {
    case HavingExpr::Kind::kNumber:
      return node.number;
    case HavingExpr::Kind::kAggRef: {
      size_t idx = alias_index.at(node.agg_alias);
      int64_t target = window - node.history;
      if (target < 0) return std::nullopt;  // before the first window
      auto it = wins.find(target);
      if (it == wins.end()) return 0.0;  // no activity that window
      return it->second[idx].Finalize(agg_funcs[idx]);
    }
    case HavingExpr::Kind::kArith: {
      auto l = EvalHaving(*node.lhs, alias_index, agg_funcs, wins, window);
      auto r = EvalHaving(*node.rhs, alias_index, agg_funcs, wins, window);
      if (!l || !r) return std::nullopt;
      switch (node.arith_op) {
        case '+':
          return *l + *r;
        case '-':
          return *l - *r;
        case '*':
          return *l * *r;
        case '/':
          return *r == 0 ? 0 : *l / *r;
      }
      return 0.0;
    }
    case HavingExpr::Kind::kCompare: {
      auto l = EvalHaving(*node.lhs, alias_index, agg_funcs, wins, window);
      auto r = EvalHaving(*node.rhs, alias_index, agg_funcs, wins, window);
      if (!l || !r) return std::nullopt;
      switch (node.cmp) {
        case CmpOp::kEq:
          return *l == *r;
        case CmpOp::kNe:
          return *l != *r;
        case CmpOp::kLt:
          return *l < *r;
        case CmpOp::kLe:
          return *l <= *r;
        case CmpOp::kGt:
          return *l > *r;
        case CmpOp::kGe:
          return *l >= *r;
        default:
          return 0.0;
      }
    }
    case HavingExpr::Kind::kAnd: {
      auto l = EvalHaving(*node.lhs, alias_index, agg_funcs, wins, window);
      auto r = EvalHaving(*node.rhs, alias_index, agg_funcs, wins, window);
      if (!l || !r) return std::nullopt;
      return (*l != 0 && *r != 0) ? 1.0 : 0.0;
    }
    case HavingExpr::Kind::kOr: {
      auto l = EvalHaving(*node.lhs, alias_index, agg_funcs, wins, window);
      auto r = EvalHaving(*node.rhs, alias_index, agg_funcs, wins, window);
      if (!l || !r) return std::nullopt;
      return (*l != 0 || *r != 0) ? 1.0 : 0.0;
    }
    case HavingExpr::Kind::kNot: {
      auto l = EvalHaving(*node.lhs, alias_index, agg_funcs, wins, window);
      if (!l) return std::nullopt;
      return *l == 0 ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

}  // namespace

AnomalyExecutor::AnomalyExecutor(const ReadView* view,
                                 EngineOptions options, ThreadPool* pool)
    : view_(view), options_(options), pool_(pool) {}

Result<QueryResult> AnomalyExecutor::Execute(const AnalyzedQuery& analyzed,
                                             QueryContext* ctx) {
  const MultieventQueryAst& ast = *analyzed.ast;
  if (!ast.window.has_value() || ast.patterns.size() != 1) {
    return Status::Internal("anomaly executor requires one windowed pattern");
  }
  const WindowSpec& spec = *ast.window;
  if (spec.length / spec.step > 100000) {
    return Status::InvalidArgument(
        "window/step ratio too large (each event would join >100k windows)");
  }

  QueryResult result;
  QueryStats& stats = result.stats;
  stats.patterns = 1;

  auto plan_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(std::vector<CompiledPattern> patterns,
                        CompilePatterns(analyzed, view_->entities()));
  CompiledPattern& pattern = patterns[0];
  stats.plan_time = ElapsedUs(plan_start);
  result.plan = "anomaly plan: windowed scan (window=" +
                FormatDuration(spec.length) +
                ", step=" + FormatDuration(spec.step) + ")";

  auto exec_start = Clock::now();

  // --- scan ------------------------------------------------------------------
  std::vector<Event> events;
  AIQL_ASSIGN_OR_RETURN(
      auto partitions,
      view_->SelectPartitions(pattern.time_range, analyzed.agent_filter));
  stats.partitions_scanned = partitions.size();
  uint64_t since_check = 0;
  for (const auto& [key, partition] : partitions) {
    const std::vector<Event>& all = partition->events();
    size_t begin = partition->LowerBound(pattern.time_range.start);
    for (size_t i = begin; i < all.size(); ++i) {
      const Event& event = all[i];
      if (event.start_ts >= pattern.time_range.end) break;
      ++stats.events_scanned;
      if (ctx != nullptr && ++since_check >= QueryContext::kCheckStride) {
        AIQL_RETURN_IF_ERROR(ctx->ChargeRows(since_check));
        since_check = 0;
      }
      if (!OpMaskContains(pattern.op_mask, event.op)) continue;
      if (event.object_type != pattern.object.type) continue;
      if (analyzed.agent_filter.has_value()) {
        const auto& agents = *analyzed.agent_filter;
        if (std::find(agents.begin(), agents.end(), event.agent_id) ==
            agents.end()) {
          continue;
        }
      }
      if (!FilterAccepts(pattern.subject, event.subject)) continue;
      if (!FilterAccepts(pattern.object, event.object)) continue;
      events.push_back(event);
    }
  }
  stats.events_matched = events.size();

  // --- columns ----------------------------------------------------------------
  result.table.columns.push_back("window_start");
  std::vector<AggFunc> agg_funcs;
  std::vector<const AggCallAst*> agg_calls;
  std::unordered_map<std::string, size_t> alias_index;
  for (const ReturnItemAst& item : ast.return_items) {
    if (!item.alias.empty()) {
      result.table.columns.push_back(item.alias);
    } else if (const auto* ref = std::get_if<AttrRefAst>(&item.expr)) {
      result.table.columns.push_back(ref->ToString());
    } else {
      const auto& agg = std::get<AggCallAst>(item.expr);
      result.table.columns.push_back(std::string(AggFuncToString(agg.func)) +
                                     "(...)");
    }
    if (const auto* agg = std::get_if<AggCallAst>(&item.expr)) {
      if (!item.alias.empty()) alias_index[item.alias] = agg_funcs.size();
      agg_funcs.push_back(agg->func);
      agg_calls.push_back(agg);
    }
  }

  // Non-aggregate return items must be group-by expressions.
  std::vector<size_t> ref_to_group;  // per non-agg return item: group index
  for (const ReturnItemAst& item : ast.return_items) {
    if (item.is_aggregate()) continue;
    const auto& ref = std::get<AttrRefAst>(item.expr);
    bool found = false;
    for (size_t g = 0; g < ast.group_by.size(); ++g) {
      if (ast.group_by[g].var == ref.var &&
          ast.group_by[g].attr == ref.attr) {
        ref_to_group.push_back(g);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::SemanticError(
          "return item '" + ref.ToString() +
          "' is not an aggregate and not listed in group by");
    }
  }

  if (events.empty()) {
    stats.exec_time = ElapsedUs(exec_start);
    return result;
  }

  // --- window assignment + grouping -------------------------------------------
  Timestamp t0 = analyzed.time_window.start;
  if (t0 == INT64_MIN) {
    Timestamp min_ts = INT64_MAX;
    for (const Event& event : events) {
      min_ts = std::min(min_ts, event.start_ts);
    }
    t0 = min_ts;
  }

  const EntityStore& store = view_->entities();
  const EventPatternAst& pattern_ast = ast.patterns[0];

  // Resolves a group-by / return reference against one event.
  auto resolve_ref = [&](const AttrRefAst& ref,
                         const Event& event) -> Value {
    auto event_it = analyzed.event_index.find(ref.var);
    if (event_it != analyzed.event_index.end()) {
      std::string attr = ref.attr.empty() ? "amount" : ref.attr;
      if (attr == "amount") return static_cast<int64_t>(event.amount);
      if (attr == "start_time") return static_cast<int64_t>(event.start_ts);
      if (attr == "end_time") return static_cast<int64_t>(event.end_ts);
      if (attr == "agentid") return static_cast<int64_t>(event.agent_id);
      return std::string(OpTypeToString(event.op));
    }
    bool is_subject = pattern_ast.subject.var == ref.var;
    EntityId id = is_subject ? event.subject : event.object;
    EntityType type =
        is_subject ? EntityType::kProcess : pattern_ast.object.type;
    std::string attr = ref.attr;
    // Bare entity refs group by entity identity and display the default
    // attribute.
    if (attr.empty()) attr = DefaultEntityAttr(type);
    switch (type) {
      case EntityType::kProcess: {
        const ProcessEntity& p = store.processes()[id];
        if (attr == "exe_name") {
          return std::string(store.exe_names().Get(p.exe_name));
        }
        if (attr == "pid") return static_cast<int64_t>(p.pid);
        if (attr == "user") return std::string(store.users().Get(p.user));
        return static_cast<int64_t>(p.agent_id);
      }
      case EntityType::kFile: {
        const FileEntity& f = store.files()[id];
        if (attr == "path") return std::string(store.paths().Get(f.path));
        return static_cast<int64_t>(f.agent_id);
      }
      case EntityType::kNetwork: {
        const NetworkEntity& n = store.networks()[id];
        if (attr == "dst_ip") return std::string(store.ips().Get(n.dst_ip));
        if (attr == "src_ip") return std::string(store.ips().Get(n.src_ip));
        if (attr == "protocol") {
          return std::string(store.protocols().Get(n.protocol));
        }
        if (attr == "dst_port") return static_cast<int64_t>(n.dst_port);
        if (attr == "src_port") return static_cast<int64_t>(n.src_port);
        return static_cast<int64_t>(n.agent_id);
      }
    }
    return int64_t{0};
  };

  // Group identity additionally distinguishes entities whose display values
  // collide (same exe name on different hosts): bare entity refs append the
  // entity id.
  auto group_identity = [&](const AttrRefAst& ref,
                            const Event& event) -> std::string {
    std::string display = ValueToString(resolve_ref(ref, event));
    if (ref.attr.empty() && analyzed.event_index.count(ref.var) == 0) {
      bool is_subject = pattern_ast.subject.var == ref.var;
      EntityId id = is_subject ? event.subject : event.object;
      display += '#';
      display += std::to_string(id);
    }
    return display;
  };

  std::unordered_map<std::string, GroupState> groups;
  int64_t max_window = 0;
  since_check = 0;
  for (const Event& event : events) {
    if (ctx != nullptr && ++since_check >= QueryContext::kCheckStride) {
      AIQL_RETURN_IF_ERROR(ctx->ChargeRows(since_check));
      since_check = 0;
    }
    // Windows j with start <= ts < start + length, start = t0 + j*step.
    int64_t offset = event.start_ts - t0;
    if (offset < 0) continue;
    int64_t last = offset / spec.step;
    int64_t first = (offset - spec.length) / spec.step + 1;
    if (offset < spec.length) first = 0;
    max_window = std::max(max_window, last);

    std::string key;
    std::vector<Value> display;
    for (const AttrRefAst& ref : ast.group_by) {
      key += group_identity(ref, event);
      key += '\x1f';
      display.push_back(resolve_ref(ref, event));
    }
    GroupState& group = groups[key];
    if (group.display.empty() && !display.empty()) {
      group.display = std::move(display);
    }
    for (int64_t j = first; j <= last; ++j) {
      auto& accs = group.windows[j];
      if (accs.empty()) accs.resize(agg_funcs.size());
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        double value = 1;  // count(*)
        if (!agg_calls[a]->star) {
          Value v = resolve_ref(agg_calls[a]->arg, event);
          if (const auto* i = std::get_if<int64_t>(&v)) {
            value = static_cast<double>(*i);
          } else if (const auto* d = std::get_if<double>(&v)) {
            value = *d;
          }
        }
        accs[a].Add(value);
      }
    }
  }

  if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

  // --- having + projection -----------------------------------------------------
  // Deterministic output: iterate groups sorted by key, windows ascending.
  std::vector<const std::string*> sorted_keys;
  sorted_keys.reserve(groups.size());
  for (const auto& [key, group] : groups) sorted_keys.push_back(&key);
  std::sort(sorted_keys.begin(), sorted_keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  for (const std::string* key : sorted_keys) {
    const GroupState& group = groups[*key];
    for (const auto& [window, accs] : group.windows) {
      if (ast.having != nullptr) {
        auto verdict = EvalHaving(*ast.having, alias_index, agg_funcs,
                                  group.windows, window);
        if (!verdict.has_value() || *verdict == 0) continue;
      }
      std::vector<Value> row;
      // Raw microsecond timestamp; comparable across engines (the SQL
      // baseline projects the same integer). Display layers format it.
      row.push_back(static_cast<int64_t>(t0 + window * spec.step));
      size_t ref_cursor = 0;
      size_t agg_cursor = 0;
      for (const ReturnItemAst& item : ast.return_items) {
        if (item.is_aggregate()) {
          row.push_back(accs[agg_cursor].Finalize(agg_funcs[agg_cursor]));
          ++agg_cursor;
        } else {
          row.push_back(group.display[ref_to_group[ref_cursor]]);
          ++ref_cursor;
        }
      }
      result.table.rows.push_back(std::move(row));
      if (ast.order_by.empty() && ast.limit.has_value() &&
          result.table.rows.size() >= static_cast<size_t>(*ast.limit)) {
        break;
      }
    }
  }

  if (!ast.order_by.empty()) {
    // Column 0 is window_start; return items start at offset 1.
    AIQL_ASSIGN_OR_RETURN(
        auto keys,
        ResolveOrderColumns(ast.order_by, ast.return_items,
                            /*column_offset=*/1));
    OrderResultRows(&result.table, keys);
    if (ast.limit.has_value() &&
        result.table.rows.size() > static_cast<size_t>(*ast.limit)) {
      result.table.rows.resize(static_cast<size_t>(*ast.limit));
    }
  }

  stats.exec_time = ElapsedUs(exec_start);
  return result;
}

}  // namespace aiql
