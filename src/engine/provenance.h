// Iterative causal provenance tracking (the investigation loop the paper's
// dependency queries cannot express: §2.3 declares fixed-length paths,
// while a real investigation starts from one point-of-interest event and
// expands an unknown number of hops).
//
// TrackProvenance runs frontier expansion over the sealed partitions of a
// ReadView: each hop expands every frontier entity through the reverse
// entity indexes built at Seal() (see storage/partition.h), following the
// information-flow direction of each operation —
//
//   subject -> object : write, start, end, delete, rename, connect
//   object  -> subject: read, execute, accept
//
// Backward tracking answers "where did this come from": from a frontier
// entity with time bound t it admits only in-flow events ending at or
// before t, and the discovered source entity inherits the event's start as
// its own (earlier) bound — hops are time-monotonic, so a backward search
// can only march into the past (forward tracking mirrors this into the
// future). Per-hop op/entity filters and depth / per-node fanout / total
// node budgets keep a noisy entity (a hot log file, a chatty service) from
// blowing the search up.
//
// The result is a dependency graph (entities as nodes, events as edges)
// that graph-layer exporters render as DOT or Cypher, plus per-hop latency
// and scan statistics for the bench harness.

#ifndef AIQL_ENGINE_PROVENANCE_H_
#define AIQL_ENGINE_PROVENANCE_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "storage/database.h"

namespace aiql {

/// Operations whose information flow runs subject -> object.
inline constexpr OpMask kSubjectToObjectOps =
    OpBit(OpType::kWrite) | OpBit(OpType::kStart) | OpBit(OpType::kEnd) |
    OpBit(OpType::kDelete) | OpBit(OpType::kRename) | OpBit(OpType::kConnect);

/// Operations whose information flow runs object -> subject.
inline constexpr OpMask kObjectToSubjectOps =
    OpBit(OpType::kRead) | OpBit(OpType::kExecute) | OpBit(OpType::kAccept);

inline constexpr OpMask kAllOps =
    kSubjectToObjectOps | kObjectToSubjectOps;

/// Budgets and filters for one tracking run.
struct ProvenanceOptions {
  /// true = backward (find causes), false = forward (find effects).
  bool backward = true;

  /// Maximum number of hops from the root frontier.
  int max_depth = 8;

  /// Events expanded per frontier entity per hop; the closest-in-time
  /// events win when the cap binds (0 = unbounded).
  size_t max_fanout = 64;

  /// Total node budget including the roots; expansion stops adding nodes
  /// (and marks the result truncated) once reached (0 = unbounded).
  size_t max_nodes = 4096;

  /// Maximum temporal gap bridged by one hop, measured against the frontier
  /// entity's time bound; 0 = unbounded. Roots anchored at the open end of
  /// the timeline (no anchor) are exempt on the first hop — the window
  /// limits event-to-event gaps, not the open timeline end.
  Duration hop_window = 0;

  /// Operations traversed (per-hop op filter).
  OpMask op_mask = kAllOps;

  /// Entity types a hop may expand into (per-hop entity filter).
  bool follow_processes = true;
  bool follow_files = true;
  bool follow_networks = true;

  /// Global clamp on event start timestamps (nullopt = whole timeline).
  std::optional<TimeRange> window;

  /// Restrict hops to these agents (nullopt = all agents).
  std::optional<std::vector<AgentId>> agents;

  /// Degraded sharded tracking (TrackProvenanceSharded only): a shard whose
  /// per-hop partition selection keeps failing with a transient storage
  /// fault after `shard_max_attempts` tries (doubled `shard_retry_backoff`
  /// between tries) is either dropped for the rest of the run — annotated
  /// in ProvenanceStats::shard_status, graph marked truncated — when
  /// `partial_shards` is true, or fails the whole run with kUnavailable.
  int shard_max_attempts = 3;
  std::chrono::milliseconds shard_retry_backoff{5};
  bool partial_shards = false;
};

/// One entity in the provenance graph.
struct ProvenanceNode {
  EntityType type = EntityType::kProcess;
  EntityId id = 0;
  int depth = 0;        ///< hop at which the entity was first reached
  Timestamp bound = 0;  ///< time bound in effect when it was reached
  /// Shard whose EntityStore `id` belongs to (0 on single-database runs) —
  /// render names via that shard's store.
  uint32_t shard = 0;
};

/// One event in the provenance graph. `from` flows into `to`
/// (cause -> effect), regardless of tracking direction.
struct ProvenanceEdge {
  Event event;
  uint32_t from = 0;  ///< node index of the flow source
  uint32_t to = 0;    ///< node index of the flow destination
  int hop = 0;        ///< hop that discovered the event
};

/// One frontier expansion clipped by a fanout or node budget: at `hop`,
/// expanding node `node`, `dropped` admissible candidate events were cut.
struct TruncatedExpansion {
  int hop = 0;
  uint32_t node = 0;
  uint64_t dropped = 0;
};

/// Per-shard outcome of a sharded tracking run (degraded execution).
struct ShardTrackStatus {
  uint32_t shard = 0;
  Status status;      ///< OK, or the fault that dropped / failed the shard
  int attempts = 1;   ///< maximum attempts any hop spent on this shard
  bool dropped = false;
};

/// Execution statistics of one tracking run.
struct ProvenanceStats {
  int hops = 0;                           ///< hops actually executed
  uint64_t events_inspected = 0;          ///< posting entries examined
  uint64_t partitions_selected = 0;       ///< partition scans across hops
  std::vector<Duration> hop_latency_us;   ///< wall time per hop
  /// True when a fanout/node/depth budget clipped the expansion or a shard
  /// was dropped (the graph is a prefix of the full provenance closure).
  bool truncated = false;
  /// Which frontier expansions the fanout / node budgets clipped, and how
  /// many candidates each cut (depth-budget truncation has no entry — it is
  /// visible as a non-empty final frontier, `truncated` alone).
  std::vector<TruncatedExpansion> truncated_expansions;
  /// Sharded runs only: one entry per shard that needed retries or was
  /// dropped (clean shards are omitted).
  std::vector<ShardTrackStatus> shard_status;
  int shards_dropped = 0;
};

/// The dependency graph recovered by one tracking run. nodes[0..num_roots)
/// are the point-of-interest entities at depth 0.
struct ProvenanceResult {
  std::vector<ProvenanceNode> nodes;
  std::vector<ProvenanceEdge> edges;
  size_t num_roots = 0;
  ProvenanceStats stats;
};

/// Tracks provenance from `roots` (each anchored at `anchor`): backward
/// admits events ending at or before the anchor, forward events starting at
/// or after it. `pool` may be null (hops then scan partitions serially).
/// Fails when the view cannot materialize a selected partition
/// (snapshot-backed views) or when `roots` is empty. `ctx` (optional)
/// governs the run: posting entries inspected charge the row budget, node
/// admissions charge the node budget, and every hop checkpoints — a breach
/// aborts with the context's sticky status (kDeadlineExceeded /
/// kCancelled / kResourceExhausted).
Result<ProvenanceResult> TrackProvenance(
    const ReadView& view,
    const std::vector<std::pair<EntityType, EntityId>>& roots,
    Timestamp anchor, const ProvenanceOptions& options,
    ThreadPool* pool = nullptr, QueryContext* ctx = nullptr);

/// An entity addressed in one shard's id space (sharded tracking roots).
struct ShardEntity {
  uint32_t shard = 0;
  EntityType type = EntityType::kProcess;
  EntityId id = 0;
};

/// Cross-shard provenance tracking over one ReadView per shard (index =
/// shard). Entity ids are per-shard, so the global node table is keyed by
/// full attribute tuples: a frontier entity discovered on shard A seeds
/// hops on every shard that has interned the same attributes, and when two
/// paths on different shards reach one logical entity the looser (wider)
/// time bound wins and the entity re-expands — the same bound-widening rule
/// TrackProvenance applies within one database. Per-hop partition scans
/// run over the globally merged (bucket, agent) partition order, so with
/// the same records an untruncated sharded run recovers exactly the graph
/// a merged single database would (truncation tie-breaks match too, except
/// exact time ties straddling a fanout cut across shards).
/// Governance (`ctx`) matches TrackProvenance. Per-shard partition
/// selection retries transient storage faults per the ProvenanceOptions
/// retry knobs; an exhausted shard is dropped (partial_shards) with the
/// remaining shards' graph annotated in stats.shard_status, or fails the
/// run with kUnavailable naming the shard and cause.
Result<ProvenanceResult> TrackProvenanceSharded(
    const std::vector<ReadView>& views, const std::vector<ShardEntity>& roots,
    Timestamp anchor, const ProvenanceOptions& options,
    ThreadPool* pool = nullptr, QueryContext* ctx = nullptr);

}  // namespace aiql

#endif  // AIQL_ENGINE_PROVENANCE_H_
