// Dependency query rewriting (paper §2.3).
//
// A dependency query declares an event path; the parser-level AST is
// compiled into a semantically equivalent multievent query: each edge
// becomes an event pattern (the arrow identifies the subject side), node
// variables shared between consecutive edges become implicit attribute
// relationships, and `forward:`/`backward:` fixes the temporal order of the
// chain (forward = left events occur earlier).

#ifndef AIQL_ENGINE_DEPENDENCY_H_
#define AIQL_ENGINE_DEPENDENCY_H_

#include <memory>

#include "common/status.h"
#include "query/ast.h"

namespace aiql {

/// Compiles a dependency query into an equivalent multievent query.
/// Anonymous path nodes receive internal names so consecutive edges join.
Result<std::unique_ptr<MultieventQueryAst>> RewriteDependency(
    const DependencyQueryAst& dep);

}  // namespace aiql

#endif  // AIQL_ENGINE_DEPENDENCY_H_
