// Scatter/gather query execution over a ShardMap (the sharded counterpart
// of MultieventExecutor / AnomalyExecutor dispatch).
//
// Every query first takes one ReadView per shard — each view is atomic
// against its shard, so scatter is safe while shards keep ingesting. Two
// execution paths:
//
//  * Fast path (single-pattern multievent / rewritten dependency): the
//    complete query runs on every shard independently and the per-shard
//    tables meet in the merge layer (engine/shard_merge.h) — ORDER BY/LIMIT
//    as a top-k heap merge with per-shard LIMIT pushdown, DISTINCT with
//    cross-shard re-dedup. Sound because a single-pattern row is a function
//    of one event, and every event lives on exactly one shard.
//
//  * Gathered path (multi-pattern multievent, anomaly): joins and window
//    groups can span shards (an entity variable can bind events on two
//    hosts), so per-shard execution would lose rows. Instead the scan phase
//    scatters: each pattern scans all shards partition-parallel in global
//    pruning-power order (cardinalities summed across shards), exchanging
//    prunes globally between patterns — semi-join bindings travel as
//    attribute tuples (shard ids are not comparable) and re-resolve into
//    each shard's id space; temporal envelopes combine across shards before
//    tightening later patterns' time ranges. The gathered superset of
//    matching events is rebuilt into a transient in-memory database and the
//    ordinary single-db executor finishes centrally — it re-checks every
//    predicate, so scatter over-gathering never changes results, and the
//    pruning rules are the same sound rules the single-db engine applies,
//    so under-gathering cannot happen either.

#ifndef AIQL_ENGINE_SHARD_EXEC_H_
#define AIQL_ENGINE_SHARD_EXEC_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/result.h"
#include "engine/scheduler.h"
#include "query/analyzer.h"
#include "query/ast.h"
#include "storage/shard_map.h"

namespace aiql {

/// Executes parsed AIQL queries against a ShardMap. `shards` must outlive
/// the executor; `pool` may be null (a private pool is created when
/// parallelism is on). Thread-safe for concurrent Execute calls.
class ShardedExecutor {
 public:
  ShardedExecutor(const ShardMap* shards, EngineOptions options,
                  ThreadPool* pool = nullptr);

  /// Runs the query scatter/gather; result semantics match the single-db
  /// engine over the union of all shards' data.
  ///
  /// `ctx` (optional) governs the run. Degraded execution (per
  /// EngineOptions): each shard attempt retries transient storage faults
  /// with doubled backoff (shard_max_attempts / shard_retry_backoff), then
  /// either fails the query with an aggregate all-shard-errors Status
  /// (kStrict) or drops the shard and merges the survivors, annotating
  /// QueryResult::degraded per shard (kPartial). A fast-path shard that
  /// misses the deadline is dropped the same way in partial mode — the
  /// deadline is lifted for the bounded merge of the surviving shards. The
  /// gathered path (multi-pattern / anomaly) degrades on storage faults
  /// only; deadline / cancel / budget violations abort it in both policies
  /// (its central re-execution cannot produce a sound subset mid-scatter).
  Result<QueryResult> Execute(const ParsedQuery& parsed,
                              QueryContext* ctx = nullptr);

 private:
  Result<QueryResult> ExecuteFast(const AnalyzedQuery& analyzed,
                                  std::vector<ReadView>& views,
                                  QueryContext* ctx);
  Result<QueryResult> ExecuteGathered(const AnalyzedQuery& analyzed,
                                      std::vector<ReadView>& views,
                                      bool anomaly, QueryContext* ctx);

  const ShardMap* shards_;
  EngineOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_SHARD_EXEC_H_
