// Zero-copy partition scan for compiled event patterns (paper §2.3).
//
// One scan inspects a sealed partition and appends pointers to the matching
// events — no Event is copied anywhere on the scan path; the pointers alias
// `partition.events()` and stay valid for the life of the partition. Two
// strategies share the same match predicate:
//   * posting path — when the pattern's op mask selects few events, iterate
//     the per-operation posting lists (time-clipped via their zone maps),
//     merging multiple lists in ascending index order;
//   * columnar path — otherwise, walk the time-clipped row range over the
//     structure-of-arrays columns. With batch kernels enabled (the default)
//     the walk runs kScanBatch rows at a time through branch-free mask
//     passes: an op-acceptance table, an object-type compare, and raw-word
//     candidate-bitset tests — every predicate a u32/u8 integer op the
//     compiler can auto-vectorize. Kernels off falls back to the historical
//     row-at-a-time loop (the oracle's differential baseline).
// All strategies produce matches in ascending event-index order and charge
// governance identically, so kernel-on and kernel-off runs are
// pointer-identical.

#ifndef AIQL_ENGINE_SCAN_H_
#define AIQL_ENGINE_SCAN_H_

#include <vector>

#include "common/bitset.h"
#include "common/cancellation.h"
#include "engine/data_query.h"
#include "storage/partition.h"

namespace aiql {

/// Agent filter materialized once per query. A hybrid bitset (IdFilter):
/// O(1) branch-light membership for the scan kernels, sorted-overflow
/// fallback so hostile agent ids cannot force huge allocations.
using AgentFilterSet = IdFilter;

/// Rows per batch-kernel iteration. Divides QueryContext::kCheckStride so
/// batch boundaries align with governance stride boundaries.
inline constexpr size_t kScanBatch = 16;
static_assert(QueryContext::kCheckStride % kScanBatch == 0,
              "batch kernels replicate row-charge semantics at stride "
              "boundaries; the stride must be batch-aligned");

/// Scans `partition` for events matching `pattern` within `range` and
/// appends pointers into `partition.events()` to `*out`. `agent_filter` may
/// be null (no per-event agent check); `same_var_both_sides` additionally
/// requires subject == object. Returns the number of events inspected.
/// The partition must be sealed.
///
/// `ctx` (optional) is charged one row per event inspected, at
/// QueryContext::kCheckStride granularity; on a governance violation the
/// scan stops early (partial `out`, partial count) and the caller observes
/// the latched status via ctx->Check(). `enable_batch_kernels` selects the
/// batch-at-a-time columnar kernels (EngineOptions::enable_batch_kernels);
/// both settings produce identical output, inspected counts, and charges.
uint64_t ScanPartition(const EventPartition& partition,
                       const CompiledPattern& pattern, const TimeRange& range,
                       const AgentFilterSet* agent_filter,
                       bool same_var_both_sides,
                       std::vector<const Event*>* out,
                       QueryContext* ctx = nullptr,
                       bool enable_batch_kernels = true);

}  // namespace aiql

#endif  // AIQL_ENGINE_SCAN_H_
