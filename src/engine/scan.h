// Zero-copy partition scan for compiled event patterns (paper §2.3).
//
// One scan inspects a sealed partition and appends pointers to the matching
// events — no Event is copied anywhere on the scan path; the pointers alias
// `partition.events()` and stay valid for the life of the partition. Two
// strategies share the same match predicate:
//   * posting path — when the pattern's op mask selects few events, iterate
//     the per-operation posting lists (time-clipped via their zone maps),
//     merging multiple lists in ascending index order;
//   * columnar path — otherwise, walk the time-clipped row range over the
//     structure-of-arrays columns, touching only the columns tested.
// Both produce matches in ascending event-index order, identical to the
// historical row scan.

#ifndef AIQL_ENGINE_SCAN_H_
#define AIQL_ENGINE_SCAN_H_

#include <unordered_set>
#include <vector>

#include "common/cancellation.h"
#include "engine/data_query.h"
#include "storage/partition.h"

namespace aiql {

/// Agent filter materialized once per query (O(1) membership instead of the
/// O(|agents|) std::find the row scan used per event).
using AgentFilterSet = std::unordered_set<AgentId>;

/// Scans `partition` for events matching `pattern` within `range` and
/// appends pointers into `partition.events()` to `*out`. `agent_filter` may
/// be null (no per-event agent check); `same_var_both_sides` additionally
/// requires subject == object. Returns the number of events inspected.
/// The partition must be sealed.
///
/// `ctx` (optional) is charged one row per event inspected, at
/// QueryContext::kCheckStride granularity; on a governance violation the
/// scan stops early (partial `out`, partial count) and the caller observes
/// the latched status via ctx->Check().
uint64_t ScanPartition(const EventPartition& partition,
                       const CompiledPattern& pattern, const TimeRange& range,
                       const AgentFilterSet* agent_filter,
                       bool same_var_both_sides,
                       std::vector<const Event*>* out,
                       QueryContext* ctx = nullptr);

}  // namespace aiql

#endif  // AIQL_ENGINE_SCAN_H_
