// Projection of bound events into result values — shared by the AIQL join
// executor and the graph baseline (both bind one event per pattern).

#ifndef AIQL_ENGINE_PROJECTOR_H_
#define AIQL_ENGINE_PROJECTOR_H_

#include <string>
#include <vector>

#include "engine/result.h"
#include "query/analyzer.h"
#include "query/ast.h"
#include "storage/entity_store.h"

namespace aiql {

/// Resolves attribute references against a per-pattern event assignment.
class Projector {
 public:
  Projector(const EntityStore& store, const AnalyzedQuery& analyzed)
      : store_(store), analyzed_(analyzed) {}

  /// Resolves `ref` against `assignment` (event per pattern, in query
  /// order). The referenced pattern must be assigned (non-null).
  Value Resolve(const AttrRefAst& ref,
                const std::vector<const Event*>& assignment) const;

  /// Event attribute access (amount / start_time / end_time / agentid / op).
  Value EventAttr(const Event& event, const std::string& attr) const;

  /// Entity attribute access; empty attr resolves to the type's default.
  Value EntityAttr(EntityType type, EntityId id,
                   const std::string& attr) const;

 private:
  const EntityStore& store_;
  const AnalyzedQuery& analyzed_;
};

/// Compares two values under a comparison operator (strings lexicographic,
/// numbers numeric). Used for explicit attribute relationships.
bool CompareValues(const Value& left, CmpOp op, const Value& right);

/// evt_a `before` evt_b: a's interval ends no later than b starts; a
/// positive `within` additionally bounds the gap.
bool TemporalHolds(const Event& a, const Event& b, Duration within);

}  // namespace aiql

#endif  // AIQL_ENGINE_PROJECTOR_H_
