#include "engine/scan.h"

#include <algorithm>
#include <cstdint>

namespace aiql {

namespace {

/// A cursor over one op's time-clipped posting positions.
struct PostingCursor {
  const uint32_t* it = nullptr;
  const uint32_t* end = nullptr;
};

// Landing pad for candidate sets with zero words (an empty universe): every
// id maps to this all-zero word, so membership tests stay branch-free
// without ever dereferencing a null/empty words() pointer.
constexpr uint64_t kZeroWord = 0;

/// The pattern's row predicate, precompiled to flat tables and raw bitset
/// words — no std::optional, no hash lookups, no virtual calls on the scan.
/// Shared by the batch kernels and the (kernel-mode) posting path.
struct RowTest {
  uint8_t op_ok[kNumOpTypes] = {};   ///< op acceptance table
  uint8_t target_object_type = 0;
  const uint64_t* subj_words = nullptr;  ///< null = all subjects accepted
  size_t subj_nwords = 0;
  const uint64_t* obj_words = nullptr;   ///< null = all objects accepted
  size_t obj_nwords = 0;
  const AgentFilterSet* agents = nullptr;
  bool same_var = false;
};

RowTest MakeRowTest(const CompiledPattern& pattern,
                    const AgentFilterSet* agent_filter,
                    bool same_var_both_sides) {
  RowTest t;
  for (int op = 0; op < kNumOpTypes; ++op) {
    t.op_ok[op] =
        OpMaskContains(pattern.op_mask, static_cast<OpType>(op)) ? 1 : 0;
  }
  t.target_object_type = static_cast<uint8_t>(pattern.object.type);
  if (pattern.subject.candidates.has_value()) {
    t.subj_words = pattern.subject.candidates->words();
    t.subj_nwords = pattern.subject.candidates->num_words();
    if (t.subj_nwords == 0) {
      t.subj_words = &kZeroWord;
      t.subj_nwords = 1;
    }
  }
  if (pattern.object.candidates.has_value()) {
    t.obj_words = pattern.object.candidates->words();
    t.obj_nwords = pattern.object.candidates->num_words();
    if (t.obj_nwords == 0) {
      t.obj_words = &kZeroWord;
      t.obj_nwords = 1;
    }
  }
  t.agents = agent_filter;
  t.same_var = same_var_both_sides;
  return t;
}

// Guarded branch-free bitset probe: out-of-range ids read word 0 and
// contribute 0. Subject ids are always < their universe (candidate sets are
// sized to the store at view time), but object ids of a non-matching
// object_type live in another id space and may exceed the object set.
inline uint8_t ProbeBit(const uint64_t* words, size_t nwords, uint32_t id) {
  size_t w = id >> 6;
  size_t in_range = static_cast<size_t>(w < nwords);
  uint64_t word = words[in_range ? w : 0];
  return static_cast<uint8_t>((word >> (id & 63)) & in_range);
}

/// Batch kernel: evaluates rows [begin, begin + n), n <= kScanBatch, through
/// per-predicate mask passes and emits matches in ascending row order. Each
/// pass is a short branch-free loop over flat arrays; the per-chunk `if`s
/// are loop-invariant predicate-presence checks, not per-row branches.
void RunBatch(const EventColumns& cols, const std::vector<Event>& events,
              const RowTest& t, size_t begin, size_t n,
              std::vector<const Event*>* out) {
  uint8_t ok[kScanBatch];
  const OpType* op = cols.op.data() + begin;
  const EntityType* otype = cols.object_type.data() + begin;
  const EntityId* subj = cols.subject.data() + begin;
  const EntityId* obj = cols.object.data() + begin;
  for (size_t j = 0; j < n; ++j) {
    ok[j] = t.op_ok[static_cast<size_t>(op[j])] &
            static_cast<uint8_t>(static_cast<uint8_t>(otype[j]) ==
                                 t.target_object_type);
  }
  if (t.subj_words != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      ok[j] &= ProbeBit(t.subj_words, t.subj_nwords, subj[j]);
    }
  }
  if (t.obj_words != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      ok[j] &= ProbeBit(t.obj_words, t.obj_nwords, obj[j]);
    }
  }
  if (t.agents != nullptr) {
    const AgentId* agent = cols.agent_id.data() + begin;
    for (size_t j = 0; j < n; ++j) {
      ok[j] &= static_cast<uint8_t>(t.agents->Contains(agent[j]));
    }
  }
  if (t.same_var) {
    for (size_t j = 0; j < n; ++j) {
      ok[j] &= static_cast<uint8_t>(subj[j] == obj[j]);
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (ok[j]) out->push_back(&events[begin + j]);
  }
}

/// Scalar form of the complete predicate (op included), for the posting
/// path (random rows, op trivially matches) and the governed boundary row.
inline bool TestRow(const EventColumns& cols, const RowTest& t, size_t i) {
  if (t.op_ok[static_cast<size_t>(cols.op[i])] == 0) return false;
  if (static_cast<uint8_t>(cols.object_type[i]) != t.target_object_type) {
    return false;
  }
  if (t.agents != nullptr && !t.agents->Contains(cols.agent_id[i])) {
    return false;
  }
  EntityId subject = cols.subject[i];
  EntityId object = cols.object[i];
  if (t.subj_words != nullptr &&
      ProbeBit(t.subj_words, t.subj_nwords, subject) == 0) {
    return false;
  }
  if (t.obj_words != nullptr &&
      ProbeBit(t.obj_words, t.obj_nwords, object) == 0) {
    return false;
  }
  if (t.same_var && subject != object) return false;
  return true;
}

/// Columnar batch driver under governance, replicating the legacy per-row
/// loop's charge semantics exactly: rows charge in kCheckStride batches;
/// the row that completes a stride is counted inspected, charged, and
/// evaluated only if the charge succeeds. Stride boundaries are handled as
/// chunk ends (kCheckStride % kScanBatch == 0 keeps them aligned), so
/// inspected counts and outputs match the legacy loop bit for bit on
/// deterministic (budget-driven) violations.
uint64_t GovernedBatchScan(const EventColumns& cols,
                           const std::vector<Event>& events, const RowTest& t,
                           size_t row_begin, size_t row_end,
                           std::vector<const Event*>* out, QueryContext* ctx) {
  uint64_t inspected = 0;
  uint64_t since_check = 0;
  size_t i = row_begin;
  while (i < row_end) {
    // Mirrors the legacy loop's per-row stopped() early-out at chunk
    // granularity: the stopping row counts as inspected, unevaluated.
    if (ctx->stopped()) {
      ++inspected;
      ++since_check;
      break;
    }
    uint64_t room = QueryContext::kCheckStride - since_check;
    size_t limit = static_cast<size_t>(
        std::min<uint64_t>(row_end - i, room));
    bool hits_boundary = (static_cast<uint64_t>(limit) == room);
    size_t eval_now = hits_boundary ? limit - 1 : limit;
    for (size_t b = i; b < i + eval_now; b += kScanBatch) {
      RunBatch(cols, events, t, b, std::min(kScanBatch, i + eval_now - b),
               out);
    }
    inspected += eval_now;
    since_check += eval_now;
    i += eval_now;
    if (hits_boundary) {
      // The stride-completing row: inspected and charged before evaluation,
      // evaluated only when the budget still holds (legacy keep_going()).
      ++inspected;
      ++since_check;
      Status s = ctx->ChargeRows(since_check);
      since_check = 0;
      if (!s.ok()) return inspected;
      if (TestRow(cols, t, i)) out->push_back(&events[i]);
      ++i;
    }
  }
  if (since_check > 0) ctx->ChargeRows(since_check);
  if (i >= row_end) return row_end - row_begin;
  return inspected;
}

}  // namespace

uint64_t ScanPartition(const EventPartition& partition,
                       const CompiledPattern& pattern, const TimeRange& range,
                       const AgentFilterSet* agent_filter,
                       bool same_var_both_sides,
                       std::vector<const Event*>* out,
                       QueryContext* ctx, bool enable_batch_kernels) {
  const EventColumns& cols = partition.columns();
  const std::vector<Event>& events = partition.events();

  // Governance checkpoint: charges the rows inspected since the previous
  // checkpoint and reports whether the scan should keep going. Checked
  // every kCheckStride inspected rows so the per-row cost stays one
  // branch + counter increment.
  uint64_t since_check = 0;
  auto keep_going = [&]() {
    if (ctx == nullptr) return true;
    if (++since_check < QueryContext::kCheckStride) return !ctx->stopped();
    Status s = ctx->ChargeRows(since_check);
    since_check = 0;
    return s.ok();
  };
  auto flush_charge = [&](uint64_t inspected) {
    if (ctx != nullptr && since_check > 0) ctx->ChargeRows(since_check);
    return inspected;
  };

  // Unsealed partitions have no columns/postings; fall back to the row
  // store rather than silently matching nothing (the engine contract says
  // sealed, but the scheduler tolerates unsealed the same way).
  if (!partition.sealed()) {
    uint64_t inspected = 0;
    for (const Event& event : events) {
      if (!range.Contains(event.start_ts)) continue;
      ++inspected;
      if (!keep_going()) return flush_charge(inspected);
      if (!OpMaskContains(pattern.op_mask, event.op)) continue;
      if (event.object_type != pattern.object.type) continue;
      if (agent_filter != nullptr && !agent_filter->Contains(event.agent_id)) {
        continue;
      }
      if (!FilterAccepts(pattern.subject, event.subject)) continue;
      if (!FilterAccepts(pattern.object, event.object)) continue;
      if (same_var_both_sides && event.subject != event.object) continue;
      out->push_back(&event);
    }
    return flush_charge(inspected);
  }

  size_t row_begin = partition.LowerBound(range.start);
  size_t row_end = partition.LowerBound(range.end);
  if (row_begin >= row_end) return 0;
  size_t range_rows = row_end - row_begin;

  const RowTest row_test = MakeRowTest(pattern, agent_filter,
                                       same_var_both_sides);

  // Every filter below reads columns only; the row store is touched once per
  // match, to take the event's address. The legacy lambda is kept verbatim
  // for kernels-off runs (the oracle's differential baseline).
  auto test_legacy = [&](size_t i) {
    if (cols.object_type[i] != pattern.object.type) return;
    if (agent_filter != nullptr && !agent_filter->Contains(cols.agent_id[i]))
      return;
    if (!FilterAccepts(pattern.subject, cols.subject[i])) return;
    if (!FilterAccepts(pattern.object, cols.object[i])) return;
    if (same_var_both_sides && cols.subject[i] != cols.object[i]) return;
    out->push_back(&events[i]);
  };
  auto test = [&](size_t i) {
    if (enable_batch_kernels) {
      if (TestRow(cols, row_test, i)) out->push_back(&events[i]);
    } else {
      test_legacy(i);
    }
  };

  // Gather the time-clipped posting cursors for the ops in the mask; their
  // combined length is the exact number of op-matching events in range.
  PostingCursor cursors[kNumOpTypes];
  int num_cursors = 0;
  uint64_t posting_rows = 0;
  for (int op = 0; op < kNumOpTypes; ++op) {
    if (!OpMaskContains(pattern.op_mask, static_cast<OpType>(op))) continue;
    auto [lo, hi] = partition.PostingRange(static_cast<OpType>(op), range);
    if (lo == hi) continue;
    const uint32_t* base = partition.posting(static_cast<OpType>(op))
                               .indexes.data();
    cursors[num_cursors++] = PostingCursor{base + lo, base + hi};
    posting_rows += hi - lo;
  }
  if (posting_rows == 0) return 0;
  out->reserve(out->size() + static_cast<size_t>(posting_rows));

  // Posting path pays one indirection per op-matching event; the columnar
  // path streams every row in range but tests the op from a dense column.
  // Prefer postings when they skip at least half the range.
  if (posting_rows * 2 <= range_rows) {
    uint64_t inspected = 0;
    if (num_cursors == 1) {
      for (const uint32_t* it = cursors[0].it; it != cursors[0].end; ++it) {
        ++inspected;
        if (!keep_going()) return flush_charge(inspected);
        test(*it);
      }
    } else {
      // K-way merge (k <= kNumOpTypes) by event index keeps the output in
      // ascending index order, matching the row scan exactly.
      while (true) {
        int best = -1;
        uint32_t best_index = UINT32_MAX;
        for (int c = 0; c < num_cursors; ++c) {
          if (cursors[c].it != cursors[c].end && *cursors[c].it < best_index) {
            best = c;
            best_index = *cursors[c].it;
          }
        }
        if (best < 0) break;
        ++inspected;
        if (!keep_going()) return flush_charge(inspected);
        test(best_index);
        ++cursors[best].it;
      }
    }
    return flush_charge(posting_rows);
  }

  if (enable_batch_kernels) {
    if (ctx == nullptr) {
      // Ungoverned hot path: straight-line batch kernels over the clipped
      // row range; the time filter is the clip itself.
      for (size_t b = row_begin; b < row_end; b += kScanBatch) {
        RunBatch(cols, events, row_test, b,
                 std::min(kScanBatch, row_end - b), out);
      }
      return range_rows;
    }
    return GovernedBatchScan(cols, events, row_test, row_begin, row_end, out,
                             ctx);
  }

  uint64_t inspected = 0;
  for (size_t i = row_begin; i < row_end; ++i) {
    ++inspected;
    if (!keep_going()) return flush_charge(inspected);
    if (!OpMaskContains(pattern.op_mask, cols.op[i])) continue;
    test_legacy(i);
  }
  return flush_charge(range_rows);
}

}  // namespace aiql
