#include "engine/scan.h"

#include <algorithm>

namespace aiql {

namespace {

/// A cursor over one op's time-clipped posting positions.
struct PostingCursor {
  const uint32_t* it = nullptr;
  const uint32_t* end = nullptr;
};

}  // namespace

uint64_t ScanPartition(const EventPartition& partition,
                       const CompiledPattern& pattern, const TimeRange& range,
                       const AgentFilterSet* agent_filter,
                       bool same_var_both_sides,
                       std::vector<const Event*>* out,
                       QueryContext* ctx) {
  const EventColumns& cols = partition.columns();
  const std::vector<Event>& events = partition.events();

  // Governance checkpoint: charges the rows inspected since the previous
  // checkpoint and reports whether the scan should keep going. Checked
  // every kCheckStride inspected rows so the per-row cost stays one
  // branch + counter increment.
  uint64_t since_check = 0;
  auto keep_going = [&]() {
    if (ctx == nullptr) return true;
    if (++since_check < QueryContext::kCheckStride) return !ctx->stopped();
    Status s = ctx->ChargeRows(since_check);
    since_check = 0;
    return s.ok();
  };
  auto flush_charge = [&](uint64_t inspected) {
    if (ctx != nullptr && since_check > 0) ctx->ChargeRows(since_check);
    return inspected;
  };

  // Unsealed partitions have no columns/postings; fall back to the row
  // store rather than silently matching nothing (the engine contract says
  // sealed, but the scheduler tolerates unsealed the same way).
  if (!partition.sealed()) {
    uint64_t inspected = 0;
    for (const Event& event : events) {
      if (!range.Contains(event.start_ts)) continue;
      ++inspected;
      if (!keep_going()) return flush_charge(inspected);
      if (!OpMaskContains(pattern.op_mask, event.op)) continue;
      if (event.object_type != pattern.object.type) continue;
      if (agent_filter != nullptr &&
          agent_filter->count(event.agent_id) == 0) {
        continue;
      }
      if (!FilterAccepts(pattern.subject, event.subject)) continue;
      if (!FilterAccepts(pattern.object, event.object)) continue;
      if (same_var_both_sides && event.subject != event.object) continue;
      out->push_back(&event);
    }
    return flush_charge(inspected);
  }

  size_t row_begin = partition.LowerBound(range.start);
  size_t row_end = partition.LowerBound(range.end);
  if (row_begin >= row_end) return 0;
  size_t range_rows = row_end - row_begin;

  // Every filter below reads columns only; the row store is touched once per
  // match, to take the event's address.
  auto test = [&](size_t i) {
    if (cols.object_type[i] != pattern.object.type) return;
    if (agent_filter != nullptr && agent_filter->count(cols.agent_id[i]) == 0)
      return;
    if (!FilterAccepts(pattern.subject, cols.subject[i])) return;
    if (!FilterAccepts(pattern.object, cols.object[i])) return;
    if (same_var_both_sides && cols.subject[i] != cols.object[i]) return;
    out->push_back(&events[i]);
  };

  // Gather the time-clipped posting cursors for the ops in the mask; their
  // combined length is the exact number of op-matching events in range.
  PostingCursor cursors[kNumOpTypes];
  int num_cursors = 0;
  uint64_t posting_rows = 0;
  for (int op = 0; op < kNumOpTypes; ++op) {
    if (!OpMaskContains(pattern.op_mask, static_cast<OpType>(op))) continue;
    auto [lo, hi] = partition.PostingRange(static_cast<OpType>(op), range);
    if (lo == hi) continue;
    const uint32_t* base = partition.posting(static_cast<OpType>(op))
                               .indexes.data();
    cursors[num_cursors++] = PostingCursor{base + lo, base + hi};
    posting_rows += hi - lo;
  }
  if (posting_rows == 0) return 0;
  out->reserve(out->size() + static_cast<size_t>(posting_rows));

  // Posting path pays one indirection per op-matching event; the columnar
  // path streams every row in range but tests the op from a dense column.
  // Prefer postings when they skip at least half the range.
  if (posting_rows * 2 <= range_rows) {
    uint64_t inspected = 0;
    if (num_cursors == 1) {
      for (const uint32_t* it = cursors[0].it; it != cursors[0].end; ++it) {
        ++inspected;
        if (!keep_going()) return flush_charge(inspected);
        test(*it);
      }
    } else {
      // K-way merge (k <= kNumOpTypes) by event index keeps the output in
      // ascending index order, matching the row scan exactly.
      while (true) {
        int best = -1;
        uint32_t best_index = UINT32_MAX;
        for (int c = 0; c < num_cursors; ++c) {
          if (cursors[c].it != cursors[c].end && *cursors[c].it < best_index) {
            best = c;
            best_index = *cursors[c].it;
          }
        }
        if (best < 0) break;
        ++inspected;
        if (!keep_going()) return flush_charge(inspected);
        test(best_index);
        ++cursors[best].it;
      }
    }
    return flush_charge(posting_rows);
  }

  uint64_t inspected = 0;
  for (size_t i = row_begin; i < row_end; ++i) {
    ++inspected;
    if (!keep_going()) return flush_charge(inspected);
    if (!OpMaskContains(pattern.op_mask, cols.op[i])) continue;
    test(i);
  }
  return flush_charge(range_rows);
}

}  // namespace aiql
