// Anomaly query executor (paper §2.2.3 / §2.3).
//
// The engine partitions the pattern's matching events into sliding windows
// by timestamp, computes the aggregate results per group, and enforces the
// having filter — which may reference historical aggregate results
// (`amt[1]` = the aggregate one window earlier), enabling frequency-based
// anomaly models such as moving averages.

#ifndef AIQL_ENGINE_ANOMALY_H_
#define AIQL_ENGINE_ANOMALY_H_

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/result.h"
#include "engine/scheduler.h"
#include "query/analyzer.h"
#include "storage/database.h"

namespace aiql {

/// Executes an analyzed anomaly query (single pattern + window spec)
/// against a read view (consistent snapshot of sealed partitions).
/// Result columns: "window_start", then the return items.
class AnomalyExecutor {
 public:
  AnomalyExecutor(const ReadView* view, EngineOptions options,
                  ThreadPool* pool = nullptr);

  /// `ctx` (optional) governs the run: deadline / cancel / budget
  /// violations abort the scan and window-assignment loops at checkpoint
  /// granularity.
  Result<QueryResult> Execute(const AnalyzedQuery& analyzed,
                              QueryContext* ctx = nullptr);

 private:
  const ReadView* view_;
  EngineOptions options_;
  ThreadPool* pool_;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_ANOMALY_H_
