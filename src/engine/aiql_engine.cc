#include "engine/aiql_engine.h"

#include <chrono>
#include <thread>

#include "engine/anomaly.h"
#include "engine/dependency.h"
#include "engine/executor.h"
#include "engine/shard_exec.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "storage/shard_map.h"
#include "storage/snapshot.h"
#include "storage/tiered.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<ThreadPool> MakePool(const EngineOptions& options) {
  if (!options.enable_parallelism) return nullptr;
  size_t threads = options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  return std::make_unique<ThreadPool>(threads);
}

bool HasLimits(const QueryLimits& limits) {
  return limits.timeout.count() > 0 || limits.max_rows > 0 ||
         limits.max_nodes > 0 || limits.max_bytes > 0;
}

}  // namespace

AiqlEngine::AiqlEngine(const AuditDatabase* db, EngineOptions options)
    : db_(db), options_(options), pool_(MakePool(options_)) {}

AiqlEngine::AiqlEngine(const SnapshotStore* snapshot, EngineOptions options)
    : snapshot_(snapshot), options_(options), pool_(MakePool(options_)) {}

AiqlEngine::AiqlEngine(const TieredStore* tiered, EngineOptions options)
    : tiered_(tiered), options_(options), pool_(MakePool(options_)) {}

AiqlEngine::AiqlEngine(const ShardMap* shards, EngineOptions options)
    : shards_(shards), options_(options), pool_(MakePool(options_)) {}

AiqlEngine::~AiqlEngine() = default;

ReadView AiqlEngine::OpenView() const {
  if (db_ != nullptr) return db_->OpenReadView();
  if (tiered_ != nullptr) return tiered_->OpenReadView();
  return snapshot_->OpenReadView();
}

Result<QueryResult> AiqlEngine::Execute(std::string_view text) {
  // Engine-default governance: any nonzero default limit builds a fresh
  // per-query context; all-zero limits keep the ungoverned hot path.
  if (HasLimits(options_.default_limits)) {
    QueryContext ctx(options_.default_limits);
    return Execute(text, &ctx);
  }
  return Execute(text, nullptr);
}

Result<QueryResult> AiqlEngine::Execute(std::string_view text,
                                        QueryContext* ctx) {
  auto parse_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseAiql(text));
  Duration parse_time = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - parse_start)
                            .count();
  AIQL_ASSIGN_OR_RETURN(QueryResult result, Dispatch(parsed, ctx));
  result.stats.parse_time = parse_time;
  return result;
}

Result<QueryResult> AiqlEngine::Dispatch(const ParsedQuery& parsed,
                                         QueryContext* ctx) {
  if (shards_ != nullptr) {
    ShardedExecutor executor(shards_, options_, pool_.get());
    return executor.Execute(parsed, ctx);
  }
  // One consistent snapshot of the sealed partitions per query: the view
  // holds the database's state lock shared, so ingestion keeps buffering
  // while this query runs and commits apply once the view closes. A
  // snapshot- or tiered-backed view instead selects against the on-disk
  // directory and materializes only the partitions this query touches.
  ReadView view = OpenView();
  // Bind the context for the dispatching thread: partition selection may
  // materialize cold partitions, which charge the query's memory budget
  // through the ambient context (workers re-bind it themselves).
  ScopedQueryContext bind(ctx);
  switch (parsed.kind) {
    case QueryKind::kMultievent: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      MultieventExecutor executor(&view, options_, pool_.get());
      return executor.Execute(analyzed, ctx);
    }
    case QueryKind::kAnomaly: {
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*parsed.multievent, parsed.kind));
      AnomalyExecutor executor(&view, options_, pool_.get());
      return executor.Execute(analyzed, ctx);
    }
    case QueryKind::kDependency: {
      AIQL_ASSIGN_OR_RETURN(auto rewritten,
                            RewriteDependency(*parsed.dependency));
      AIQL_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
      MultieventExecutor executor(&view, options_, pool_.get());
      AIQL_ASSIGN_OR_RETURN(QueryResult result,
                            executor.Execute(analyzed, ctx));
      result.plan = "dependency query rewritten to multievent:\n" +
                    result.plan;
      return result;
    }
  }
  return Status::Internal("unknown query kind");
}

Result<QueryKind> AiqlEngine::Check(std::string_view text) const {
  AIQL_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseAiql(text));
  switch (parsed.kind) {
    case QueryKind::kDependency: {
      AIQL_ASSIGN_OR_RETURN(auto rewritten,
                            RewriteDependency(*parsed.dependency));
      AIQL_RETURN_IF_ERROR(
          AnalyzeMultievent(*rewritten, QueryKind::kMultievent).status());
      break;
    }
    default:
      AIQL_RETURN_IF_ERROR(
          AnalyzeMultievent(*parsed.multievent, parsed.kind).status());
  }
  return parsed.kind;
}

Result<std::string> AiqlEngine::Explain(std::string_view text) {
  AIQL_ASSIGN_OR_RETURN(QueryResult result, Execute(text));
  return result.plan;
}

Result<ProvenanceResult> AiqlEngine::Track(const TrackRequest& request) {
  if (HasLimits(options_.default_limits)) {
    QueryContext ctx(options_.default_limits);
    return Track(request, &ctx);
  }
  return Track(request, nullptr);
}

Result<ProvenanceResult> AiqlEngine::Track(const TrackRequest& request,
                                           QueryContext* ctx) {
  if (shards_ != nullptr) return TrackSharded(request, ctx);
  ReadView view = OpenView();
  ScopedQueryContext bind(ctx);
  const EntityStore& entities = view.entities();
  LikeMatcher matcher(request.name_like);
  std::vector<EntityId> ids;
  switch (request.type) {
    case EntityType::kProcess:
      ids = entities.FindProcessesByExe(matcher);
      break;
    case EntityType::kFile:
      ids = entities.FindFilesByPath(matcher);
      break;
    case EntityType::kNetwork:
      ids = entities.FindNetworksByIp(matcher, /*use_src=*/false);
      break;
  }
  if (ids.empty()) {
    return Status::NotFound("no " +
                            std::string(EntityTypeToString(request.type)) +
                            " entity matches '" + request.name_like + "'");
  }
  std::vector<std::pair<EntityType, EntityId>> roots;
  roots.reserve(ids.size());
  for (EntityId id : ids) roots.emplace_back(request.type, id);
  Timestamp anchor = request.anchor.value_or(
      request.options.backward ? INT64_MAX : INT64_MIN);
  return TrackProvenance(view, roots, anchor, request.options, pool_.get(),
                         ctx);
}

Result<ProvenanceResult> AiqlEngine::TrackSharded(const TrackRequest& request,
                                                  QueryContext* ctx) {
  if (shards_->num_shards() == 0) {
    return Status::InvalidArgument("shard map has no shards");
  }
  // One atomic view per shard, taken up front — root resolution and every
  // hop run against this consistent scatter-time snapshot.
  std::vector<ReadView> views = shards_->OpenReadViews();
  LikeMatcher matcher(request.name_like);
  std::vector<ShardEntity> roots;
  for (size_t s = 0; s < views.size(); ++s) {
    const EntityStore& entities = views[s].entities();
    std::vector<EntityId> ids;
    switch (request.type) {
      case EntityType::kProcess:
        ids = entities.FindProcessesByExe(matcher);
        break;
      case EntityType::kFile:
        ids = entities.FindFilesByPath(matcher);
        break;
      case EntityType::kNetwork:
        ids = entities.FindNetworksByIp(matcher, /*use_src=*/false);
        break;
    }
    for (EntityId id : ids) {
      roots.push_back(ShardEntity{static_cast<uint32_t>(s), request.type, id});
    }
  }
  if (roots.empty()) {
    return Status::NotFound("no " +
                            std::string(EntityTypeToString(request.type)) +
                            " entity matches '" + request.name_like + "'");
  }
  Timestamp anchor = request.anchor.value_or(
      request.options.backward ? INT64_MAX : INT64_MIN);
  // Engine-level degradation policy overrides the request's retry knobs.
  ProvenanceOptions track_options = request.options;
  track_options.shard_max_attempts = options_.shard_max_attempts;
  track_options.shard_retry_backoff = options_.shard_retry_backoff;
  track_options.partial_shards =
      options_.shard_policy == ShardPolicy::kPartial;
  return TrackProvenanceSharded(views, roots, anchor, track_options,
                                pool_.get(), ctx);
}

}  // namespace aiql
