// Pruning-power scheduling (paper §2.3, key insight #1).
//
// For a query with multiple event patterns, the engine prioritizes the
// search of patterns with higher pruning power — i.e. the smallest expected
// number of matching events — so that the bindings they produce prune later,
// less selective scans (semi-join reduction). Cardinality is estimated from
// partition statistics: exact time-clipped per-operation posting-list
// counts (OpCountInRange) and per-subject-executable event counts, scaled
// by candidate-set selectivity on the object side.

#ifndef AIQL_ENGINE_SCHEDULER_H_
#define AIQL_ENGINE_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/cancellation.h"
#include "engine/data_query.h"
#include "storage/database.h"

namespace aiql {

/// What to do when a shard fails (after retries) during scatter/gather.
enum class ShardPolicy {
  /// Any shard failure fails the whole query (all shard errors aggregated
  /// into one Status).
  kStrict,
  /// Failed / timed-out shards are dropped; the query returns the merged
  /// rows of the surviving shards, annotated per shard (QueryResult
  /// degraded/shard_status fields).
  kPartial,
};

/// Engine knobs; defaults enable every optimization. The ablation benchmark
/// toggles them individually.
struct EngineOptions {
  /// Reorder patterns by estimated pruning power (insight #1).
  bool enable_reordering = true;
  /// Partition-parallel scan execution (insight #2). 0 threads = hardware
  /// concurrency.
  bool enable_parallelism = true;
  size_t num_threads = 0;
  /// Semi-join pruning: bindings from already-executed patterns restrict
  /// the candidate sets of later scans.
  bool enable_semi_join = true;
  /// Temporal pruning: `before`/`after` relations tighten later scans'
  /// time ranges using matched events' timestamps.
  bool enable_temporal_pruning = true;
  /// Batch-at-a-time columnar scan kernels (dictionary-id predicate tests
  /// over the SoA columns). Off = historical row-at-a-time loop; results
  /// are identical either way (the oracle diffs both).
  bool enable_batch_kernels = true;

  // --- Query governance (deadlines, budgets, degraded execution) ---

  /// Default limits applied to every Execute()/Track() when the caller does
  /// not pass its own QueryContext. All-zero = ungoverned.
  QueryLimits default_limits;
  /// Shard failure policy for sharded scatter/gather.
  ShardPolicy shard_policy = ShardPolicy::kStrict;
  /// Per-shard attempts for transient failures (IOError / Unavailable /
  /// injected faults). 1 = no retry.
  int shard_max_attempts = 3;
  /// Backoff before the second attempt; doubles per retry. Interruptible
  /// by deadline/cancel.
  std::chrono::milliseconds shard_retry_backoff{5};
};

/// Estimates the number of events matching `pattern` within the sealed
/// partitions the read view selects for its time range and `agents`.
/// Fails only on snapshot-backed views whose selected partitions cannot be
/// materialized (I/O error or corruption).
Result<double> EstimateCardinality(
    const CompiledPattern& pattern, const ReadView& view,
    const std::optional<std::vector<AgentId>>& agents);

/// Fills estimated_cardinality on each pattern and returns the execution
/// order (indexes into `patterns`): ascending estimate when reordering is
/// on, original order otherwise. Propagates partition-materialization
/// failures from snapshot-backed views.
Result<std::vector<size_t>> SchedulePatterns(
    std::vector<CompiledPattern>* patterns, const ReadView& view,
    const std::optional<std::vector<AgentId>>& agents,
    const EngineOptions& options);

}  // namespace aiql

#endif  // AIQL_ENGINE_SCHEDULER_H_
