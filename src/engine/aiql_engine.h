// AiqlEngine — the public query-system facade (the paper's Figure 1):
// language parser -> query optimization -> executors, over the optimized
// storage. This is the entry point examples and the REPL shell use.

#ifndef AIQL_ENGINE_AIQL_ENGINE_H_
#define AIQL_ENGINE_AIQL_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/provenance.h"
#include "engine/result.h"
#include "engine/scheduler.h"
#include "query/ast.h"
#include "storage/database.h"

namespace aiql {

class SnapshotStore;
class ShardMap;
class TieredStore;

/// Point-of-interest specification for AiqlEngine::Track(): every entity of
/// `type` whose default attribute (exe name / path / dst ip) matches
/// `name_like` becomes a tracking root.
struct TrackRequest {
  std::string name_like;
  EntityType type = EntityType::kFile;
  /// Anchor timestamp: backward tracking admits events ending at or before
  /// it, forward tracking events starting at or after it. Defaults to the
  /// whole timeline (INT64_MAX backward, INT64_MIN forward).
  std::optional<Timestamp> anchor;
  ProvenanceOptions options;
};

/// Executes AIQL queries (multievent, dependency, anomaly) against an
/// AuditDatabase. Each Execute opens a ReadView — a consistent snapshot of
/// the currently-sealed partitions — so queries are safe and consistent
/// while a writer thread keeps ingesting (bounded staleness: events become
/// visible once their partition seals). Thread-safe for concurrent Execute
/// calls (views are shared-locked and the pool is internally synchronized).
class AiqlEngine {
 public:
  /// `db` must outlive the engine. It may still be ingesting; batch
  /// workloads Seal() it first so every event is visible.
  explicit AiqlEngine(const AuditDatabase* db, EngineOptions options = {});

  /// Executes queries directly against a lazily opened v2 snapshot: each
  /// query materializes (and caches) only the partitions its time range and
  /// agent filter select, so the cold-start cost tracks data touched, not
  /// data stored. `snapshot` must outlive the engine.
  explicit AiqlEngine(const SnapshotStore* snapshot,
                      EngineOptions options = {});

  /// Tiered-retention mode: queries run over the store's hot + cold
  /// partitions through one consistent view; cold partitions selected by a
  /// query materialize through the store's memory-budgeted cache (blocking
  /// the query mid-stream for the reopen I/O) and are charged to the
  /// query's byte budget. `tiered` must outlive the engine.
  explicit AiqlEngine(const TieredStore* tiered, EngineOptions options = {});

  /// Sharded mode: queries scatter across the map's shards (each backed by
  /// a database or snapshot keyed by agent range) and gather through the
  /// merge layer; Track() exchanges provenance frontiers across shards.
  /// Single-db construction and semantics are unchanged. `shards` must
  /// outlive the engine.
  explicit AiqlEngine(const ShardMap* shards, EngineOptions options = {});

  ~AiqlEngine();

  /// Parses, analyzes, optimizes, and executes `text`. When
  /// EngineOptions::default_limits sets any limit, the run is governed by a
  /// per-query QueryContext built from them (deadline / budget breaches
  /// surface as kDeadlineExceeded / kResourceExhausted); all-zero limits
  /// keep the ungoverned hot path.
  Result<QueryResult> Execute(std::string_view text);

  /// Same, governed by a caller-owned context — the caller can Cancel() it
  /// from another thread, inspect charged budgets afterwards, or share one
  /// context across several queries under a common deadline.
  Result<QueryResult> Execute(std::string_view text, QueryContext* ctx);

  /// Syntax/semantic check only (the web UI's query debugging feature):
  /// returns OK plus the query kind without executing.
  Result<QueryKind> Check(std::string_view text) const;

  /// Returns the execution plan without running the query.
  Result<std::string> Explain(std::string_view text);

  /// Iterative causal provenance tracking (engine/provenance.h) from the
  /// entities matching `request`. Runs against the same consistent ReadView
  /// machinery as Execute — including lazily materialized snapshot views,
  /// where each hop reads only the partitions its time bounds select.
  /// Governance mirrors Execute (default_limits / caller context). Sharded
  /// tracking applies the engine's shard retry/degradation policy: the
  /// request's ProvenanceOptions retry knobs are overridden from
  /// EngineOptions (shard_max_attempts, shard_retry_backoff, and
  /// partial_shards = (shard_policy == kPartial)).
  Result<ProvenanceResult> Track(const TrackRequest& request);
  Result<ProvenanceResult> Track(const TrackRequest& request,
                                 QueryContext* ctx);

  const EngineOptions& options() const { return options_; }

 private:
  Result<QueryResult> Dispatch(const ParsedQuery& parsed, QueryContext* ctx);

  Result<ProvenanceResult> TrackSharded(const TrackRequest& request,
                                        QueryContext* ctx);

  /// Opens the backing store's read view (database, tiered, or snapshot).
  ReadView OpenView() const;

  const AuditDatabase* db_ = nullptr;
  const SnapshotStore* snapshot_ = nullptr;
  const TieredStore* tiered_ = nullptr;
  const ShardMap* shards_ = nullptr;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_AIQL_ENGINE_H_
