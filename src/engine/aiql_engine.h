// AiqlEngine — the public query-system facade (the paper's Figure 1):
// language parser -> query optimization -> executors, over the optimized
// storage. This is the entry point examples and the REPL shell use.

#ifndef AIQL_ENGINE_AIQL_ENGINE_H_
#define AIQL_ENGINE_AIQL_ENGINE_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/result.h"
#include "engine/scheduler.h"
#include "query/ast.h"
#include "storage/database.h"

namespace aiql {

/// Executes AIQL queries (multievent, dependency, anomaly) against a sealed
/// AuditDatabase. Thread-safe for concurrent Execute calls after
/// construction (the database is immutable and the pool is internally
/// synchronized).
class AiqlEngine {
 public:
  /// `db` must outlive the engine and be sealed.
  explicit AiqlEngine(const AuditDatabase* db, EngineOptions options = {});
  ~AiqlEngine();

  /// Parses, analyzes, optimizes, and executes `text`.
  Result<QueryResult> Execute(std::string_view text);

  /// Syntax/semantic check only (the web UI's query debugging feature):
  /// returns OK plus the query kind without executing.
  Result<QueryKind> Check(std::string_view text) const;

  /// Returns the execution plan without running the query.
  Result<std::string> Explain(std::string_view text);

  const EngineOptions& options() const { return options_; }

 private:
  Result<QueryResult> Dispatch(const ParsedQuery& parsed);

  const AuditDatabase* db_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_AIQL_ENGINE_H_
