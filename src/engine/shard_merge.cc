#include "engine/shard_merge.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <variant>

namespace aiql {

namespace {

double NumericValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return 0.0;
}

/// Canonical byte serialization of a row for cross-shard DISTINCT — type tag
/// + rendered value per cell, '\x1e'-separated so cells cannot bleed.
std::string RowKey(const std::vector<Value>& row) {
  std::string key;
  for (const Value& v : row) {
    if (const auto* s = std::get_if<std::string>(&v)) {
      key += 's';
      key += *s;
    } else if (const auto* i = std::get_if<int64_t>(&v)) {
      key += 'i';
      key += std::to_string(*i);
    } else {
      key += 'd';
      key += std::to_string(std::get<double>(v));
    }
    key += '\x1e';
  }
  return key;
}

}  // namespace

int CompareRowsByKeys(const std::vector<Value>& a, const std::vector<Value>& b,
                      const std::vector<std::pair<size_t, bool>>& keys) {
  for (const auto& [column, desc] : keys) {
    if (column >= a.size() || column >= b.size()) continue;
    const Value& l = a[column];
    const Value& r = b[column];
    int cmp;
    if (std::holds_alternative<std::string>(l) &&
        std::holds_alternative<std::string>(r)) {
      cmp = std::get<std::string>(l).compare(std::get<std::string>(r));
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else {
      double lf = NumericValue(l), rf = NumericValue(r);
      cmp = lf < rf ? -1 : (lf > rf ? 1 : 0);
    }
    if (cmp != 0) return desc ? -cmp : cmp;
  }
  return 0;
}

bool IsTransientShardError(StatusCode code) {
  return code == StatusCode::kIOError || code == StatusCode::kCorruption ||
         code == StatusCode::kUnavailable;
}

Status AggregateShardErrors(const std::vector<Result<QueryResult>>& results) {
  StatusCode code = StatusCode::kOk;
  std::string message;
  int failed = 0;
  for (size_t s = 0; s < results.size(); ++s) {
    if (results[s].ok()) continue;
    ++failed;
    if (code == StatusCode::kOk) code = results[s].status().code();
    if (!message.empty()) message += "; ";
    message += "shard " + std::to_string(s) + ": " +
               results[s].status().ToString();
  }
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, std::to_string(failed) + " of " +
                          std::to_string(results.size()) +
                          " shard(s) failed: " + message);
}

Result<QueryResult> MergeShardResults(
    std::vector<Result<QueryResult>> shard_results,
    const ShardMergeSpec& spec, QueryContext* ctx) {
  for (auto& r : shard_results) {
    if (!r.ok()) return AggregateShardErrors(shard_results);
  }

  QueryResult merged;
  bool have_columns = false;
  for (auto& r : shard_results) {
    QueryResult& shard = r.value();
    if (!have_columns) {
      merged.table.columns = shard.table.columns;
      merged.stats.patterns = shard.stats.patterns;
      have_columns = true;
    } else if (shard.table.columns != merged.table.columns) {
      return Status::Internal("shard result column mismatch during merge");
    }
    merged.stats.events_scanned += shard.stats.events_scanned;
    merged.stats.events_matched += shard.stats.events_matched;
    merged.stats.partitions_scanned += shard.stats.partitions_scanned;
    merged.stats.join_candidates += shard.stats.join_candidates;
    merged.stats.exec_time += shard.stats.exec_time;
    merged.stats.threads_used =
        std::max(merged.stats.threads_used, shard.stats.threads_used);
  }

  const size_t limit = spec.limit < 0 ? SIZE_MAX
                                      : static_cast<size_t>(spec.limit);
  std::unordered_set<std::string> seen;
  // Mid-merge governance: every kCheckStride emitted rows the context is
  // charged and checked; a breach stops emission and `done` surfaces the
  // sticky status instead of the partial table.
  uint64_t since_check = 0;
  bool governed_stop = false;
  auto emit = [&](std::vector<Value>&& row) {
    if (ctx != nullptr && ++since_check >= QueryContext::kCheckStride) {
      Status s = ctx->ChargeRows(since_check);
      since_check = 0;
      if (!s.ok()) {
        governed_stop = true;
        return false;
      }
    }
    if (merged.table.rows.size() >= limit) return false;
    if (spec.distinct && !seen.insert(RowKey(row)).second) return true;
    merged.table.rows.push_back(std::move(row));
    return merged.table.rows.size() < limit;
  };
  auto done = [&]() -> Result<QueryResult> {
    if (ctx != nullptr) {
      if (since_check > 0) {
        Status s = ctx->ChargeRows(since_check);
        since_check = 0;
        if (!s.ok()) return s;
      }
      if (governed_stop || ctx->stopped()) {
        AIQL_RETURN_IF_ERROR(ctx->Check());
      }
    }
    return std::move(merged);
  };

  if (spec.order_keys.empty()) {
    // Unordered: concatenate in shard order (deterministic given
    // deterministic per-shard output).
    for (auto& r : shard_results) {
      for (auto& row : r.value().table.rows) {
        if (!emit(std::move(row))) return done();
      }
    }
    return done();
  }

  // Ordered: k-way heap merge over per-shard sorted tables. The heap holds
  // one cursor per non-exhausted shard; pop order is (order keys, shard
  // index, row index), so equal-key runs come out shard-major and the merge
  // is fully deterministic.
  struct Cursor {
    size_t shard;
    size_t row;
  };
  auto row_at = [&](const Cursor& c) -> std::vector<Value>& {
    return shard_results[c.shard].value().table.rows[c.row];
  };
  auto cursor_after = [&](const Cursor& a, const Cursor& b) {
    int cmp = CompareRowsByKeys(row_at(a), row_at(b), spec.order_keys);
    if (cmp != 0) return cmp > 0;
    if (a.shard != b.shard) return a.shard > b.shard;
    return a.row > b.row;
  };
  std::vector<Cursor> heap;
  for (size_t s = 0; s < shard_results.size(); ++s) {
    if (!shard_results[s].value().table.rows.empty()) {
      heap.push_back(Cursor{s, 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), cursor_after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cursor_after);
    Cursor top = heap.back();
    heap.pop_back();
    if (!emit(std::move(row_at(top)))) return done();
    if (top.row + 1 <
        shard_results[top.shard].value().table.rows.size()) {
      heap.push_back(Cursor{top.shard, top.row + 1});
      std::push_heap(heap.begin(), heap.end(), cursor_after);
    }
  }
  return done();
}

}  // namespace aiql
