#include "engine/dependency.h"

#include "query/analyzer.h"

namespace aiql {

Result<std::unique_ptr<MultieventQueryAst>> RewriteDependency(
    const DependencyQueryAst& dep) {
  AIQL_RETURN_IF_ERROR(ValidateDependency(dep));

  auto query = std::make_unique<MultieventQueryAst>();
  query->globals.time_window = dep.globals.time_window;
  query->globals.attrs = dep.globals.attrs;
  query->distinct = dep.distinct;
  query->return_items = dep.return_items;
  query->order_by = dep.order_by;
  query->limit = dep.limit;

  // Name anonymous nodes so consecutive edges share a variable (the join
  // that makes the path connected). '$' names cannot clash with user text.
  int anon_counter = 0;
  auto named = [&](const EntityDeclAst& decl) {
    EntityDeclAst out = decl;
    if (out.var.empty()) {
      out.var = "$node" + std::to_string(++anon_counter);
    }
    return out;
  };

  EntityDeclAst previous = named(dep.start);
  std::vector<std::string> event_vars;
  for (size_t i = 0; i < dep.edges.size(); ++i) {
    const DependencyEdgeAst& edge = dep.edges[i];
    EntityDeclAst target = named(edge.target);

    EventPatternAst pattern;
    pattern.line = edge.line;
    pattern.column = edge.column;
    pattern.ops = edge.ops;
    // The arrow points from the event's subject to its object.
    if (edge.arrow_forward) {
      pattern.subject = previous;
      pattern.object = target;
    } else {
      pattern.subject = target;
      pattern.object = previous;
    }
    pattern.event_var = "$dep" + std::to_string(i + 1);
    event_vars.push_back(pattern.event_var);
    query->patterns.push_back(std::move(pattern));

    // Constraints of a node apply once; later occurrences only need the
    // variable for the join (CompilePatterns merges per-variable constraints
    // across occurrences anyway, but dropping them keeps the rewritten AST
    // small).
    previous = target;
    previous.constraints.clear();
  }

  // Chain temporal order: forward -> earlier edges happen earlier.
  for (size_t i = 0; i + 1 < event_vars.size(); ++i) {
    TemporalRelAst rel;
    rel.left = event_vars[i];
    rel.right = event_vars[i + 1];
    rel.before = dep.forward;
    query->temporal_rels.push_back(std::move(rel));
  }
  return query;
}

}  // namespace aiql
