#include "engine/dependency.h"

#include <unordered_set>

#include "query/analyzer.h"

namespace aiql {

Result<std::unique_ptr<MultieventQueryAst>> RewriteDependency(
    const DependencyQueryAst& dep) {
  AIQL_RETURN_IF_ERROR(ValidateDependency(dep));

  // A user variable may name only one path node. Consecutive edges share a
  // node through `previous`, never through re-declaration, so a repeated
  // name would silently alias two distinct path positions into one entity
  // (a cycle the analyst almost certainly did not mean to write).
  {
    std::unordered_set<std::string> node_vars;
    auto check_var = [&](const EntityDeclAst& decl) -> Status {
      if (decl.var.empty()) return Status::OK();
      if (!node_vars.insert(decl.var).second) {
        return Status::SemanticError(
            "line " + std::to_string(decl.line) + ", col " +
            std::to_string(decl.column) + ": variable '" + decl.var +
            "' names two different dependency path nodes");
      }
      return Status::OK();
    };
    AIQL_RETURN_IF_ERROR(check_var(dep.start));
    for (const DependencyEdgeAst& edge : dep.edges) {
      AIQL_RETURN_IF_ERROR(check_var(edge.target));
    }
  }
  // A hop window bounds the gap to the previous edge's event; the first
  // edge has no previous event, so a window there would be silently dead.
  if (!dep.edges.empty() && dep.edges.front().within > 0) {
    return Status::SemanticError(
        "line " + std::to_string(dep.edges.front().line) + ", col " +
        std::to_string(dep.edges.front().column) +
        ": the first dependency edge cannot carry a hop window (there is "
        "no earlier event to bound against)");
  }

  auto query = std::make_unique<MultieventQueryAst>();
  query->globals.time_window = dep.globals.time_window;
  query->globals.attrs = dep.globals.attrs;
  query->distinct = dep.distinct;
  query->return_items = dep.return_items;
  query->order_by = dep.order_by;
  query->limit = dep.limit;

  // Name anonymous nodes so consecutive edges share a variable (the join
  // that makes the path connected). '$' names cannot clash with user text.
  int anon_counter = 0;
  auto named = [&](const EntityDeclAst& decl) {
    EntityDeclAst out = decl;
    if (out.var.empty()) {
      out.var = "$node" + std::to_string(++anon_counter);
    }
    return out;
  };

  EntityDeclAst previous = named(dep.start);
  std::vector<std::string> event_vars;
  for (size_t i = 0; i < dep.edges.size(); ++i) {
    const DependencyEdgeAst& edge = dep.edges[i];
    EntityDeclAst target = named(edge.target);

    EventPatternAst pattern;
    pattern.line = edge.line;
    pattern.column = edge.column;
    pattern.ops = edge.ops;
    // The arrow points from the event's subject to its object.
    if (edge.arrow_forward) {
      pattern.subject = previous;
      pattern.object = target;
    } else {
      pattern.subject = target;
      pattern.object = previous;
    }
    pattern.event_var = "$dep" + std::to_string(i + 1);
    event_vars.push_back(pattern.event_var);
    query->patterns.push_back(std::move(pattern));

    // Constraints of a node apply once; later occurrences only need the
    // variable for the join (CompilePatterns merges per-variable constraints
    // across occurrences anyway, but dropping them keeps the rewritten AST
    // small).
    previous = target;
    previous.constraints.clear();
  }

  // Chain temporal order: forward -> earlier edges happen earlier. The hop
  // window declared on edge i+1 bounds the gap between the two events; an
  // unbounded edge keeps within = 0.
  for (size_t i = 0; i + 1 < event_vars.size(); ++i) {
    TemporalRelAst rel;
    rel.left = event_vars[i];
    rel.right = event_vars[i + 1];
    rel.before = dep.forward;
    rel.within = dep.edges[i + 1].within;
    query->temporal_rels.push_back(std::move(rel));
  }
  return query;
}

}  // namespace aiql
