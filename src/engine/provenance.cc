#include "engine/provenance.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/bitset.h"
#include "common/failpoint.h"
#include "engine/shard_merge.h"
#include "storage/shard_map.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

/// Saturating addition on timestamps (anchors default to INT64_MAX for
/// backward runs over the whole timeline).
Timestamp SatAdd(Timestamp a, Duration b) {
  if (a > 0 && b > INT64_MAX - a) return INT64_MAX;
  return a + b;
}

uint64_t NodeKey(EntityType type, EntityId id) {
  return EventPartition::ObjectKey(type, id);
}

/// One admissible event found while expanding a frontier entity. Partition
/// and event indexes make the post-parallel merge order deterministic.
struct Candidate {
  const Event* event = nullptr;
  uint32_t frontier_pos = 0;  ///< position in this hop's frontier
  uint32_t partition = 0;
  uint32_t event_index = 0;
  EntityType other_type = EntityType::kProcess;
  EntityId other_id = 0;
};

bool TypeAllowed(const ProvenanceOptions& options, EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return options.follow_processes;
    case EntityType::kFile:
      return options.follow_files;
    case EntityType::kNetwork:
      return options.follow_networks;
  }
  return false;
}

}  // namespace

Result<ProvenanceResult> TrackProvenance(
    const ReadView& view,
    const std::vector<std::pair<EntityType, EntityId>>& roots,
    Timestamp anchor, const ProvenanceOptions& options, ThreadPool* pool,
    QueryContext* ctx) {
  if (roots.empty()) {
    return Status::InvalidArgument("provenance tracking needs at least one "
                                   "point-of-interest entity");
  }
  const bool backward = options.backward;
  const TimeRange window =
      options.window.value_or(TimeRange{INT64_MIN, INT64_MAX});

  // Flow-direction op masks for the two reverse-index lookups. Expanding a
  // frontier entity v:
  //   * object-side lookup finds events whose object is v — in backward
  //     mode flows INTO v run subject->object; in forward mode flows OUT of
  //     v (as an object) run object->subject;
  //   * subject-side lookup (v is a process) mirrors this.
  const OpMask object_side_mask =
      options.op_mask &
      (backward ? kSubjectToObjectOps : kObjectToSubjectOps);
  const OpMask subject_side_mask =
      options.op_mask &
      (backward ? kObjectToSubjectOps : kSubjectToObjectOps);

  // Per-event agent check is only needed without partition pruning (the
  // flat-storage ablation); partitioned views restrict agents during
  // partition selection. Hybrid bitset: the hop loop's check is an
  // id-compare, not a hash probe.
  std::optional<IdFilter> agent_set;
  if (options.agents.has_value() && !view.options().enable_partitioning) {
    agent_set.emplace(*options.agents);
  }

  ProvenanceResult result;
  std::unordered_map<uint64_t, uint32_t> node_slot;
  auto add_node = [&](EntityType type, EntityId id, int depth,
                      Timestamp bound) {
    uint32_t slot = static_cast<uint32_t>(result.nodes.size());
    node_slot.emplace(NodeKey(type, id), slot);
    result.nodes.push_back(ProvenanceNode{type, id, depth, bound});
    return slot;
  };

  std::vector<uint32_t> frontier;
  for (const auto& [type, id] : roots) {
    if (node_slot.count(NodeKey(type, id)) > 0) continue;  // duplicate root
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->ChargeNodes(1));
    frontier.push_back(add_node(type, id, 0, anchor));
  }
  result.num_roots = result.nodes.size();

  // Events already in the graph; a re-expanded entity (bound widening)
  // must not duplicate them. Pointers are stable for the view's lifetime.
  std::unordered_set<const Event*> recorded_events;

  for (int hop = 1; hop <= options.max_depth && !frontier.empty(); ++hop) {
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());
    auto hop_start = Clock::now();
    result.stats.hops = hop;
    // Keeps hop_latency_us.size() == hops on every exit path.
    auto record_hop_latency = [&] {
      result.stats.hop_latency_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - hop_start)
              .count());
    };

    // Global scan range of this hop: the union of what any frontier bound
    // admits, clamped by the window (and the hop window, which caps how far
    // one hop may reach in time).
    Timestamp min_bound = INT64_MAX;
    Timestamp max_bound = INT64_MIN;
    for (uint32_t slot : frontier) {
      min_bound = std::min(min_bound, result.nodes[slot].bound);
      max_bound = std::max(max_bound, result.nodes[slot].bound);
    }
    TimeRange scan_range = window;
    if (backward) {
      scan_range.end = std::min(scan_range.end, SatAdd(max_bound, 1));
      if (options.hop_window > 0 && min_bound != INT64_MAX) {
        // Admissible events end at >= bound - hop_window; a partition whose
        // newest event ends before min_bound - hop_window has none. An
        // infinite bound (whole-timeline anchor) is exempt — the hop window
        // limits event-to-event gaps, not the open end of the timeline.
        scan_range.start =
            std::max(scan_range.start, min_bound - options.hop_window);
      }
    } else {
      scan_range.start = std::max(scan_range.start, min_bound);
      if (options.hop_window > 0 && max_bound != INT64_MIN) {
        scan_range.end = std::min(
            scan_range.end, SatAdd(max_bound, options.hop_window + 1));
      }
    }
    if (scan_range.empty()) {
      record_hop_latency();
      break;
    }

    AIQL_ASSIGN_OR_RETURN(auto partitions,
                          view.SelectPartitions(scan_range, options.agents));
    result.stats.partitions_selected += partitions.size();
    if (partitions.empty()) {
      record_hop_latency();
      break;
    }

    // Scan phase: per-partition candidate collection (parallel; slots keep
    // the merge deterministic regardless of scheduling).
    std::vector<std::vector<Candidate>> found(partitions.size());
    std::vector<uint64_t> inspected(partitions.size(), 0);

    auto scan_partition = [&](size_t pi) {
      const EventPartition& partition = *partitions[pi].second;
      const std::vector<Event>& events = partition.events();
      std::vector<Candidate>& out = found[pi];
      uint64_t local_inspected = 0;
      // Governance: every inspected posting entry charges the row budget
      // at stride granularity; a breach stops this partition's scan (the
      // sticky context status surfaces after the parallel section).
      uint64_t since_check = 0;
      bool stop_scan = false;

      auto consider = [&](uint32_t fpos, Timestamp bound,
                          std::pair<const uint32_t*, const uint32_t*> span,
                          OpMask allowed, bool other_is_subject) {
        if (stop_scan || span.first == nullptr || allowed == 0) return;
        // Posting lists ascend in start_ts; clip to the admissible starts.
        const uint32_t* first = span.first;
        const uint32_t* last = span.second;
        if (backward) {
          // start_ts <= bound (end <= bound implies start <= bound).
          last = std::partition_point(first, last, [&](uint32_t index) {
            return events[index].start_ts <= bound;
          });
        } else {
          first = std::partition_point(first, last, [&](uint32_t index) {
            return events[index].start_ts < bound;
          });
        }
        for (const uint32_t* it = first; it != last; ++it) {
          const Event& event = events[*it];
          ++local_inspected;
          if (ctx != nullptr && ++since_check >= QueryContext::kCheckStride) {
            since_check = 0;
            if (!ctx->ChargeRows(QueryContext::kCheckStride).ok()) {
              stop_scan = true;
              return;
            }
          }
          if (!OpMaskContains(allowed, event.op)) continue;
          // The hop window bounds the gap to the frontier entity's bound —
          // unless that bound is the open end of the timeline (a root with
          // no anchor), which is not an event to measure a gap against.
          if (backward) {
            if (event.end_ts > bound) continue;
            if (options.hop_window > 0 && bound != INT64_MAX &&
                bound - event.end_ts > options.hop_window) {
              continue;
            }
          } else {
            // start_ts >= bound holds by the clip above.
            if (options.hop_window > 0 && bound != INT64_MIN &&
                event.start_ts - bound > options.hop_window) {
              continue;
            }
          }
          if (!window.Contains(event.start_ts)) continue;
          if (agent_set.has_value() && !agent_set->Contains(event.agent_id)) {
            continue;
          }
          Candidate candidate;
          candidate.event = &event;
          candidate.frontier_pos = fpos;
          candidate.partition = static_cast<uint32_t>(pi);
          candidate.event_index = *it;
          if (other_is_subject) {
            candidate.other_type = EntityType::kProcess;
            candidate.other_id = event.subject;
          } else {
            candidate.other_type = event.object_type;
            candidate.other_id = event.object;
          }
          if (!TypeAllowed(options, candidate.other_type)) continue;
          out.push_back(candidate);
        }
      };

      for (uint32_t fpos = 0; fpos < frontier.size() && !stop_scan; ++fpos) {
        const ProvenanceNode& node = result.nodes[frontier[fpos]];
        consider(fpos, node.bound,
                 partition.ObjectPostings(node.type, node.id),
                 object_side_mask, /*other_is_subject=*/true);
        if (node.type == EntityType::kProcess) {
          consider(fpos, node.bound, partition.SubjectPostings(node.id),
                   subject_side_mask, /*other_is_subject=*/false);
        }
      }
      if (ctx != nullptr && since_check > 0) {
        (void)ctx->ChargeRows(since_check);
      }
      inspected[pi] = local_inspected;
    };

    if (pool != nullptr && partitions.size() > 1) {
      if (ctx != nullptr) {
        pool->ParallelFor(
            partitions.size(), [&](size_t pi) { scan_partition(pi); },
            [ctx] { return ctx->stopped(); });
      } else {
        pool->ParallelFor(partitions.size(),
                          [&](size_t pi) { scan_partition(pi); });
      }
    } else {
      for (size_t pi = 0; pi < partitions.size(); ++pi) {
        if (ctx != nullptr && ctx->stopped()) break;
        scan_partition(pi);
      }
    }
    for (uint64_t count : inspected) result.stats.events_inspected += count;
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

    // Merge phase: per frontier entity, order candidates closest-in-time
    // first, apply the fanout budget, then materialize nodes and edges.
    std::vector<std::vector<Candidate>> per_node(frontier.size());
    for (const std::vector<Candidate>& chunk : found) {
      for (const Candidate& candidate : chunk) {
        per_node[candidate.frontier_pos].push_back(candidate);
      }
    }

    std::vector<uint32_t> next_frontier;
    std::unordered_set<uint32_t> queued;
    for (uint32_t fpos = 0; fpos < frontier.size(); ++fpos) {
      std::vector<Candidate>& candidates = per_node[fpos];
      // A re-expanded entity (see bound widening below) re-discovers the
      // events already in the graph; drop them before the fanout budget so
      // re-expansion explores new ground only.
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&](const Candidate& candidate) {
                                        return recorded_events.count(
                                                   candidate.event) > 0;
                                      }),
                       candidates.end());
      std::sort(candidates.begin(), candidates.end(),
                [&](const Candidate& a, const Candidate& b) {
                  if (backward) {
                    if (a.event->end_ts != b.event->end_ts) {
                      return a.event->end_ts > b.event->end_ts;
                    }
                    if (a.event->start_ts != b.event->start_ts) {
                      return a.event->start_ts > b.event->start_ts;
                    }
                  } else {
                    if (a.event->start_ts != b.event->start_ts) {
                      return a.event->start_ts < b.event->start_ts;
                    }
                    if (a.event->end_ts != b.event->end_ts) {
                      return a.event->end_ts < b.event->end_ts;
                    }
                  }
                  if (a.partition != b.partition) {
                    return a.partition < b.partition;
                  }
                  return a.event_index < b.event_index;
                });
      uint64_t dropped_here = 0;
      if (options.max_fanout > 0 && candidates.size() > options.max_fanout) {
        dropped_here += candidates.size() - options.max_fanout;
        candidates.resize(options.max_fanout);
        result.stats.truncated = true;
      }
      const uint32_t this_slot = frontier[fpos];
      for (const Candidate& candidate : candidates) {
        uint64_t key = NodeKey(candidate.other_type, candidate.other_id);
        Timestamp bound = backward ? candidate.event->start_ts
                                   : candidate.event->end_ts;
        uint32_t other_slot;
        auto it = node_slot.find(key);
        if (it != node_slot.end()) {
          other_slot = it->second;
          // Bound widening: an already-known entity re-reached along a
          // path with a looser time bound can have causal neighbors the
          // first visit could not admit — widen its bound and re-expand it
          // next hop so an untruncated result really is the full closure
          // (its depth stays at first reach).
          ProvenanceNode& existing = result.nodes[other_slot];
          bool widens = backward ? bound > existing.bound
                                 : bound < existing.bound;
          if (widens) {
            existing.bound = bound;
            if (queued.insert(other_slot).second) {
              next_frontier.push_back(other_slot);
            }
          }
        } else {
          if (options.max_nodes > 0 &&
              result.nodes.size() >= options.max_nodes) {
            result.stats.truncated = true;
            ++dropped_here;
            continue;
          }
          if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->ChargeNodes(1));
          other_slot = add_node(candidate.other_type, candidate.other_id,
                                hop, bound);
          queued.insert(other_slot);
          next_frontier.push_back(other_slot);
        }
        recorded_events.insert(candidate.event);
        ProvenanceEdge edge;
        edge.event = *candidate.event;
        edge.hop = hop;
        if (backward) {
          edge.from = other_slot;  // discovered cause flows into the
          edge.to = this_slot;     // frontier entity
        } else {
          edge.from = this_slot;
          edge.to = other_slot;
        }
        result.edges.push_back(edge);
      }
      if (dropped_here > 0) {
        result.stats.truncated_expansions.push_back(
            TruncatedExpansion{hop, frontier[fpos], dropped_here});
      }
    }

    record_hop_latency();
    frontier = std::move(next_frontier);
  }

  // A non-empty final frontier means the depth budget stopped expansion
  // with entities still unexplored.
  if (!frontier.empty()) result.stats.truncated = true;
  return result;
}

Result<ProvenanceResult> TrackProvenanceSharded(
    const std::vector<ReadView>& views, const std::vector<ShardEntity>& roots,
    Timestamp anchor, const ProvenanceOptions& options, ThreadPool* pool,
    QueryContext* ctx) {
  if (views.empty()) {
    return Status::InvalidArgument("sharded tracking needs at least one "
                                   "shard view");
  }
  if (roots.empty()) {
    return Status::InvalidArgument("provenance tracking needs at least one "
                                   "point-of-interest entity");
  }
  const size_t num_shards = views.size();
  // Bind the context thread-locally so interruptible sleeps on this thread
  // (retry backoff, injected failpoint latency) honor the deadline.
  ScopedQueryContext bind_ctx(ctx);
  const bool backward = options.backward;
  const TimeRange window =
      options.window.value_or(TimeRange{INT64_MIN, INT64_MAX});

  const OpMask object_side_mask =
      options.op_mask &
      (backward ? kSubjectToObjectOps : kObjectToSubjectOps);
  const OpMask subject_side_mask =
      options.op_mask &
      (backward ? kObjectToSubjectOps : kSubjectToObjectOps);

  std::optional<IdFilter> agent_set;
  if (options.agents.has_value()) {
    for (const ReadView& view : views) {
      if (!view.options().enable_partitioning) {
        agent_set.emplace(*options.agents);
        break;
      }
    }
  }

  ProvenanceResult result;
  // Node identity is the full attribute tuple — the only name that survives
  // crossing a shard boundary. Each node also carries its id in every
  // shard's space (kInvalidEntityId where a shard never interned it), so
  // one frontier entity expands through every shard's reverse indexes.
  std::unordered_map<std::string, uint32_t> node_slot;
  std::vector<std::vector<EntityId>> local_ids;

  auto resolve = [&](uint32_t source_shard, EntityType type, EntityId id) {
    ObjectRef ref = MakeEntityRef(views[source_shard].entities(), type, id);
    std::vector<EntityId> ids(num_shards, kInvalidEntityId);
    for (size_t s = 0; s < num_shards; ++s) {
      ids[s] = s == source_shard
                   ? id
                   : FindEntity(views[s].entities(), ref);
    }
    return std::make_pair(EntityRefKey(ref), std::move(ids));
  };

  auto add_node = [&](uint32_t shard, EntityType type, EntityId id, int depth,
                      Timestamp bound, std::string key,
                      std::vector<EntityId> ids) {
    uint32_t slot = static_cast<uint32_t>(result.nodes.size());
    node_slot.emplace(std::move(key), slot);
    result.nodes.push_back(ProvenanceNode{type, id, depth, bound, shard});
    local_ids.push_back(std::move(ids));
    return slot;
  };

  std::vector<uint32_t> frontier;
  for (const ShardEntity& root : roots) {
    if (root.shard >= num_shards) {
      return Status::InvalidArgument("root shard index out of range");
    }
    auto [key, ids] = resolve(root.shard, root.type, root.id);
    if (node_slot.count(key) > 0) continue;  // duplicate root (any shard)
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->ChargeNodes(1));
    frontier.push_back(add_node(root.shard, root.type, root.id, 0, anchor,
                                std::move(key), std::move(ids)));
  }
  result.num_roots = result.nodes.size();

  // Event pointers are unique across shards (distinct stores), so one set
  // still dedups re-discoveries after bound widening.
  std::unordered_set<const Event*> recorded_events;

  // Degraded-execution bookkeeping: a shard that exhausts its transient-
  // fault retries is dropped for the rest of the run (partial_shards) —
  // later hops skip it and the final stats annotate it.
  std::vector<ShardTrackStatus> shard_status(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_status[s].shard = static_cast<uint32_t>(s);
  }
  std::vector<bool> shard_dropped(num_shards, false);
  using SelectedPartitions =
      std::vector<std::pair<PartitionKey, const EventPartition*>>;

  // A candidate's entity ids live in the id space of the shard that owns
  // its partition.
  struct ShardCandidate {
    const Event* event = nullptr;
    uint32_t shard = 0;
    uint32_t frontier_pos = 0;
    uint32_t partition = 0;  ///< global rank in the merged partition order
    uint32_t event_index = 0;
    EntityType other_type = EntityType::kProcess;
    EntityId other_id = 0;
  };

  for (int hop = 1; hop <= options.max_depth && !frontier.empty(); ++hop) {
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());
    auto hop_start = Clock::now();
    result.stats.hops = hop;
    auto record_hop_latency = [&] {
      result.stats.hop_latency_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - hop_start)
              .count());
    };

    Timestamp min_bound = INT64_MAX;
    Timestamp max_bound = INT64_MIN;
    for (uint32_t slot : frontier) {
      min_bound = std::min(min_bound, result.nodes[slot].bound);
      max_bound = std::max(max_bound, result.nodes[slot].bound);
    }
    TimeRange scan_range = window;
    if (backward) {
      scan_range.end = std::min(scan_range.end, SatAdd(max_bound, 1));
      if (options.hop_window > 0 && min_bound != INT64_MAX) {
        scan_range.start =
            std::max(scan_range.start, min_bound - options.hop_window);
      }
    } else {
      scan_range.start = std::max(scan_range.start, min_bound);
      if (options.hop_window > 0 && max_bound != INT64_MIN) {
        scan_range.end = std::min(
            scan_range.end, SatAdd(max_bound, options.hop_window + 1));
      }
    }
    if (scan_range.empty()) {
      record_hop_latency();
      break;
    }

    // Partition selection fans across shards; the merged list is ordered by
    // (bucket, agent) — shards own disjoint agent ranges, so a stable sort
    // over the per-shard (bucket, agent, seq)-ordered lists reproduces the
    // exact partition order a merged single database would scan in. All
    // downstream tie-breaks (candidate sort, fanout cuts) therefore match
    // the single-db tracker on identical data.
    struct ShardPartition {
      uint32_t shard;
      PartitionKey key;
      const EventPartition* partition;
    };
    std::vector<ShardPartition> partitions;
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_dropped[s]) continue;
      // Bounded retry on transient storage faults with interruptible
      // doubled backoff; `shard.track` is the chaos injection site
      // (arg = shard index).
      const int max_attempts = std::max(1, options.shard_max_attempts);
      auto backoff = options.shard_retry_backoff;
      auto attempt_once = [&]() -> Result<SelectedPartitions> {
        AIQL_RETURN_IF_ERROR(
            Failpoint::Hit("shard.track", static_cast<int>(s)));
        return views[s].SelectPartitions(scan_range, options.agents);
      };
      Result<SelectedPartitions> selected = attempt_once();
      int attempt = 1;
      while (!selected.ok() &&
             IsTransientShardError(selected.status().code()) &&
             attempt < max_attempts) {
        if (ctx != nullptr && ctx->stopped()) break;
        InterruptibleSleep(
            std::chrono::duration_cast<std::chrono::microseconds>(backoff));
        backoff *= 2;
        ++attempt;
        selected = attempt_once();
      }
      shard_status[s].attempts = std::max(shard_status[s].attempts, attempt);
      if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());
      if (selected.ok()) {
        for (const auto& [key, partition] : selected.value()) {
          partitions.push_back(
              ShardPartition{static_cast<uint32_t>(s), key, partition});
        }
        continue;
      }
      if (!IsTransientShardError(selected.status().code())) {
        return selected.status();  // hard error: fails both policies
      }
      Status fault = Status::Unavailable(
          "shard " + std::to_string(s) + " unavailable after " +
          std::to_string(attempt) + " attempt(s): " +
          selected.status().ToString());
      if (!options.partial_shards) return fault;
      shard_dropped[s] = true;
      shard_status[s].dropped = true;
      shard_status[s].status = std::move(fault);
      result.stats.truncated = true;
    }
    if (std::all_of(shard_dropped.begin(), shard_dropped.end(),
                    [](bool dropped) { return dropped; })) {
      std::string message;
      for (const ShardTrackStatus& status : shard_status) {
        if (!message.empty()) message += "; ";
        message += "shard " + std::to_string(status.shard) + ": " +
                   status.status.ToString();
      }
      return Status::Unavailable("all " + std::to_string(num_shards) +
                                 " shard(s) unavailable: " + message);
    }
    std::stable_sort(partitions.begin(), partitions.end(),
                     [](const ShardPartition& a, const ShardPartition& b) {
                       if (a.key.bucket != b.key.bucket) {
                         return a.key.bucket < b.key.bucket;
                       }
                       return a.key.agent_id < b.key.agent_id;
                     });
    result.stats.partitions_selected += partitions.size();
    if (partitions.empty()) {
      record_hop_latency();
      break;
    }

    std::vector<std::vector<ShardCandidate>> found(partitions.size());
    std::vector<uint64_t> inspected(partitions.size(), 0);

    auto scan_partition = [&](size_t pi) {
      const uint32_t shard = partitions[pi].shard;
      const EventPartition& partition = *partitions[pi].partition;
      const std::vector<Event>& events = partition.events();
      std::vector<ShardCandidate>& out = found[pi];
      uint64_t local_inspected = 0;
      uint64_t since_check = 0;
      bool stop_scan = false;

      auto consider = [&](uint32_t fpos, Timestamp bound,
                          std::pair<const uint32_t*, const uint32_t*> span,
                          OpMask allowed, bool other_is_subject) {
        if (stop_scan || span.first == nullptr || allowed == 0) return;
        const uint32_t* first = span.first;
        const uint32_t* last = span.second;
        if (backward) {
          last = std::partition_point(first, last, [&](uint32_t index) {
            return events[index].start_ts <= bound;
          });
        } else {
          first = std::partition_point(first, last, [&](uint32_t index) {
            return events[index].start_ts < bound;
          });
        }
        for (const uint32_t* it = first; it != last; ++it) {
          const Event& event = events[*it];
          ++local_inspected;
          if (ctx != nullptr && ++since_check >= QueryContext::kCheckStride) {
            since_check = 0;
            if (!ctx->ChargeRows(QueryContext::kCheckStride).ok()) {
              stop_scan = true;
              return;
            }
          }
          if (!OpMaskContains(allowed, event.op)) continue;
          if (backward) {
            if (event.end_ts > bound) continue;
            if (options.hop_window > 0 && bound != INT64_MAX &&
                bound - event.end_ts > options.hop_window) {
              continue;
            }
          } else {
            if (options.hop_window > 0 && bound != INT64_MIN &&
                event.start_ts - bound > options.hop_window) {
              continue;
            }
          }
          if (!window.Contains(event.start_ts)) continue;
          if (agent_set.has_value() && !agent_set->Contains(event.agent_id)) {
            continue;
          }
          ShardCandidate candidate;
          candidate.event = &event;
          candidate.shard = shard;
          candidate.frontier_pos = fpos;
          candidate.partition = static_cast<uint32_t>(pi);
          candidate.event_index = *it;
          if (other_is_subject) {
            candidate.other_type = EntityType::kProcess;
            candidate.other_id = event.subject;
          } else {
            candidate.other_type = event.object_type;
            candidate.other_id = event.object;
          }
          if (!TypeAllowed(options, candidate.other_type)) continue;
          out.push_back(candidate);
        }
      };

      for (uint32_t fpos = 0; fpos < frontier.size() && !stop_scan; ++fpos) {
        const ProvenanceNode& node = result.nodes[frontier[fpos]];
        // The frontier entity in this shard's id space; invalid means the
        // shard never interned it, so it cannot appear in any posting here.
        EntityId local = local_ids[frontier[fpos]][shard];
        if (local == kInvalidEntityId) continue;
        consider(fpos, node.bound,
                 partition.ObjectPostings(node.type, local),
                 object_side_mask, /*other_is_subject=*/true);
        if (node.type == EntityType::kProcess) {
          consider(fpos, node.bound, partition.SubjectPostings(local),
                   subject_side_mask, /*other_is_subject=*/false);
        }
      }
      if (ctx != nullptr && since_check > 0) {
        (void)ctx->ChargeRows(since_check);
      }
      inspected[pi] = local_inspected;
    };

    if (pool != nullptr && partitions.size() > 1) {
      if (ctx != nullptr) {
        pool->ParallelFor(
            partitions.size(), [&](size_t pi) { scan_partition(pi); },
            [ctx] { return ctx->stopped(); });
      } else {
        pool->ParallelFor(partitions.size(),
                          [&](size_t pi) { scan_partition(pi); });
      }
    } else {
      for (size_t pi = 0; pi < partitions.size(); ++pi) {
        if (ctx != nullptr && ctx->stopped()) break;
        scan_partition(pi);
      }
    }
    for (uint64_t count : inspected) result.stats.events_inspected += count;
    if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->Check());

    std::vector<std::vector<ShardCandidate>> per_node(frontier.size());
    for (const std::vector<ShardCandidate>& chunk : found) {
      for (const ShardCandidate& candidate : chunk) {
        per_node[candidate.frontier_pos].push_back(candidate);
      }
    }

    std::vector<uint32_t> next_frontier;
    std::unordered_set<uint32_t> queued;
    for (uint32_t fpos = 0; fpos < frontier.size(); ++fpos) {
      std::vector<ShardCandidate>& candidates = per_node[fpos];
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](const ShardCandidate& candidate) {
                           return recorded_events.count(candidate.event) > 0;
                         }),
          candidates.end());
      std::sort(candidates.begin(), candidates.end(),
                [&](const ShardCandidate& a, const ShardCandidate& b) {
                  if (backward) {
                    if (a.event->end_ts != b.event->end_ts) {
                      return a.event->end_ts > b.event->end_ts;
                    }
                    if (a.event->start_ts != b.event->start_ts) {
                      return a.event->start_ts > b.event->start_ts;
                    }
                  } else {
                    if (a.event->start_ts != b.event->start_ts) {
                      return a.event->start_ts < b.event->start_ts;
                    }
                    if (a.event->end_ts != b.event->end_ts) {
                      return a.event->end_ts < b.event->end_ts;
                    }
                  }
                  if (a.partition != b.partition) {
                    return a.partition < b.partition;
                  }
                  return a.event_index < b.event_index;
                });
      uint64_t dropped_here = 0;
      if (options.max_fanout > 0 && candidates.size() > options.max_fanout) {
        dropped_here += candidates.size() - options.max_fanout;
        candidates.resize(options.max_fanout);
        result.stats.truncated = true;
      }
      const uint32_t this_slot = frontier[fpos];
      for (const ShardCandidate& candidate : candidates) {
        auto [key, ids] =
            resolve(candidate.shard, candidate.other_type,
                    candidate.other_id);
        Timestamp bound = backward ? candidate.event->start_ts
                                   : candidate.event->end_ts;
        uint32_t other_slot;
        auto it = node_slot.find(key);
        if (it != node_slot.end()) {
          other_slot = it->second;
          // Cross-shard bound widening: a path on another shard re-reaching
          // this entity with a looser bound re-queues it — exactly the
          // single-db widening rule, with the attribute key standing in for
          // the store id.
          ProvenanceNode& existing = result.nodes[other_slot];
          bool widens = backward ? bound > existing.bound
                                 : bound < existing.bound;
          if (widens) {
            existing.bound = bound;
            if (queued.insert(other_slot).second) {
              next_frontier.push_back(other_slot);
            }
          }
        } else {
          if (options.max_nodes > 0 &&
              result.nodes.size() >= options.max_nodes) {
            result.stats.truncated = true;
            ++dropped_here;
            continue;
          }
          if (ctx != nullptr) AIQL_RETURN_IF_ERROR(ctx->ChargeNodes(1));
          other_slot = add_node(candidate.shard, candidate.other_type,
                                candidate.other_id, hop, bound,
                                std::move(key), std::move(ids));
          queued.insert(other_slot);
          next_frontier.push_back(other_slot);
        }
        recorded_events.insert(candidate.event);
        ProvenanceEdge edge;
        edge.event = *candidate.event;
        edge.hop = hop;
        if (backward) {
          edge.from = other_slot;
          edge.to = this_slot;
        } else {
          edge.from = this_slot;
          edge.to = other_slot;
        }
        result.edges.push_back(edge);
      }
      if (dropped_here > 0) {
        result.stats.truncated_expansions.push_back(
            TruncatedExpansion{hop, frontier[fpos], dropped_here});
      }
    }

    record_hop_latency();
    frontier = std::move(next_frontier);
  }

  if (!frontier.empty()) result.stats.truncated = true;
  for (ShardTrackStatus& status : shard_status) {
    if (status.dropped) ++result.stats.shards_dropped;
    if (status.dropped || status.attempts > 1) {
      result.stats.shard_status.push_back(std::move(status));
    }
  }
  return result;
}

}  // namespace aiql
