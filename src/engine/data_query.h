// Compiled per-pattern data queries (paper §2.3).
//
// The engine synthesizes one data query per event pattern instead of weaving
// all joins into a single monolithic plan. A compiled pattern carries the
// operation mask, the resolved time range, the agent filter, and candidate
// entity bitsets for the subject/object sides (resolved once against the
// entity store's attribute indexes).

#ifndef AIQL_ENGINE_DATA_QUERY_H_
#define AIQL_ENGINE_DATA_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/like_matcher.h"
#include "common/status.h"
#include "query/analyzer.h"
#include "query/ast.h"
#include "storage/entity_store.h"

namespace aiql {

/// Dense bitset over entity ids of one type. Candidate sets are built with
/// universe = store.NumEntities(type) at compile time, so every entity id a
/// view's events reference tests in bounds (the batch kernels rely on it).
using EntitySet = DenseBitset;

/// One compiled attribute predicate against a stored entity.
struct CompiledPredicate {
  std::string attr;  ///< canonical name
  CmpOp op = CmpOp::kEq;
  AttrKind kind = AttrKind::kString;
  std::vector<LikeMatcher> matchers;  ///< string predicates (LIKE / = / !=)
  std::vector<int64_t> ints;  ///< numeric operands (sorted+deduped for IN)
  /// Dictionary form of a string predicate on an interned attr: the attr's
  /// dictionary plus the StringIds any matcher matches (positive sense; kNe
  /// inverts at eval). Evaluation becomes one u32 bitset test instead of a
  /// per-value LikeMatcher run.
  std::optional<DictAttr> dict_attr;
  std::shared_ptr<const DictionaryBitset> matched_ids;
};

/// Compiled filter over one entity side of a pattern.
struct EntityFilter {
  EntityType type = EntityType::kProcess;
  std::vector<CompiledPredicate> predicates;
  /// Candidate ids (resolved from indexes + predicates); nullopt = all.
  std::optional<EntitySet> candidates;
  /// Exe-name string ids matched by subject exe predicates (estimator input;
  /// empty when the subject has no exe_name constraint).
  std::vector<StringId> matched_exe_ids;
  bool has_constraints = false;
};

/// Fully compiled event pattern.
struct CompiledPattern {
  int index = 0;                 ///< position in the query
  std::string event_var;
  OpMask op_mask = 0;
  EntityFilter subject;          ///< always process-typed
  EntityFilter object;
  TimeRange time_range{INT64_MIN, INT64_MAX};  ///< global window (refined
                                               ///< later by temporal pruning)
  /// Estimated matching events (filled by the scheduler).
  double estimated_cardinality = 0;
};

/// Compiles all patterns of an analyzed query against an entity store:
/// resolves constraint predicates, merges constraints of shared entity
/// variables across their occurrences, and materializes candidate entity
/// sets. Streaming callers pass ReadView::entities() so the store is
/// stable for the query's duration.
Result<std::vector<CompiledPattern>> CompilePatterns(
    const AnalyzedQuery& analyzed, const EntityStore& store);

/// Evaluates whether entity `id` of `type` passes `filter`'s candidate set.
bool FilterAccepts(const EntityFilter& filter, EntityId id);

/// Evaluates `preds` directly against a stored entity — the per-row Filter
/// cost of engines without candidate-set indexes. The graph baseline uses
/// this to model Neo4j label scans and expand-filters (Neo4j cannot use
/// property indexes for the regex predicates LIKE patterns translate to).
bool EntityMatchesPredicates(const EntityStore& store, EntityType type,
                             EntityId id,
                             const std::vector<CompiledPredicate>& preds);

}  // namespace aiql

#endif  // AIQL_ENGINE_DATA_QUERY_H_
