#include "engine/projector.h"

#include "query/attributes.h"

namespace aiql {

Value Projector::Resolve(const AttrRefAst& ref,
                         const std::vector<const Event*>& assignment) const {
  auto event_it = analyzed_.event_index.find(ref.var);
  if (event_it != analyzed_.event_index.end()) {
    const Event& event = *assignment[event_it->second];
    return EventAttr(event, ref.attr.empty() ? "amount" : ref.attr);
  }
  const auto& occurrences = analyzed_.entity_occurrences.at(ref.var);
  const VarOccurrence& occ = occurrences.front();
  const Event& event = *assignment[occ.pattern];
  EntityId id = occ.is_subject ? event.subject : event.object;
  EntityType type =
      occ.is_subject ? EntityType::kProcess : event.object_type;
  return EntityAttr(type, id, ref.attr);
}

Value Projector::EventAttr(const Event& event, const std::string& attr) const {
  if (attr == "amount" || attr == "bytes") {
    return static_cast<int64_t>(event.amount);
  }
  if (attr == "start_time" || attr == "starttime" || attr == "start_ts") {
    return static_cast<int64_t>(event.start_ts);
  }
  if (attr == "end_time" || attr == "endtime" || attr == "end_ts") {
    return static_cast<int64_t>(event.end_ts);
  }
  if (attr == "agentid" || attr == "agent_id") {
    return static_cast<int64_t>(event.agent_id);
  }
  return std::string(OpTypeToString(event.op));  // "op"
}

Value Projector::EntityAttr(EntityType type, EntityId id,
                            const std::string& attr_in) const {
  std::string attr = attr_in.empty() ? DefaultEntityAttr(type) : attr_in;
  switch (type) {
    case EntityType::kProcess: {
      const ProcessEntity& p = store_.processes()[id];
      if (attr == "exe_name" || attr == "exename" || attr == "name" ||
          attr == "exe") {
        return std::string(store_.exe_names().Get(p.exe_name));
      }
      if (attr == "pid") return static_cast<int64_t>(p.pid);
      if (attr == "user" || attr == "username") {
        return std::string(store_.users().Get(p.user));
      }
      return static_cast<int64_t>(p.agent_id);
    }
    case EntityType::kFile: {
      const FileEntity& f = store_.files()[id];
      if (attr == "path" || attr == "name" || attr == "filename") {
        return std::string(store_.paths().Get(f.path));
      }
      return static_cast<int64_t>(f.agent_id);
    }
    case EntityType::kNetwork: {
      const NetworkEntity& n = store_.networks()[id];
      if (attr == "dst_ip" || attr == "dstip" || attr == "dip") {
        return std::string(store_.ips().Get(n.dst_ip));
      }
      if (attr == "src_ip" || attr == "srcip" || attr == "sip") {
        return std::string(store_.ips().Get(n.src_ip));
      }
      if (attr == "protocol" || attr == "proto") {
        return std::string(store_.protocols().Get(n.protocol));
      }
      if (attr == "dst_port" || attr == "dstport" || attr == "dport") {
        return static_cast<int64_t>(n.dst_port);
      }
      if (attr == "src_port" || attr == "srcport" || attr == "sport") {
        return static_cast<int64_t>(n.src_port);
      }
      return static_cast<int64_t>(n.agent_id);
    }
  }
  return int64_t{0};
}

bool CompareValues(const Value& left, CmpOp op, const Value& right) {
  auto as_double = [](const Value& v) -> double {
    if (const auto* i = std::get_if<int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&v)) return *d;
    return 0;
  };
  bool both_strings = std::holds_alternative<std::string>(left) &&
                      std::holds_alternative<std::string>(right);
  int cmp;
  if (both_strings) {
    cmp = std::get<std::string>(left).compare(std::get<std::string>(right));
  } else {
    double l = as_double(left), r = as_double(right);
    cmp = l < r ? -1 : (l > r ? 1 : 0);
  }
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

bool TemporalHolds(const Event& a, const Event& b, Duration within) {
  if (a.end_ts > b.start_ts) return false;
  if (within > 0 && b.start_ts - a.end_ts > within) return false;
  return true;
}

}  // namespace aiql
