// Query result representation shared by the AIQL engine and the baseline
// engines (so differential tests can compare outputs directly).

#ifndef AIQL_ENGINE_RESULT_H_
#define AIQL_ENGINE_RESULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/time_utils.h"
#include "query/ast.h"

namespace aiql {

/// One result cell: string, integer, or floating point.
using Value = std::variant<std::string, int64_t, double>;

/// Renders a value for display ("42", "3.14", "cmd.exe").
std::string ValueToString(const Value& value);

/// Tabular query output.
struct ResultTable {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Renders as an aligned ASCII table (for the shell / examples).
  std::string ToString(size_t max_rows = 50) const;

  /// Sorts rows lexicographically by rendered cells — canonical order for
  /// cross-engine comparison in tests.
  void SortRows();

  bool operator==(const ResultTable& other) const;
};

/// Execution statistics reported with every query (the web UI's execution
/// status area shows these).
struct QueryStats {
  Duration parse_time = 0;
  Duration plan_time = 0;
  Duration exec_time = 0;
  uint64_t events_scanned = 0;     ///< events inspected across all scans
  uint64_t events_matched = 0;     ///< events matching some pattern
  uint64_t partitions_scanned = 0;
  uint64_t join_candidates = 0;    ///< tuples considered during the join
  int patterns = 0;
  int threads_used = 1;

  Duration total_time() const { return parse_time + plan_time + exec_time; }
};

/// Resolves `order by` items against the return items: each order item must
/// match a return item's alias or its var/attr expression. Returns (column
/// index, descending) pairs.
Result<std::vector<std::pair<size_t, bool>>> ResolveOrderColumns(
    const std::vector<OrderItemAst>& order_by,
    const std::vector<ReturnItemAst>& return_items,
    size_t column_offset = 0);

/// Stable-sorts rows by the given (column, descending) keys; numbers compare
/// numerically, strings lexicographically.
void OrderResultRows(ResultTable* table,
                     const std::vector<std::pair<size_t, bool>>& keys);

/// Per-shard outcome annotation for degraded (partial) sharded execution.
struct ShardExecStatus {
  uint32_t shard = 0;
  Status status;      ///< final per-shard status after retries
  int attempts = 1;   ///< total attempts (1 = succeeded first try)
  bool dropped = false;  ///< true when partial mode excluded this shard
};

/// Degradation summary attached to a QueryResult by the sharded executor.
struct DegradedInfo {
  bool partial = false;       ///< true when any shard was dropped
  int shards_failed = 0;      ///< shards dropped with a hard error
  int shards_timed_out = 0;   ///< shards dropped on deadline expiry
  int shards_retried = 0;     ///< shards that needed more than one attempt
  std::vector<ShardExecStatus> shard_status;  ///< one entry per shard

  /// One-line rendering for the shell / logs; empty when not degraded and
  /// nothing was retried.
  std::string ToString() const;
};

/// Full outcome of executing one query.
struct QueryResult {
  ResultTable table;
  QueryStats stats;
  std::string plan;  ///< human-readable execution plan (Explain output)
  /// Sharded-execution degradation annotations; default-constructed (not
  /// partial, no per-shard entries) for single-database execution.
  DegradedInfo degraded;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_RESULT_H_
