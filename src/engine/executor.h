// Multievent query executor (paper §2.3).
//
// Execution proceeds in two phases:
//  1. Scan phase — one data query per event pattern, executed in the
//     scheduler's pruning-power order. Each scan runs partition-parallel
//     (key insight #2) over the sealed columnar view / posting lists (see
//     engine/scan.h) and yields pointers into partition storage — no Event
//     is copied. Bindings from completed scans prune later ones: shared
//     entity variables restrict candidate sets (semi-join), and
//     `before`/`after` relations tighten time ranges (temporal pruning).
//  2. Join phase — the matched event refs are combined with hash-indexed
//     backtracking honoring shared variables, explicit attribute relations,
//     and temporal relations; results are projected into a ResultTable.

#ifndef AIQL_ENGINE_EXECUTOR_H_
#define AIQL_ENGINE_EXECUTOR_H_

#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/data_query.h"
#include "engine/result.h"
#include "engine/scheduler.h"
#include "query/analyzer.h"
#include "storage/database.h"

namespace aiql {

/// Executes analyzed multievent queries against a read view — a consistent
/// snapshot of the database's sealed partitions, so execution is safe while
/// ingestion continues on another thread.
class MultieventExecutor {
 public:
  /// `view` must outlive the executor. `pool` may be null (a private pool
  /// is created when parallelism is on).
  MultieventExecutor(const ReadView* view, EngineOptions options,
                     ThreadPool* pool = nullptr);

  /// Runs the query; returns the result table plus execution statistics and
  /// a rendered plan. `ctx` (optional) governs the run: deadline / cancel /
  /// budget violations abort the scan and join phases at checkpoint
  /// granularity and surface as the context's sticky status.
  Result<QueryResult> Execute(const AnalyzedQuery& analyzed,
                              QueryContext* ctx = nullptr);

 private:
  const ReadView* view_;
  EngineOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace aiql

#endif  // AIQL_ENGINE_EXECUTOR_H_
