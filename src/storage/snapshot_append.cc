#include "storage/snapshot_append.h"

#include <dirent.h>
#include <fcntl.h>     // open, O_DIRECTORY
#include <sys/stat.h>  // mkdir
#include <unistd.h>    // fsync, fileno, close

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/failpoint.h"

namespace aiql {

using namespace snapfmt;

namespace {

Status FsyncDir(const std::string& dir) {
#if !defined(_WIN32)
  int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory '" + dir + "' to sync");
  }
  int rc = fsync(dir_fd);
  close(dir_fd);
  if (rc != 0) {
    return Status::IOError("fsync of directory '" + dir + "' failed");
  }
#endif
  return Status::OK();
}

std::string FooterPath(const std::string& dir, uint64_t seq) {
  return dir + "/FOOTER." + std::to_string(seq);
}

/// FOOTER.<n> file names in `dir`, seqs sorted descending. Unparseable
/// names (including the transient FOOTER.tmp) are ignored.
std::vector<uint64_t> ListFooterSeqs(const std::string& dir) {
  std::vector<uint64_t> seqs;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (dirent* entry = readdir(d)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, "FOOTER.", 7) != 0) continue;
    const char* digits = name + 7;
    if (*digits == '\0') continue;
    uint64_t seq = 0;
    bool numeric = true;
    for (const char* p = digits; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(*p - '0');
    }
    if (numeric) seqs.push_back(seq);
  }
  closedir(d);
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string bytes;
  if (Seek64(f, 0, SEEK_END) == 0) {
    int64_t size = Tell64(f);
    if (size > 0) bytes.resize(static_cast<size_t>(size));
  }
  bool ok = Seek64(f, 0, SEEK_SET) == 0 &&
            std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return Status::IOError("cannot read '" + path + "'");
  return bytes;
}

/// Validates one FOOTER.<n> file against DATA (size `data_size`, handle
/// `data`): trailer magic + footer checksum + segment bounds + META
/// checksum. Returns the recovered state, or the first validation error —
/// Open() then falls back to the next-older footer.
Result<SnapshotAppender::RecoveredState> TryRecoverFooter(
    const std::string& footer_path, uint64_t footer_seq, FILE* data,
    uint64_t data_size) {
  AIQL_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(footer_path));
  if (bytes.size() < kV2TrailerSize) {
    return Status::Corruption("footer file '" + footer_path +
                              "' is too short");
  }
  const char* trailer = bytes.data() + bytes.size() - kV2TrailerSize;
  if (GetFixed64(trailer + 16) != kV2Magic) {
    return Status::Corruption("footer trailer corrupt in '" + footer_path +
                              "'");
  }
  uint64_t data_end = GetFixed64(trailer);
  uint64_t footer_checksum = GetFixed64(trailer + 8);
  std::string_view footer_bytes(bytes.data(), bytes.size() - kV2TrailerSize);
  if (Checksum64(footer_bytes) != footer_checksum) {
    return Status::Corruption("footer checksum mismatch in '" + footer_path +
                              "'");
  }
  if (data_end < kV2HeaderSize || data_end > data_size) {
    return Status::Corruption("footer '" + footer_path +
                              "' describes more data than DATA holds");
  }

  FooterData footer;
  AIQL_RETURN_IF_ERROR(DecodeFooter(footer_bytes, data_end, &footer));

  std::string meta_bytes(static_cast<size_t>(footer.meta.length), '\0');
  if (Seek64(data, static_cast<int64_t>(footer.meta.offset), SEEK_SET) != 0 ||
      std::fread(meta_bytes.data(), 1, meta_bytes.size(), data) !=
          meta_bytes.size()) {
    return Status::IOError("cannot read META segment for '" + footer_path +
                           "'");
  }
  if (Checksum64(meta_bytes) != footer.meta.checksum) {
    return Status::Corruption("META checksum mismatch for '" + footer_path +
                              "'");
  }

  SnapshotAppender::RecoveredState state;
  state.options = footer.options;
  state.stats = footer.stats;
  state.partitions = std::move(footer.partitions);
  state.footer_seq = footer_seq;
  state.data_end = data_end;
  AIQL_RETURN_IF_ERROR(DecodeMetaSegment(meta_bytes, &state.entities));
  return state;
}

}  // namespace

SnapshotAppender::~SnapshotAppender() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SnapshotAppender>> SnapshotAppender::Open(
    const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create retention directory '" + dir + "'");
  }

  std::unique_ptr<SnapshotAppender> appender(new SnapshotAppender());
  appender->dir_ = dir;
  appender->data_path_ = dir + "/DATA";

  std::vector<uint64_t> footer_seqs = ListFooterSeqs(dir);

  FILE* data = std::fopen(appender->data_path_.c_str(), "r+b");
  uint64_t data_size = 0;
  if (data != nullptr) {
    if (Seek64(data, 0, SEEK_END) != 0) {
      std::fclose(data);
      return Status::IOError("cannot seek in '" + appender->data_path_ + "'");
    }
    data_size = static_cast<uint64_t>(Tell64(data));
  }
  bool valid_header = false;
  if (data != nullptr && data_size >= kV2HeaderSize) {
    char header[kV2HeaderSize];
    if (Seek64(data, 0, SEEK_SET) != 0 ||
        std::fread(header, 1, sizeof(header), data) != sizeof(header)) {
      std::fclose(data);
      return Status::IOError("cannot read '" + appender->data_path_ + "'");
    }
    valid_header = GetFixed64(header) == kV2Magic &&
                   GetFixed32(header + 8) == kV2Version;
  }
  if (!valid_header) {
    // Fresh directory, or a crash before the first header write completed.
    // With a committed footer present, a bad header is real damage.
    if (!footer_seqs.empty()) {
      if (data != nullptr) std::fclose(data);
      return Status::Corruption("'" + appender->data_path_ +
                                "' has committed footers but no valid "
                                "snapshot header");
    }
    if (data != nullptr) std::fclose(data);
    data = std::fopen(appender->data_path_.c_str(), "w+b");
    if (data == nullptr) {
      return Status::IOError("cannot create '" + appender->data_path_ + "'");
    }
    std::string header;
    EncodeHeader(&header);
    if (std::fwrite(header.data(), 1, header.size(), data) != header.size() ||
        std::fflush(data) != 0 || fsync(fileno(data)) != 0) {
      std::fclose(data);
      return Status::IOError("cannot initialize '" + appender->data_path_ +
                             "'");
    }
    data_size = header.size();
  }
  appender->file_ = data;

  // Recover from the newest footer that validates end to end; older footers
  // are the fallback when the newest was torn by a crash.
  for (uint64_t seq : footer_seqs) {
    Result<RecoveredState> state =
        TryRecoverFooter(FooterPath(dir, seq), seq, data, data_size);
    if (state.ok()) {
      appender->recovered_ = std::move(*state);
      break;
    }
  }
  if (appender->recovered_.has_value()) {
    // Uncommitted bytes past data_end (a crash mid-append or mid-commit)
    // are dead weight; subsequent appends overwrite them.
    appender->committed_data_end_ = appender->recovered_->data_end;
    appender->write_offset_ = appender->committed_data_end_;
    appender->footer_seq_ = appender->recovered_->footer_seq;
  } else {
    appender->committed_data_end_ = kV2HeaderSize;
    appender->write_offset_ = kV2HeaderSize;
    // Skip past any unreadable footer names so a new commit never collides
    // with a corrupt FOOTER.<n> left behind by a damaged directory.
    appender->footer_seq_ = footer_seqs.empty() ? 0 : footer_seqs.front();
  }
  return appender;
}

Status SnapshotAppender::WriteAt(uint64_t offset, const void* data,
                                 size_t n) {
  if (Seek64(file_, static_cast<int64_t>(offset), SEEK_SET) != 0 ||
      std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("cannot write to '" + data_path_ + "'");
  }
  return Status::OK();
}

Result<snapfmt::PartitionDirEntry> SnapshotAppender::AppendPartition(
    int64_t bucket, AgentId agent, uint32_t seq,
    const EventPartition& partition) {
  std::string segment;
  EncodePartitionSegment(partition, &segment);
  SegmentRef ref{write_offset_, segment.size(), Checksum64(segment)};
  // Chaos on the demotion write path: corrupt flips a bit after the
  // checksum was taken, so damage is caught at reopen exactly like bit rot;
  // error actions abort the demotion before any offset moves.
  AIQL_RETURN_IF_ERROR(Failpoint::HitBuffer("retention.demote.write",
                                            segment.data(), segment.size()));
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    AIQL_RETURN_IF_ERROR(WriteAt(write_offset_, segment.data(),
                                 segment.size()));
    write_offset_ += segment.size();
  }
  return MakeDirEntry(bucket, agent, seq, ref, partition);
}

Status SnapshotAppender::Commit(
    const StorageOptions& options, const DatabaseStats& stats,
    const EntityStore& entities,
    const std::vector<snapfmt::PartitionDirEntry>& partitions) {
  // The entity store only grows, so re-encoding META each commit keeps
  // every appended partition decodable; older footers reference their own
  // (older, smaller) META segments, which stay in place in the append log.
  std::string meta;
  EncodeMetaSegment(entities, &meta);
  FooterData footer;
  footer.options = options;
  footer.stats = stats;
  footer.partitions = partitions;
  uint64_t data_end;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    footer.meta = SegmentRef{write_offset_, meta.size(), Checksum64(meta)};
    AIQL_RETURN_IF_ERROR(WriteAt(write_offset_, meta.data(), meta.size()));
    write_offset_ += meta.size();
    data_end = write_offset_;
    if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
      return Status::IOError("fsync failed for '" + data_path_ + "'");
    }
  }

  // Crash window the recovery test targets: DATA is durable but the footer
  // is not yet visible — recovery must land on the previous commit.
  AIQL_RETURN_IF_ERROR(
      Failpoint::Hit("retention.commit", static_cast<int64_t>(footer_seq_)));

  std::string footer_bytes;
  EncodeFooter(footer, &footer_bytes);
  std::string trailer;
  EncodeTrailer(data_end, Checksum64(footer_bytes), &trailer);

  std::string tmp_path = dir_ + "/FOOTER.tmp";
  FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + tmp_path + "' for writing");
  }
  bool ok = std::fwrite(footer_bytes.data(), 1, footer_bytes.size(), f) ==
                footer_bytes.size() &&
            std::fwrite(trailer.data(), 1, trailer.size(), f) ==
                trailer.size() &&
            std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot write footer '" + tmp_path + "'");
  }
  std::string footer_path = FooterPath(dir_, footer_seq_ + 1);
  if (std::rename(tmp_path.c_str(), footer_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot move footer into place at '" +
                           footer_path + "'");
  }
  AIQL_RETURN_IF_ERROR(FsyncDir(dir_));

  ++footer_seq_;
  committed_data_end_ = data_end;

  // Prune footers that fell out of the safety window. Best effort: a
  // leftover footer is only wasted bytes.
  for (uint64_t seq : ListFooterSeqs(dir_)) {
    if (seq + kKeepFooters <= footer_seq_) {
      std::remove(FooterPath(dir_, seq).c_str());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<EventPartition>> SnapshotAppender::ReadPartition(
    const snapfmt::PartitionDirEntry& entry,
    const EntityStore& entities) const {
  std::string bytes(static_cast<size_t>(entry.segment.length), '\0');
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    if (Seek64(file_, static_cast<int64_t>(entry.segment.offset), SEEK_SET) !=
            0 ||
        std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return Status::IOError("cannot read partition segment of '" +
                             data_path_ + "'");
    }
  }
  if (Checksum64(bytes) != entry.segment.checksum) {
    return Status::Corruption("partition segment checksum mismatch in '" +
                              data_path_ + "'");
  }
  auto partition = std::make_unique<EventPartition>();
  AIQL_RETURN_IF_ERROR(
      DecodePartitionSegment(bytes, entry, entities, partition.get()));
  return partition;
}

}  // namespace aiql
