#include "storage/log_format.h"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "common/string_utils.h"

namespace aiql {

namespace {

void EscapeTo(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

std::string Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      char next = text[++i];
      out += next == 't' ? '\t' : next == 'n' ? '\n' : next;
    } else {
      out += text[i];
    }
  }
  return out;
}

// Splits on raw tabs (escapes keep payload tabs out of the raw stream).
std::vector<std::string_view> SplitFields(std::string_view line) {
  return SplitString(line, '\t');
}

Result<int64_t> ParseInt(std::string_view field, const char* what) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Status::Corruption(std::string("bad ") + what + " field '" +
                              std::string(field) + "'");
  }
  return value;
}

}  // namespace

std::string FormatLogLine(const EventRecord& record) {
  std::string out;
  out += std::to_string(record.start_ts);
  out += '\t';
  out += std::to_string(record.end_ts);
  out += '\t';
  out += std::to_string(record.agent_id);
  out += '\t';
  out += OpTypeToString(record.op);
  out += '\t';
  out += std::to_string(record.amount);
  out += '\t';
  out += std::to_string(record.subject.pid);
  out += '\t';
  EscapeTo(record.subject.exe_name, &out);
  out += '\t';
  EscapeTo(record.subject.user, &out);
  out += '\t';
  switch (ObjectRefType(record.object)) {
    case EntityType::kProcess: {
      const auto& proc = std::get<ProcessRef>(record.object);
      out += "proc\t";
      out += std::to_string(proc.agent_id);
      out += '\t';
      out += std::to_string(proc.pid);
      out += '\t';
      EscapeTo(proc.exe_name, &out);
      out += '\t';
      EscapeTo(proc.user, &out);
      break;
    }
    case EntityType::kFile: {
      const auto& file = std::get<FileRef>(record.object);
      out += "file\t";
      out += std::to_string(file.agent_id);
      out += '\t';
      EscapeTo(file.path, &out);
      break;
    }
    case EntityType::kNetwork: {
      const auto& net = std::get<NetworkRef>(record.object);
      out += "net\t";
      out += std::to_string(net.agent_id);
      out += '\t';
      EscapeTo(net.src_ip, &out);
      out += '\t';
      out += std::to_string(net.src_port);
      out += '\t';
      EscapeTo(net.dst_ip, &out);
      out += '\t';
      out += std::to_string(net.dst_port);
      out += '\t';
      EscapeTo(net.protocol, &out);
      break;
    }
  }
  return out;
}

Result<EventRecord> ParseLogLine(std::string_view line) {
  auto fields = SplitFields(line);
  if (fields.size() < 10) {
    return Status::Corruption("expected at least 10 fields, got " +
                              std::to_string(fields.size()));
  }
  EventRecord record;
  AIQL_ASSIGN_OR_RETURN(record.start_ts, ParseInt(fields[0], "start_ts"));
  AIQL_ASSIGN_OR_RETURN(record.end_ts, ParseInt(fields[1], "end_ts"));
  AIQL_ASSIGN_OR_RETURN(int64_t agent, ParseInt(fields[2], "agent"));
  record.agent_id = static_cast<AgentId>(agent);
  AIQL_ASSIGN_OR_RETURN(record.op, ParseOpType(fields[3]));
  AIQL_ASSIGN_OR_RETURN(int64_t amount, ParseInt(fields[4], "amount"));
  record.amount = static_cast<uint64_t>(amount);
  AIQL_ASSIGN_OR_RETURN(int64_t subj_pid, ParseInt(fields[5], "subj_pid"));
  record.subject.agent_id = record.agent_id;
  record.subject.pid = static_cast<uint32_t>(subj_pid);
  record.subject.exe_name = Unescape(fields[6]);
  record.subject.user = Unescape(fields[7]);

  std::string_view kind = fields[8];
  if (kind == "proc") {
    if (fields.size() != 13) {
      return Status::Corruption("proc object expects 13 fields");
    }
    ProcessRef proc;
    AIQL_ASSIGN_OR_RETURN(int64_t oagent, ParseInt(fields[9], "obj agent"));
    AIQL_ASSIGN_OR_RETURN(int64_t opid, ParseInt(fields[10], "obj pid"));
    proc.agent_id = static_cast<AgentId>(oagent);
    proc.pid = static_cast<uint32_t>(opid);
    proc.exe_name = Unescape(fields[11]);
    proc.user = Unescape(fields[12]);
    record.object = std::move(proc);
  } else if (kind == "file") {
    if (fields.size() != 11) {
      return Status::Corruption("file object expects 11 fields");
    }
    FileRef file;
    AIQL_ASSIGN_OR_RETURN(int64_t oagent, ParseInt(fields[9], "obj agent"));
    file.agent_id = static_cast<AgentId>(oagent);
    file.path = Unescape(fields[10]);
    record.object = std::move(file);
  } else if (kind == "net") {
    if (fields.size() != 15) {
      return Status::Corruption("net object expects 15 fields");
    }
    NetworkRef net;
    AIQL_ASSIGN_OR_RETURN(int64_t oagent, ParseInt(fields[9], "obj agent"));
    AIQL_ASSIGN_OR_RETURN(int64_t sport, ParseInt(fields[11], "src_port"));
    AIQL_ASSIGN_OR_RETURN(int64_t dport, ParseInt(fields[13], "dst_port"));
    net.agent_id = static_cast<AgentId>(oagent);
    net.src_ip = Unescape(fields[10]);
    net.src_port = static_cast<uint16_t>(sport);
    net.dst_ip = Unescape(fields[12]);
    net.dst_port = static_cast<uint16_t>(dport);
    net.protocol = Unescape(fields[14]);
    record.object = std::move(net);
  } else {
    return Status::Corruption("unknown object kind '" + std::string(kind) +
                              "'");
  }
  return record;
}

Status WriteAuditLog(const std::vector<EventRecord>& records,
                     const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "# aiql audit log v1 (" << records.size() << " events)\n";
  for (const EventRecord& record : records) {
    out << FormatLogLine(record) << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

Result<std::vector<EventRecord>> ReadAuditLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<EventRecord> records;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto record = ParseLogLine(trimmed);
    if (!record.ok()) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": " + record.status().message());
    }
    records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace aiql
