#include "storage/shard_map.h"

#include <utility>

#include "storage/partition_cache.h"
#include "storage/tiered.h"

namespace aiql {

std::vector<ShardRange> EvenAgentRanges(size_t num_shards, AgentId min_agent,
                                        AgentId max_agent) {
  std::vector<ShardRange> ranges;
  if (num_shards == 0 || max_agent < min_agent) return ranges;
  ranges.reserve(num_shards);
  uint64_t span = static_cast<uint64_t>(max_agent) - min_agent + 1;
  uint64_t width = span / num_shards;
  uint64_t extra = span % num_shards;
  uint64_t begin = min_agent;
  for (size_t i = 0; i < num_shards; ++i) {
    uint64_t end = begin + width + (i < extra ? 1 : 0);
    ranges.push_back(ShardRange{static_cast<AgentId>(begin),
                                static_cast<AgentId>(end)});
    begin = end;
  }
  return ranges;
}

Result<std::vector<std::vector<EventRecord>>> RouteRecordsByAgent(
    const std::vector<ShardRange>& ranges,
    const std::vector<EventRecord>& records) {
  std::vector<std::vector<EventRecord>> routed(ranges.size());
  for (const EventRecord& record : records) {
    size_t shard = ranges.size();
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].Contains(record.agent_id)) {
        shard = i;
        break;
      }
    }
    if (shard == ranges.size()) {
      return Status::InvalidArgument(
          "record agent " + std::to_string(record.agent_id) +
          " falls outside every shard range");
    }
    routed[shard].push_back(record);
  }
  return routed;
}

Status ShardMap::AddShard(const AuditDatabase* db, ShardRange range) {
  Shard shard;
  shard.db = db;
  shard.range = range;
  return AddShardImpl(std::move(shard));
}

Status ShardMap::AddShard(const SnapshotStore* snapshot, ShardRange range) {
  Shard shard;
  shard.snapshot = snapshot;
  shard.range = range;
  return AddShardImpl(std::move(shard));
}

Status ShardMap::AddShard(const TieredStore* tiered, ShardRange range) {
  Shard shard;
  shard.tiered = tiered;
  shard.range = range;
  return AddShardImpl(std::move(shard));
}

Status ShardMap::AddShardImpl(Shard shard) {
  if (shard.db == nullptr && shard.snapshot == nullptr &&
      shard.tiered == nullptr) {
    return Status::InvalidArgument("shard backend is null");
  }
  if (shard.range.end <= shard.range.begin) {
    return Status::InvalidArgument("shard agent range is empty");
  }
  for (const Shard& existing : shards_) {
    if (shard.range.begin < existing.range.end &&
        existing.range.begin < shard.range.end) {
      return Status::InvalidArgument(
          "shard agent range overlaps an existing shard");
    }
  }
  shards_.push_back(std::move(shard));
  return Status::OK();
}

int ShardMap::ShardForAgent(AgentId agent) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].range.Contains(agent)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<ReadView> ShardMap::OpenReadViews() const {
  std::vector<ReadView> views;
  views.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    if (shard.db != nullptr) {
      views.push_back(shard.db->OpenReadView());
    } else if (shard.tiered != nullptr) {
      views.push_back(shard.tiered->OpenReadView());
    } else {
      views.push_back(shard.snapshot->OpenReadView());
    }
  }
  return views;
}

const EntityStore& ShardMap::entities(size_t shard) const {
  const Shard& s = shards_[shard];
  if (s.db != nullptr) return s.db->entities();
  if (s.tiered != nullptr) return s.tiered->db().entities();
  return s.snapshot->entities();
}

uint64_t ShardMap::TotalEvents() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    if (shard.db != nullptr) {
      total += shard.db->StatsSnapshot().total_events;
    } else if (shard.tiered != nullptr) {
      total += shard.tiered->StatsSnapshot().total_events;
    } else {
      total += shard.snapshot->stats().total_events;
    }
  }
  return total;
}

size_t ShardMap::SetMemoryBudget(size_t total_bytes) const {
  std::vector<PartitionCache*> caches;
  for (const Shard& shard : shards_) {
    if (shard.tiered != nullptr) {
      caches.push_back(shard.tiered->cache());
    } else if (shard.snapshot != nullptr &&
               shard.snapshot->cache() != nullptr) {
      caches.push_back(shard.snapshot->cache());
    }
  }
  if (caches.empty()) return 0;
  size_t share = total_bytes == 0 ? 0 : total_bytes / caches.size();
  if (total_bytes != 0 && share == 0) share = 1;  // never round down to ∞
  for (PartitionCache* cache : caches) cache->SetBudget(share);
  return caches.size();
}

// ---------------------------------------------------------------------------
// Cross-shard entity translation.
// ---------------------------------------------------------------------------

ObjectRef MakeEntityRef(const EntityStore& store, EntityType type,
                        EntityId id) {
  switch (type) {
    case EntityType::kProcess: {
      const ProcessEntity& p = store.processes()[id];
      ProcessRef ref;
      ref.agent_id = p.agent_id;
      ref.pid = p.pid;
      ref.exe_name = std::string(store.exe_names().Get(p.exe_name));
      ref.user = std::string(store.users().Get(p.user));
      return ref;
    }
    case EntityType::kFile: {
      const FileEntity& f = store.files()[id];
      FileRef ref;
      ref.agent_id = f.agent_id;
      ref.path = std::string(store.paths().Get(f.path));
      return ref;
    }
    case EntityType::kNetwork: {
      const NetworkEntity& n = store.networks()[id];
      NetworkRef ref;
      ref.agent_id = n.agent_id;
      ref.src_ip = std::string(store.ips().Get(n.src_ip));
      ref.dst_ip = std::string(store.ips().Get(n.dst_ip));
      ref.src_port = n.src_port;
      ref.dst_port = n.dst_port;
      ref.protocol = std::string(store.protocols().Get(n.protocol));
      return ref;
    }
  }
  return FileRef{};
}

std::string EntityRefKey(const ObjectRef& ref) {
  // '\x1f' (unit separator) cannot appear in simulator/agent attribute
  // strings, so joined fields cannot collide across distinct tuples.
  constexpr char kSep = '\x1f';
  std::string key;
  if (const auto* p = std::get_if<ProcessRef>(&ref)) {
    key += 'P';
    key += std::to_string(p->agent_id);
    key += kSep;
    key += std::to_string(p->pid);
    key += kSep;
    key += p->exe_name;
    key += kSep;
    key += p->user;
  } else if (const auto* f = std::get_if<FileRef>(&ref)) {
    key += 'F';
    key += std::to_string(f->agent_id);
    key += kSep;
    key += f->path;
  } else {
    const auto& n = std::get<NetworkRef>(ref);
    key += 'N';
    key += std::to_string(n.agent_id);
    key += kSep;
    key += n.src_ip;
    key += kSep;
    key += std::to_string(n.src_port);
    key += kSep;
    key += n.dst_ip;
    key += kSep;
    key += std::to_string(n.dst_port);
    key += kSep;
    key += n.protocol;
  }
  return key;
}

EntityId FindEntity(const EntityStore& store, const ObjectRef& ref) {
  if (const auto* p = std::get_if<ProcessRef>(&ref)) {
    return store.FindProcess(*p);
  }
  if (const auto* f = std::get_if<FileRef>(&ref)) {
    return store.FindFile(*f);
  }
  return store.FindNetwork(std::get<NetworkRef>(ref));
}

EntityType EntityRefType(const ObjectRef& ref) { return ObjectRefType(ref); }

EventRecord RecordForEvent(const Event& event, const EntityStore& store) {
  EventRecord record;
  record.agent_id = event.agent_id;
  record.op = event.op;
  record.start_ts = event.start_ts;
  record.end_ts = event.end_ts;
  record.amount = event.amount;
  record.subject = std::get<ProcessRef>(
      MakeEntityRef(store, EntityType::kProcess, event.subject));
  record.object = MakeEntityRef(store, event.object_type, event.object);
  return record;
}

}  // namespace aiql
