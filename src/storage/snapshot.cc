#include "storage/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>

namespace aiql {

namespace {

constexpr uint64_t kMagic = 0x4149514C534E5031ULL;  // "AIQLSNP1"
constexpr uint32_t kVersion = 2;
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

class Writer {
 public:
  explicit Writer(FILE* file) : file_(file) {}

  void PutBytes(const void* data, size_t n) {
    if (!ok_) return;
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ bytes[i]) * kFnvPrime;
    }
    if (std::fwrite(data, 1, n, file_) != n) ok_ = false;
  }
  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU16(uint16_t v) { PutBytes(&v, 2); }
  void PutU32(uint32_t v) { PutBytes(&v, 4); }
  void PutU64(uint64_t v) { PutBytes(&v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  bool ok() const { return ok_; }
  uint64_t hash() const { return hash_; }

  /// Writes the accumulated checksum (not itself hashed).
  bool WriteChecksum() {
    uint64_t h = hash_;
    return ok_ && std::fwrite(&h, 1, 8, file_) == 8;
  }

 private:
  FILE* file_;
  uint64_t hash_ = kFnvOffset;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(FILE* file) : file_(file) {}

  bool GetBytes(void* data, size_t n) {
    if (!ok_) return false;
    if (std::fread(data, 1, n, file_) != n) {
      ok_ = false;
      return false;
    }
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ bytes[i]) * kFnvPrime;
    }
    return true;
  }
  uint8_t GetU8() {
    uint8_t v = 0;
    GetBytes(&v, 1);
    return v;
  }
  uint16_t GetU16() {
    uint16_t v = 0;
    GetBytes(&v, 2);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetBytes(&v, 4);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetBytes(&v, 8);
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!ok_ || n > (1u << 28)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    GetBytes(s.data(), n);
    return s;
  }

  bool ok() const { return ok_; }
  uint64_t hash() const { return hash_; }

  /// Reads the trailing checksum (not hashed) and compares.
  bool VerifyChecksum() {
    uint64_t expected = hash_;
    uint64_t stored = 0;
    if (!ok_ || std::fread(&stored, 1, 8, file_) != 8) return false;
    return stored == expected;
  }

 private:
  FILE* file_;
  uint64_t hash_ = kFnvOffset;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

void WriteEvent(Writer* w, const Event& e) {
  w->PutI64(e.start_ts);
  w->PutI64(e.end_ts);
  w->PutU64(e.amount);
  w->PutU32(e.subject);
  w->PutU32(e.object);
  w->PutU32(e.agent_id);
  w->PutU32(e.merge_count);
  w->PutU8(static_cast<uint8_t>(e.op));
  w->PutU8(static_cast<uint8_t>(e.object_type));
}

Event ReadEvent(Reader* r) {
  Event e;
  e.start_ts = r->GetI64();
  e.end_ts = r->GetI64();
  e.amount = r->GetU64();
  e.subject = r->GetU32();
  e.object = r->GetU32();
  e.agent_id = r->GetU32();
  e.merge_count = r->GetU32();
  e.op = static_cast<OpType>(r->GetU8());
  e.object_type = static_cast<EntityType>(r->GetU8());
  return e;
}

}  // namespace

Status SaveSnapshot(const AuditDatabase& db, const std::string& path) {
  if (!db.sealed()) {
    return Status::InvalidArgument("cannot snapshot an unsealed database");
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  Writer w(file.get());
  w.PutU64(kMagic);
  w.PutU32(kVersion);

  const StorageOptions& opt = db.options();
  w.PutI64(opt.partition_duration);
  w.PutI64(opt.dedup_window);
  w.PutU8(opt.enable_partitioning ? 1 : 0);
  w.PutU64(opt.batch_commit_size);

  const EntityStore& es = db.entities();
  w.PutU64(es.processes().size());
  for (const ProcessEntity& p : es.processes()) {
    w.PutU32(p.agent_id);
    w.PutU32(p.pid);
    w.PutString(es.exe_names().Get(p.exe_name));
    w.PutString(es.users().Get(p.user));
  }
  w.PutU64(es.files().size());
  for (const FileEntity& f : es.files()) {
    w.PutU32(f.agent_id);
    w.PutString(es.paths().Get(f.path));
  }
  w.PutU64(es.networks().size());
  for (const NetworkEntity& n : es.networks()) {
    w.PutU32(n.agent_id);
    w.PutString(es.ips().Get(n.src_ip));
    w.PutString(es.ips().Get(n.dst_ip));
    w.PutU16(n.src_port);
    w.PutU16(n.dst_port);
    w.PutString(es.protocols().Get(n.protocol));
  }

  w.PutU64(db.partitions().size());
  for (const auto& [key, partition] : db.partitions()) {
    // Rollover partitions of the same (bucket, agent) are written as
    // separate runs and re-merged on load, so the format needs no seq.
    w.PutI64(std::get<0>(key));
    w.PutU32(std::get<1>(key));
    w.PutU64(partition->events().size());
    for (const Event& e : partition->events()) {
      WriteEvent(&w, e);
    }
  }
  if (!w.WriteChecksum()) {
    return Status::IOError("write failure while saving snapshot to '" + path +
                           "'");
  }
  return Status::OK();
}

Result<AuditDatabase> LoadSnapshot(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  Reader r(file.get());
  if (r.GetU64() != kMagic) {
    return Status::Corruption("'" + path + "' is not an AIQL snapshot");
  }
  uint32_t version = r.GetU32();
  if (version != kVersion) {
    return Status::Corruption("snapshot version " + std::to_string(version) +
                              " unsupported (expected " +
                              std::to_string(kVersion) + ")");
  }
  StorageOptions opt;
  opt.partition_duration = r.GetI64();
  opt.dedup_window = r.GetI64();
  opt.enable_partitioning = r.GetU8() != 0;
  opt.batch_commit_size = r.GetU64();
  if (!r.ok()) return Status::Corruption("snapshot header truncated");

  AuditDatabase db(opt);
  EntityStore* es = db.mutable_entities();

  uint64_t num_procs = r.GetU64();
  for (uint64_t i = 0; i < num_procs && r.ok(); ++i) {
    ProcessRef ref;
    ref.agent_id = r.GetU32();
    ref.pid = r.GetU32();
    ref.exe_name = r.GetString();
    ref.user = r.GetString();
    es->InternProcess(ref);
  }
  uint64_t num_files = r.GetU64();
  for (uint64_t i = 0; i < num_files && r.ok(); ++i) {
    FileRef ref;
    ref.agent_id = r.GetU32();
    ref.path = r.GetString();
    es->InternFile(ref);
  }
  uint64_t num_nets = r.GetU64();
  for (uint64_t i = 0; i < num_nets && r.ok(); ++i) {
    NetworkRef ref;
    ref.agent_id = r.GetU32();
    ref.src_ip = r.GetString();
    ref.dst_ip = r.GetString();
    ref.src_port = r.GetU16();
    ref.dst_port = r.GetU16();
    ref.protocol = r.GetString();
    es->InternNetwork(ref);
  }

  uint64_t num_partitions = r.GetU64();
  for (uint64_t i = 0; i < num_partitions && r.ok(); ++i) {
    int64_t bucket = r.GetI64();
    AgentId agent = r.GetU32();
    uint64_t count = r.GetU64();
    EventPartition* partition = db.GetOrCreatePartition(bucket, agent);
    partition->mutable_events()->reserve(count);
    for (uint64_t j = 0; j < count && r.ok(); ++j) {
      partition->mutable_events()->push_back(ReadEvent(&r));
    }
  }
  if (!r.ok()) return Status::Corruption("snapshot body truncated");
  if (!r.VerifyChecksum()) {
    return Status::Corruption("snapshot checksum mismatch in '" + path + "'");
  }
  db.RestoreSealedState();
  return db;
}

}  // namespace aiql
