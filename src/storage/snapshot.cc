#include "storage/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "common/cancellation.h"
#include "common/checksum.h"
#include "common/failpoint.h"
#include "common/varint.h"
#include "storage/partition_cache.h"
#include "storage/snapshot_format.h"

#if !defined(_WIN32)
#include <fcntl.h>   // open, O_DIRECTORY
#include <unistd.h>  // fsync, fileno, close
#endif

namespace aiql {

// Byte-layout helpers (header/footer/segment codecs, cursor, 64-bit seek)
// live in storage/snapshot_format.{h,cc}, shared with the append-log
// writer so both stores produce and validate identical bytes.
using namespace snapfmt;  // NOLINT(build/namespaces)

namespace {

// --- v1 format constants (legacy single-blob snapshots) ----------------------

constexpr uint64_t kV1Magic = 0x4149514C534E5031ULL;  // "AIQLSNP1"
constexpr uint32_t kV1Version = 2;

// --- file sink ---------------------------------------------------------------

class FileSnapshotSink : public SnapshotSink {
 public:
  explicit FileSnapshotSink(FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~FileSnapshotSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t n) override {
    AIQL_RETURN_IF_ERROR(Failpoint::Hit("snapshot.sink.append"));
    size_t written = std::fwrite(data, 1, n, file_);
    if (written != n) {
      return Status::IOError("short write to '" + path_ + "' (" +
                             std::to_string(written) + " of " +
                             std::to_string(n) + " bytes)");
    }
    return Status::OK();
  }

  Status Sync() override {
    AIQL_RETURN_IF_ERROR(Failpoint::Hit("snapshot.sink.sync"));
    if (std::fflush(file_) != 0) {
      return Status::IOError("flush failed for '" + path_ + "'");
    }
#if !defined(_WIN32)
    if (fsync(fileno(file_)) != 0) {
      return Status::IOError("fsync failed for '" + path_ + "'");
    }
#endif
    return Status::OK();
  }

  Status Close() override {
    FILE* file = file_;
    file_ = nullptr;
    if (file != nullptr && std::fclose(file) != 0) {
      return Status::IOError("close failed for '" + path_ + "'");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
  std::string path_;
};

// =============================================================================
// v2 encoding (moved to storage/snapshot_format.cc)
// =============================================================================

// =============================================================================
// v1 format (legacy, single eager blob)
// =============================================================================

class V1Writer {
 public:
  explicit V1Writer(FILE* file) : file_(file) {}

  void PutBytes(const void* data, size_t n) {
    if (!ok_) return;
    hash_.Update(data, n);
    if (std::fwrite(data, 1, n, file_) != n) ok_ = false;
  }
  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU16(uint16_t v) { PutBytes(&v, 2); }
  void PutU32(uint32_t v) { PutBytes(&v, 4); }
  void PutU64(uint64_t v) { PutBytes(&v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  bool ok() const { return ok_; }

  /// Writes the accumulated checksum (not itself hashed).
  bool WriteChecksum() {
    uint64_t h = hash_.digest();
    return ok_ && std::fwrite(&h, 1, 8, file_) == 8;
  }

 private:
  FILE* file_;
  Fnv1a64 hash_;
  bool ok_ = true;
};

class V1Reader {
 public:
  explicit V1Reader(FILE* file) : file_(file) {}

  bool GetBytes(void* data, size_t n) {
    if (!ok_) return false;
    if (std::fread(data, 1, n, file_) != n) {
      ok_ = false;
      return false;
    }
    hash_.Update(data, n);
    return true;
  }
  uint8_t GetU8() {
    uint8_t v = 0;
    GetBytes(&v, 1);
    return v;
  }
  uint16_t GetU16() {
    uint16_t v = 0;
    GetBytes(&v, 2);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetBytes(&v, 4);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetBytes(&v, 8);
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!ok_ || n > (1u << 28)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    GetBytes(s.data(), n);
    return s;
  }

  bool ok() const { return ok_; }

  /// Reads the trailing checksum (not hashed) and compares.
  bool VerifyChecksum() {
    uint64_t expected = hash_.digest();
    uint64_t stored = 0;
    if (!ok_ || std::fread(&stored, 1, 8, file_) != 8) return false;
    return stored == expected;
  }

 private:
  FILE* file_;
  Fnv1a64 hash_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

void V1WriteEvent(V1Writer* w, const Event& e) {
  w->PutI64(e.start_ts);
  w->PutI64(e.end_ts);
  w->PutU64(e.amount);
  w->PutU32(e.subject);
  w->PutU32(e.object);
  w->PutU32(e.agent_id);
  w->PutU32(e.merge_count);
  w->PutU8(static_cast<uint8_t>(e.op));
  w->PutU8(static_cast<uint8_t>(e.object_type));
}

Event V1ReadEvent(V1Reader* r) {
  Event e;
  e.start_ts = r->GetI64();
  e.end_ts = r->GetI64();
  e.amount = r->GetU64();
  e.subject = r->GetU32();
  e.object = r->GetU32();
  e.agent_id = r->GetU32();
  e.merge_count = r->GetU32();
  e.op = static_cast<OpType>(r->GetU8());
  e.object_type = static_cast<EntityType>(r->GetU8());
  return e;
}

Result<AuditDatabase> LoadSnapshotV1(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  V1Reader r(file.get());
  if (r.GetU64() != kV1Magic) {
    return Status::Corruption("'" + path + "' is not an AIQL snapshot");
  }
  uint32_t version = r.GetU32();
  if (version != kV1Version) {
    return Status::Corruption("snapshot version " + std::to_string(version) +
                              " unsupported (expected " +
                              std::to_string(kV1Version) + ")");
  }
  StorageOptions opt;
  opt.partition_duration = r.GetI64();
  opt.dedup_window = r.GetI64();
  opt.enable_partitioning = r.GetU8() != 0;
  opt.batch_commit_size = r.GetU64();
  if (!r.ok()) return Status::Corruption("snapshot header truncated");

  AuditDatabase db(opt);
  EntityStore* es = db.mutable_entities();

  uint64_t num_procs = r.GetU64();
  for (uint64_t i = 0; i < num_procs && r.ok(); ++i) {
    ProcessRef ref;
    ref.agent_id = r.GetU32();
    ref.pid = r.GetU32();
    ref.exe_name = r.GetString();
    ref.user = r.GetString();
    es->InternProcess(ref);
  }
  uint64_t num_files = r.GetU64();
  for (uint64_t i = 0; i < num_files && r.ok(); ++i) {
    FileRef ref;
    ref.agent_id = r.GetU32();
    ref.path = r.GetString();
    es->InternFile(ref);
  }
  uint64_t num_nets = r.GetU64();
  for (uint64_t i = 0; i < num_nets && r.ok(); ++i) {
    NetworkRef ref;
    ref.agent_id = r.GetU32();
    ref.src_ip = r.GetString();
    ref.dst_ip = r.GetString();
    ref.src_port = r.GetU16();
    ref.dst_port = r.GetU16();
    ref.protocol = r.GetString();
    es->InternNetwork(ref);
  }

  uint64_t num_partitions = r.GetU64();
  for (uint64_t i = 0; i < num_partitions && r.ok(); ++i) {
    int64_t bucket = r.GetI64();
    AgentId agent = r.GetU32();
    uint64_t count = r.GetU64();
    EventPartition* partition = db.GetOrCreatePartition(bucket, agent);
    partition->mutable_events()->reserve(count);
    for (uint64_t j = 0; j < count && r.ok(); ++j) {
      partition->mutable_events()->push_back(V1ReadEvent(&r));
    }
  }
  if (!r.ok()) return Status::Corruption("snapshot body truncated");
  if (!r.VerifyChecksum()) {
    return Status::Corruption("snapshot checksum mismatch in '" + path + "'");
  }
  db.RestoreSealedState();
  return db;
}

}  // namespace

// =============================================================================
// public save paths
// =============================================================================

Status SaveSnapshotToSink(const AuditDatabase& db, SnapshotSink* sink) {
  if (!db.sealed()) {
    return Status::InvalidArgument("cannot snapshot an unsealed database");
  }

  std::string header;
  EncodeHeader(&header);
  AIQL_RETURN_IF_ERROR(sink->Append(header.data(), header.size()));
  uint64_t offset = header.size();

  FooterData dir;
  dir.options = db.options();
  dir.stats = db.stats();

  std::string segment;
  EncodeMetaSegment(db.entities(), &segment);
  dir.meta = SegmentRef{offset, segment.size(), Checksum64(segment)};
  AIQL_RETURN_IF_ERROR(sink->Append(segment.data(), segment.size()));
  offset += segment.size();

  dir.partitions.reserve(db.partitions().size());
  for (const auto& [key, partition] : db.partitions()) {
    segment.clear();
    EncodePartitionSegment(*partition, &segment);
    SegmentRef ref{offset, segment.size(), Checksum64(segment)};
    dir.partitions.push_back(MakeDirEntry(std::get<0>(key), std::get<1>(key),
                                          std::get<2>(key), ref, *partition));
    AIQL_RETURN_IF_ERROR(sink->Append(segment.data(), segment.size()));
    offset += segment.size();
  }

  std::string footer;
  EncodeFooter(dir, &footer);
  AIQL_RETURN_IF_ERROR(sink->Append(footer.data(), footer.size()));
  std::string trailer;
  EncodeTrailer(offset, Checksum64(footer), &trailer);
  AIQL_RETURN_IF_ERROR(sink->Append(trailer.data(), trailer.size()));

  AIQL_RETURN_IF_ERROR(sink->Sync());
  return sink->Close();
}

Status SaveSnapshot(const AuditDatabase& db, const std::string& path) {
  std::string tmp_path = path + ".tmp";
  FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + tmp_path + "' for writing");
  }
  FileSnapshotSink sink(file, tmp_path);
  Status status = SaveSnapshotToSink(db, &sink);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot move snapshot into place at '" + path +
                           "'");
  }
#if !defined(_WIN32)
  // The rename itself must reach the journal, or a power loss can undo an
  // already-reported-durable save.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory '" + dir +
                           "' to sync snapshot rename");
  }
  int rc = fsync(dir_fd);
  close(dir_fd);
  if (rc != 0) {
    return Status::IOError("fsync of directory '" + dir + "' failed");
  }
#endif
  return Status::OK();
}

Status SaveSnapshotV1(const AuditDatabase& db, const std::string& path) {
  if (!db.sealed()) {
    return Status::InvalidArgument("cannot snapshot an unsealed database");
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  V1Writer w(file.get());
  w.PutU64(kV1Magic);
  w.PutU32(kV1Version);

  const StorageOptions& opt = db.options();
  w.PutI64(opt.partition_duration);
  w.PutI64(opt.dedup_window);
  w.PutU8(opt.enable_partitioning ? 1 : 0);
  w.PutU64(opt.batch_commit_size);

  const EntityStore& es = db.entities();
  w.PutU64(es.processes().size());
  for (const ProcessEntity& p : es.processes()) {
    w.PutU32(p.agent_id);
    w.PutU32(p.pid);
    w.PutString(es.exe_names().Get(p.exe_name));
    w.PutString(es.users().Get(p.user));
  }
  w.PutU64(es.files().size());
  for (const FileEntity& f : es.files()) {
    w.PutU32(f.agent_id);
    w.PutString(es.paths().Get(f.path));
  }
  w.PutU64(es.networks().size());
  for (const NetworkEntity& n : es.networks()) {
    w.PutU32(n.agent_id);
    w.PutString(es.ips().Get(n.src_ip));
    w.PutString(es.ips().Get(n.dst_ip));
    w.PutU16(n.src_port);
    w.PutU16(n.dst_port);
    w.PutString(es.protocols().Get(n.protocol));
  }

  w.PutU64(db.partitions().size());
  for (const auto& [key, partition] : db.partitions()) {
    // Rollover partitions of the same (bucket, agent) are written as
    // separate runs and re-merged on load, so the format needs no seq.
    w.PutI64(std::get<0>(key));
    w.PutU32(std::get<1>(key));
    w.PutU64(partition->events().size());
    for (const Event& e : partition->events()) {
      V1WriteEvent(&w, e);
    }
  }
  if (!w.WriteChecksum()) {
    return Status::IOError("write failure while saving snapshot to '" + path +
                           "'");
  }
  // Same durability contract as the v2 path: flush/fsync/close failures are
  // errors, not success.
  FileSnapshotSink sink(file.release(), path);
  AIQL_RETURN_IF_ERROR(sink.Sync());
  return sink.Close();
}

// =============================================================================
// SnapshotStore
// =============================================================================

struct SnapshotStore::PartitionHandle {
  PartitionDirEntry entry;
  // Keep-forever mode (no cache): `storage` owns the partition, `loaded`
  // publishes it for the lock-free fast path.
  std::atomic<const EventPartition*> loaded{nullptr};
  std::unique_ptr<EventPartition> storage;  // guarded by load_mu_
  // Cache mode: ownership lives in the cache + query pins; `weak` revives
  // a partition that was evicted while a query still pins it, `bytes`
  // remembers the footprint charged per residence. Guarded by load_mu_.
  std::weak_ptr<const EventPartition> weak;
  std::shared_ptr<const EventPartition> strong;  // pinless-select fallback
  size_t bytes = 0;
};

SnapshotStore::~SnapshotStore() {
  if (cache_ != nullptr) cache_->EraseOwner(this);
  if (file_ != nullptr) std::fclose(file_);
}

void SnapshotStore::AttachCache(PartitionCache* cache) { cache_ = cache; }

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }

  char header[kV2HeaderSize];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::Corruption("'" + path + "' is too short to be a snapshot");
  }
  uint64_t magic = GetFixed64(header);
  if (magic == kV1Magic) {
    return Status::InvalidArgument(
        "'" + path +
        "' is a v1 snapshot; open it with LoadSnapshot (full load)");
  }
  if (magic != kV2Magic) {
    return Status::Corruption("'" + path + "' is not an AIQL snapshot");
  }
  uint32_t version = GetFixed32(header + 8);
  if (version != kV2Version) {
    return Status::Corruption("snapshot format version " +
                              std::to_string(version) + " unsupported");
  }

  if (Seek64(file.get(), 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek in '" + path + "'");
  }
  int64_t file_size = Tell64(file.get());
  if (file_size < 0 ||
      static_cast<size_t>(file_size) < kV2HeaderSize + kV2TrailerSize) {
    return Status::Corruption("'" + path + "' is truncated");
  }

  char trailer[kV2TrailerSize];
  if (Seek64(file.get(), file_size - static_cast<int64_t>(kV2TrailerSize),
             SEEK_SET) != 0 ||
      std::fread(trailer, 1, sizeof(trailer), file.get()) !=
          sizeof(trailer)) {
    return Status::Corruption("cannot read snapshot trailer of '" + path +
                              "'");
  }
  uint64_t footer_offset = GetFixed64(trailer);
  uint64_t footer_checksum = GetFixed64(trailer + 8);
  if (GetFixed64(trailer + 16) != kV2Magic) {
    return Status::Corruption("snapshot trailer corrupt in '" + path +
                              "' (file truncated?)");
  }
  uint64_t trailer_offset =
      static_cast<uint64_t>(file_size) - kV2TrailerSize;
  if (footer_offset < kV2HeaderSize || footer_offset > trailer_offset) {
    return Status::Corruption("snapshot footer offset out of range in '" +
                              path + "'");
  }

  std::string footer_bytes(
      static_cast<size_t>(trailer_offset - footer_offset), '\0');
  if (Seek64(file.get(), static_cast<int64_t>(footer_offset), SEEK_SET) !=
          0 ||
      std::fread(footer_bytes.data(), 1, footer_bytes.size(), file.get()) !=
          footer_bytes.size()) {
    return Status::Corruption("cannot read snapshot footer of '" + path +
                              "'");
  }
  if (Checksum64(footer_bytes) != footer_checksum) {
    return Status::Corruption("snapshot footer checksum mismatch in '" +
                              path + "'");
  }

  FooterData footer;
  AIQL_RETURN_IF_ERROR(DecodeFooter(footer_bytes, footer_offset, &footer));

  std::string meta_bytes(static_cast<size_t>(footer.meta.length), '\0');
  if (Seek64(file.get(), static_cast<int64_t>(footer.meta.offset),
             SEEK_SET) != 0 ||
      std::fread(meta_bytes.data(), 1, meta_bytes.size(), file.get()) !=
          meta_bytes.size()) {
    return Status::IOError("cannot read snapshot META segment of '" + path +
                           "'");
  }
  AIQL_RETURN_IF_ERROR(Failpoint::HitBuffer(
      "snapshot.read.meta", meta_bytes.data(), meta_bytes.size()));
  if (Checksum64(meta_bytes) != footer.meta.checksum) {
    return Status::Corruption("snapshot META checksum mismatch in '" + path +
                              "'");
  }

  std::unique_ptr<SnapshotStore> store(new SnapshotStore());
  store->path_ = path;
  store->options_ = footer.options;
  store->stats_ = footer.stats;
  AIQL_RETURN_IF_ERROR(DecodeMetaSegment(meta_bytes, &store->entities_));

  store->handles_.reserve(footer.partitions.size());
  for (const PartitionDirEntry& entry : footer.partitions) {
    auto handle = std::make_unique<PartitionHandle>();
    handle->entry = entry;
    store->handles_.push_back(std::move(handle));
  }
  store->file_ = file.release();
  return store;
}

Result<std::unique_ptr<EventPartition>> SnapshotStore::DecodeHandleLocked(
    size_t index) const {
  const PartitionDirEntry& entry = handles_[index]->entry;
  std::string bytes(static_cast<size_t>(entry.segment.length), '\0');
  if (Seek64(file_, static_cast<int64_t>(entry.segment.offset), SEEK_SET) !=
          0 ||
      std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("cannot read partition segment of '" + path_ +
                           "'");
  }
  // Chaos injection on the lazy-load read path: a corrupt action damages
  // `bytes` so the checksum below catches it exactly like real bit rot.
  AIQL_RETURN_IF_ERROR(Failpoint::HitBuffer("snapshot.read.partition",
                                            bytes.data(), bytes.size()));
  if (Checksum64(bytes) != entry.segment.checksum) {
    return Status::Corruption("partition segment checksum mismatch in '" +
                              path_ + "'");
  }
  auto partition = std::make_unique<EventPartition>();
  AIQL_RETURN_IF_ERROR(
      DecodePartitionSegment(bytes, entry, entities_, partition.get()));
  return partition;
}

Result<const EventPartition*> SnapshotStore::Partition(size_t index) const {
  PartitionHandle& handle = *handles_[index];
  if (const EventPartition* loaded =
          handle.loaded.load(std::memory_order_acquire)) {
    return loaded;
  }
  std::lock_guard<std::mutex> lock(load_mu_);
  if (const EventPartition* loaded =
          handle.loaded.load(std::memory_order_relaxed)) {
    return loaded;
  }
  AIQL_ASSIGN_OR_RETURN(std::unique_ptr<EventPartition> partition,
                        DecodeHandleLocked(index));
  handle.storage = std::move(partition);
  handle.loaded.store(handle.storage.get(), std::memory_order_release);
  loaded_count_.fetch_add(1, std::memory_order_relaxed);
  return handle.storage.get();
}

Result<std::shared_ptr<const EventPartition>>
SnapshotStore::MaterializePartition(size_t index) const {
  if (cache_ == nullptr) {
    // Keep-forever mode: the store owns the partition for its lifetime, so
    // the pin is a non-owning alias.
    AIQL_ASSIGN_OR_RETURN(const EventPartition* partition, Partition(index));
    return std::shared_ptr<const EventPartition>(partition,
                                                 [](const EventPartition*) {});
  }
  PartitionHandle& handle = *handles_[index];
  if (auto pin = cache_->Lookup(this, index)) return pin;
  std::lock_guard<std::mutex> lock(load_mu_);
  // Another thread may have materialized it between the cache miss and the
  // lock; a query pin may also still hold a copy the cache already evicted.
  // Either way `weak` revives it without touching disk.
  if (auto pin = handle.weak.lock()) {
    cache_->Insert(this, index, pin, handle.bytes);
    return pin;
  }
  // Real reopen from disk. `retention.reopen` lets chaos tests fail or delay
  // exactly this path (first decode of a partition also passes through it).
  AIQL_RETURN_IF_ERROR(
      Failpoint::Hit("retention.reopen", static_cast<int64_t>(index)));
  AIQL_ASSIGN_OR_RETURN(std::unique_ptr<EventPartition> partition,
                        DecodeHandleLocked(index));
  if (handle.bytes == 0) {
    handle.bytes = partition->MemoryFootprint();
  } else {
    // bytes was set by an earlier residence, so this decode is a reopen of
    // an evicted partition.
    reopens_.fetch_add(1, std::memory_order_relaxed);
  }
  std::shared_ptr<const EventPartition> pin(std::move(partition));
  handle.weak = pin;
  loaded_count_.fetch_add(1, std::memory_order_relaxed);
  if (QueryContext* ctx = ScopedQueryContext::Current()) {
    AIQL_RETURN_IF_ERROR(ctx->ChargeMemory(handle.bytes));
  }
  cache_->Insert(this, index, pin, handle.bytes);
  return pin;
}

Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
SnapshotStore::SelectPartitions(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents,
    PartitionPinSet* pins) const {
  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  for (size_t i = 0; i < handles_.size(); ++i) {
    const PartitionDirEntry& entry = handles_[i]->entry;
    if (!PartitionStatsSelected(range, agents, options_.enable_partitioning,
                                entry.agent, entry.min_ts, entry.max_ts,
                                entry.events)) {
      continue;
    }
    AIQL_ASSIGN_OR_RETURN(std::shared_ptr<const EventPartition> pin,
                          MaterializePartition(i));
    out.emplace_back(PartitionKey{entry.bucket, entry.agent}, pin.get());
    if (pins != nullptr) {
      pins->Add(std::move(pin));
    } else if (cache_ != nullptr) {
      // No pin set to carry ownership (direct store use in tests/tools):
      // park the pin in the handle so the raw pointer stays valid.
      std::lock_guard<std::mutex> lock(load_mu_);
      handles_[i]->strong = std::move(pin);
    }
  }
  return out;
}

ReadView SnapshotStore::OpenReadView() const {
  ReadView view;
  view.entities_ = &entities_;
  view.options_ = &options_;
  view.stats_ = stats_;
  view.visible_events_ = stats_.total_events;
  view.store_ = this;
  view.pins_ = std::make_shared<PartitionPinSet>();
  return view;
}

Status SnapshotStore::MaterializeAll() const {
  for (size_t i = 0; i < handles_.size(); ++i) {
    AIQL_RETURN_IF_ERROR(Partition(i).status());
  }
  return Status::OK();
}

Result<AuditDatabase> SnapshotStore::ToDatabase() && {
  AIQL_RETURN_IF_ERROR(MaterializeAll());
  AuditDatabase db(options_);
  *db.mutable_entities() = std::move(entities_);
  // Handles are in footer order, i.e. ascending (bucket, agent, seq), so
  // adoption reassigns the same seqs.
  for (auto& handle : handles_) {
    db.AdoptSealedPartition(handle->entry.bucket, handle->entry.agent,
                            std::move(handle->storage));
  }
  db.FinishRestore();
  return db;
}

// =============================================================================
// load dispatch
// =============================================================================

Result<AuditDatabase> LoadSnapshot(const std::string& path) {
  Result<std::unique_ptr<SnapshotStore>> store = SnapshotStore::Open(path);
  if (store.ok()) return std::move(**store).ToDatabase();
  // The lazy store reports v1 files as InvalidArgument; everything else
  // (missing file, corruption, version mismatch) propagates as-is.
  if (store.status().code() == StatusCode::kInvalidArgument) {
    return LoadSnapshotV1(path);
  }
  return store.status();
}

}  // namespace aiql
