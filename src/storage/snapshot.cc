#include "storage/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "common/checksum.h"
#include "common/failpoint.h"
#include "common/varint.h"

#if !defined(_WIN32)
#include <fcntl.h>   // open, O_DIRECTORY
#include <unistd.h>  // fsync, fileno, close
#endif

namespace aiql {

namespace {

// --- format constants --------------------------------------------------------

constexpr uint64_t kV1Magic = 0x4149514C534E5031ULL;  // "AIQLSNP1"
constexpr uint32_t kV1Version = 2;
constexpr uint64_t kV2Magic = 0x4149514C534E5032ULL;  // "AIQLSNP2"
// Version 3 added the reverse entity indexes (subject / object posting
// lists) to the partition segments, so provenance hops served from a lazy
// snapshot need no index rebuild.
constexpr uint32_t kV2Version = 3;
constexpr size_t kV2HeaderSize = 8 + 4;   // magic + version
constexpr size_t kV2TrailerSize = 8 * 3;  // footer offset + checksum + magic

// --- little-endian fixed-width helpers (host-independent) --------------------

void PutFixed32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

// --- bounds-checked decode cursor -------------------------------------------

/// Cursor over one checksummed byte section. Every accessor fails sticky on
/// truncation, so decode loops can check ok() once at the end.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes)
      : p_(bytes.data()), limit_(bytes.data() + bytes.size()) {}

  uint64_t U64() {
    uint64_t v = 0;
    const char* next = ok_ ? GetVarint64(p_, limit_, &v) : nullptr;
    if (next == nullptr) {
      ok_ = false;
      return 0;
    }
    p_ = next;
    return v;
  }

  int64_t I64() {
    uint64_t raw = U64();
    return ZigZagDecode(raw);
  }

  uint8_t Byte() {
    if (!ok_ || p_ >= limit_) {
      ok_ = false;
      return 0;
    }
    return static_cast<uint8_t>(*p_++);
  }

  /// A `n`-byte string view into the section (valid while it stays alive).
  std::string_view Bytes(size_t n) {
    if (!ok_ || static_cast<size_t>(limit_ - p_) < n) {
      ok_ = false;
      return {};
    }
    std::string_view out(p_, n);
    p_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && p_ == limit_; }
  size_t remaining() const { return static_cast<size_t>(limit_ - p_); }

 private:
  const char* p_;
  const char* limit_;
  bool ok_ = true;
};

// --- 64-bit-safe positioning -------------------------------------------------
// plain fseek/ftell take `long`, which is 32-bit on LLP64 platforms and
// would cap snapshots at 2 GiB — far below the 0.5-1 year retention the
// deployed system targets.

int Seek64(FILE* file, int64_t offset, int whence) {
#if defined(_WIN32)
  return _fseeki64(file, offset, whence);
#else
  return fseeko(file, static_cast<off_t>(offset), whence);
#endif
}

int64_t Tell64(FILE* file) {
#if defined(_WIN32)
  return _ftelli64(file);
#else
  return static_cast<int64_t>(ftello(file));
#endif
}

// --- file sink ---------------------------------------------------------------

class FileSnapshotSink : public SnapshotSink {
 public:
  explicit FileSnapshotSink(FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~FileSnapshotSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t n) override {
    AIQL_RETURN_IF_ERROR(Failpoint::Hit("snapshot.sink.append"));
    size_t written = std::fwrite(data, 1, n, file_);
    if (written != n) {
      return Status::IOError("short write to '" + path_ + "' (" +
                             std::to_string(written) + " of " +
                             std::to_string(n) + " bytes)");
    }
    return Status::OK();
  }

  Status Sync() override {
    AIQL_RETURN_IF_ERROR(Failpoint::Hit("snapshot.sink.sync"));
    if (std::fflush(file_) != 0) {
      return Status::IOError("flush failed for '" + path_ + "'");
    }
#if !defined(_WIN32)
    if (fsync(fileno(file_)) != 0) {
      return Status::IOError("fsync failed for '" + path_ + "'");
    }
#endif
    return Status::OK();
  }

  Status Close() override {
    FILE* file = file_;
    file_ = nullptr;
    if (file != nullptr && std::fclose(file) != 0) {
      return Status::IOError("close failed for '" + path_ + "'");
    }
    return Status::OK();
  }

 private:
  FILE* file_;
  std::string path_;
};

// =============================================================================
// v2 encoding
// =============================================================================

enum SegmentKind : uint8_t { kMetaSegment = 0, kPartitionSegment = 1 };

void PutDictionary(std::string* out, const StringInterner& interner) {
  PutVarint64(out, interner.size());
  interner.ForEach([&](StringId, std::string_view text) {
    PutVarint64(out, text.size());
    out->append(text);
  });
}

/// META segment: the five string dictionaries in id order, then the entity
/// tables referencing them by varint id.
void EncodeMetaSegment(const AuditDatabase& db, std::string* out) {
  const EntityStore& es = db.entities();
  PutDictionary(out, es.exe_names());
  PutDictionary(out, es.users());
  PutDictionary(out, es.paths());
  PutDictionary(out, es.ips());
  PutDictionary(out, es.protocols());

  PutVarint64(out, es.processes().size());
  for (const ProcessEntity& p : es.processes()) {
    PutVarint64(out, p.agent_id);
    PutVarint64(out, p.pid);
    PutVarint64(out, p.exe_name);
    PutVarint64(out, p.user);
  }
  PutVarint64(out, es.files().size());
  for (const FileEntity& f : es.files()) {
    PutVarint64(out, f.agent_id);
    PutVarint64(out, f.path);
  }
  PutVarint64(out, es.networks().size());
  for (const NetworkEntity& n : es.networks()) {
    PutVarint64(out, n.agent_id);
    PutVarint64(out, n.src_ip);
    PutVarint64(out, n.dst_ip);
    PutVarint64(out, n.src_port);
    PutVarint64(out, n.dst_port);
    PutVarint64(out, n.protocol);
  }
}

void EncodeEntityIndex(std::string* out, const EntityPostingIndex& index) {
  PutVarint64(out, index.keys.size());
  uint64_t prev_key = 0;
  for (size_t k = 0; k < index.keys.size(); ++k) {
    PutVarint64(out, k == 0 ? index.keys[0] : index.keys[k] - prev_key);
    prev_key = index.keys[k];
    uint32_t begin = index.offsets[k];
    uint32_t end = index.offsets[k + 1];
    PutVarint64(out, end - begin);
    uint32_t prev_index = 0;
    for (uint32_t i = begin; i < end; ++i) {
      PutVarint64(out, i == begin ? index.indexes[i]
                                  : index.indexes[i] - prev_index);
      prev_index = index.indexes[i];
    }
  }
}

/// PARTITION segment: columnar event encoding plus the seal artifacts.
/// Events are already sorted by (start_ts, end_ts), so start timestamps
/// delta-encode into mostly one-byte varints; the op column is implied by
/// the persisted posting lists (each event index appears in exactly one).
void EncodePartitionSegment(const EventPartition& partition,
                            std::string* out) {
  const std::vector<Event>& events = partition.events();
  const size_t n = events.size();
  PutVarint64(out, n);

  // start_ts: first value zigzag, then non-negative deltas.
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      PutVarintSigned(out, events[i].start_ts);
    } else {
      PutVarint64(out,
                  static_cast<uint64_t>(events[i].start_ts) -
                      static_cast<uint64_t>(prev));
    }
    prev = events[i].start_ts;
  }
  // Durations (end - start >= 0 by ingest validation).
  for (const Event& e : events) {
    PutVarint64(out, static_cast<uint64_t>(e.end_ts) -
                         static_cast<uint64_t>(e.start_ts));
  }
  for (const Event& e : events) PutVarint64(out, e.subject);
  for (const Event& e : events) PutVarint64(out, e.object);
  // agent_id: RLE — constant within a partition under time x agent
  // partitioning, so this column is typically two varints.
  for (size_t i = 0; i < n;) {
    size_t run = i + 1;
    while (run < n && events[run].agent_id == events[i].agent_id) ++run;
    PutVarint64(out, events[i].agent_id);
    PutVarint64(out, run - i);
    i = run;
  }
  for (const Event& e : events) PutVarint64(out, e.amount);
  for (const Event& e : events) PutVarint64(out, e.merge_count);
  // object_type: RLE.
  for (size_t i = 0; i < n;) {
    size_t run = i + 1;
    while (run < n && events[run].object_type == events[i].object_type) ++run;
    out->push_back(static_cast<char>(events[i].object_type));
    PutVarint64(out, run - i);
    i = run;
  }

  // Posting lists (ascending event indexes, delta-encoded). Together they
  // cover every index exactly once, which also encodes the op column.
  for (int op = 0; op < kNumOpTypes; ++op) {
    const OpPostingList& list = partition.posting(static_cast<OpType>(op));
    PutVarint64(out, list.indexes.size());
    uint32_t prev_index = 0;
    for (size_t i = 0; i < list.indexes.size(); ++i) {
      PutVarint64(out, i == 0 ? list.indexes[0]
                              : list.indexes[i] - prev_index);
      prev_index = list.indexes[i];
    }
  }

  // Subject-exe statistics, sorted by exe id for deterministic bytes.
  std::vector<std::pair<StringId, uint64_t>> exe_counts(
      partition.subject_exe_counts().begin(),
      partition.subject_exe_counts().end());
  std::sort(exe_counts.begin(), exe_counts.end());
  PutVarint64(out, exe_counts.size());
  for (const auto& [exe, count] : exe_counts) {
    PutVarint64(out, exe);
    PutVarint64(out, count);
  }

  // Reverse entity indexes (v2 format version 3): CSR groups of ascending
  // event indexes keyed by strictly ascending entity keys — keys and
  // in-group indexes both delta-encode into small varints.
  EncodeEntityIndex(out, partition.subject_index());
  EncodeEntityIndex(out, partition.object_index());
}

void EncodeOptions(std::string* out, const StorageOptions& options) {
  PutVarintSigned(out, options.partition_duration);
  PutVarintSigned(out, options.dedup_window);
  out->push_back(options.enable_partitioning ? 1 : 0);
  PutVarint64(out, options.batch_commit_size);
  PutVarint64(out, options.max_partition_events);
}

void EncodeStats(std::string* out, const DatabaseStats& stats) {
  PutVarint64(out, stats.total_events);
  PutVarint64(out, stats.raw_events);
  PutVarint64(out, stats.total_partitions);
  PutVarint64(out, stats.partitions_sealed);
  for (uint64_t count : stats.op_counts) PutVarint64(out, count);
  PutVarintSigned(out, stats.min_ts);
  PutVarintSigned(out, stats.max_ts);
}

// =============================================================================
// v2 decoding
// =============================================================================

struct SegmentRef {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

struct PartitionDirEntry {
  int64_t bucket = 0;
  AgentId agent = 0;
  uint32_t seq = 0;
  SegmentRef segment;
  uint64_t events = 0;
  uint64_t raw_events = 0;
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
  std::array<uint64_t, kNumOpTypes> op_counts{};
};

struct FooterData {
  StorageOptions options;
  DatabaseStats stats;
  SegmentRef meta;
  std::vector<PartitionDirEntry> partitions;
};

Status DecodeSegmentRef(Cursor* cur, uint64_t data_end, SegmentRef* ref) {
  ref->offset = cur->U64();
  ref->length = cur->U64();
  ref->checksum = cur->U64();
  if (!cur->ok()) return Status::Corruption("snapshot footer truncated");
  if (ref->offset < kV2HeaderSize || ref->length > data_end ||
      ref->offset > data_end - ref->length) {
    return Status::Corruption("snapshot segment outside the data area");
  }
  return Status::OK();
}

/// Parses the (already checksum-verified) footer. `data_end` is the file
/// offset where the footer begins — all segments must end before it.
Status DecodeFooter(std::string_view bytes, uint64_t data_end,
                    FooterData* footer) {
  Cursor cur(bytes);
  footer->options.partition_duration = cur.I64();
  footer->options.dedup_window = cur.I64();
  footer->options.enable_partitioning = cur.Byte() != 0;
  footer->options.batch_commit_size = static_cast<size_t>(cur.U64());
  footer->options.max_partition_events = static_cast<size_t>(cur.U64());

  footer->stats.total_events = cur.U64();
  footer->stats.raw_events = cur.U64();
  footer->stats.total_partitions = cur.U64();
  footer->stats.partitions_sealed = cur.U64();
  for (uint64_t& count : footer->stats.op_counts) count = cur.U64();
  footer->stats.min_ts = cur.I64();
  footer->stats.max_ts = cur.I64();

  AIQL_RETURN_IF_ERROR(DecodeSegmentRef(&cur, data_end, &footer->meta));

  uint64_t num_partitions = cur.U64();
  if (!cur.ok()) return Status::Corruption("snapshot footer truncated");
  // Each directory entry takes >= 16 bytes, bounding the claimed count.
  if (num_partitions > cur.remaining()) {
    return Status::Corruption("snapshot footer partition count implausible");
  }
  footer->partitions.reserve(static_cast<size_t>(num_partitions));
  for (uint64_t i = 0; i < num_partitions; ++i) {
    PartitionDirEntry entry;
    entry.bucket = cur.I64();
    entry.agent = static_cast<AgentId>(cur.U64());
    entry.seq = static_cast<uint32_t>(cur.U64());
    AIQL_RETURN_IF_ERROR(DecodeSegmentRef(&cur, data_end, &entry.segment));
    entry.events = cur.U64();
    entry.raw_events = cur.U64();
    entry.min_ts = cur.I64();
    entry.max_ts = cur.I64();
    for (uint64_t& count : entry.op_counts) count = cur.U64();
    if (!cur.ok()) return Status::Corruption("snapshot footer truncated");
    footer->partitions.push_back(entry);
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("snapshot footer has trailing bytes");
  }
  return Status::OK();
}

Result<std::vector<std::string>> DecodeDictionary(Cursor* cur) {
  uint64_t count = cur->U64();
  if (!cur->ok() || count > cur->remaining()) {
    return Status::Corruption("snapshot dictionary truncated");
  }
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = cur->U64();
    std::string_view text = cur->Bytes(static_cast<size_t>(len));
    if (!cur->ok()) {
      return Status::Corruption("snapshot dictionary truncated");
    }
    out.emplace_back(text);
  }
  return out;
}

Status DecodeMetaSegment(std::string_view bytes, EntityStore* store) {
  Cursor cur(bytes);
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> exe_names,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> users,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> ips, DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> protocols,
                        DecodeDictionary(&cur));
  AIQL_RETURN_IF_ERROR(
      store->RestoreDictionaries(exe_names, users, paths, ips, protocols));

  auto dict_string = [](const std::vector<std::string>& dict,
                        uint64_t id) -> const std::string* {
    return id < dict.size() ? &dict[id] : nullptr;
  };

  uint64_t num_procs = cur.U64();
  if (!cur.ok() || num_procs > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_procs; ++i) {
    uint64_t agent = cur.U64();
    uint64_t pid = cur.U64();
    const std::string* exe = dict_string(exe_names, cur.U64());
    const std::string* user = dict_string(users, cur.U64());
    if (!cur.ok() || exe == nullptr || user == nullptr ||
        agent > UINT32_MAX || pid > UINT32_MAX) {
      return Status::Corruption("snapshot process table corrupt");
    }
    store->InternProcess(ProcessRef{static_cast<AgentId>(agent),
                                    static_cast<uint32_t>(pid), *exe, *user});
  }
  if (store->processes().size() != num_procs) {
    return Status::Corruption("snapshot process table has duplicates");
  }

  uint64_t num_files = cur.U64();
  if (!cur.ok() || num_files > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_files; ++i) {
    uint64_t agent = cur.U64();
    const std::string* path = dict_string(paths, cur.U64());
    if (!cur.ok() || path == nullptr || agent > UINT32_MAX) {
      return Status::Corruption("snapshot file table corrupt");
    }
    store->InternFile(FileRef{static_cast<AgentId>(agent), *path});
  }
  if (store->files().size() != num_files) {
    return Status::Corruption("snapshot file table has duplicates");
  }

  uint64_t num_nets = cur.U64();
  if (!cur.ok() || num_nets > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_nets; ++i) {
    NetworkRef ref;
    uint64_t agent = cur.U64();
    const std::string* src = dict_string(ips, cur.U64());
    const std::string* dst = dict_string(ips, cur.U64());
    uint64_t src_port = cur.U64();
    uint64_t dst_port = cur.U64();
    const std::string* proto = dict_string(protocols, cur.U64());
    if (!cur.ok() || src == nullptr || dst == nullptr || proto == nullptr ||
        agent > UINT32_MAX || src_port > UINT16_MAX ||
        dst_port > UINT16_MAX) {
      return Status::Corruption("snapshot network table corrupt");
    }
    ref.agent_id = static_cast<AgentId>(agent);
    ref.src_ip = *src;
    ref.dst_ip = *dst;
    ref.src_port = static_cast<uint16_t>(src_port);
    ref.dst_port = static_cast<uint16_t>(dst_port);
    ref.protocol = *proto;
    store->InternNetwork(ref);
  }
  if (store->networks().size() != num_nets) {
    return Status::Corruption("snapshot network table has duplicates");
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("snapshot META segment has trailing bytes");
  }
  return Status::OK();
}

/// Decodes one reverse entity index and revalidates its invariants against
/// the already-decoded events: keys strictly ascending, every group
/// non-empty with strictly ascending event indexes, every event covered
/// exactly once, and every listed event actually carrying the group's key.
/// `key_of` maps an event to its expected key (subject or object form).
template <typename KeyOf>
Status DecodeEntityIndex(Cursor* cur, const std::vector<Event>& events,
                         const KeyOf& key_of, const char* what,
                         EntityPostingIndex* index) {
  const size_t n = events.size();
  auto corrupt = [&] {
    return Status::Corruption(std::string("partition ") + what +
                              " index corrupt");
  };
  uint64_t num_keys = cur->U64();
  if (!cur->ok() || num_keys > n) return corrupt();
  index->keys.reserve(static_cast<size_t>(num_keys));
  index->offsets.reserve(static_cast<size_t>(num_keys) + 1);
  index->indexes.reserve(n);
  std::vector<uint8_t> seen(n, 0);
  uint64_t key = 0;
  uint64_t total = 0;
  for (uint64_t k = 0; k < num_keys; ++k) {
    uint64_t delta = cur->U64();
    if (!cur->ok() || (k > 0 && delta == 0)) return corrupt();
    key = k == 0 ? delta : key + delta;
    uint64_t count = cur->U64();
    if (!cur->ok() || count == 0 || count > n - total) return corrupt();
    index->keys.push_back(key);
    index->offsets.push_back(static_cast<uint32_t>(total));
    uint64_t event_index = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t d = cur->U64();
      if (!cur->ok() || (i > 0 && d == 0)) return corrupt();
      event_index = i == 0 ? d : event_index + d;
      if (event_index >= n || seen[event_index] != 0 ||
          key_of(events[event_index]) != key) {
        return corrupt();
      }
      seen[event_index] = 1;
      index->indexes.push_back(static_cast<uint32_t>(event_index));
    }
    total += count;
  }
  index->offsets.push_back(static_cast<uint32_t>(total));
  if (total != n) {
    return Status::Corruption(std::string("partition ") + what +
                              " index does not cover every event");
  }
  return Status::OK();
}

/// Decodes one partition segment and installs it as a sealed partition.
/// Every structural invariant is revalidated (not just checksummed):
/// posting coverage, entity-id bounds, statistic agreement with the footer
/// directory — so a decoder bug or an improbable checksum collision cannot
/// smuggle malformed state into the engine.
Status DecodePartitionSegment(std::string_view bytes,
                              const PartitionDirEntry& entry,
                              const EntityStore& store,
                              EventPartition* partition) {
  Cursor cur(bytes);
  uint64_t n64 = cur.U64();
  if (!cur.ok() || n64 != entry.events || n64 > bytes.size()) {
    return Status::Corruption("partition segment event count mismatch");
  }
  const size_t n = static_cast<size_t>(n64);

  std::vector<Event> events(n);
  uint64_t prev_start = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t start =
        i == 0 ? static_cast<uint64_t>(cur.I64()) : prev_start + cur.U64();
    events[i].start_ts = static_cast<Timestamp>(start);
    prev_start = start;
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].end_ts = static_cast<Timestamp>(
        static_cast<uint64_t>(events[i].start_ts) + cur.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].subject = static_cast<EntityId>(cur.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].object = static_cast<EntityId>(cur.U64());
  }
  for (size_t covered = 0; covered < n;) {
    uint64_t agent = cur.U64();
    uint64_t run = cur.U64();
    if (!cur.ok() || agent > UINT32_MAX || run == 0 || run > n - covered) {
      return Status::Corruption("partition agent column corrupt");
    }
    for (uint64_t i = 0; i < run; ++i) {
      events[covered + i].agent_id = static_cast<AgentId>(agent);
    }
    covered += static_cast<size_t>(run);
  }
  for (size_t i = 0; i < n; ++i) events[i].amount = cur.U64();
  for (size_t i = 0; i < n; ++i) {
    uint64_t merge_count = cur.U64();
    if (!cur.ok() || merge_count == 0 || merge_count > UINT32_MAX) {
      return Status::Corruption("partition merge counts corrupt");
    }
    events[i].merge_count = static_cast<uint32_t>(merge_count);
  }
  for (size_t covered = 0; covered < n;) {
    uint8_t type = cur.Byte();
    uint64_t run = cur.U64();
    if (!cur.ok() || type >= kNumEntityTypes || run == 0 ||
        run > n - covered) {
      return Status::Corruption("partition object-type column corrupt");
    }
    for (uint64_t i = 0; i < run; ++i) {
      events[covered + i].object_type = static_cast<EntityType>(type);
    }
    covered += static_cast<size_t>(run);
  }
  if (!cur.ok()) return Status::Corruption("partition segment truncated");

  // Posting lists: must jointly cover every event index exactly once; they
  // also reconstruct the op column.
  std::array<OpPostingList, kNumOpTypes> postings;
  std::vector<uint8_t> op_of(n, 0xFF);
  uint64_t total_postings = 0;
  for (int op = 0; op < kNumOpTypes; ++op) {
    uint64_t count = cur.U64();
    if (!cur.ok() || count != entry.op_counts[op] ||
        count > n - total_postings) {
      return Status::Corruption("partition posting lists corrupt");
    }
    OpPostingList& list = postings[op];
    list.indexes.reserve(static_cast<size_t>(count));
    uint64_t index = 0;
    for (uint64_t i = 0; i < count; ++i) {
      index = i == 0 ? cur.U64() : index + cur.U64();
      if (!cur.ok() || index >= n || op_of[index] != 0xFF) {
        return Status::Corruption("partition posting lists corrupt");
      }
      op_of[index] = static_cast<uint8_t>(op);
      list.indexes.push_back(static_cast<uint32_t>(index));
    }
    total_postings += count;
  }
  if (total_postings != n) {
    return Status::Corruption("partition posting lists do not cover events");
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].op = static_cast<OpType>(op_of[i]);
  }

  std::unordered_map<StringId, uint64_t> exe_counts;
  uint64_t num_exe = cur.U64();
  if (!cur.ok() || num_exe > cur.remaining()) {
    return Status::Corruption("partition statistics truncated");
  }
  for (uint64_t i = 0; i < num_exe; ++i) {
    uint64_t exe = cur.U64();
    uint64_t count = cur.U64();
    if (!cur.ok() || exe >= store.exe_names().size()) {
      return Status::Corruption("partition statistics corrupt");
    }
    exe_counts[static_cast<StringId>(exe)] = count;
  }

  EntityPostingIndex subject_index;
  EntityPostingIndex object_index;
  AIQL_RETURN_IF_ERROR(DecodeEntityIndex(
      &cur, events,
      [](const Event& e) { return static_cast<uint64_t>(e.subject); },
      "subject", &subject_index));
  AIQL_RETURN_IF_ERROR(DecodeEntityIndex(
      &cur, events,
      [](const Event& e) {
        return EventPartition::ObjectKey(e.object_type, e.object);
      },
      "object", &object_index));
  if (!cur.AtEnd()) {
    return Status::Corruption("partition segment has trailing bytes");
  }

  // Cross-validate decoded events against the footer directory and the
  // engine's seal invariants.
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
  uint64_t raw = 0;
  for (size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    if (e.end_ts < e.start_ts) {
      return Status::Corruption("partition event interval corrupt");
    }
    if (i > 0 && (e.start_ts < events[i - 1].start_ts ||
                  (e.start_ts == events[i - 1].start_ts &&
                   e.end_ts < events[i - 1].end_ts))) {
      return Status::Corruption("partition events out of order");
    }
    if (e.subject >= store.processes().size() ||
        e.object >= store.NumEntities(e.object_type)) {
      return Status::Corruption("partition references unknown entities");
    }
    min_ts = std::min(min_ts, e.start_ts);
    max_ts = std::max(max_ts, e.end_ts);
    raw += e.merge_count;
  }
  if (n > 0 && (min_ts != entry.min_ts || max_ts != entry.max_ts)) {
    return Status::Corruption("partition time bounds disagree with footer");
  }
  if (raw != entry.raw_events) {
    return Status::Corruption("partition raw-event count disagrees with "
                              "footer");
  }

  partition->RestoreSealed(std::move(events), std::move(postings),
                           std::move(subject_index), std::move(object_index),
                           std::move(exe_counts), entry.raw_events);
  return Status::OK();
}

// =============================================================================
// v1 format (legacy, single eager blob)
// =============================================================================

class V1Writer {
 public:
  explicit V1Writer(FILE* file) : file_(file) {}

  void PutBytes(const void* data, size_t n) {
    if (!ok_) return;
    hash_.Update(data, n);
    if (std::fwrite(data, 1, n, file_) != n) ok_ = false;
  }
  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU16(uint16_t v) { PutBytes(&v, 2); }
  void PutU32(uint32_t v) { PutBytes(&v, 4); }
  void PutU64(uint64_t v) { PutBytes(&v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  bool ok() const { return ok_; }

  /// Writes the accumulated checksum (not itself hashed).
  bool WriteChecksum() {
    uint64_t h = hash_.digest();
    return ok_ && std::fwrite(&h, 1, 8, file_) == 8;
  }

 private:
  FILE* file_;
  Fnv1a64 hash_;
  bool ok_ = true;
};

class V1Reader {
 public:
  explicit V1Reader(FILE* file) : file_(file) {}

  bool GetBytes(void* data, size_t n) {
    if (!ok_) return false;
    if (std::fread(data, 1, n, file_) != n) {
      ok_ = false;
      return false;
    }
    hash_.Update(data, n);
    return true;
  }
  uint8_t GetU8() {
    uint8_t v = 0;
    GetBytes(&v, 1);
    return v;
  }
  uint16_t GetU16() {
    uint16_t v = 0;
    GetBytes(&v, 2);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetBytes(&v, 4);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetBytes(&v, 8);
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!ok_ || n > (1u << 28)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    GetBytes(s.data(), n);
    return s;
  }

  bool ok() const { return ok_; }

  /// Reads the trailing checksum (not hashed) and compares.
  bool VerifyChecksum() {
    uint64_t expected = hash_.digest();
    uint64_t stored = 0;
    if (!ok_ || std::fread(&stored, 1, 8, file_) != 8) return false;
    return stored == expected;
  }

 private:
  FILE* file_;
  Fnv1a64 hash_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

void V1WriteEvent(V1Writer* w, const Event& e) {
  w->PutI64(e.start_ts);
  w->PutI64(e.end_ts);
  w->PutU64(e.amount);
  w->PutU32(e.subject);
  w->PutU32(e.object);
  w->PutU32(e.agent_id);
  w->PutU32(e.merge_count);
  w->PutU8(static_cast<uint8_t>(e.op));
  w->PutU8(static_cast<uint8_t>(e.object_type));
}

Event V1ReadEvent(V1Reader* r) {
  Event e;
  e.start_ts = r->GetI64();
  e.end_ts = r->GetI64();
  e.amount = r->GetU64();
  e.subject = r->GetU32();
  e.object = r->GetU32();
  e.agent_id = r->GetU32();
  e.merge_count = r->GetU32();
  e.op = static_cast<OpType>(r->GetU8());
  e.object_type = static_cast<EntityType>(r->GetU8());
  return e;
}

Result<AuditDatabase> LoadSnapshotV1(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  V1Reader r(file.get());
  if (r.GetU64() != kV1Magic) {
    return Status::Corruption("'" + path + "' is not an AIQL snapshot");
  }
  uint32_t version = r.GetU32();
  if (version != kV1Version) {
    return Status::Corruption("snapshot version " + std::to_string(version) +
                              " unsupported (expected " +
                              std::to_string(kV1Version) + ")");
  }
  StorageOptions opt;
  opt.partition_duration = r.GetI64();
  opt.dedup_window = r.GetI64();
  opt.enable_partitioning = r.GetU8() != 0;
  opt.batch_commit_size = r.GetU64();
  if (!r.ok()) return Status::Corruption("snapshot header truncated");

  AuditDatabase db(opt);
  EntityStore* es = db.mutable_entities();

  uint64_t num_procs = r.GetU64();
  for (uint64_t i = 0; i < num_procs && r.ok(); ++i) {
    ProcessRef ref;
    ref.agent_id = r.GetU32();
    ref.pid = r.GetU32();
    ref.exe_name = r.GetString();
    ref.user = r.GetString();
    es->InternProcess(ref);
  }
  uint64_t num_files = r.GetU64();
  for (uint64_t i = 0; i < num_files && r.ok(); ++i) {
    FileRef ref;
    ref.agent_id = r.GetU32();
    ref.path = r.GetString();
    es->InternFile(ref);
  }
  uint64_t num_nets = r.GetU64();
  for (uint64_t i = 0; i < num_nets && r.ok(); ++i) {
    NetworkRef ref;
    ref.agent_id = r.GetU32();
    ref.src_ip = r.GetString();
    ref.dst_ip = r.GetString();
    ref.src_port = r.GetU16();
    ref.dst_port = r.GetU16();
    ref.protocol = r.GetString();
    es->InternNetwork(ref);
  }

  uint64_t num_partitions = r.GetU64();
  for (uint64_t i = 0; i < num_partitions && r.ok(); ++i) {
    int64_t bucket = r.GetI64();
    AgentId agent = r.GetU32();
    uint64_t count = r.GetU64();
    EventPartition* partition = db.GetOrCreatePartition(bucket, agent);
    partition->mutable_events()->reserve(count);
    for (uint64_t j = 0; j < count && r.ok(); ++j) {
      partition->mutable_events()->push_back(V1ReadEvent(&r));
    }
  }
  if (!r.ok()) return Status::Corruption("snapshot body truncated");
  if (!r.VerifyChecksum()) {
    return Status::Corruption("snapshot checksum mismatch in '" + path + "'");
  }
  db.RestoreSealedState();
  return db;
}

}  // namespace

// =============================================================================
// public save paths
// =============================================================================

Status SaveSnapshotToSink(const AuditDatabase& db, SnapshotSink* sink) {
  if (!db.sealed()) {
    return Status::InvalidArgument("cannot snapshot an unsealed database");
  }

  std::string header;
  PutFixed64(&header, kV2Magic);
  PutFixed32(&header, kV2Version);
  AIQL_RETURN_IF_ERROR(sink->Append(header.data(), header.size()));
  uint64_t offset = header.size();

  std::string footer;
  EncodeOptions(&footer, db.options());
  EncodeStats(&footer, db.stats());

  std::string segment;
  EncodeMetaSegment(db, &segment);
  PutVarint64(&footer, offset);
  PutVarint64(&footer, segment.size());
  PutVarint64(&footer, Checksum64(segment));
  AIQL_RETURN_IF_ERROR(sink->Append(segment.data(), segment.size()));
  offset += segment.size();

  PutVarint64(&footer, db.partitions().size());
  for (const auto& [key, partition] : db.partitions()) {
    segment.clear();
    EncodePartitionSegment(*partition, &segment);
    PutVarintSigned(&footer, std::get<0>(key));
    PutVarint64(&footer, std::get<1>(key));
    PutVarint64(&footer, std::get<2>(key));
    PutVarint64(&footer, offset);
    PutVarint64(&footer, segment.size());
    PutVarint64(&footer, Checksum64(segment));
    PutVarint64(&footer, partition->size());
    PutVarint64(&footer, partition->raw_event_count());
    PutVarintSigned(&footer, partition->min_ts());
    PutVarintSigned(&footer, partition->max_ts());
    for (int op = 0; op < kNumOpTypes; ++op) {
      PutVarint64(&footer, partition->OpCount(static_cast<OpType>(op)));
    }
    AIQL_RETURN_IF_ERROR(sink->Append(segment.data(), segment.size()));
    offset += segment.size();
  }

  AIQL_RETURN_IF_ERROR(sink->Append(footer.data(), footer.size()));
  std::string trailer;
  PutFixed64(&trailer, offset);
  PutFixed64(&trailer, Checksum64(footer));
  PutFixed64(&trailer, kV2Magic);
  AIQL_RETURN_IF_ERROR(sink->Append(trailer.data(), trailer.size()));

  AIQL_RETURN_IF_ERROR(sink->Sync());
  return sink->Close();
}

Status SaveSnapshot(const AuditDatabase& db, const std::string& path) {
  std::string tmp_path = path + ".tmp";
  FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + tmp_path + "' for writing");
  }
  FileSnapshotSink sink(file, tmp_path);
  Status status = SaveSnapshotToSink(db, &sink);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot move snapshot into place at '" + path +
                           "'");
  }
#if !defined(_WIN32)
  // The rename itself must reach the journal, or a power loss can undo an
  // already-reported-durable save.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory '" + dir +
                           "' to sync snapshot rename");
  }
  int rc = fsync(dir_fd);
  close(dir_fd);
  if (rc != 0) {
    return Status::IOError("fsync of directory '" + dir + "' failed");
  }
#endif
  return Status::OK();
}

Status SaveSnapshotV1(const AuditDatabase& db, const std::string& path) {
  if (!db.sealed()) {
    return Status::InvalidArgument("cannot snapshot an unsealed database");
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  V1Writer w(file.get());
  w.PutU64(kV1Magic);
  w.PutU32(kV1Version);

  const StorageOptions& opt = db.options();
  w.PutI64(opt.partition_duration);
  w.PutI64(opt.dedup_window);
  w.PutU8(opt.enable_partitioning ? 1 : 0);
  w.PutU64(opt.batch_commit_size);

  const EntityStore& es = db.entities();
  w.PutU64(es.processes().size());
  for (const ProcessEntity& p : es.processes()) {
    w.PutU32(p.agent_id);
    w.PutU32(p.pid);
    w.PutString(es.exe_names().Get(p.exe_name));
    w.PutString(es.users().Get(p.user));
  }
  w.PutU64(es.files().size());
  for (const FileEntity& f : es.files()) {
    w.PutU32(f.agent_id);
    w.PutString(es.paths().Get(f.path));
  }
  w.PutU64(es.networks().size());
  for (const NetworkEntity& n : es.networks()) {
    w.PutU32(n.agent_id);
    w.PutString(es.ips().Get(n.src_ip));
    w.PutString(es.ips().Get(n.dst_ip));
    w.PutU16(n.src_port);
    w.PutU16(n.dst_port);
    w.PutString(es.protocols().Get(n.protocol));
  }

  w.PutU64(db.partitions().size());
  for (const auto& [key, partition] : db.partitions()) {
    // Rollover partitions of the same (bucket, agent) are written as
    // separate runs and re-merged on load, so the format needs no seq.
    w.PutI64(std::get<0>(key));
    w.PutU32(std::get<1>(key));
    w.PutU64(partition->events().size());
    for (const Event& e : partition->events()) {
      V1WriteEvent(&w, e);
    }
  }
  if (!w.WriteChecksum()) {
    return Status::IOError("write failure while saving snapshot to '" + path +
                           "'");
  }
  // Same durability contract as the v2 path: flush/fsync/close failures are
  // errors, not success.
  FileSnapshotSink sink(file.release(), path);
  AIQL_RETURN_IF_ERROR(sink.Sync());
  return sink.Close();
}

// =============================================================================
// SnapshotStore
// =============================================================================

struct SnapshotStore::PartitionHandle {
  PartitionDirEntry entry;
  std::atomic<const EventPartition*> loaded{nullptr};
  std::unique_ptr<EventPartition> storage;  // guarded by load_mu_
};

SnapshotStore::~SnapshotStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }

  char header[kV2HeaderSize];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::Corruption("'" + path + "' is too short to be a snapshot");
  }
  uint64_t magic = GetFixed64(header);
  if (magic == kV1Magic) {
    return Status::InvalidArgument(
        "'" + path +
        "' is a v1 snapshot; open it with LoadSnapshot (full load)");
  }
  if (magic != kV2Magic) {
    return Status::Corruption("'" + path + "' is not an AIQL snapshot");
  }
  uint32_t version = GetFixed32(header + 8);
  if (version != kV2Version) {
    return Status::Corruption("snapshot format version " +
                              std::to_string(version) + " unsupported");
  }

  if (Seek64(file.get(), 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek in '" + path + "'");
  }
  int64_t file_size = Tell64(file.get());
  if (file_size < 0 ||
      static_cast<size_t>(file_size) < kV2HeaderSize + kV2TrailerSize) {
    return Status::Corruption("'" + path + "' is truncated");
  }

  char trailer[kV2TrailerSize];
  if (Seek64(file.get(), file_size - static_cast<int64_t>(kV2TrailerSize),
             SEEK_SET) != 0 ||
      std::fread(trailer, 1, sizeof(trailer), file.get()) !=
          sizeof(trailer)) {
    return Status::Corruption("cannot read snapshot trailer of '" + path +
                              "'");
  }
  uint64_t footer_offset = GetFixed64(trailer);
  uint64_t footer_checksum = GetFixed64(trailer + 8);
  if (GetFixed64(trailer + 16) != kV2Magic) {
    return Status::Corruption("snapshot trailer corrupt in '" + path +
                              "' (file truncated?)");
  }
  uint64_t trailer_offset =
      static_cast<uint64_t>(file_size) - kV2TrailerSize;
  if (footer_offset < kV2HeaderSize || footer_offset > trailer_offset) {
    return Status::Corruption("snapshot footer offset out of range in '" +
                              path + "'");
  }

  std::string footer_bytes(
      static_cast<size_t>(trailer_offset - footer_offset), '\0');
  if (Seek64(file.get(), static_cast<int64_t>(footer_offset), SEEK_SET) !=
          0 ||
      std::fread(footer_bytes.data(), 1, footer_bytes.size(), file.get()) !=
          footer_bytes.size()) {
    return Status::Corruption("cannot read snapshot footer of '" + path +
                              "'");
  }
  if (Checksum64(footer_bytes) != footer_checksum) {
    return Status::Corruption("snapshot footer checksum mismatch in '" +
                              path + "'");
  }

  FooterData footer;
  AIQL_RETURN_IF_ERROR(DecodeFooter(footer_bytes, footer_offset, &footer));

  std::string meta_bytes(static_cast<size_t>(footer.meta.length), '\0');
  if (Seek64(file.get(), static_cast<int64_t>(footer.meta.offset),
             SEEK_SET) != 0 ||
      std::fread(meta_bytes.data(), 1, meta_bytes.size(), file.get()) !=
          meta_bytes.size()) {
    return Status::IOError("cannot read snapshot META segment of '" + path +
                           "'");
  }
  AIQL_RETURN_IF_ERROR(Failpoint::HitBuffer(
      "snapshot.read.meta", meta_bytes.data(), meta_bytes.size()));
  if (Checksum64(meta_bytes) != footer.meta.checksum) {
    return Status::Corruption("snapshot META checksum mismatch in '" + path +
                              "'");
  }

  std::unique_ptr<SnapshotStore> store(new SnapshotStore());
  store->path_ = path;
  store->options_ = footer.options;
  store->stats_ = footer.stats;
  AIQL_RETURN_IF_ERROR(DecodeMetaSegment(meta_bytes, &store->entities_));

  store->handles_.reserve(footer.partitions.size());
  for (const PartitionDirEntry& entry : footer.partitions) {
    auto handle = std::make_unique<PartitionHandle>();
    handle->entry = entry;
    store->handles_.push_back(std::move(handle));
  }
  store->file_ = file.release();
  return store;
}

Result<const EventPartition*> SnapshotStore::Partition(size_t index) const {
  PartitionHandle& handle = *handles_[index];
  if (const EventPartition* loaded =
          handle.loaded.load(std::memory_order_acquire)) {
    return loaded;
  }
  std::lock_guard<std::mutex> lock(load_mu_);
  if (const EventPartition* loaded =
          handle.loaded.load(std::memory_order_relaxed)) {
    return loaded;
  }

  const PartitionDirEntry& entry = handle.entry;
  std::string bytes(static_cast<size_t>(entry.segment.length), '\0');
  if (Seek64(file_, static_cast<int64_t>(entry.segment.offset), SEEK_SET) !=
          0 ||
      std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("cannot read partition segment of '" + path_ +
                           "'");
  }
  // Chaos injection on the lazy-load read path: a corrupt action damages
  // `bytes` so the checksum below catches it exactly like real bit rot.
  AIQL_RETURN_IF_ERROR(Failpoint::HitBuffer("snapshot.read.partition",
                                            bytes.data(), bytes.size()));
  if (Checksum64(bytes) != entry.segment.checksum) {
    return Status::Corruption("partition segment checksum mismatch in '" +
                              path_ + "'");
  }
  auto partition = std::make_unique<EventPartition>();
  AIQL_RETURN_IF_ERROR(
      DecodePartitionSegment(bytes, entry, entities_, partition.get()));
  handle.storage = std::move(partition);
  handle.loaded.store(handle.storage.get(), std::memory_order_release);
  loaded_count_.fetch_add(1, std::memory_order_relaxed);
  return handle.storage.get();
}

Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
SnapshotStore::SelectPartitions(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents) const {
  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  for (size_t i = 0; i < handles_.size(); ++i) {
    const PartitionDirEntry& entry = handles_[i]->entry;
    if (!PartitionStatsSelected(range, agents, options_.enable_partitioning,
                                entry.agent, entry.min_ts, entry.max_ts,
                                entry.events)) {
      continue;
    }
    AIQL_ASSIGN_OR_RETURN(const EventPartition* partition, Partition(i));
    out.emplace_back(PartitionKey{entry.bucket, entry.agent}, partition);
  }
  return out;
}

ReadView SnapshotStore::OpenReadView() const {
  ReadView view;
  view.entities_ = &entities_;
  view.options_ = &options_;
  view.stats_ = stats_;
  view.visible_events_ = stats_.total_events;
  view.store_ = this;
  return view;
}

Status SnapshotStore::MaterializeAll() const {
  for (size_t i = 0; i < handles_.size(); ++i) {
    AIQL_RETURN_IF_ERROR(Partition(i).status());
  }
  return Status::OK();
}

Result<AuditDatabase> SnapshotStore::ToDatabase() && {
  AIQL_RETURN_IF_ERROR(MaterializeAll());
  AuditDatabase db(options_);
  *db.mutable_entities() = std::move(entities_);
  // Handles are in footer order, i.e. ascending (bucket, agent, seq), so
  // adoption reassigns the same seqs.
  for (auto& handle : handles_) {
    db.AdoptSealedPartition(handle->entry.bucket, handle->entry.agent,
                            std::move(handle->storage));
  }
  db.FinishRestore();
  return db;
}

// =============================================================================
// load dispatch
// =============================================================================

Result<AuditDatabase> LoadSnapshot(const std::string& path) {
  Result<std::unique_ptr<SnapshotStore>> store = SnapshotStore::Open(path);
  if (store.ok()) return std::move(**store).ToDatabase();
  // The lazy store reports v1 files as InvalidArgument; everything else
  // (missing file, corruption, version mismatch) propagates as-is.
  if (store.status().code() == StatusCode::kInvalidArgument) {
    return LoadSnapshotV1(path);
  }
  return store.status();
}

}  // namespace aiql
