#include "storage/partition.h"

#include <algorithm>

namespace aiql {

bool EventPartition::Append(const Event& event, Duration dedup_window) {
  return AppendWithExe(event, kInvalidStringId, dedup_window);
}

bool EventPartition::AppendWithExe(const Event& event, StringId subject_exe,
                                   Duration dedup_window) {
  raw_count_ += 1;
  if (dedup_window > 0) {
    MergeKey key{event.subject, event.object, event.op, event.object_type};
    auto it = merge_tail_.find(key);
    if (it != merge_tail_.end()) {
      Event& tail = events_[it->second];
      if (event.start_ts >= tail.start_ts &&
          event.start_ts - tail.end_ts <= dedup_window) {
        tail.end_ts = std::max(tail.end_ts, event.end_ts);
        tail.amount += event.amount;
        tail.merge_count += event.merge_count;
        if (tail.end_ts > max_ts_) max_ts_ = tail.end_ts;
        return true;
      }
      it->second = events_.size();
      events_.push_back(event);
      AccountEvent(event, subject_exe);
      return false;
    }
    merge_tail_.emplace(key, events_.size());
  }
  events_.push_back(event);
  AccountEvent(event, subject_exe);
  return false;
}

void EventPartition::AccountEvent(const Event& event, StringId subject_exe) {
  if (event.start_ts < min_ts_) min_ts_ = event.start_ts;
  if (event.end_ts > max_ts_) max_ts_ = event.end_ts;
  op_counts_[static_cast<size_t>(event.op)] += 1;
  if (subject_exe != kInvalidStringId) {
    subject_exe_counts_[subject_exe] += 1;
  }
}

void EventPartition::Seal() {
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.start_ts != b.start_ts) return a.start_ts < b.start_ts;
              return a.end_ts < b.end_ts;
            });
  merge_tail_.clear();
  sealed_ = true;
}

uint64_t EventPartition::OpMaskCount(OpMask mask) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumOpTypes; ++i) {
    if (mask & (1u << i)) total += op_counts_[i];
  }
  return total;
}

uint64_t EventPartition::SubjectExeCount(StringId exe) const {
  auto it = subject_exe_counts_.find(exe);
  return it == subject_exe_counts_.end() ? 0 : it->second;
}

size_t EventPartition::LowerBound(Timestamp t) const {
  auto it = std::lower_bound(
      events_.begin(), events_.end(), t,
      [](const Event& e, Timestamp ts) { return e.start_ts < ts; });
  return static_cast<size_t>(it - events_.begin());
}

void EventPartition::RebuildStats(
    const std::vector<ProcessEntity>& processes) {
  op_counts_.fill(0);
  subject_exe_counts_.clear();
  min_ts_ = INT64_MAX;
  max_ts_ = INT64_MIN;
  raw_count_ = 0;
  for (const Event& event : events_) {
    raw_count_ += event.merge_count;
    StringId exe = event.subject < processes.size()
                       ? processes[event.subject].exe_name
                       : kInvalidStringId;
    AccountEvent(event, exe);
  }
}

}  // namespace aiql
