#include "storage/partition.h"

#include <algorithm>

namespace aiql {

bool EventPartition::Append(const Event& event, Duration dedup_window) {
  return AppendWithExe(event, kInvalidStringId, dedup_window);
}

bool EventPartition::AppendWithExe(const Event& event, StringId subject_exe,
                                   Duration dedup_window) {
  raw_count_ += 1;
  if (dedup_window > 0) {
    MergeKey key{event.subject, event.object, event.op, event.object_type};
    auto it = merge_tail_.find(key);
    if (it != merge_tail_.end()) {
      Event& tail = events_[it->second];
      if (event.start_ts >= tail.start_ts &&
          event.start_ts - tail.end_ts <= dedup_window) {
        tail.end_ts = std::max(tail.end_ts, event.end_ts);
        tail.amount += event.amount;
        tail.merge_count += event.merge_count;
        if (tail.end_ts > max_ts_) max_ts_ = tail.end_ts;
        return true;
      }
      it->second = events_.size();
      events_.push_back(event);
      AccountEvent(event, subject_exe);
      return false;
    }
    merge_tail_.emplace(key, events_.size());
  }
  events_.push_back(event);
  AccountEvent(event, subject_exe);
  return false;
}

void EventPartition::AccountEvent(const Event& event, StringId subject_exe) {
  if (event.start_ts < min_ts_) min_ts_ = event.start_ts;
  if (event.end_ts > max_ts_) max_ts_ = event.end_ts;
  op_counts_[static_cast<size_t>(event.op)] += 1;
  if (subject_exe != kInvalidStringId) {
    subject_exe_counts_[subject_exe] += 1;
  }
}

void EventPartition::Seal() {
  if (TryBeginSeal()) FinishSeal();
}

bool EventPartition::TryBeginSeal() {
  uint8_t expected = kOpen;
  return seal_state_.compare_exchange_strong(expected, kSealing,
                                             std::memory_order_acq_rel);
}

void EventPartition::FinishSeal() {
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.start_ts != b.start_ts) return a.start_ts < b.start_ts;
              return a.end_ts < b.end_ts;
            });
  merge_tail_.clear();
  BuildSealArtifacts();
  seal_state_.store(kSealed, std::memory_order_release);
}

void EventColumns::Clear() {
  start_ts.clear();
  end_ts.clear();
  subject.clear();
  object.clear();
  agent_id.clear();
  amount.clear();
  op.clear();
  object_type.clear();
}

void EventColumns::Reserve(size_t n) {
  start_ts.reserve(n);
  end_ts.reserve(n);
  subject.reserve(n);
  object.reserve(n);
  agent_id.reserve(n);
  amount.reserve(n);
  op.reserve(n);
  object_type.reserve(n);
}

void EventColumns::PushBack(const Event& event) {
  start_ts.push_back(event.start_ts);
  end_ts.push_back(event.end_ts);
  subject.push_back(event.subject);
  object.push_back(event.object);
  agent_id.push_back(event.agent_id);
  amount.push_back(event.amount);
  op.push_back(event.op);
  object_type.push_back(event.object_type);
}

void EntityPostingIndex::Clear() {
  keys.clear();
  offsets.clear();
  indexes.clear();
}

std::pair<const uint32_t*, const uint32_t*> EntityPostingIndex::Lookup(
    uint64_t key) const {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return {nullptr, nullptr};
  size_t slot = static_cast<size_t>(it - keys.begin());
  return {indexes.data() + offsets[slot], indexes.data() + offsets[slot + 1]};
}

namespace {

/// Builds a CSR index from per-event keys: sort (key, event index) pairs —
/// ties keep ascending event index, so each group stays time-sorted — then
/// split into groups.
void BuildEntityIndex(const std::vector<uint64_t>& event_keys,
                      EntityPostingIndex* index) {
  index->Clear();
  const size_t n = event_keys.size();
  if (n == 0) return;
  std::vector<std::pair<uint64_t, uint32_t>> kv;
  kv.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    kv.emplace_back(event_keys[i], static_cast<uint32_t>(i));
  }
  std::sort(kv.begin(), kv.end());
  index->indexes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || kv[i].first != kv[i - 1].first) {
      index->keys.push_back(kv[i].first);
      index->offsets.push_back(static_cast<uint32_t>(i));
    }
    index->indexes.push_back(kv[i].second);
  }
  index->offsets.push_back(static_cast<uint32_t>(n));
}

}  // namespace

void EventPartition::BuildSealArtifacts() {
  columns_.Clear();
  columns_.Reserve(events_.size());
  for (OpPostingList& list : op_postings_) {
    list.indexes.clear();
    list.min_start_ts = INT64_MAX;
    list.max_start_ts = INT64_MIN;
  }
  for (size_t i = 0; i < op_postings_.size(); ++i) {
    op_postings_[i].indexes.reserve(op_counts_[i]);
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& event = events_[i];
    columns_.PushBack(event);
    OpPostingList& list = op_postings_[static_cast<size_t>(event.op)];
    list.indexes.push_back(static_cast<uint32_t>(i));
    if (event.start_ts < list.min_start_ts) list.min_start_ts = event.start_ts;
    if (event.start_ts > list.max_start_ts) list.max_start_ts = event.start_ts;
  }

  // Reverse entity indexes (per-subject / per-object event postings) for
  // provenance frontier expansion.
  std::vector<uint64_t> keys(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) keys[i] = events_[i].subject;
  BuildEntityIndex(keys, &subject_index_);
  for (size_t i = 0; i < events_.size(); ++i) {
    keys[i] = ObjectKey(events_[i].object_type, events_[i].object);
  }
  BuildEntityIndex(keys, &object_index_);
}

std::pair<size_t, size_t> EventPartition::PostingRange(
    OpType op, const TimeRange& range) const {
  const OpPostingList& list = op_postings_[static_cast<size_t>(op)];
  if (list.empty() || list.min_start_ts >= range.end ||
      list.max_start_ts < range.start) {
    return {0, 0};
  }
  auto starts_before = [this](uint32_t index, Timestamp t) {
    return columns_.start_ts[index] < t;
  };
  auto lo = list.indexes.begin();
  auto hi = list.indexes.end();
  if (list.min_start_ts < range.start) {
    lo = std::lower_bound(lo, hi, range.start, starts_before);
  }
  if (list.max_start_ts >= range.end) {
    hi = std::lower_bound(lo, hi, range.end, starts_before);
  }
  return {static_cast<size_t>(lo - list.indexes.begin()),
          static_cast<size_t>(hi - list.indexes.begin())};
}

uint64_t EventPartition::OpCountInRange(OpMask mask,
                                        const TimeRange& range) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumOpTypes; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    auto [lo, hi] = PostingRange(static_cast<OpType>(i), range);
    total += hi - lo;
  }
  return total;
}

size_t EventPartition::MemoryFootprint() const {
  size_t bytes = events_.capacity() * sizeof(Event);
  bytes += columns_.start_ts.capacity() * sizeof(Timestamp);
  bytes += columns_.end_ts.capacity() * sizeof(Timestamp);
  bytes += columns_.subject.capacity() * sizeof(EntityId);
  bytes += columns_.object.capacity() * sizeof(EntityId);
  bytes += columns_.agent_id.capacity() * sizeof(AgentId);
  bytes += columns_.amount.capacity() * sizeof(uint64_t);
  bytes += columns_.op.capacity() * sizeof(OpType);
  bytes += columns_.object_type.capacity() * sizeof(EntityType);
  for (const OpPostingList& list : op_postings_) {
    bytes += list.indexes.capacity() * sizeof(uint32_t);
  }
  for (const EntityPostingIndex* index : {&subject_index_, &object_index_}) {
    bytes += index->keys.capacity() * sizeof(uint64_t);
    bytes += index->offsets.capacity() * sizeof(uint32_t);
    bytes += index->indexes.capacity() * sizeof(uint32_t);
  }
  // Hash maps: approximate per-entry overhead (node + bucket pointer).
  bytes += subject_exe_counts_.size() * (sizeof(StringId) + sizeof(uint64_t) +
                                         2 * sizeof(void*));
  bytes += merge_tail_.size() * (sizeof(MergeKey) + sizeof(size_t) +
                                 2 * sizeof(void*));
  return bytes;
}

uint64_t EventPartition::SubjectExeCount(StringId exe) const {
  auto it = subject_exe_counts_.find(exe);
  return it == subject_exe_counts_.end() ? 0 : it->second;
}

size_t EventPartition::LowerBound(Timestamp t) const {
  if (sealed()) {
    // Binary search the dense timestamp column: ~6x fewer bytes per probe
    // than striding over 48-byte Event rows.
    auto it = std::lower_bound(columns_.start_ts.begin(),
                               columns_.start_ts.end(), t);
    return static_cast<size_t>(it - columns_.start_ts.begin());
  }
  auto it = std::lower_bound(
      events_.begin(), events_.end(), t,
      [](const Event& e, Timestamp ts) { return e.start_ts < ts; });
  return static_cast<size_t>(it - events_.begin());
}

void EventPartition::RestoreSealed(
    std::vector<Event> events, std::array<OpPostingList, kNumOpTypes> postings,
    EntityPostingIndex subject_index, EntityPostingIndex object_index,
    std::unordered_map<StringId, uint64_t> subject_exe_counts,
    uint64_t raw_count) {
  events_ = std::move(events);
  op_postings_ = std::move(postings);
  subject_index_ = std::move(subject_index);
  object_index_ = std::move(object_index);
  subject_exe_counts_ = std::move(subject_exe_counts);
  raw_count_ = raw_count;

  columns_.Clear();
  columns_.Reserve(events_.size());
  min_ts_ = INT64_MAX;
  max_ts_ = INT64_MIN;
  for (const Event& event : events_) {
    columns_.PushBack(event);
    if (event.start_ts < min_ts_) min_ts_ = event.start_ts;
    if (event.end_ts > max_ts_) max_ts_ = event.end_ts;
  }
  for (size_t op = 0; op < op_postings_.size(); ++op) {
    OpPostingList& list = op_postings_[op];
    op_counts_[op] = list.indexes.size();
    // Posting indexes ascend in event-index (= start_ts) order, so the zone
    // map is just the first and last referenced start.
    if (!list.indexes.empty()) {
      list.min_start_ts = columns_.start_ts[list.indexes.front()];
      list.max_start_ts = columns_.start_ts[list.indexes.back()];
    } else {
      list.min_start_ts = INT64_MAX;
      list.max_start_ts = INT64_MIN;
    }
  }
  merge_tail_.clear();
  seal_state_.store(kSealed, std::memory_order_release);
}

void EventPartition::RebuildStats(
    const std::vector<ProcessEntity>& processes) {
  op_counts_.fill(0);
  subject_exe_counts_.clear();
  min_ts_ = INT64_MAX;
  max_ts_ = INT64_MIN;
  raw_count_ = 0;
  for (const Event& event : events_) {
    raw_count_ += event.merge_count;
    StringId exe = event.subject < processes.size()
                       ? processes[event.subject].exe_name
                       : kInvalidStringId;
    AccountEvent(event, exe);
  }
}

}  // namespace aiql
