// Shard map: the fleet-scale storage seam (ROADMAP item 1).
//
// The deployed system ingests audit streams from thousands of hosts; one
// AuditDatabase cannot hold the fleet. A ShardMap splits the fleet by agent
// (host) range: each shard owns a contiguous half-open agent range and is
// backed by either a live AuditDatabase or a lazily opened SnapshotStore.
// Events are routed by `EventRecord::agent_id`, so a shard holds exactly
// the (bucket, agent) partitions a single database would hold for its
// agents — sharding changes data placement, never partition contents.
//
// Entity ids are NOT comparable across shards: each shard's EntityStore
// interns independently, so the same logical entity (say a process an event
// on another host references as its object) gets different ids on different
// shards. Cross-shard operations — semi-join binding exchange, provenance
// frontier exchange, result merging — translate through full attribute
// tuples: MakeEntityRef reconstructs the attributes from one shard's store,
// EntityRefKey canonicalizes them into a shard-independent key, and
// FindEntity resolves them into another shard's id space (entity_store.h's
// Find* lookups, which never intern).

#ifndef AIQL_STORAGE_SHARD_MAP_H_
#define AIQL_STORAGE_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/data_model.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {

class TieredStore;

/// Half-open agent range [begin, end) owned by one shard.
struct ShardRange {
  AgentId begin = 0;
  AgentId end = 0;

  bool Contains(AgentId agent) const { return agent >= begin && agent < end; }
  bool operator==(const ShardRange&) const = default;
};

/// Splits [min_agent, max_agent] into `num_shards` contiguous ranges of
/// near-equal width (the leading ranges absorb the remainder). More shards
/// than agents leaves the trailing ranges empty — a legal degenerate
/// configuration the merge layer must handle.
std::vector<ShardRange> EvenAgentRanges(size_t num_shards, AgentId min_agent,
                                        AgentId max_agent);

/// Routes `records` into one bucket per range by `agent_id`. Fails when a
/// record's agent falls outside every range (it would silently vanish from
/// the fleet otherwise).
Result<std::vector<std::vector<EventRecord>>> RouteRecordsByAgent(
    const std::vector<ShardRange>& ranges,
    const std::vector<EventRecord>& records);

/// An immutable mapping from agent ranges to shard backends. Backends are
/// borrowed: every database / snapshot store must outlive the map (and any
/// engine over it). Thread-safe after construction (all accessors const).
class ShardMap {
 public:
  ShardMap() = default;

  /// Adds a live-database shard owning `range`. Fails on an empty range or
  /// one overlapping an existing shard.
  Status AddShard(const AuditDatabase* db, ShardRange range);
  /// Adds a snapshot-backed shard owning `range`.
  Status AddShard(const SnapshotStore* snapshot, ShardRange range);
  /// Adds a tiered-retention shard owning `range` (hot + cold partitions,
  /// memory-budgeted cold cache; see storage/tiered.h).
  Status AddShard(const TieredStore* tiered, ShardRange range);

  size_t num_shards() const { return shards_.size(); }
  const ShardRange& range(size_t shard) const { return shards_[shard].range; }
  bool shard_is_snapshot(size_t shard) const {
    return shards_[shard].snapshot != nullptr;
  }
  bool shard_is_tiered(size_t shard) const {
    return shards_[shard].tiered != nullptr;
  }

  /// Splits one fleet-wide cold-cache byte budget evenly across the shards
  /// that own a memory-budgeted cache (tiered shards, plus snapshot shards
  /// with an attached cache). Shards without a cache are unaffected; 0
  /// lifts every per-shard budget. Returns the number of shards budgeted.
  size_t SetMemoryBudget(size_t total_bytes) const;

  /// Shard owning `agent`, or -1 when no range contains it.
  int ShardForAgent(AgentId agent) const;

  /// One consistent ReadView per shard, in shard order. Each shard's view
  /// is taken atomically against that shard (a db-backed view holds the
  /// shard's state lock shared for its lifetime, so ingestion on that shard
  /// keeps buffering and commits apply after the view closes); cross-shard
  /// consistency is bounded-staleness, exactly like successive queries
  /// against one streaming database.
  std::vector<ReadView> OpenReadViews() const;

  /// Entity store of one shard (for root resolution and rendering).
  const EntityStore& entities(size_t shard) const;

  /// Events stored across all shards (sum of per-shard statistics).
  uint64_t TotalEvents() const;

 private:
  struct Shard {
    const AuditDatabase* db = nullptr;
    const SnapshotStore* snapshot = nullptr;
    const TieredStore* tiered = nullptr;
    ShardRange range;
  };

  Status AddShardImpl(Shard shard);

  std::vector<Shard> shards_;
};

// ---------------------------------------------------------------------------
// Cross-shard entity translation.
// ---------------------------------------------------------------------------

/// Reconstructs the full attribute tuple of entity (type, id) from `store`.
/// The returned ObjectRef is shard-independent: interning it elsewhere (or
/// passing it to FindEntity) names the same logical entity.
ObjectRef MakeEntityRef(const EntityStore& store, EntityType type,
                        EntityId id);

/// Canonical shard-independent key of an entity reference — equal keys name
/// the same logical entity regardless of which shard produced the ref.
std::string EntityRefKey(const ObjectRef& ref);

/// Resolves `ref` in `store`'s id space without interning;
/// kInvalidEntityId when the store never saw the entity.
EntityId FindEntity(const EntityStore& store, const ObjectRef& ref);

/// EntityType of an entity reference (forwards to ObjectRefType).
EntityType EntityRefType(const ObjectRef& ref);

/// Reconstructs the raw ingestion record of a stored event using `store`
/// for the attribute strings. Re-ingesting the record into another store
/// reproduces the event up to entity ids (merge_count resets to 1; the
/// merged amount and time interval are preserved — no queryable attribute
/// is lost).
EventRecord RecordForEvent(const Event& event, const EntityStore& store);

}  // namespace aiql

#endif  // AIQL_STORAGE_SHARD_MAP_H_
