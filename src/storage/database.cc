#include "storage/database.h"

#include <algorithm>

#include "common/failpoint.h"
#include "storage/snapshot.h"

namespace aiql {

bool PartitionStatsSelected(const TimeRange& range,
                            const std::optional<std::vector<AgentId>>& agents,
                            bool partitioning_enabled, AgentId agent,
                            Timestamp min_ts, Timestamp max_ts,
                            uint64_t num_events) {
  if (agents.has_value() && partitioning_enabled) {
    bool found =
        std::find(agents->begin(), agents->end(), agent) != agents->end();
    if (!found) return false;
  }
  if (num_events == 0) return false;
  TimeRange span{min_ts, max_ts + 1};
  return range.Overlaps(span);
}

// --- ReadView ---------------------------------------------------------------

Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
ReadView::SelectPartitions(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents) const {
  if (tiered_ != nullptr) return TieredSelectPartitions(*this, range, agents);
  if (store_ != nullptr) {
    return store_->SelectPartitions(range, agents, pins_.get());
  }
  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  for (const auto& [key, partition] : partitions_) {
    if (!PartitionStatsSelected(range, agents, options_->enable_partitioning,
                                key.agent_id, partition->min_ts(),
                                partition->max_ts(), partition->size())) {
      continue;
    }
    out.emplace_back(key, partition);
  }
  return out;
}

// --- AuditDatabase ----------------------------------------------------------

AuditDatabase::AuditDatabase(StorageOptions options)
    : options_(options), sync_(std::make_unique<Sync>()) {
  if (options_.partition_duration <= 0) options_.partition_duration = kHour;
  if (options_.batch_commit_size == 0) options_.batch_commit_size = 1;
}

AuditDatabase::~AuditDatabase() {
  if (sync_ != nullptr) WaitForBackgroundSeals();
}

Status AuditDatabase::ValidateRecord(EventRecord* record) const {
  if (record->end_ts == 0) record->end_ts = record->start_ts;
  if (record->end_ts < record->start_ts) {
    return Status::InvalidArgument("event ends before it starts");
  }
  if (record->subject.exe_name.empty()) {
    return Status::InvalidArgument("event subject has no executable name");
  }
  return Status::OK();
}

Status AuditDatabase::Append(EventRecord record) {
  if (sealed()) {
    return Status::InvalidArgument("database is sealed");
  }
  AIQL_RETURN_IF_ERROR(ValidateRecord(&record));
  pending_.push_back(std::move(record));
  if (pending_.size() >= options_.batch_commit_size) return Flush();
  return Status::OK();
}

Status AuditDatabase::AppendBatch(std::vector<EventRecord> records) {
  if (sealed()) {
    return Status::InvalidArgument("database is sealed");
  }
  // All-or-nothing: validate the whole batch before buffering anything, so
  // a malformed record mid-batch leaves the database unchanged.
  for (EventRecord& record : records) {
    AIQL_RETURN_IF_ERROR(ValidateRecord(&record));
  }
  pending_.reserve(pending_.size() + records.size());
  for (EventRecord& record : records) {
    pending_.push_back(std::move(record));
  }
  if (pending_.size() >= options_.batch_commit_size) return Flush();
  return Status::OK();
}

Status AuditDatabase::Flush() {
  if (pending_.empty()) return Status::OK();
  std::vector<EventRecord> batch;
  batch.swap(pending_);
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  Status first_error;
  for (const EventRecord& record : batch) {
    // Records were validated in Append; a commit failure here is an
    // invariant violation — propagate it instead of discarding it.
    Status status = CommitRecordLocked(record);
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

Status AuditDatabase::CommitRecordLocked(const EventRecord& record) {
  EntityId subject = entities_.InternProcess(record.subject);
  auto [object_type, object] = entities_.InternObject(record.object);

  Event event;
  event.start_ts = record.start_ts;
  event.end_ts = record.end_ts;
  event.amount = record.amount;
  event.subject = subject;
  event.object = object;
  event.agent_id = record.agent_id;
  event.merge_count = 1;
  event.op = record.op;
  event.object_type = object_type;

  int64_t bucket = 0;
  AgentId agent = 0;
  if (options_.enable_partitioning) {
    bucket = record.start_ts / options_.partition_duration;
    if (record.start_ts < 0 &&
        record.start_ts % options_.partition_duration != 0) {
      bucket -= 1;  // floor division for negative timestamps
    }
    agent = record.agent_id;
    // Bucket rotation: once this agent's stream moves into a later bucket,
    // its older open partitions can no longer grow — seal them.
    auto [clock_it, first_seen] = agent_clock_.try_emplace(agent, bucket);
    if (!first_seen && bucket > clock_it->second) {
      RotateAgentLocked(agent, bucket);
      clock_it->second = bucket;
    }
  }
  EventPartition* partition = GetOrCreatePartitionLocked(bucket, agent);
  StringId exe = entities_.processes()[subject].exe_name;
  bool merged = partition->AppendWithExe(event, exe, options_.dedup_window);

  stats_.raw_events += 1;
  if (!merged) {
    stats_.total_events += 1;
    stats_.op_counts[static_cast<size_t>(event.op)] += 1;
  }
  if (event.start_ts < stats_.min_ts) stats_.min_ts = event.start_ts;
  if (event.end_ts > stats_.max_ts) stats_.max_ts = event.end_ts;

  if (options_.max_partition_events != 0 &&
      partition->size() >= options_.max_partition_events) {
    CloseAndSealLocked(std::make_pair(bucket, agent));
  }
  return Status::OK();
}

EventPartition* AuditDatabase::GetOrCreatePartition(int64_t bucket,
                                                    AgentId agent) {
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  return GetOrCreatePartitionLocked(bucket, agent);
}

EventPartition* AuditDatabase::GetOrCreatePartitionLocked(int64_t bucket,
                                                          AgentId agent) {
  auto open_key = std::make_pair(bucket, agent);
  auto open_it = open_.find(open_key);
  if (open_it != open_.end()) return open_it->second.second;

  // A rollover (size threshold) or a late arrival into an already-rotated
  // bucket continues in a fresh partition of the same (bucket, agent): the
  // next free seq after the existing ones.
  uint32_t seq = 0;
  auto hint = partitions_.upper_bound(PartitionMapKey{bucket, agent, UINT32_MAX});
  if (hint != partitions_.begin()) {
    const PartitionMapKey& prev = std::prev(hint)->first;
    if (std::get<0>(prev) == bucket && std::get<1>(prev) == agent) {
      seq = std::get<2>(prev) + 1;
    }
  }
  auto it = partitions_.emplace_hint(hint, PartitionMapKey{bucket, agent, seq},
                                     std::make_unique<EventPartition>());
  stats_.total_partitions += 1;
  EventPartition* partition = it->second.get();
  open_.emplace(open_key, std::make_pair(seq, partition));
  return partition;
}

void AuditDatabase::CloseAndSealLocked(std::pair<int64_t, AgentId> key) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  EventPartition* partition = it->second.second;
  open_.erase(it);
  if (!partition->TryBeginSeal()) return;  // already handed off
  stats_.partitions_sealed += 1;
  if (options_.seal_pool != nullptr) {
    {
      std::lock_guard<std::mutex> seal_lock(sync_->seal_mu);
      sync_->seals_in_flight += 1;
    }
    // The task runs without the state mutex: the partition is unreachable
    // for writes once closed, and readers ignore it until FinishSeal()
    // publishes the sealed flag. Sync outlives the task: the database's
    // destructor (and final Seal()) wait for seals_in_flight to drain.
    Sync* sync = sync_.get();
    options_.seal_pool->Submit([sync, partition] {
      partition->FinishSeal();
      // Notify while holding seal_mu: a waiter (final Seal, destructor) may
      // destroy the condition variable as soon as it observes zero seals in
      // flight, so the notification must complete before the lock releases.
      std::lock_guard<std::mutex> seal_lock(sync->seal_mu);
      sync->seals_in_flight -= 1;
      sync->seal_cv.notify_all();
    });
  } else {
    partition->FinishSeal();
  }
}

void AuditDatabase::RotateAgentLocked(AgentId agent, int64_t bucket) {
  std::vector<std::pair<int64_t, AgentId>> to_close;
  for (const auto& [key, open] : open_) {
    if (key.second == agent && key.first < bucket) to_close.push_back(key);
  }
  for (const auto& key : to_close) CloseAndSealLocked(key);
}

void AuditDatabase::WaitForBackgroundSeals() {
  std::unique_lock<std::mutex> lock(sync_->seal_mu);
  sync_->seal_cv.wait(lock, [&] { return sync_->seals_in_flight == 0; });
}

Status AuditDatabase::Seal() {
  AIQL_RETURN_IF_ERROR(Failpoint::Hit("db.seal"));
  Status status = Flush();
  {
    std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
    open_.clear();
    agent_clock_.clear();
    sync_->finalized.store(true, std::memory_order_release);
  }
  WaitForBackgroundSeals();
  // The map can no longer change (finalized; no commits, no rotations), so
  // the remaining unsealed partitions can be sealed without the state
  // mutex; concurrent views skip them until their sealed flag publishes.
  uint64_t newly_sealed = 0;
  for (auto& [key, partition] : partitions_) {
    if (partition->TryBeginSeal()) {
      partition->FinishSeal();
      newly_sealed += 1;
    }
  }
  if (newly_sealed > 0) {
    std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
    stats_.partitions_sealed += newly_sealed;
  }
  return status;
}

void AuditDatabase::RestoreSealedState() {
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  stats_ = DatabaseStats{};
  stats_.total_partitions = partitions_.size();
  stats_.partitions_sealed = partitions_.size();
  for (auto& [key, partition] : partitions_) {
    partition->RebuildStats(entities_.processes());
    partition->Seal();
    stats_.total_events += partition->size();
    stats_.raw_events += partition->raw_event_count();
    for (int op = 0; op < kNumOpTypes; ++op) {
      stats_.op_counts[op] += partition->OpCount(static_cast<OpType>(op));
    }
    if (partition->size() > 0) {
      stats_.min_ts = std::min(stats_.min_ts, partition->min_ts());
      stats_.max_ts = std::max(stats_.max_ts, partition->max_ts());
    }
  }
  open_.clear();
  agent_clock_.clear();
  sync_->finalized.store(true, std::memory_order_release);
}

void AuditDatabase::AdoptSealedPartition(
    int64_t bucket, AgentId agent, std::unique_ptr<EventPartition> partition) {
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  uint32_t seq = 0;
  auto hint =
      partitions_.upper_bound(PartitionMapKey{bucket, agent, UINT32_MAX});
  if (hint != partitions_.begin()) {
    const PartitionMapKey& prev = std::prev(hint)->first;
    if (std::get<0>(prev) == bucket && std::get<1>(prev) == agent) {
      seq = std::get<2>(prev) + 1;
    }
  }
  partitions_.emplace_hint(hint, PartitionMapKey{bucket, agent, seq},
                           std::move(partition));
}

void AuditDatabase::FinishRestore() {
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  stats_ = DatabaseStats{};
  stats_.total_partitions = partitions_.size();
  stats_.partitions_sealed = partitions_.size();
  for (const auto& [key, partition] : partitions_) {
    stats_.total_events += partition->size();
    stats_.raw_events += partition->raw_event_count();
    for (int op = 0; op < kNumOpTypes; ++op) {
      stats_.op_counts[op] += partition->OpCount(static_cast<OpType>(op));
    }
    if (partition->size() > 0) {
      stats_.min_ts = std::min(stats_.min_ts, partition->min_ts());
      stats_.max_ts = std::max(stats_.max_ts, partition->max_ts());
    }
  }
  open_.clear();
  agent_clock_.clear();
  sync_->finalized.store(true, std::memory_order_release);
}

std::vector<std::pair<PartitionMapKey, const EventPartition*>>
AuditDatabase::ListSealedPartitions() const {
  std::shared_lock<std::shared_mutex> lock(sync_->state_mu);
  std::vector<std::pair<PartitionMapKey, const EventPartition*>> out;
  out.reserve(partitions_.size());
  for (const auto& [key, partition] : partitions_) {
    if (!partition->sealed()) continue;
    out.emplace_back(key, partition.get());
  }
  return out;
}

void AuditDatabase::ExtractSealedPartitions(
    const std::vector<PartitionMapKey>& keys,
    const std::function<void(const PartitionMapKey&,
                             std::unique_ptr<EventPartition>)>& sink) {
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  for (const PartitionMapKey& key : keys) {
    auto it = partitions_.find(key);
    if (it == partitions_.end() || !it->second->sealed()) continue;
    std::unique_ptr<EventPartition> partition = std::move(it->second);
    partitions_.erase(it);
    sink(key, std::move(partition));
  }
}

Status AuditDatabase::ReplaceSealedPartitions(
    const std::vector<PartitionMapKey>& old_keys,
    std::unique_ptr<EventPartition> merged) {
  if (old_keys.empty() || merged == nullptr || !merged->sealed()) {
    return Status::InvalidArgument("merge replacement needs sealed input");
  }
  std::unique_lock<std::shared_mutex> lock(sync_->state_mu);
  uint32_t lowest_seq = UINT32_MAX;
  for (const PartitionMapKey& key : old_keys) {
    if (std::get<0>(key) != std::get<0>(old_keys[0]) ||
        std::get<1>(key) != std::get<1>(old_keys[0])) {
      return Status::InvalidArgument(
          "merge replacement spans multiple (bucket, agent) groups");
    }
    auto it = partitions_.find(key);
    if (it == partitions_.end() || !it->second->sealed()) {
      return Status::InvalidArgument(
          "merge replacement names a missing or unsealed partition");
    }
    lowest_seq = std::min(lowest_seq, std::get<2>(key));
  }
  for (const PartitionMapKey& key : old_keys) partitions_.erase(key);
  partitions_.emplace(PartitionMapKey{std::get<0>(old_keys[0]),
                                      std::get<1>(old_keys[0]), lowest_seq},
                      std::move(merged));
  return Status::OK();
}

ReadView AuditDatabase::OpenReadView() const {
  ReadView view;
  view.lock_ = std::shared_lock<std::shared_mutex>(sync_->state_mu);
  view.entities_ = &entities_;
  view.options_ = &options_;
  view.stats_ = stats_;
  view.partitions_.reserve(partitions_.size());
  for (const auto& [key, partition] : partitions_) {
    if (!partition->sealed()) continue;
    view.partitions_.emplace_back(
        PartitionKey{std::get<0>(key), std::get<1>(key)}, partition.get());
    view.visible_events_ += partition->size();
  }
  return view;
}

DatabaseStats AuditDatabase::StatsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(sync_->state_mu);
  return stats_;
}

std::vector<std::pair<PartitionKey, const EventPartition*>>
AuditDatabase::SelectPartitions(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents) const {
  std::shared_lock<std::shared_mutex> lock(sync_->state_mu);
  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  for (const auto& [key, partition] : partitions_) {
    AgentId agent = std::get<1>(key);
    if (!PartitionStatsSelected(range, agents, options_.enable_partitioning,
                                agent, partition->min_ts(),
                                partition->max_ts(), partition->size())) {
      continue;
    }
    out.emplace_back(PartitionKey{std::get<0>(key), agent}, partition.get());
  }
  return out;
}

void AuditDatabase::ForEachPartition(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents,
    const std::function<void(const PartitionKey&, const EventPartition&)>& fn)
    const {
  for (const auto& [key, partition] : SelectPartitions(range, agents)) {
    fn(key, *partition);
  }
}

}  // namespace aiql
