#include "storage/database.h"

#include <algorithm>

namespace aiql {

AuditDatabase::AuditDatabase(StorageOptions options)
    : options_(options) {
  if (options_.partition_duration <= 0) options_.partition_duration = kHour;
  if (options_.batch_commit_size == 0) options_.batch_commit_size = 1;
}

Status AuditDatabase::Append(EventRecord record) {
  if (sealed_) {
    return Status::InvalidArgument("database is sealed");
  }
  if (record.end_ts == 0) record.end_ts = record.start_ts;
  if (record.end_ts < record.start_ts) {
    return Status::InvalidArgument("event ends before it starts");
  }
  if (record.subject.exe_name.empty()) {
    return Status::InvalidArgument("event subject has no executable name");
  }
  pending_.push_back(std::move(record));
  if (pending_.size() >= options_.batch_commit_size) Flush();
  return Status::OK();
}

Status AuditDatabase::AppendBatch(std::vector<EventRecord> records) {
  for (EventRecord& record : records) {
    AIQL_RETURN_IF_ERROR(Append(std::move(record)));
  }
  return Status::OK();
}

void AuditDatabase::Flush() {
  for (const EventRecord& record : pending_) {
    // Records were validated in Append; commit failures are impossible here.
    CommitRecord(record);
  }
  pending_.clear();
}

Status AuditDatabase::CommitRecord(const EventRecord& record) {
  EntityId subject = entities_.InternProcess(record.subject);
  auto [object_type, object] = entities_.InternObject(record.object);

  Event event;
  event.start_ts = record.start_ts;
  event.end_ts = record.end_ts;
  event.amount = record.amount;
  event.subject = subject;
  event.object = object;
  event.agent_id = record.agent_id;
  event.merge_count = 1;
  event.op = record.op;
  event.object_type = object_type;

  int64_t bucket = 0;
  AgentId agent = 0;
  if (options_.enable_partitioning) {
    bucket = record.start_ts / options_.partition_duration;
    if (record.start_ts < 0 &&
        record.start_ts % options_.partition_duration != 0) {
      bucket -= 1;  // floor division for negative timestamps
    }
    agent = record.agent_id;
  }
  EventPartition* partition = GetOrCreatePartition(bucket, agent);
  StringId exe = entities_.processes()[subject].exe_name;
  bool merged = partition->AppendWithExe(event, exe, options_.dedup_window);

  stats_.raw_events += 1;
  if (!merged) {
    stats_.total_events += 1;
    stats_.op_counts[static_cast<size_t>(event.op)] += 1;
  }
  if (event.start_ts < stats_.min_ts) stats_.min_ts = event.start_ts;
  if (event.end_ts > stats_.max_ts) stats_.max_ts = event.end_ts;
  return Status::OK();
}

EventPartition* AuditDatabase::GetOrCreatePartition(int64_t bucket,
                                                    AgentId agent) {
  auto key = std::make_pair(bucket, agent);
  auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    it = partitions_.emplace(key, std::make_unique<EventPartition>()).first;
    stats_.total_partitions += 1;
  }
  return it->second.get();
}

void AuditDatabase::Seal() {
  Flush();
  for (auto& [key, partition] : partitions_) {
    partition->Seal();
  }
  sealed_ = true;
}

void AuditDatabase::RestoreSealedState() {
  stats_ = DatabaseStats{};
  stats_.total_partitions = partitions_.size();
  for (auto& [key, partition] : partitions_) {
    partition->RebuildStats(entities_.processes());
    partition->Seal();
    stats_.total_events += partition->size();
    stats_.raw_events += partition->raw_event_count();
    for (int op = 0; op < kNumOpTypes; ++op) {
      stats_.op_counts[op] += partition->OpCount(static_cast<OpType>(op));
    }
    if (partition->size() > 0) {
      stats_.min_ts = std::min(stats_.min_ts, partition->min_ts());
      stats_.max_ts = std::max(stats_.max_ts, partition->max_ts());
    }
  }
  sealed_ = true;
}

std::vector<std::pair<PartitionKey, const EventPartition*>>
AuditDatabase::SelectPartitions(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents) const {
  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  for (const auto& [key, partition] : partitions_) {
    const auto& [bucket, agent] = key;
    if (agents.has_value() && options_.enable_partitioning) {
      bool found = std::find(agents->begin(), agents->end(), agent) !=
                   agents->end();
      if (!found) continue;
    }
    if (partition->size() == 0) continue;
    TimeRange span{partition->min_ts(), partition->max_ts() + 1};
    if (!range.Overlaps(span)) continue;
    out.emplace_back(PartitionKey{bucket, agent}, partition.get());
  }
  return out;
}

void AuditDatabase::ForEachPartition(
    const TimeRange& range,
    const std::optional<std::vector<AgentId>>& agents,
    const std::function<void(const PartitionKey&, const EventPartition&)>& fn)
    const {
  for (const auto& [key, partition] : SelectPartitions(range, agents)) {
    fn(key, *partition);
  }
}

}  // namespace aiql
