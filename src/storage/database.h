// AuditDatabase: the optimized domain-specific store (paper §2.1).
//
// Combines the deduplicated EntityStore with time x agent partitions, batch
// commit, and database-wide statistics. The write path streams: records
// keep appending into the active partition of their (time bucket, agent),
// partitions roll over and seal themselves when their bucket closes (or on
// a size threshold), optionally on a background ThreadPool. Queries consume
// a ReadView — a consistent snapshot of the currently-sealed partitions —
// so they execute concurrently with ingestion at bounded staleness. An
// explicit Seal() remains as "flush and seal everything" for batch
// workloads and snapshots.
//
// Threading model (single-writer / multi-reader):
//   * One ingest thread calls Append/AppendBatch/Flush/Seal.
//   * Any number of reader threads call OpenReadView() and use the view.
//   * Batch commits take the state mutex exclusively; a ReadView holds it
//     shared for the view's lifetime, which is what makes the EntityStore
//     safe to read while ingestion continues: interning only happens inside
//     a commit, and a commit waits for open views to close. Appends only
//     buffer, so the ingest thread stalls on queries only at batch-commit
//     boundaries, for as long as views opened before the commit stay open
//     (std::shared_mutex gives no writer priority, so a commit can wait for
//     several query generations under sustained many-reader load); query
//     visibility lags by the same plus one batch.
//   * Background sealing (sorting a closed partition) runs without the
//     state mutex: a closed partition is unreachable for writes, and
//     readers ignore it until its sealed flag (an acquire/release atomic)
//     is published.

#ifndef AIQL_STORAGE_DATABASE_H_
#define AIQL_STORAGE_DATABASE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "storage/data_model.h"
#include "storage/entity_store.h"
#include "storage/partition.h"

namespace aiql {

/// Tuning knobs for the store; defaults mirror the deployed system's
/// hourly time partitions and short merge window.
struct StorageOptions {
  /// Width of a time bucket. Events are partitioned by
  /// (start_ts / partition_duration, agent_id).
  Duration partition_duration = kHour;

  /// Merge window for event deduplication; 0 disables merging.
  Duration dedup_window = 3 * kSecond;

  /// If false, all events land in a single partition regardless of time or
  /// agent (ablation: storage without spatial/temporal partitioning).
  bool enable_partitioning = true;

  /// Records buffered before a batch commit to the partitions.
  size_t batch_commit_size = 8192;

  /// Events in an active partition that trigger an early rollover + seal
  /// before its time bucket closes; 0 disables size-based rollover. The
  /// overflow continues in a fresh partition of the same bucket.
  size_t max_partition_events = 0;

  /// Pool for background partition sealing; null seals inline during the
  /// committing batch. Must outlive the database's final Seal() (or its
  /// destruction). May be shared with the query engine's scan pool.
  ThreadPool* seal_pool = nullptr;
};

/// Aggregate counters describing the whole database.
struct DatabaseStats {
  uint64_t total_events = 0;      ///< stored (post-dedup) events
  uint64_t raw_events = 0;        ///< raw events ingested
  uint64_t total_partitions = 0;
  /// Partitions closed for appends and handed to sealing (sealed, or with
  /// the background seal still in flight).
  uint64_t partitions_sealed = 0;
  std::array<uint64_t, kNumOpTypes> op_counts{};
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
};

/// Partition-map key: one (bucket, agent) pair maps to several physical
/// partitions when a size-threshold rollover or a late (already-rotated
/// bucket) arrival splits a bucket; `seq` (third element) disambiguates,
/// ascending in creation order.
using PartitionMapKey = std::tuple<int64_t, AgentId, uint32_t>;

class AuditDatabase;
class SnapshotStore;
class TieredStore;
class ReadView;

/// Keeps cold-partition materializations alive for the lifetime of the
/// ReadView that selected them. A memory-budgeted PartitionCache may evict
/// a partition while a query is still scanning it; the query's pin (a
/// shared_ptr copy) keeps the bytes valid, so eviction reclaims budget
/// without invalidating in-flight reads. Thread-safe: parallel scan workers
/// may pin through one view concurrently.
struct PartitionPinSet {
  std::mutex mu;
  std::vector<std::shared_ptr<const EventPartition>> pins;

  void Add(std::shared_ptr<const EventPartition> pin) {
    std::lock_guard<std::mutex> lock(mu);
    pins.push_back(std::move(pin));
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return pins.size();
  }
};

/// Selection over a tiered view's hot + cold partitions; defined in
/// storage/tiered.cc (the storage library links both translation units).
Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
TieredSelectPartitions(const ReadView& view, const TimeRange& range,
                       const std::optional<std::vector<AgentId>>& agents);

/// Shared partition-selection predicate of the batch, view, and snapshot
/// read paths, evaluated on partition statistics alone (so a lazily loaded
/// snapshot partition can be ruled out without materializing it).
bool PartitionStatsSelected(const TimeRange& range,
                            const std::optional<std::vector<AgentId>>& agents,
                            bool partitioning_enabled, AgentId agent,
                            Timestamp min_ts, Timestamp max_ts,
                            uint64_t num_events);

/// A consistent snapshot of the database's sealed partitions plus aggregate
/// statistics, opened via AuditDatabase::OpenReadView(). The view holds the
/// database's state mutex shared for its lifetime: partition pointers,
/// entity lookups, and statistics stay stable while the ingest thread keeps
/// buffering (commits wait until the view closes). Queries therefore see
/// every partition fully sealed — never a partially-sealed one — and
/// successive views observe monotonically non-decreasing event counts.
///
/// A view can also be backed by a SnapshotStore (a lazily opened v2
/// snapshot): partition selection then runs on the store's persisted
/// statistics and materializes only the partitions the query touches, which
/// is why SelectPartitions returns a Result — a corrupt or truncated
/// segment surfaces as a clean Status at selection time.
/// Move-only; cheap to open (one pointer copy per sealed partition).
class ReadView {
 public:
  ReadView() = default;
  ReadView(ReadView&&) = default;
  ReadView& operator=(ReadView&&) = default;

  const EntityStore& entities() const { return *entities_; }
  const StorageOptions& options() const { return *options_; }

  /// Database-wide counters at view-open time (includes events committed to
  /// partitions that are still active, i.e. not yet visible to scans).
  const DatabaseStats& stats() const { return stats_; }

  /// Events inside the view's sealed partitions — what scans can see.
  uint64_t visible_events() const { return visible_events_; }

  /// All sealed partitions, ordered by (bucket, agent, seq). Only populated
  /// for database-backed views; snapshot-backed views expose partitions
  /// through SelectPartitions so unqueried ones stay on disk.
  const std::vector<std::pair<PartitionKey, const EventPartition*>>&
  partitions() const {
    return partitions_;
  }

  /// Sealed partitions overlapping `range`, optionally restricted to
  /// `agents` (nullopt = all agents). Ordered by (bucket, agent). On a
  /// snapshot-backed view this materializes (and caches) exactly the
  /// selected partitions, and fails with IOError/Corruption if a segment
  /// cannot be read back intact.
  Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
  SelectPartitions(const TimeRange& range,
                   const std::optional<std::vector<AgentId>>& agents) const;

 private:
  friend class AuditDatabase;
  friend class SnapshotStore;
  friend class TieredStore;
  friend Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
  TieredSelectPartitions(const ReadView& view, const TimeRange& range,
                         const std::optional<std::vector<AgentId>>& agents);

  const EntityStore* entities_ = nullptr;
  const StorageOptions* options_ = nullptr;
  std::shared_lock<std::shared_mutex> lock_;
  std::vector<std::pair<PartitionKey, const EventPartition*>> partitions_;
  const SnapshotStore* store_ = nullptr;
  // Tiered backing: the owning store plus an immutable snapshot of its cold
  // directory, captured at view-open time so selection never races
  // background demotion/compaction/tombstoning.
  const TieredStore* tiered_ = nullptr;
  std::shared_ptr<const void> tiered_cold_;
  // Created at view open for snapshot/tiered-backed views; selection adds a
  // pin for each cold partition it materializes.
  mutable std::shared_ptr<PartitionPinSet> pins_;
  DatabaseStats stats_;
  uint64_t visible_events_ = 0;
};

/// The storage engine. Write path: Append/AppendBatch -> (rotation seals
/// closed partitions automatically) -> Seal() to flush and freeze
/// everything. Read path: OpenReadView() at any time; the raw
/// SelectPartitions / ForEachPartition / partitions() accessors remain for
/// batch consumers (snapshot, SQL/graph baselines) on a sealed or
/// quiescent database.
class AuditDatabase {
 public:
  explicit AuditDatabase(StorageOptions options = {});

  /// Waits for in-flight background seals.
  ~AuditDatabase();

  AuditDatabase(const AuditDatabase&) = delete;
  AuditDatabase& operator=(const AuditDatabase&) = delete;
  /// Moving is only valid while quiescent (no open views, no in-flight
  /// background seals, no concurrent writer).
  AuditDatabase(AuditDatabase&&) = default;
  AuditDatabase& operator=(AuditDatabase&&) = default;

  // --- write path (single writer thread) -----------------------------------

  /// Buffers one record; commits the buffer when it reaches
  /// batch_commit_size. Returns an error for malformed records (e.g.
  /// end before start) and after the final Seal(). Partitions whose time
  /// bucket the record stream has moved past (per agent) are sealed
  /// automatically during the commit.
  Status Append(EventRecord record);

  /// Buffers many records, all-or-nothing: every record is validated before
  /// any is buffered, so a malformed record mid-batch leaves the database
  /// unchanged.
  Status AppendBatch(std::vector<EventRecord> records);

  /// Commits any buffered records, propagating the first commit error.
  Status Flush();

  /// Flushes, seals every partition (waiting for background seals), and
  /// freezes the database: subsequent appends fail. Required before
  /// snapshot serialization.
  Status Seal();

  /// True once Seal() has frozen the database (streaming auto-sealing of
  /// individual partitions does not set this).
  bool sealed() const {
    return sync_->finalized.load(std::memory_order_acquire);
  }

  // --- read path -----------------------------------------------------------

  /// Opens a consistent snapshot of the sealed partitions + statistics.
  /// Safe to call from any thread, concurrently with ingestion.
  ReadView OpenReadView() const;

  /// Thread-safe copy of the current statistics.
  DatabaseStats StatsSnapshot() const;

  // --- batch read access (sealed or quiescent database) --------------------

  const EntityStore& entities() const { return entities_; }
  const StorageOptions& options() const { return options_; }
  const DatabaseStats& stats() const { return stats_; }

  /// Partitions overlapping `range`, optionally restricted to `agents`
  /// (nullopt = all agents), regardless of seal state. Ordered by
  /// (bucket, agent, seq). Streaming queries go through OpenReadView()
  /// instead.
  std::vector<std::pair<PartitionKey, const EventPartition*>> SelectPartitions(
      const TimeRange& range,
      const std::optional<std::vector<AgentId>>& agents) const;

  /// Convenience: applies `fn` to each selected partition.
  void ForEachPartition(
      const TimeRange& range,
      const std::optional<std::vector<AgentId>>& agents,
      const std::function<void(const PartitionKey&, const EventPartition&)>&
          fn) const;

  /// All partitions (snapshot serialization).
  const std::map<PartitionMapKey, std::unique_ptr<EventPartition>>&
  partitions() const {
    return partitions_;
  }

  /// Mutable access used by snapshot loading.
  EntityStore* mutable_entities() { return &entities_; }
  /// Returns the open partition of (bucket, agent), creating one if the
  /// previous partition of that pair was already sealed (rollover).
  EventPartition* GetOrCreatePartition(int64_t bucket, AgentId agent);
  void RestoreSealedState();

  /// Snapshot-v2 load hooks: AdoptSealedPartition installs an
  /// already-sealed partition (indexes and statistics intact) under
  /// (bucket, agent) at the next free seq; FinishRestore then aggregates
  /// database statistics from the partition statistics — no event is
  /// re-read — and freezes the database. Only valid while assembling a
  /// freshly constructed database.
  void AdoptSealedPartition(int64_t bucket, AgentId agent,
                            std::unique_ptr<EventPartition> partition);
  void FinishRestore();

  // --- tiered-retention maintenance (TieredStore) ---------------------------

  /// Directory of every fully sealed partition, under the state lock
  /// shared. The returned pointers stay valid until a maintenance call
  /// (ExtractSealedPartitions / ReplaceSealedPartitions) removes them;
  /// with a single maintenance thread that makes them stable between that
  /// thread's own calls.
  std::vector<std::pair<PartitionMapKey, const EventPartition*>>
  ListSealedPartitions() const;

  /// Removes the sealed partitions named by `keys` from the partition map,
  /// handing each to `sink` while the state lock is held exclusively — so
  /// no view can ever observe a partition both here and in a cold
  /// directory the sink publishes. Missing or unsealed keys are skipped.
  /// Aggregate statistics are intentionally NOT adjusted: they keep
  /// describing all data ever ingested, which is what tiered views report.
  void ExtractSealedPartitions(
      const std::vector<PartitionMapKey>& keys,
      const std::function<void(const PartitionMapKey&,
                               std::unique_ptr<EventPartition>)>& sink);

  /// Atomically replaces the sealed partitions `old_keys` — all of one
  /// (bucket, agent) — with `merged` (already sealed), installed at the
  /// lowest replaced seq. Merge compaction's commit step. Fails without
  /// side effects if any key is missing, unsealed, or from a different
  /// (bucket, agent).
  Status ReplaceSealedPartitions(const std::vector<PartitionMapKey>& old_keys,
                                 std::unique_ptr<EventPartition> merged);

 private:
  /// Cross-thread synchronization state; heap-allocated so the database
  /// stays movable (while quiescent) and background seal tasks can outlive
  /// a move.
  struct Sync {
    /// Guards partitions_, open_, agent_clock_, stats_, entities_.
    mutable std::shared_mutex state_mu;
    /// Guards seals_in_flight; signaled when a background seal finishes.
    std::mutex seal_mu;
    std::condition_variable seal_cv;
    size_t seals_in_flight = 0;
    std::atomic<bool> finalized{false};
  };

  /// Normalizes end_ts and validates; returns the error for bad records.
  Status ValidateRecord(EventRecord* record) const;
  /// Interns + appends one record. state_mu held exclusively.
  Status CommitRecordLocked(const EventRecord& record);
  /// Open-partition lookup/creation. state_mu held exclusively.
  EventPartition* GetOrCreatePartitionLocked(int64_t bucket, AgentId agent);
  /// Closes the open partition at `key` and seals it (background pool when
  /// configured, else inline). state_mu held exclusively.
  void CloseAndSealLocked(std::pair<int64_t, AgentId> key);
  /// Seals every partition `agent` has moved past `bucket`. state_mu held.
  void RotateAgentLocked(AgentId agent, int64_t bucket);
  /// Blocks until no background seal is in flight.
  void WaitForBackgroundSeals();

  StorageOptions options_;
  EntityStore entities_;
  // Ordered map gives deterministic partition iteration order.
  std::map<PartitionMapKey, std::unique_ptr<EventPartition>> partitions_;
  // The open (accepting appends) partition per (bucket, agent), with its
  // seq in the partition map. Entries leave this map when sealed.
  std::map<std::pair<int64_t, AgentId>,
           std::pair<uint32_t, EventPartition*>>
      open_;
  // Highest bucket seen per agent; a record beyond it rotates the agent's
  // older open partitions.
  std::map<AgentId, int64_t> agent_clock_;
  std::vector<EventRecord> pending_;  // writer-thread only
  DatabaseStats stats_;
  std::unique_ptr<Sync> sync_;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_DATABASE_H_
