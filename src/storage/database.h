// AuditDatabase: the optimized domain-specific store (paper §2.1).
//
// Combines the deduplicated EntityStore with time x agent partitions, batch
// commit, and database-wide statistics. After ingestion the database is
// sealed; queries then run against immutable state (safe for the engine's
// parallel partition scans).

#ifndef AIQL_STORAGE_DATABASE_H_
#define AIQL_STORAGE_DATABASE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/time_utils.h"
#include "storage/data_model.h"
#include "storage/entity_store.h"
#include "storage/partition.h"

namespace aiql {

/// Tuning knobs for the store; defaults mirror the deployed system's
/// hourly time partitions and short merge window.
struct StorageOptions {
  /// Width of a time bucket. Events are partitioned by
  /// (start_ts / partition_duration, agent_id).
  Duration partition_duration = kHour;

  /// Merge window for event deduplication; 0 disables merging.
  Duration dedup_window = 3 * kSecond;

  /// If false, all events land in a single partition regardless of time or
  /// agent (ablation: storage without spatial/temporal partitioning).
  bool enable_partitioning = true;

  /// Records buffered before a batch commit to the partitions.
  size_t batch_commit_size = 8192;
};

/// Aggregate counters describing the whole database.
struct DatabaseStats {
  uint64_t total_events = 0;      ///< stored (post-dedup) events
  uint64_t raw_events = 0;        ///< raw events ingested
  uint64_t total_partitions = 0;
  std::array<uint64_t, kNumOpTypes> op_counts{};
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
};

/// The storage engine. Write path: Append/AppendBatch -> Flush -> Seal.
/// Read path (after Seal): SelectPartitions / ForEachPartition + entities().
class AuditDatabase {
 public:
  explicit AuditDatabase(StorageOptions options = {});

  AuditDatabase(const AuditDatabase&) = delete;
  AuditDatabase& operator=(const AuditDatabase&) = delete;
  AuditDatabase(AuditDatabase&&) = default;
  AuditDatabase& operator=(AuditDatabase&&) = default;

  // --- write path ----------------------------------------------------------

  /// Buffers one record; commits the buffer when it reaches
  /// batch_commit_size. Returns an error for malformed records (e.g.
  /// end before start).
  Status Append(EventRecord record);

  /// Buffers many records.
  Status AppendBatch(std::vector<EventRecord> records);

  /// Commits any buffered records.
  void Flush();

  /// Flushes, sorts every partition, and freezes the database.
  void Seal();

  bool sealed() const { return sealed_; }

  // --- read path -----------------------------------------------------------

  const EntityStore& entities() const { return entities_; }
  const StorageOptions& options() const { return options_; }
  const DatabaseStats& stats() const { return stats_; }

  /// Partitions overlapping `range`, optionally restricted to `agents`
  /// (nullopt = all agents). Ordered by (bucket, agent).
  std::vector<std::pair<PartitionKey, const EventPartition*>> SelectPartitions(
      const TimeRange& range,
      const std::optional<std::vector<AgentId>>& agents) const;

  /// Convenience: applies `fn` to each selected partition.
  void ForEachPartition(
      const TimeRange& range,
      const std::optional<std::vector<AgentId>>& agents,
      const std::function<void(const PartitionKey&, const EventPartition&)>&
          fn) const;

  /// All partitions (snapshot serialization).
  const std::map<std::pair<int64_t, AgentId>,
                 std::unique_ptr<EventPartition>>&
  partitions() const {
    return partitions_;
  }

  /// Mutable access used by snapshot loading.
  EntityStore* mutable_entities() { return &entities_; }
  EventPartition* GetOrCreatePartition(int64_t bucket, AgentId agent);
  void RestoreSealedState();

 private:
  Status CommitRecord(const EventRecord& record);

  StorageOptions options_;
  EntityStore entities_;
  // Ordered map gives deterministic partition iteration order.
  std::map<std::pair<int64_t, AgentId>, std::unique_ptr<EventPartition>>
      partitions_;
  std::vector<EventRecord> pending_;
  DatabaseStats stats_;
  bool sealed_ = false;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_DATABASE_H_
