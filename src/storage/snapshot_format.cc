#include "storage/snapshot_format.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/varint.h"
#include "storage/entity_store.h"
#include "storage/partition.h"

namespace aiql {
namespace snapfmt {

// --- little-endian fixed-width helpers ---------------------------------------

void PutFixed32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

// --- cursor ------------------------------------------------------------------

uint64_t Cursor::U64() {
  uint64_t v = 0;
  const char* next = ok_ ? GetVarint64(p_, limit_, &v) : nullptr;
  if (next == nullptr) {
    ok_ = false;
    return 0;
  }
  p_ = next;
  return v;
}

int64_t Cursor::I64() {
  uint64_t raw = U64();
  return ZigZagDecode(raw);
}

uint8_t Cursor::Byte() {
  if (!ok_ || p_ >= limit_) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(*p_++);
}

std::string_view Cursor::Bytes(size_t n) {
  if (!ok_ || static_cast<size_t>(limit_ - p_) < n) {
    ok_ = false;
    return {};
  }
  std::string_view out(p_, n);
  p_ += n;
  return out;
}

// --- 64-bit-safe positioning -------------------------------------------------

int Seek64(FILE* file, int64_t offset, int whence) {
#if defined(_WIN32)
  return _fseeki64(file, offset, whence);
#else
  return fseeko(file, static_cast<off_t>(offset), whence);
#endif
}

int64_t Tell64(FILE* file) {
#if defined(_WIN32)
  return _ftelli64(file);
#else
  return static_cast<int64_t>(ftello(file));
#endif
}

// =============================================================================
// encoding
// =============================================================================

namespace {

void PutDictionary(std::string* out, const StringInterner& interner) {
  PutVarint64(out, interner.size());
  interner.ForEach([&](StringId, std::string_view text) {
    PutVarint64(out, text.size());
    out->append(text);
  });
}

void EncodeEntityIndex(std::string* out, const EntityPostingIndex& index) {
  PutVarint64(out, index.keys.size());
  uint64_t prev_key = 0;
  for (size_t k = 0; k < index.keys.size(); ++k) {
    PutVarint64(out, k == 0 ? index.keys[0] : index.keys[k] - prev_key);
    prev_key = index.keys[k];
    uint32_t begin = index.offsets[k];
    uint32_t end = index.offsets[k + 1];
    PutVarint64(out, end - begin);
    uint32_t prev_index = 0;
    for (uint32_t i = begin; i < end; ++i) {
      PutVarint64(out, i == begin ? index.indexes[i]
                                  : index.indexes[i] - prev_index);
      prev_index = index.indexes[i];
    }
  }
}

void EncodeOptions(std::string* out, const StorageOptions& options) {
  PutVarintSigned(out, options.partition_duration);
  PutVarintSigned(out, options.dedup_window);
  out->push_back(options.enable_partitioning ? 1 : 0);
  PutVarint64(out, options.batch_commit_size);
  PutVarint64(out, options.max_partition_events);
}

void EncodeStats(std::string* out, const DatabaseStats& stats) {
  PutVarint64(out, stats.total_events);
  PutVarint64(out, stats.raw_events);
  PutVarint64(out, stats.total_partitions);
  PutVarint64(out, stats.partitions_sealed);
  for (uint64_t count : stats.op_counts) PutVarint64(out, count);
  PutVarintSigned(out, stats.min_ts);
  PutVarintSigned(out, stats.max_ts);
}

void PutSegmentRef(std::string* out, const SegmentRef& ref) {
  PutVarint64(out, ref.offset);
  PutVarint64(out, ref.length);
  PutVarint64(out, ref.checksum);
}

}  // namespace

PartitionDirEntry MakeDirEntry(int64_t bucket, AgentId agent, uint32_t seq,
                               const SegmentRef& segment,
                               const EventPartition& partition) {
  PartitionDirEntry entry;
  entry.bucket = bucket;
  entry.agent = agent;
  entry.seq = seq;
  entry.segment = segment;
  entry.events = partition.size();
  entry.raw_events = partition.raw_event_count();
  entry.min_ts = partition.min_ts();
  entry.max_ts = partition.max_ts();
  for (int op = 0; op < kNumOpTypes; ++op) {
    entry.op_counts[op] = partition.OpCount(static_cast<OpType>(op));
  }
  return entry;
}

void EncodeHeader(std::string* out) {
  PutFixed64(out, kV2Magic);
  PutFixed32(out, kV2Version);
}

void EncodeMetaSegment(const EntityStore& es, std::string* out) {
  PutDictionary(out, es.exe_names());
  PutDictionary(out, es.users());
  PutDictionary(out, es.paths());
  PutDictionary(out, es.ips());
  PutDictionary(out, es.protocols());

  PutVarint64(out, es.processes().size());
  for (const ProcessEntity& p : es.processes()) {
    PutVarint64(out, p.agent_id);
    PutVarint64(out, p.pid);
    PutVarint64(out, p.exe_name);
    PutVarint64(out, p.user);
  }
  PutVarint64(out, es.files().size());
  for (const FileEntity& f : es.files()) {
    PutVarint64(out, f.agent_id);
    PutVarint64(out, f.path);
  }
  PutVarint64(out, es.networks().size());
  for (const NetworkEntity& n : es.networks()) {
    PutVarint64(out, n.agent_id);
    PutVarint64(out, n.src_ip);
    PutVarint64(out, n.dst_ip);
    PutVarint64(out, n.src_port);
    PutVarint64(out, n.dst_port);
    PutVarint64(out, n.protocol);
  }
}

void EncodePartitionSegment(const EventPartition& partition,
                            std::string* out) {
  const std::vector<Event>& events = partition.events();
  const size_t n = events.size();
  PutVarint64(out, n);

  // start_ts: first value zigzag, then non-negative deltas.
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      PutVarintSigned(out, events[i].start_ts);
    } else {
      PutVarint64(out,
                  static_cast<uint64_t>(events[i].start_ts) -
                      static_cast<uint64_t>(prev));
    }
    prev = events[i].start_ts;
  }
  // Durations (end - start >= 0 by ingest validation).
  for (const Event& e : events) {
    PutVarint64(out, static_cast<uint64_t>(e.end_ts) -
                         static_cast<uint64_t>(e.start_ts));
  }
  for (const Event& e : events) PutVarint64(out, e.subject);
  for (const Event& e : events) PutVarint64(out, e.object);
  // agent_id: RLE — constant within a partition under time x agent
  // partitioning, so this column is typically two varints.
  for (size_t i = 0; i < n;) {
    size_t run = i + 1;
    while (run < n && events[run].agent_id == events[i].agent_id) ++run;
    PutVarint64(out, events[i].agent_id);
    PutVarint64(out, run - i);
    i = run;
  }
  for (const Event& e : events) PutVarint64(out, e.amount);
  for (const Event& e : events) PutVarint64(out, e.merge_count);
  // object_type: RLE.
  for (size_t i = 0; i < n;) {
    size_t run = i + 1;
    while (run < n && events[run].object_type == events[i].object_type) ++run;
    out->push_back(static_cast<char>(events[i].object_type));
    PutVarint64(out, run - i);
    i = run;
  }

  // Posting lists (ascending event indexes, delta-encoded). Together they
  // cover every index exactly once, which also encodes the op column.
  for (int op = 0; op < kNumOpTypes; ++op) {
    const OpPostingList& list = partition.posting(static_cast<OpType>(op));
    PutVarint64(out, list.indexes.size());
    uint32_t prev_index = 0;
    for (size_t i = 0; i < list.indexes.size(); ++i) {
      PutVarint64(out, i == 0 ? list.indexes[0]
                              : list.indexes[i] - prev_index);
      prev_index = list.indexes[i];
    }
  }

  // Subject-exe statistics, sorted by exe id for deterministic bytes.
  std::vector<std::pair<StringId, uint64_t>> exe_counts(
      partition.subject_exe_counts().begin(),
      partition.subject_exe_counts().end());
  std::sort(exe_counts.begin(), exe_counts.end());
  PutVarint64(out, exe_counts.size());
  for (const auto& [exe, count] : exe_counts) {
    PutVarint64(out, exe);
    PutVarint64(out, count);
  }

  // Reverse entity indexes (v2 format version 3): CSR groups of ascending
  // event indexes keyed by strictly ascending entity keys — keys and
  // in-group indexes both delta-encode into small varints.
  EncodeEntityIndex(out, partition.subject_index());
  EncodeEntityIndex(out, partition.object_index());
}

void EncodeFooter(const FooterData& footer, std::string* out) {
  EncodeOptions(out, footer.options);
  EncodeStats(out, footer.stats);
  PutSegmentRef(out, footer.meta);
  PutVarint64(out, footer.partitions.size());
  for (const PartitionDirEntry& entry : footer.partitions) {
    PutVarintSigned(out, entry.bucket);
    PutVarint64(out, entry.agent);
    PutVarint64(out, entry.seq);
    PutSegmentRef(out, entry.segment);
    PutVarint64(out, entry.events);
    PutVarint64(out, entry.raw_events);
    PutVarintSigned(out, entry.min_ts);
    PutVarintSigned(out, entry.max_ts);
    for (uint64_t count : entry.op_counts) PutVarint64(out, count);
  }
}

void EncodeTrailer(uint64_t footer_offset, uint64_t footer_checksum,
                   std::string* out) {
  PutFixed64(out, footer_offset);
  PutFixed64(out, footer_checksum);
  PutFixed64(out, kV2Magic);
}

// =============================================================================
// decoding
// =============================================================================

namespace {

Status DecodeSegmentRef(Cursor* cur, uint64_t data_end, SegmentRef* ref) {
  ref->offset = cur->U64();
  ref->length = cur->U64();
  ref->checksum = cur->U64();
  if (!cur->ok()) return Status::Corruption("snapshot footer truncated");
  if (ref->offset < kV2HeaderSize || ref->length > data_end ||
      ref->offset > data_end - ref->length) {
    return Status::Corruption("snapshot segment outside the data area");
  }
  return Status::OK();
}

Result<std::vector<std::string>> DecodeDictionary(Cursor* cur) {
  uint64_t count = cur->U64();
  if (!cur->ok() || count > cur->remaining()) {
    return Status::Corruption("snapshot dictionary truncated");
  }
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = cur->U64();
    std::string_view text = cur->Bytes(static_cast<size_t>(len));
    if (!cur->ok()) {
      return Status::Corruption("snapshot dictionary truncated");
    }
    out.emplace_back(text);
  }
  return out;
}

/// Decodes one reverse entity index and revalidates its invariants against
/// the already-decoded events: keys strictly ascending, every group
/// non-empty with strictly ascending event indexes, every event covered
/// exactly once, and every listed event actually carrying the group's key.
/// `key_of` maps an event to its expected key (subject or object form).
template <typename KeyOf>
Status DecodeEntityIndex(Cursor* cur, const std::vector<Event>& events,
                         const KeyOf& key_of, const char* what,
                         EntityPostingIndex* index) {
  const size_t n = events.size();
  auto corrupt = [&] {
    return Status::Corruption(std::string("partition ") + what +
                              " index corrupt");
  };
  uint64_t num_keys = cur->U64();
  if (!cur->ok() || num_keys > n) return corrupt();
  index->keys.reserve(static_cast<size_t>(num_keys));
  index->offsets.reserve(static_cast<size_t>(num_keys) + 1);
  index->indexes.reserve(n);
  std::vector<uint8_t> seen(n, 0);
  uint64_t key = 0;
  uint64_t total = 0;
  for (uint64_t k = 0; k < num_keys; ++k) {
    uint64_t delta = cur->U64();
    if (!cur->ok() || (k > 0 && delta == 0)) return corrupt();
    key = k == 0 ? delta : key + delta;
    uint64_t count = cur->U64();
    if (!cur->ok() || count == 0 || count > n - total) return corrupt();
    index->keys.push_back(key);
    index->offsets.push_back(static_cast<uint32_t>(total));
    uint64_t event_index = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t d = cur->U64();
      if (!cur->ok() || (i > 0 && d == 0)) return corrupt();
      event_index = i == 0 ? d : event_index + d;
      if (event_index >= n || seen[event_index] != 0 ||
          key_of(events[event_index]) != key) {
        return corrupt();
      }
      seen[event_index] = 1;
      index->indexes.push_back(static_cast<uint32_t>(event_index));
    }
    total += count;
  }
  index->offsets.push_back(static_cast<uint32_t>(total));
  if (total != n) {
    return Status::Corruption(std::string("partition ") + what +
                              " index does not cover every event");
  }
  return Status::OK();
}

}  // namespace

Status DecodeFooter(std::string_view bytes, uint64_t data_end,
                    FooterData* footer) {
  Cursor cur(bytes);
  footer->options.partition_duration = cur.I64();
  footer->options.dedup_window = cur.I64();
  footer->options.enable_partitioning = cur.Byte() != 0;
  footer->options.batch_commit_size = static_cast<size_t>(cur.U64());
  footer->options.max_partition_events = static_cast<size_t>(cur.U64());

  footer->stats.total_events = cur.U64();
  footer->stats.raw_events = cur.U64();
  footer->stats.total_partitions = cur.U64();
  footer->stats.partitions_sealed = cur.U64();
  for (uint64_t& count : footer->stats.op_counts) count = cur.U64();
  footer->stats.min_ts = cur.I64();
  footer->stats.max_ts = cur.I64();

  AIQL_RETURN_IF_ERROR(DecodeSegmentRef(&cur, data_end, &footer->meta));

  uint64_t num_partitions = cur.U64();
  if (!cur.ok()) return Status::Corruption("snapshot footer truncated");
  // Each directory entry takes >= 16 bytes, bounding the claimed count.
  if (num_partitions > cur.remaining()) {
    return Status::Corruption("snapshot footer partition count implausible");
  }
  footer->partitions.reserve(static_cast<size_t>(num_partitions));
  for (uint64_t i = 0; i < num_partitions; ++i) {
    PartitionDirEntry entry;
    entry.bucket = cur.I64();
    entry.agent = static_cast<AgentId>(cur.U64());
    entry.seq = static_cast<uint32_t>(cur.U64());
    AIQL_RETURN_IF_ERROR(DecodeSegmentRef(&cur, data_end, &entry.segment));
    entry.events = cur.U64();
    entry.raw_events = cur.U64();
    entry.min_ts = cur.I64();
    entry.max_ts = cur.I64();
    for (uint64_t& count : entry.op_counts) count = cur.U64();
    if (!cur.ok()) return Status::Corruption("snapshot footer truncated");
    footer->partitions.push_back(entry);
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("snapshot footer has trailing bytes");
  }
  return Status::OK();
}

Status DecodeMetaSegment(std::string_view bytes, EntityStore* store) {
  Cursor cur(bytes);
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> exe_names,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> users,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                        DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> ips, DecodeDictionary(&cur));
  AIQL_ASSIGN_OR_RETURN(std::vector<std::string> protocols,
                        DecodeDictionary(&cur));
  AIQL_RETURN_IF_ERROR(
      store->RestoreDictionaries(exe_names, users, paths, ips, protocols));

  auto dict_string = [](const std::vector<std::string>& dict,
                        uint64_t id) -> const std::string* {
    return id < dict.size() ? &dict[id] : nullptr;
  };

  uint64_t num_procs = cur.U64();
  if (!cur.ok() || num_procs > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_procs; ++i) {
    uint64_t agent = cur.U64();
    uint64_t pid = cur.U64();
    const std::string* exe = dict_string(exe_names, cur.U64());
    const std::string* user = dict_string(users, cur.U64());
    if (!cur.ok() || exe == nullptr || user == nullptr ||
        agent > UINT32_MAX || pid > UINT32_MAX) {
      return Status::Corruption("snapshot process table corrupt");
    }
    store->InternProcess(ProcessRef{static_cast<AgentId>(agent),
                                    static_cast<uint32_t>(pid), *exe, *user});
  }
  if (store->processes().size() != num_procs) {
    return Status::Corruption("snapshot process table has duplicates");
  }

  uint64_t num_files = cur.U64();
  if (!cur.ok() || num_files > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_files; ++i) {
    uint64_t agent = cur.U64();
    const std::string* path = dict_string(paths, cur.U64());
    if (!cur.ok() || path == nullptr || agent > UINT32_MAX) {
      return Status::Corruption("snapshot file table corrupt");
    }
    store->InternFile(FileRef{static_cast<AgentId>(agent), *path});
  }
  if (store->files().size() != num_files) {
    return Status::Corruption("snapshot file table has duplicates");
  }

  uint64_t num_nets = cur.U64();
  if (!cur.ok() || num_nets > cur.remaining()) {
    return Status::Corruption("snapshot entity table truncated");
  }
  for (uint64_t i = 0; i < num_nets; ++i) {
    NetworkRef ref;
    uint64_t agent = cur.U64();
    const std::string* src = dict_string(ips, cur.U64());
    const std::string* dst = dict_string(ips, cur.U64());
    uint64_t src_port = cur.U64();
    uint64_t dst_port = cur.U64();
    const std::string* proto = dict_string(protocols, cur.U64());
    if (!cur.ok() || src == nullptr || dst == nullptr || proto == nullptr ||
        agent > UINT32_MAX || src_port > UINT16_MAX ||
        dst_port > UINT16_MAX) {
      return Status::Corruption("snapshot network table corrupt");
    }
    ref.agent_id = static_cast<AgentId>(agent);
    ref.src_ip = *src;
    ref.dst_ip = *dst;
    ref.src_port = static_cast<uint16_t>(src_port);
    ref.dst_port = static_cast<uint16_t>(dst_port);
    ref.protocol = *proto;
    store->InternNetwork(ref);
  }
  if (store->networks().size() != num_nets) {
    return Status::Corruption("snapshot network table has duplicates");
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("snapshot META segment has trailing bytes");
  }
  return Status::OK();
}

Status DecodePartitionSegment(std::string_view bytes,
                              const PartitionDirEntry& entry,
                              const EntityStore& store,
                              EventPartition* partition) {
  Cursor cur(bytes);
  uint64_t n64 = cur.U64();
  if (!cur.ok() || n64 != entry.events || n64 > bytes.size()) {
    return Status::Corruption("partition segment event count mismatch");
  }
  const size_t n = static_cast<size_t>(n64);

  std::vector<Event> events(n);
  uint64_t prev_start = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t start =
        i == 0 ? static_cast<uint64_t>(cur.I64()) : prev_start + cur.U64();
    events[i].start_ts = static_cast<Timestamp>(start);
    prev_start = start;
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].end_ts = static_cast<Timestamp>(
        static_cast<uint64_t>(events[i].start_ts) + cur.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].subject = static_cast<EntityId>(cur.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].object = static_cast<EntityId>(cur.U64());
  }
  for (size_t covered = 0; covered < n;) {
    uint64_t agent = cur.U64();
    uint64_t run = cur.U64();
    if (!cur.ok() || agent > UINT32_MAX || run == 0 || run > n - covered) {
      return Status::Corruption("partition agent column corrupt");
    }
    for (uint64_t i = 0; i < run; ++i) {
      events[covered + i].agent_id = static_cast<AgentId>(agent);
    }
    covered += static_cast<size_t>(run);
  }
  for (size_t i = 0; i < n; ++i) events[i].amount = cur.U64();
  for (size_t i = 0; i < n; ++i) {
    uint64_t merge_count = cur.U64();
    if (!cur.ok() || merge_count == 0 || merge_count > UINT32_MAX) {
      return Status::Corruption("partition merge counts corrupt");
    }
    events[i].merge_count = static_cast<uint32_t>(merge_count);
  }
  for (size_t covered = 0; covered < n;) {
    uint8_t type = cur.Byte();
    uint64_t run = cur.U64();
    if (!cur.ok() || type >= kNumEntityTypes || run == 0 ||
        run > n - covered) {
      return Status::Corruption("partition object-type column corrupt");
    }
    for (uint64_t i = 0; i < run; ++i) {
      events[covered + i].object_type = static_cast<EntityType>(type);
    }
    covered += static_cast<size_t>(run);
  }
  if (!cur.ok()) return Status::Corruption("partition segment truncated");

  // Posting lists: must jointly cover every event index exactly once; they
  // also reconstruct the op column.
  std::array<OpPostingList, kNumOpTypes> postings;
  std::vector<uint8_t> op_of(n, 0xFF);
  uint64_t total_postings = 0;
  for (int op = 0; op < kNumOpTypes; ++op) {
    uint64_t count = cur.U64();
    if (!cur.ok() || count != entry.op_counts[op] ||
        count > n - total_postings) {
      return Status::Corruption("partition posting lists corrupt");
    }
    OpPostingList& list = postings[op];
    list.indexes.reserve(static_cast<size_t>(count));
    uint64_t index = 0;
    for (uint64_t i = 0; i < count; ++i) {
      index = i == 0 ? cur.U64() : index + cur.U64();
      if (!cur.ok() || index >= n || op_of[index] != 0xFF) {
        return Status::Corruption("partition posting lists corrupt");
      }
      op_of[index] = static_cast<uint8_t>(op);
      list.indexes.push_back(static_cast<uint32_t>(index));
    }
    total_postings += count;
  }
  if (total_postings != n) {
    return Status::Corruption("partition posting lists do not cover events");
  }
  for (size_t i = 0; i < n; ++i) {
    events[i].op = static_cast<OpType>(op_of[i]);
  }

  std::unordered_map<StringId, uint64_t> exe_counts;
  uint64_t num_exe = cur.U64();
  if (!cur.ok() || num_exe > cur.remaining()) {
    return Status::Corruption("partition statistics truncated");
  }
  for (uint64_t i = 0; i < num_exe; ++i) {
    uint64_t exe = cur.U64();
    uint64_t count = cur.U64();
    if (!cur.ok() || exe >= store.exe_names().size()) {
      return Status::Corruption("partition statistics corrupt");
    }
    exe_counts[static_cast<StringId>(exe)] = count;
  }

  EntityPostingIndex subject_index;
  EntityPostingIndex object_index;
  AIQL_RETURN_IF_ERROR(DecodeEntityIndex(
      &cur, events,
      [](const Event& e) { return static_cast<uint64_t>(e.subject); },
      "subject", &subject_index));
  AIQL_RETURN_IF_ERROR(DecodeEntityIndex(
      &cur, events,
      [](const Event& e) {
        return EventPartition::ObjectKey(e.object_type, e.object);
      },
      "object", &object_index));
  if (!cur.AtEnd()) {
    return Status::Corruption("partition segment has trailing bytes");
  }

  // Cross-validate decoded events against the footer directory and the
  // engine's seal invariants.
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
  uint64_t raw = 0;
  for (size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    if (e.end_ts < e.start_ts) {
      return Status::Corruption("partition event interval corrupt");
    }
    if (i > 0 && (e.start_ts < events[i - 1].start_ts ||
                  (e.start_ts == events[i - 1].start_ts &&
                   e.end_ts < events[i - 1].end_ts))) {
      return Status::Corruption("partition events out of order");
    }
    if (e.subject >= store.processes().size() ||
        e.object >= store.NumEntities(e.object_type)) {
      return Status::Corruption("partition references unknown entities");
    }
    min_ts = std::min(min_ts, e.start_ts);
    max_ts = std::max(max_ts, e.end_ts);
    raw += e.merge_count;
  }
  if (n > 0 && (min_ts != entry.min_ts || max_ts != entry.max_ts)) {
    return Status::Corruption("partition time bounds disagree with footer");
  }
  if (raw != entry.raw_events) {
    return Status::Corruption("partition raw-event count disagrees with "
                              "footer");
  }

  partition->RestoreSealed(std::move(events), std::move(postings),
                           std::move(subject_index), std::move(object_index),
                           std::move(exe_counts), entry.raw_events);
  return Status::OK();
}

}  // namespace snapfmt
}  // namespace aiql
