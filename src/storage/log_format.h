// Text audit-log format — the transport between collection agents and the
// storage tier.
//
// The deployed system streams records from auditd/ETW/DTrace agents; this
// reproduction defines a line-oriented text format so logs can be exported,
// shipped, inspected, and replayed:
//
//   start_us \t end_us \t agent \t op \t amount \t subj_pid \t subj_exe \t
//   subj_user \t obj_kind \t <object fields...>
//
// Object fields by kind:
//   proc: agent \t pid \t exe \t user
//   file: agent \t path
//   net : agent \t src_ip \t src_port \t dst_ip \t dst_port \t protocol
//
// String fields escape backslash, tab, and newline (\\, \t, \n). Lines
// starting with '#' are comments. The reader reports line-numbered errors.

#ifndef AIQL_STORAGE_LOG_FORMAT_H_
#define AIQL_STORAGE_LOG_FORMAT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/data_model.h"

namespace aiql {

/// Serializes one record to a log line (no trailing newline).
std::string FormatLogLine(const EventRecord& record);

/// Parses one log line (comments/blank lines are the caller's concern).
Result<EventRecord> ParseLogLine(std::string_view line);

/// Writes all records to `path` (overwrites). Includes a header comment.
Status WriteAuditLog(const std::vector<EventRecord>& records,
                     const std::string& path);

/// Reads an audit log written by WriteAuditLog (or an agent). Skips blank
/// lines and '#' comments; fails with the offending line number otherwise.
Result<std::vector<EventRecord>> ReadAuditLog(const std::string& path);

}  // namespace aiql

#endif  // AIQL_STORAGE_LOG_FORMAT_H_
