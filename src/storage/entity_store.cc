#include "storage/entity_store.h"

#include <algorithm>
#include <bit>

namespace aiql {

namespace {

// Appends `id` to postings[value], growing the outer vector on demand.
void AddPosting(std::vector<std::vector<EntityId>>* postings, StringId value,
                EntityId id) {
  if (postings->size() <= value) postings->resize(value + 1);
  (*postings)[value].push_back(id);
}

}  // namespace

EntityId EntityStore::InternProcess(const ProcessRef& ref) {
  StringId exe = exe_names_.Intern(ref.exe_name);
  StringId user = users_.Intern(ref.user);
  ProcessKey key{ref.agent_id, ref.pid, exe, user};
  auto it = process_ids_.find(key);
  if (it != process_ids_.end()) return it->second;
  EntityId id = static_cast<EntityId>(processes_.size());
  processes_.push_back(ProcessEntity{ref.agent_id, ref.pid, exe, user});
  process_ids_.emplace(key, id);
  AddPosting(&procs_by_exe_, exe, id);
  return id;
}

EntityId EntityStore::InternFile(const FileRef& ref) {
  StringId path = paths_.Intern(ref.path);
  FileKey key{ref.agent_id, path};
  auto it = file_ids_.find(key);
  if (it != file_ids_.end()) return it->second;
  EntityId id = static_cast<EntityId>(files_.size());
  files_.push_back(FileEntity{ref.agent_id, path});
  file_ids_.emplace(key, id);
  AddPosting(&files_by_path_, path, id);
  return id;
}

EntityId EntityStore::InternNetwork(const NetworkRef& ref) {
  StringId src = ips_.Intern(ref.src_ip);
  StringId dst = ips_.Intern(ref.dst_ip);
  StringId proto = protocols_.Intern(ref.protocol);
  NetworkKey key{ref.agent_id, src, dst, ref.src_port, ref.dst_port, proto};
  auto it = network_ids_.find(key);
  if (it != network_ids_.end()) return it->second;
  EntityId id = static_cast<EntityId>(networks_.size());
  networks_.push_back(NetworkEntity{ref.agent_id, src, dst, ref.src_port,
                                    ref.dst_port, proto});
  network_ids_.emplace(key, id);
  AddPosting(&nets_by_dst_, dst, id);
  AddPosting(&nets_by_src_, src, id);
  return id;
}

EntityId EntityStore::FindProcess(const ProcessRef& ref) const {
  StringId exe = exe_names_.Lookup(ref.exe_name);
  StringId user = users_.Lookup(ref.user);
  if (exe == kInvalidStringId || user == kInvalidStringId) {
    return kInvalidEntityId;
  }
  auto it = process_ids_.find(ProcessKey{ref.agent_id, ref.pid, exe, user});
  return it != process_ids_.end() ? it->second : kInvalidEntityId;
}

EntityId EntityStore::FindFile(const FileRef& ref) const {
  StringId path = paths_.Lookup(ref.path);
  if (path == kInvalidStringId) return kInvalidEntityId;
  auto it = file_ids_.find(FileKey{ref.agent_id, path});
  return it != file_ids_.end() ? it->second : kInvalidEntityId;
}

EntityId EntityStore::FindNetwork(const NetworkRef& ref) const {
  StringId src = ips_.Lookup(ref.src_ip);
  StringId dst = ips_.Lookup(ref.dst_ip);
  StringId proto = protocols_.Lookup(ref.protocol);
  if (src == kInvalidStringId || dst == kInvalidStringId ||
      proto == kInvalidStringId) {
    return kInvalidEntityId;
  }
  auto it = network_ids_.find(NetworkKey{ref.agent_id, src, dst, ref.src_port,
                                         ref.dst_port, proto});
  return it != network_ids_.end() ? it->second : kInvalidEntityId;
}

Status EntityStore::RestoreDictionaries(
    const std::vector<std::string>& exe_names,
    const std::vector<std::string>& users,
    const std::vector<std::string>& paths,
    const std::vector<std::string>& ips,
    const std::vector<std::string>& protocols) {
  if (exe_names_.size() + users_.size() + paths_.size() + ips_.size() +
          protocols_.size() + processes_.size() + files_.size() +
          networks_.size() !=
      0) {
    return Status::InvalidArgument(
        "dictionaries can only be restored into an empty entity store");
  }
  auto restore = [](StringInterner* interner,
                    const std::vector<std::string>& strings) {
    for (const std::string& s : strings) interner->Intern(s);
    return interner->size() == strings.size();
  };
  if (!restore(&exe_names_, exe_names) || !restore(&users_, users) ||
      !restore(&paths_, paths) || !restore(&ips_, ips) ||
      !restore(&protocols_, protocols)) {
    return Status::Corruption("snapshot dictionary has duplicate strings");
  }
  return Status::OK();
}

std::pair<EntityType, EntityId> EntityStore::InternObject(
    const ObjectRef& ref) {
  if (const auto* proc = std::get_if<ProcessRef>(&ref)) {
    return {EntityType::kProcess, InternProcess(*proc)};
  }
  if (const auto* file = std::get_if<FileRef>(&ref)) {
    return {EntityType::kFile, InternFile(*file)};
  }
  return {EntityType::kNetwork, InternNetwork(std::get<NetworkRef>(ref))};
}

size_t EntityStore::NumEntities(EntityType type) const {
  switch (type) {
    case EntityType::kProcess:
      return processes_.size();
    case EntityType::kFile:
      return files_.size();
    case EntityType::kNetwork:
      return networks_.size();
  }
  return 0;
}

std::string EntityStore::EntityName(EntityType type, EntityId id) const {
  switch (type) {
    case EntityType::kProcess: {
      const ProcessEntity& p = processes_[id];
      return std::string(exe_names_.Get(p.exe_name));
    }
    case EntityType::kFile: {
      const FileEntity& f = files_[id];
      return std::string(paths_.Get(f.path));
    }
    case EntityType::kNetwork: {
      const NetworkEntity& n = networks_[id];
      std::string out(ips_.Get(n.src_ip));
      out += ':';
      out += std::to_string(n.src_port);
      out += "->";
      out += ips_.Get(n.dst_ip);
      out += ':';
      out += std::to_string(n.dst_port);
      return out;
    }
  }
  return "?";
}

const StringInterner& EntityStore::Dictionary(DictAttr attr) const {
  switch (attr) {
    case DictAttr::kExeName:
      return exe_names_;
    case DictAttr::kUser:
      return users_;
    case DictAttr::kPath:
      return paths_;
    case DictAttr::kDstIp:
    case DictAttr::kSrcIp:
      return ips_;
    case DictAttr::kProtocol:
      return protocols_;
  }
  return exe_names_;
}

std::shared_ptr<const DictionaryBitset> EntityStore::MatchDictionary(
    DictAttr attr, const LikeMatcher& matcher) const {
  switch (attr) {
    case DictAttr::kExeName:
      return exe_cache_.Match(exe_names_, matcher);
    case DictAttr::kUser:
      return user_cache_.Match(users_, matcher);
    case DictAttr::kPath:
      return path_cache_.Match(paths_, matcher);
    case DictAttr::kDstIp:
    case DictAttr::kSrcIp:
      return ip_cache_.Match(ips_, matcher);
    case DictAttr::kProtocol:
      return protocol_cache_.Match(protocols_, matcher);
  }
  return nullptr;
}

void EntityStore::ExpandMatches(DictAttr attr, const DenseBitset& ids,
                                std::vector<EntityId>* out) const {
  const std::vector<std::vector<EntityId>>* postings = nullptr;
  switch (attr) {
    case DictAttr::kExeName:
      postings = &procs_by_exe_;
      break;
    case DictAttr::kPath:
      postings = &files_by_path_;
      break;
    case DictAttr::kDstIp:
      postings = &nets_by_dst_;
      break;
    case DictAttr::kSrcIp:
      postings = &nets_by_src_;
      break;
    case DictAttr::kUser:
    case DictAttr::kProtocol:
      return;  // no postings for these attrs
  }
  // Walk set words directly: the match bitset is usually sparse, so this
  // touches one posting list per matching id, not one per dictionary entry.
  const uint64_t* words = ids.words();
  size_t limit = std::min(ids.num_words(), (postings->size() + 63) / 64);
  for (size_t w = 0; w < limit; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      size_t id = w * 64 + static_cast<size_t>(std::countr_zero(word));
      word &= word - 1;
      if (id >= postings->size()) return;  // ids only ascend from here
      const std::vector<EntityId>& list = (*postings)[id];
      out->insert(out->end(), list.begin(), list.end());
    }
  }
}

std::vector<EntityId> EntityStore::FindProcessesByExe(
    const LikeMatcher& matcher) const {
  std::vector<EntityId> out;
  auto match = MatchDictionary(DictAttr::kExeName, matcher);
  ExpandMatches(DictAttr::kExeName, match->bits, &out);
  return out;
}

std::vector<EntityId> EntityStore::FindFilesByPath(
    const LikeMatcher& matcher) const {
  std::vector<EntityId> out;
  auto match = MatchDictionary(DictAttr::kPath, matcher);
  ExpandMatches(DictAttr::kPath, match->bits, &out);
  return out;
}

std::vector<EntityId> EntityStore::FindNetworksByIp(const LikeMatcher& matcher,
                                                    bool use_src) const {
  std::vector<EntityId> out;
  DictAttr attr = use_src ? DictAttr::kSrcIp : DictAttr::kDstIp;
  auto match = MatchDictionary(attr, matcher);
  ExpandMatches(attr, match->bits, &out);
  return out;
}

size_t EntityStore::DistinctDefaultAttrValues(EntityType type) const {
  switch (type) {
    case EntityType::kProcess:
      return exe_names_.size();
    case EntityType::kFile:
      return paths_.size();
    case EntityType::kNetwork:
      return ips_.size();
  }
  return 0;
}

void EntityStore::TouchEntity(EntityType type, EntityId id,
                              int64_t bucket) const {
  std::lock_guard<std::mutex> lock(aging_.mu);
  std::vector<int64_t>& slots = aging_.last_bucket[static_cast<size_t>(type)];
  if (slots.size() <= id) slots.resize(id + 1, INT64_MIN);
  if (slots[id] < bucket) slots[id] = bucket;
}

uint64_t EntityStore::CountAgedEntities(int64_t horizon_bucket) const {
  std::lock_guard<std::mutex> lock(aging_.mu);
  uint64_t aged = 0;
  for (const std::vector<int64_t>& slots : aging_.last_bucket) {
    for (int64_t last : slots) {
      if (last != INT64_MIN && last < horizon_bucket) ++aged;
    }
  }
  return aged;
}

}  // namespace aiql
