#include "storage/partition_cache.h"

#include "storage/partition.h"

namespace aiql {

std::shared_ptr<const EventPartition> PartitionCache::Lookup(
    const void* owner, size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{owner, index});
  if (it == map_.end()) {
    misses_ += 1;
    return nullptr;
  }
  hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->partition;
}

void PartitionCache::Insert(const void* owner, size_t index,
                            std::shared_ptr<const EventPartition> partition,
                            size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{owner, index};
  auto it = map_.find(key);
  if (it != map_.end()) {
    charged_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  EvictToFitLocked(bytes);
  lru_.push_front(Entry{key, std::move(partition), bytes});
  map_[key] = lru_.begin();
  charged_bytes_ += bytes;
  insertions_ += 1;
}

void PartitionCache::Erase(const void* owner, size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{owner, index});
  if (it == map_.end()) return;
  charged_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void PartitionCache::EraseOwner(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.owner == owner) {
      charged_bytes_ -= it->bytes;
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PartitionCache::SetBudget(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = budget_bytes;
  EvictToFitLocked(0);
}

PartitionCacheStats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PartitionCacheStats s;
  s.budget_bytes = budget_bytes_;
  s.charged_bytes = charged_bytes_;
  s.resident = map_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  return s;
}

void PartitionCache::EvictToFitLocked(size_t incoming) {
  if (budget_bytes_ == 0) return;  // unlimited
  while (!lru_.empty() && charged_bytes_ + incoming > budget_bytes_) {
    const Entry& victim = lru_.back();
    charged_bytes_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    evictions_ += 1;
  }
}

}  // namespace aiql
