// Domain-specific data model for system monitoring data (paper §2.1).
//
// System entities are files, processes, and network connections. A system
// event is an interaction <subject, operation, object> (SVO) between two
// entities: the subject is always a process; the object is a file, a process,
// or a network connection. Events carry the host (agent) id and a time
// interval, giving the data its strong spatial and temporal properties.

#ifndef AIQL_STORAGE_DATA_MODEL_H_
#define AIQL_STORAGE_DATA_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/interner.h"
#include "common/status.h"
#include "common/time_utils.h"

namespace aiql {

/// Host identifier inside the enterprise (the paper's `agentid`).
using AgentId = uint32_t;

/// Dense per-type entity index inside an EntityStore.
using EntityId = uint32_t;
inline constexpr EntityId kInvalidEntityId = UINT32_MAX;

/// The three entity kinds of the SVO model.
enum class EntityType : uint8_t {
  kProcess = 0,
  kFile = 1,
  kNetwork = 2,
};
inline constexpr int kNumEntityTypes = 3;

const char* EntityTypeToString(EntityType type);

/// System-call level operations, grouped by the object they act on:
/// process events (start/end/connect), file events (read/write/execute/
/// delete/rename), network events (read/write/connect/accept).
enum class OpType : uint8_t {
  kStart = 0,    ///< subject spawns object process
  kEnd = 1,      ///< subject terminates object process
  kRead = 2,     ///< file or socket read
  kWrite = 3,    ///< file or socket write
  kExecute = 4,  ///< subject executes a file image
  kDelete = 5,   ///< file unlink
  kRename = 6,   ///< file rename
  kConnect = 7,  ///< outbound connection; object may be a remote process
                 ///< (cross-host session stitched by the collection agents)
  kAccept = 8,   ///< inbound connection accepted
};
inline constexpr int kNumOpTypes = 9;

const char* OpTypeToString(OpType op);

/// Parses an operation keyword ("read", "write", ...). Case-insensitive;
/// accepts the aliases exec=execute, fork=start, terminate=end.
Result<OpType> ParseOpType(std::string_view text);

/// Compact bitmask over OpType (AIQL's `read || write` disjunctions).
using OpMask = uint16_t;
inline constexpr OpMask OpBit(OpType op) {
  return static_cast<OpMask>(1u << static_cast<unsigned>(op));
}
inline constexpr bool OpMaskContains(OpMask mask, OpType op) {
  return (mask & OpBit(op)) != 0;
}

// ---------------------------------------------------------------------------
// Stored (interned) entity representations.
// ---------------------------------------------------------------------------

/// A process instance on one host. `exe_name` / `user` are ids into the
/// store's exe/user interners.
struct ProcessEntity {
  AgentId agent_id = 0;
  uint32_t pid = 0;
  StringId exe_name = kInvalidStringId;
  StringId user = kInvalidStringId;

  bool operator==(const ProcessEntity&) const = default;
};

/// A file identified by (host, absolute path).
struct FileEntity {
  AgentId agent_id = 0;
  StringId path = kInvalidStringId;

  bool operator==(const FileEntity&) const = default;
};

/// A network connection 5-tuple observed from `agent_id`.
struct NetworkEntity {
  AgentId agent_id = 0;
  StringId src_ip = kInvalidStringId;
  StringId dst_ip = kInvalidStringId;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  StringId protocol = kInvalidStringId;

  bool operator==(const NetworkEntity&) const = default;
};

// ---------------------------------------------------------------------------
// Stored event representation (post-interning, fixed width).
// ---------------------------------------------------------------------------

/// One (possibly merge-deduplicated) system event.
struct Event {
  Timestamp start_ts = 0;
  Timestamp end_ts = 0;
  uint64_t amount = 0;       ///< bytes transferred (0 when N/A)
  EntityId subject = 0;      ///< process entity id
  EntityId object = 0;       ///< entity id within `object_type`'s store
  AgentId agent_id = 0;      ///< host the event was observed on
  uint32_t merge_count = 1;  ///< number of raw events merged into this one
  OpType op = OpType::kRead;
  EntityType object_type = EntityType::kFile;
};

// ---------------------------------------------------------------------------
// Raw ingestion records (pre-interning, carry attribute strings).
// ---------------------------------------------------------------------------

/// Reference to a process by attributes, as emitted by a collection agent.
struct ProcessRef {
  AgentId agent_id = 0;
  uint32_t pid = 0;
  std::string exe_name;
  std::string user;
};

/// Reference to a file by (host, path).
struct FileRef {
  AgentId agent_id = 0;
  std::string path;
};

/// Reference to a network connection by its observed 5-tuple.
struct NetworkRef {
  AgentId agent_id = 0;
  std::string src_ip;
  std::string dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::string protocol = "tcp";
};

/// Object side of a raw event.
using ObjectRef = std::variant<ProcessRef, FileRef, NetworkRef>;

/// EntityType of an ObjectRef alternative.
EntityType ObjectRefType(const ObjectRef& ref);

/// One raw event as produced by a data-collection agent (or the simulator
/// standing in for one).
struct EventRecord {
  AgentId agent_id = 0;  ///< observing host
  OpType op = OpType::kRead;
  Timestamp start_ts = 0;
  Timestamp end_ts = 0;  ///< defaults to start_ts when zero
  uint64_t amount = 0;
  ProcessRef subject;
  ObjectRef object;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_DATA_MODEL_H_
