// Deduplicated entity storage with in-memory attribute indexes.
//
// One of the paper's storage optimizations is data deduplication plus
// in-memory indexes: each distinct process/file/network entity is stored
// once, attribute strings are interned, and postings lists map attribute
// values to the entities carrying them. The query engine evaluates a LIKE
// predicate once per *distinct* attribute value and expands the matches via
// the postings lists, instead of re-matching per event.

#ifndef AIQL_STORAGE_ENTITY_STORE_H_
#define AIQL_STORAGE_ENTITY_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/like_matcher.h"
#include "storage/data_model.h"

namespace aiql {

/// The interned string-attribute dictionaries an entity predicate can
/// target. kDstIp/kSrcIp share one ip dictionary (their postings differ).
enum class DictAttr : uint8_t {
  kExeName,
  kUser,
  kPath,
  kDstIp,
  kSrcIp,
  kProtocol,
};

/// Append-only, deduplicated store of all entities seen during ingestion.
/// Single-writer during ingestion; read-only (thread-safe) afterwards.
class EntityStore {
 public:
  EntityStore() = default;

  // --- ingestion -----------------------------------------------------------

  /// Returns the id of the process entity, creating it on first sight.
  EntityId InternProcess(const ProcessRef& ref);
  /// Returns the id of the file entity, creating it on first sight.
  EntityId InternFile(const FileRef& ref);
  /// Returns the id of the network entity, creating it on first sight.
  EntityId InternNetwork(const NetworkRef& ref);

  /// Interns the object side of a raw record; returns (type, id).
  std::pair<EntityType, EntityId> InternObject(const ObjectRef& ref);

  // --- attribute-level lookup (no interning) -------------------------------

  /// Id of the process entity with exactly `ref`'s attributes, or
  /// kInvalidEntityId when this store never saw it. Never mutates the store,
  /// so it is safe on a shared view while ingestion continues elsewhere —
  /// the shard layer uses these to translate an entity discovered on one
  /// shard into another shard's id space.
  EntityId FindProcess(const ProcessRef& ref) const;
  /// File equivalent of FindProcess.
  EntityId FindFile(const FileRef& ref) const;
  /// Network equivalent of FindProcess (full 5-tuple + agent).
  EntityId FindNetwork(const NetworkRef& ref) const;

  /// Snapshot-load hook: pre-interns persisted dictionary strings in stored
  /// order into an empty store, so StringIds referenced by other snapshot
  /// sections (entity tables, per-partition subject-exe counts) keep their
  /// original values. Fails on a non-empty store or duplicate dictionary
  /// entries (which would silently shift later ids).
  Status RestoreDictionaries(const std::vector<std::string>& exe_names,
                             const std::vector<std::string>& users,
                             const std::vector<std::string>& paths,
                             const std::vector<std::string>& ips,
                             const std::vector<std::string>& protocols);

  // --- read access ---------------------------------------------------------

  const std::vector<ProcessEntity>& processes() const { return processes_; }
  const std::vector<FileEntity>& files() const { return files_; }
  const std::vector<NetworkEntity>& networks() const { return networks_; }

  const StringInterner& exe_names() const { return exe_names_; }
  const StringInterner& users() const { return users_; }
  const StringInterner& paths() const { return paths_; }
  const StringInterner& ips() const { return ips_; }
  const StringInterner& protocols() const { return protocols_; }

  /// The dictionary behind one interned attribute.
  const StringInterner& Dictionary(DictAttr attr) const;

  /// StringIds in `attr`'s dictionary matching `matcher` — evaluated once
  /// per (dictionary, pattern) and cached across queries with a version tag,
  /// so streaming appends only re-match the dictionary's new tail. Safe on a
  /// shared view (the cache is internally synchronized; the dictionary
  /// itself is stable while any view is open).
  std::shared_ptr<const DictionaryBitset> MatchDictionary(
      DictAttr attr, const LikeMatcher& matcher) const;

  /// Appends to `out` the entity ids whose `attr` value id is set in `ids`,
  /// expanded through the attribute postings. Only valid for postings-backed
  /// attrs (kExeName, kPath, kDstIp, kSrcIp).
  void ExpandMatches(DictAttr attr, const DenseBitset& ids,
                     std::vector<EntityId>* out) const;

  size_t NumEntities(EntityType type) const;

  /// Display name of an entity: exe name / path / "src:port->dst:port".
  std::string EntityName(EntityType type, EntityId id) const;

  // --- attribute indexes ---------------------------------------------------

  /// Process ids whose exe_name string matches `matcher`.
  std::vector<EntityId> FindProcessesByExe(const LikeMatcher& matcher) const;
  /// File ids whose path matches `matcher` (across all agents).
  std::vector<EntityId> FindFilesByPath(const LikeMatcher& matcher) const;
  /// Network ids whose dst_ip (or src_ip when `use_src`) matches.
  std::vector<EntityId> FindNetworksByIp(const LikeMatcher& matcher,
                                         bool use_src) const;

  /// Number of distinct interned strings whose expansion would be scanned by
  /// a predicate on `type`'s default attribute (for cost accounting).
  size_t DistinctDefaultAttrValues(EntityType type) const;

  // --- tiered-retention entity aging ---------------------------------------
  // Entity ids are embedded in every partition (rows, reverse indexes,
  // snapshot segments), so entities cannot be physically removed without a
  // global id rewrite. Aging instead tracks the newest time bucket whose
  // events still reference each entity; the retention layer reports how
  // many entities have aged past the horizon (and could be reclaimed by an
  // offline rewrite).

  /// Records that entity (`type`, `id`) is referenced by an event in time
  /// `bucket` (keeps the max). Called by the tiered store when a partition
  /// is demoted; internally synchronized against CountAgedEntities (const:
  /// aging is bookkeeping on the side, reachable through shared views).
  void TouchEntity(EntityType type, EntityId id, int64_t bucket) const;

  /// Entities whose newest recorded reference lies strictly before
  /// `horizon_bucket`. Entities never touched (hot-only data) count as
  /// live, never as aged.
  uint64_t CountAgedEntities(int64_t horizon_bucket) const;

 private:
  struct ProcessKey {
    AgentId agent_id;
    uint32_t pid;
    StringId exe_name;
    StringId user;
    bool operator==(const ProcessKey&) const = default;
  };
  struct ProcessKeyHash {
    size_t operator()(const ProcessKey& k) const {
      uint64_t h = k.agent_id;
      h = h * 0x9E3779B97F4A7C15ULL + k.pid;
      h = h * 0x9E3779B97F4A7C15ULL + k.exe_name;
      h = h * 0x9E3779B97F4A7C15ULL + k.user;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct FileKey {
    AgentId agent_id;
    StringId path;
    bool operator==(const FileKey&) const = default;
  };
  struct FileKeyHash {
    size_t operator()(const FileKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.agent_id) << 32) | k.path;
      h *= 0x9E3779B97F4A7C15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct NetworkKey {
    AgentId agent_id;
    StringId src_ip;
    StringId dst_ip;
    uint16_t src_port;
    uint16_t dst_port;
    StringId protocol;
    bool operator==(const NetworkKey&) const = default;
  };
  struct NetworkKeyHash {
    size_t operator()(const NetworkKey& k) const {
      uint64_t h = k.agent_id;
      h = h * 0x9E3779B97F4A7C15ULL + k.src_ip;
      h = h * 0x9E3779B97F4A7C15ULL + k.dst_ip;
      h = h * 0x9E3779B97F4A7C15ULL + k.src_port;
      h = h * 0x9E3779B97F4A7C15ULL + k.dst_port;
      h = h * 0x9E3779B97F4A7C15ULL + k.protocol;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  StringInterner exe_names_;
  StringInterner users_;
  StringInterner paths_;
  StringInterner ips_;
  StringInterner protocols_;

  std::vector<ProcessEntity> processes_;
  std::vector<FileEntity> files_;
  std::vector<NetworkEntity> networks_;

  std::unordered_map<ProcessKey, EntityId, ProcessKeyHash> process_ids_;
  std::unordered_map<FileKey, EntityId, FileKeyHash> file_ids_;
  std::unordered_map<NetworkKey, EntityId, NetworkKeyHash> network_ids_;

  // Postings: attribute value id -> entity ids carrying that value.
  std::vector<std::vector<EntityId>> procs_by_exe_;   // index: exe StringId
  std::vector<std::vector<EntityId>> files_by_path_;  // index: path StringId
  std::vector<std::vector<EntityId>> nets_by_dst_;    // index: ip StringId
  std::vector<std::vector<EntityId>> nets_by_src_;    // index: ip StringId

  // Aging state: newest reference bucket per entity id, one slot vector per
  // EntityType, sized lazily (INT64_MIN = never touched). Same movability
  // idiom as DictionaryMatchCache: the mutex is not moved; moves only
  // happen while the store is quiescent.
  struct AgingIndex {
    AgingIndex() = default;
    AgingIndex(AgingIndex&& other) noexcept
        : last_bucket(std::move(other.last_bucket)) {}
    AgingIndex& operator=(AgingIndex&& other) noexcept {
      if (this != &other) last_bucket = std::move(other.last_bucket);
      return *this;
    }
    mutable std::mutex mu;
    std::array<std::vector<int64_t>, 3> last_bucket;  // indexed by EntityType
  };
  mutable AgingIndex aging_;

  // Predicate-vs-dictionary caches, one per dictionary (kDstIp/kSrcIp share
  // ips_cache_). Mutable: queries populate them through const views.
  mutable DictionaryMatchCache exe_cache_;
  mutable DictionaryMatchCache user_cache_;
  mutable DictionaryMatchCache path_cache_;
  mutable DictionaryMatchCache ip_cache_;
  mutable DictionaryMatchCache protocol_cache_;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_ENTITY_STORE_H_
