#include "storage/data_model.h"

#include "common/string_utils.h"

namespace aiql {

const char* EntityTypeToString(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "proc";
    case EntityType::kFile:
      return "file";
    case EntityType::kNetwork:
      return "ip";
  }
  return "?";
}

const char* OpTypeToString(OpType op) {
  switch (op) {
    case OpType::kStart:
      return "start";
    case OpType::kEnd:
      return "end";
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kExecute:
      return "execute";
    case OpType::kDelete:
      return "delete";
    case OpType::kRename:
      return "rename";
    case OpType::kConnect:
      return "connect";
    case OpType::kAccept:
      return "accept";
  }
  return "?";
}

Result<OpType> ParseOpType(std::string_view text) {
  std::string lowered = ToLower(TrimString(text));
  if (lowered == "start" || lowered == "fork") return OpType::kStart;
  if (lowered == "end" || lowered == "terminate") return OpType::kEnd;
  if (lowered == "read") return OpType::kRead;
  if (lowered == "write") return OpType::kWrite;
  if (lowered == "execute" || lowered == "exec") return OpType::kExecute;
  if (lowered == "delete" || lowered == "unlink") return OpType::kDelete;
  if (lowered == "rename") return OpType::kRename;
  if (lowered == "connect") return OpType::kConnect;
  if (lowered == "accept") return OpType::kAccept;
  return Status::InvalidArgument("unknown operation '" + lowered + "'");
}

EntityType ObjectRefType(const ObjectRef& ref) {
  if (std::holds_alternative<ProcessRef>(ref)) return EntityType::kProcess;
  if (std::holds_alternative<FileRef>(ref)) return EntityType::kFile;
  return EntityType::kNetwork;
}

}  // namespace aiql
