// Tiered retention: one unified residence model for sealed partitions.
//
// The deployed system retains 0.5-1 year of audit data — far more than fits
// in RAM — while the freshest hours take nearly all queries. TieredStore
// layers that lifecycle over AuditDatabase: every sealed partition is in
// exactly one residence state,
//
//   hot        in RAM inside the AuditDatabase (recently sealed, or pinned
//              there because its bucket is inside the hot window),
//   cold       demoted to an on-disk retention directory (incremental v2
//              snapshot, storage/snapshot_append.h); reopened lazily through
//              a memory-budgeted LRU PartitionCache when a query selects it,
//   compacting transiently owned by the background Compactor while small
//              sibling partitions of one (bucket, agent) are merged.
//
// A background compactor pass (the same seal-pool pattern the database uses
// for background sealing) performs, in order: merge compaction of
// small/overflow partitions, demotion of sealed partitions older than the
// hot window (append to the retention log + durable footer commit, then
// atomic extraction from the hot map), tombstoning of cold partitions past
// the retention horizon, and entity-store aging accounting.
//
// Queries open a ReadView exactly as against a plain database; the view
// captures the hot partitions (under the database's shared state lock) and
// an immutable snapshot of the cold directory in one atomic step, so a
// query runs against a consistent residence assignment even while the
// compactor keeps moving partitions between tiers — results are
// byte-identical whether a partition is hot, cold, or was merged
// mid-stream. Cold materializations are pinned for the view's lifetime
// (PartitionPinSet), so cache eviction reclaims budget without invalidating
// in-flight scans, and are charged to the running QueryContext's memory
// budget.
//
// Crash safety: demotion only extracts a partition from RAM after the
// retention directory's footer commit made it durable; recovery reopens the
// newest valid footer, so a crash at any point loses no partition (it was
// either still hot in the writer's WAL-equivalent upstream, or durable).

#ifndef AIQL_STORAGE_TIERED_H_
#define AIQL_STORAGE_TIERED_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time_utils.h"
#include "storage/database.h"
#include "storage/partition_cache.h"
#include "storage/snapshot_append.h"

namespace aiql {

/// Tiered-retention tuning knobs.
struct RetentionOptions {
  /// Retention directory (created if missing). Required.
  std::string dir;

  /// Byte budget for materialized cold partitions (the PartitionCache
  /// budget); 0 = unlimited. Charged by actual partition footprint.
  size_t memory_budget_bytes = 0;

  /// Sealed partitions stay hot while their bucket is within this many
  /// buckets of the newest bucket seen; older ones are demoted to cold.
  /// Negative values demote every sealed partition, the newest bucket
  /// included (tests and benchmarks use -1 to force an all-cold store).
  int64_t hot_buckets = 2;

  /// Cold partitions whose bucket falls this many buckets behind the newest
  /// bucket are tombstoned (dropped from the committed footer); 0 = keep
  /// forever.
  int64_t retention_buckets = 0;

  /// Minimum sibling partitions of one (bucket, agent) for merge compaction
  /// to fire; values < 2 disable merging.
  size_t compact_min_partitions = 2;

  /// Background compactor pass period.
  Duration compact_interval = 200 * kMillisecond;
};

/// Counters describing the tiered lifecycle (all monotone except the
/// residence/cache gauges).
struct RetentionStats {
  uint64_t hot_partitions = 0;   ///< sealed partitions resident in RAM
  uint64_t cold_partitions = 0;  ///< partitions in the retention directory
  uint64_t compactor_passes = 0;
  uint64_t merges = 0;             ///< merge-compaction commits
  uint64_t merged_partitions = 0;  ///< source partitions consumed by merges
  uint64_t demotions = 0;          ///< partitions demoted to cold
  uint64_t tombstones = 0;         ///< cold partitions expired + dropped
  uint64_t commits = 0;            ///< durable footer commits
  uint64_t reopens = 0;            ///< cold decodes after first residence
  uint64_t entities_aged = 0;      ///< entities past the retention horizon
  PartitionCacheStats cache;
};

/// The tiered store. Write path and lifecycle:
///   Append/AppendBatch/Flush  ->  hot partitions seal as usual
///   Compactor (background)    ->  merge / demote / tombstone / age
/// Read path: OpenReadView() from any thread. Thread model matches
/// AuditDatabase (single writer, many readers) plus exactly one maintenance
/// thread (the compactor, or a test calling CompactOnce()).
class TieredStore {
 public:
  /// Opens (or creates) the retention directory and recovers any committed
  /// cold partitions + entity dictionaries from its newest valid footer.
  static Result<std::unique_ptr<TieredStore>> Create(StorageOptions storage,
                                                     RetentionOptions
                                                         retention);

  /// Stops the compactor.
  ~TieredStore();

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  // --- write path (single writer thread) -----------------------------------

  Status Append(EventRecord record) { return db_->Append(std::move(record)); }
  Status AppendBatch(std::vector<EventRecord> records) {
    return db_->AppendBatch(std::move(records));
  }
  Status Flush() { return db_->Flush(); }
  /// Flushes + seals the hot database (appends then fail); cold tiers and
  /// the compactor keep working.
  Status Seal() { return db_->Seal(); }

  // --- read path -----------------------------------------------------------

  /// A consistent view over hot + cold partitions: the hot set under the
  /// database's shared state lock, the cold directory as an immutable
  /// snapshot taken in the same atomic step. Safe concurrently with
  /// ingestion and compaction.
  ReadView OpenReadView() const;

  const AuditDatabase& db() const { return *db_; }
  AuditDatabase* mutable_db() { return db_.get(); }
  const RetentionOptions& retention() const { return retention_; }
  PartitionCache* cache() const { return &cache_; }

  /// Full aggregates over hot data plus the cold partitions recovered from
  /// the retention directory (data demoted by a previous process).
  DatabaseStats StatsSnapshot() const;

  RetentionStats stats() const;

  // --- maintenance ---------------------------------------------------------

  /// Starts the background compactor thread (idempotent).
  void StartCompactor();
  /// Stops and joins it (idempotent; also run by the destructor).
  void StopCompactor();

  /// One synchronous maintenance pass: merge small sibling partitions,
  /// demote sealed partitions older than the hot window, tombstone expired
  /// cold partitions, refresh aging counters. Only the compactor thread or
  /// a test may call this (single-maintenance-thread contract). Errors from
  /// one stage (e.g. an injected demotion-write failure) abort the pass
  /// but leave the store consistent: demotion extracts from RAM only after
  /// the footer commit, merges replace only after the merged partition is
  /// fully built.
  Status CompactOnce();

 private:
  friend Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
  TieredSelectPartitions(const ReadView& view, const TimeRange& range,
                         const std::optional<std::vector<AgentId>>& agents);

  /// One cold partition: its committed directory entry plus revival state
  /// for the materialize path. `weak`/`bytes` are guarded by load_mu_; the
  /// containing directory vector is immutable once published.
  struct ColdPartition {
    snapfmt::PartitionDirEntry entry;
    uint64_t cold_id = 0;  ///< stable cache key, unique per store lifetime
    mutable std::weak_ptr<const EventPartition> weak;
    mutable size_t bytes = 0;
  };
  using ColdDir = std::vector<std::shared_ptr<const ColdPartition>>;

  TieredStore() = default;

  /// Newest bucket seen by ingestion (INT64_MIN when empty).
  int64_t NewestBucket() const;

  /// Materializes one cold partition through the cache, charging the
  /// running QueryContext. The `retention.reopen` failpoint covers every
  /// disk decode on this path.
  Result<std::shared_ptr<const EventPartition>> MaterializeCold(
      const ColdPartition& cold) const;

  /// Compaction stages (single maintenance thread).
  Status MergeSmallPartitions();
  Status DemoteColdPartitions();
  Status TombstoneExpired();
  void AgeEntities();

  /// Commits the current cold directory `dir` as the new durable footer
  /// (META re-encoded under an open read view for entity stability).
  Status CommitColdDir(const ColdDir& dir);

  StorageOptions storage_;
  RetentionOptions retention_;
  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<SnapshotAppender> appender_;
  mutable PartitionCache cache_;

  // Cold directory, copy-on-write: readers grab the shared_ptr under
  // tier_mu_ (or inherit it from a view's captured snapshot) and never see
  // a mutation. Lock order: db state_mu (shared or exclusive) before
  // tier_mu_.
  mutable std::mutex tier_mu_;
  std::shared_ptr<const ColdDir> cold_;
  uint64_t next_cold_id_ = 0;

  // Aggregates of the partitions recovered from the retention directory at
  // Create() — data durable from a previous process, not present in the hot
  // database's own stats. Views report the sum of both.
  DatabaseStats recovered_stats_;

  // Materialize path: serializes decode/revival per store (mirrors
  // SnapshotStore::load_mu_).
  mutable std::mutex load_mu_;
  mutable std::atomic<uint64_t> reopens_{0};

  // Lifecycle counters (relaxed; read by stats()).
  std::atomic<uint64_t> compactor_passes_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> merged_partitions_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> tombstones_{0};
  std::atomic<uint64_t> entities_aged_{0};

  // Compactor thread.
  std::mutex compactor_mu_;
  std::condition_variable compactor_cv_;
  std::thread compactor_;
  bool compactor_stop_ = false;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_TIERED_H_
