#include "storage/tiered.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "common/cancellation.h"
#include "common/failpoint.h"

namespace aiql {

namespace {

std::tuple<int64_t, AgentId, uint32_t> EntryKey(
    const snapfmt::PartitionDirEntry& entry) {
  return {entry.bucket, entry.agent, entry.seq};
}

/// Folds `add` into `base` (the view-visible aggregates over hot +
/// recovered cold data).
void MergeStats(DatabaseStats* base, const DatabaseStats& add) {
  base->total_events += add.total_events;
  base->raw_events += add.raw_events;
  base->total_partitions += add.total_partitions;
  base->partitions_sealed += add.partitions_sealed;
  for (size_t i = 0; i < base->op_counts.size(); ++i) {
    base->op_counts[i] += add.op_counts[i];
  }
  base->min_ts = std::min(base->min_ts, add.min_ts);
  base->max_ts = std::max(base->max_ts, add.max_ts);
}

}  // namespace

// =============================================================================
// lifecycle
// =============================================================================

Result<std::unique_ptr<TieredStore>> TieredStore::Create(
    StorageOptions storage, RetentionOptions retention) {
  if (retention.dir.empty()) {
    return Status::InvalidArgument("RetentionOptions.dir must be set");
  }
  std::unique_ptr<TieredStore> store(new TieredStore());
  store->storage_ = storage;
  store->retention_ = retention;
  store->cache_.SetBudget(retention.memory_budget_bytes);
  AIQL_ASSIGN_OR_RETURN(store->appender_, SnapshotAppender::Open(retention.dir));
  store->db_ = std::make_unique<AuditDatabase>(storage);

  auto dir = std::make_shared<ColdDir>();
  if (std::optional<SnapshotAppender::RecoveredState>& recovered =
          store->appender_->recovered()) {
    // Entities recover from the committed META segment; interning continues
    // from the restored dictionaries, so recovered cold segments and new
    // ingestion share one id space.
    *store->db_->mutable_entities() = std::move(recovered->entities);
    dir->reserve(recovered->partitions.size());
    for (const snapfmt::PartitionDirEntry& entry : recovered->partitions) {
      auto cold = std::make_shared<ColdPartition>();
      cold->entry = entry;
      cold->cold_id = store->next_cold_id_++;
      dir->push_back(std::move(cold));
      // Recovered aggregates are rebuilt from the directory entries — the
      // persisted DatabaseStats describe the previous process's full
      // ingest, including hot partitions that (intentionally) did not
      // survive the crash.
      store->recovered_stats_.total_events += entry.events;
      store->recovered_stats_.raw_events += entry.raw_events;
      store->recovered_stats_.total_partitions += 1;
      store->recovered_stats_.partitions_sealed += 1;
      for (size_t i = 0; i < entry.op_counts.size(); ++i) {
        store->recovered_stats_.op_counts[i] += entry.op_counts[i];
      }
      store->recovered_stats_.min_ts =
          std::min(store->recovered_stats_.min_ts, entry.min_ts);
      store->recovered_stats_.max_ts =
          std::max(store->recovered_stats_.max_ts, entry.max_ts);
    }
    std::sort(dir->begin(), dir->end(),
              [](const std::shared_ptr<const ColdPartition>& a,
                 const std::shared_ptr<const ColdPartition>& b) {
                return EntryKey(a->entry) < EntryKey(b->entry);
              });
  }
  store->cold_ = std::move(dir);
  return store;
}

TieredStore::~TieredStore() { StopCompactor(); }

DatabaseStats TieredStore::StatsSnapshot() const {
  DatabaseStats stats = db_->StatsSnapshot();
  MergeStats(&stats, recovered_stats_);
  return stats;
}

int64_t TieredStore::NewestBucket() const {
  DatabaseStats stats = db_->StatsSnapshot();
  Timestamp newest = stats.max_ts;
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    for (const auto& cold : *cold_) {
      newest = std::max(newest, cold->entry.max_ts);
    }
  }
  if (newest == INT64_MIN) return INT64_MIN;
  int64_t bucket = newest / storage_.partition_duration;
  if (newest < 0 && newest % storage_.partition_duration != 0) bucket -= 1;
  return bucket;
}

// =============================================================================
// read path
// =============================================================================

ReadView TieredStore::OpenReadView() const {
  // The database view takes the shared state lock first; tier_mu_ second —
  // the same order the demotion sink uses (exclusive state lock, then
  // tier_mu_) — so the hot set and the cold directory snapshot are mutually
  // consistent: a partition is visible in exactly one of them.
  ReadView view = db_->OpenReadView();
  std::shared_ptr<const ColdDir> cold;
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    cold = cold_;
  }
  view.tiered_ = this;
  view.tiered_cold_ = cold;
  view.pins_ = std::make_shared<PartitionPinSet>();
  for (const auto& entry : *cold) {
    view.visible_events_ += entry->entry.events;
  }
  MergeStats(&view.stats_, recovered_stats_);
  return view;
}

Result<std::shared_ptr<const EventPartition>> TieredStore::MaterializeCold(
    const ColdPartition& cold) const {
  if (auto pin = cache_.Lookup(this, cold.cold_id)) return pin;
  std::lock_guard<std::mutex> lock(load_mu_);
  // A query pin may still hold the partition the cache already evicted;
  // revive it instead of re-reading disk.
  if (auto pin = cold.weak.lock()) {
    cache_.Insert(this, cold.cold_id, pin, cold.bytes);
    return pin;
  }
  AIQL_RETURN_IF_ERROR(Failpoint::Hit("retention.reopen",
                                      static_cast<int64_t>(cold.cold_id)));
  AIQL_ASSIGN_OR_RETURN(
      std::unique_ptr<EventPartition> partition,
      appender_->ReadPartition(cold.entry, db_->entities()));
  if (cold.bytes == 0) {
    cold.bytes = partition->MemoryFootprint();
  } else {
    reopens_.fetch_add(1, std::memory_order_relaxed);
  }
  std::shared_ptr<const EventPartition> pin(std::move(partition));
  cold.weak = pin;
  if (QueryContext* ctx = ScopedQueryContext::Current()) {
    AIQL_RETURN_IF_ERROR(ctx->ChargeMemory(cold.bytes));
  }
  cache_.Insert(this, cold.cold_id, pin, cold.bytes);
  return pin;
}

Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
TieredSelectPartitions(const ReadView& view, const TimeRange& range,
                       const std::optional<std::vector<AgentId>>& agents) {
  const TieredStore* store = view.tiered_;
  const auto& cold_dir =
      *static_cast<const TieredStore::ColdDir*>(view.tiered_cold_.get());
  const bool partitioned = view.options().enable_partitioning;

  std::vector<std::pair<PartitionKey, const EventPartition*>> out;
  // Both inputs are ordered by (bucket, agent, seq). Within one
  // (bucket, agent) the cold partitions carry the lower seqs (they were
  // sealed — and demoted — before any hot sibling existed), so emitting
  // cold before hot on a key tie preserves the all-hot selection order,
  // which is what makes tiered results byte-identical.
  size_t hot = 0;
  size_t cold = 0;
  const auto& hot_list = view.partitions_;
  while (hot < hot_list.size() || cold < cold_dir.size()) {
    bool take_cold;
    if (cold == cold_dir.size()) {
      take_cold = false;
    } else if (hot == hot_list.size()) {
      take_cold = true;
    } else {
      const auto& ce = cold_dir[cold]->entry;
      const PartitionKey& hk = hot_list[hot].first;
      take_cold = std::pair<int64_t, AgentId>(ce.bucket, ce.agent) <=
                  std::pair<int64_t, AgentId>(hk.bucket, hk.agent_id);
    }
    if (take_cold) {
      const TieredStore::ColdPartition& entry = *cold_dir[cold++];
      if (!PartitionStatsSelected(range, agents, partitioned,
                                  entry.entry.agent, entry.entry.min_ts,
                                  entry.entry.max_ts, entry.entry.events)) {
        continue;
      }
      AIQL_ASSIGN_OR_RETURN(std::shared_ptr<const EventPartition> pin,
                            store->MaterializeCold(entry));
      out.emplace_back(PartitionKey{entry.entry.bucket, entry.entry.agent},
                       pin.get());
      view.pins_->Add(std::move(pin));
    } else {
      const auto& [key, partition] = hot_list[hot++];
      if (!PartitionStatsSelected(range, agents, partitioned, key.agent_id,
                                  partition->min_ts(), partition->max_ts(),
                                  partition->size())) {
        continue;
      }
      out.emplace_back(key, partition);
    }
  }
  return out;
}

// =============================================================================
// maintenance
// =============================================================================

Status TieredStore::CommitColdDir(const ColdDir& dir) {
  std::vector<snapfmt::PartitionDirEntry> entries;
  entries.reserve(dir.size());
  for (const auto& cold : dir) entries.push_back(cold->entry);
  DatabaseStats stats = db_->StatsSnapshot();
  MergeStats(&stats, recovered_stats_);
  return appender_->Commit(db_->options(), stats, db_->entities(), entries);
}

Status TieredStore::MergeSmallPartitions() {
  if (retention_.compact_min_partitions < 2) return Status::OK();
  std::vector<std::pair<PartitionMapKey, const EventPartition*>> sealed =
      db_->ListSealedPartitions();

  // Group consecutive sealed siblings of one (bucket, agent); the listing
  // is already in (bucket, agent, seq) order.
  size_t i = 0;
  while (i < sealed.size()) {
    size_t j = i + 1;
    while (j < sealed.size() &&
           std::get<0>(sealed[j].first) == std::get<0>(sealed[i].first) &&
           std::get<1>(sealed[j].first) == std::get<1>(sealed[i].first)) {
      ++j;
    }
    if (j - i >= retention_.compact_min_partitions) {
      // Build the merged partition outside any lock: the sources are sealed
      // and only this (single) maintenance thread ever removes them. Events
      // are concatenated, NOT re-deduplicated — dedup already ran at ingest
      // within each source, so re-merging across rollover boundaries would
      // change the stored rows and break result identity.
      auto merged = std::make_unique<EventPartition>();
      std::vector<PartitionMapKey> keys;
      keys.reserve(j - i);
      {
        // Entity/partition stability while we read rows + rebuild stats.
        ReadView view = db_->OpenReadView();
        size_t total = 0;
        for (size_t k = i; k < j; ++k) total += sealed[k].second->size();
        merged->mutable_events()->reserve(total);
        for (size_t k = i; k < j; ++k) {
          keys.push_back(sealed[k].first);
          const std::vector<Event>& events = sealed[k].second->events();
          merged->mutable_events()->insert(merged->mutable_events()->end(),
                                           events.begin(), events.end());
        }
        merged->RebuildStats(db_->entities().processes());
      }
      merged->Seal();
      // Commit point of a merge. An injected error here proves that an
      // aborted compaction leaves every source partition untouched.
      AIQL_RETURN_IF_ERROR(Failpoint::Hit(
          "retention.compact.commit", static_cast<int64_t>(keys.size())));
      AIQL_RETURN_IF_ERROR(
          db_->ReplaceSealedPartitions(keys, std::move(merged)));
      merges_.fetch_add(1, std::memory_order_relaxed);
      merged_partitions_.fetch_add(keys.size(), std::memory_order_relaxed);
    }
    i = j;
  }
  return Status::OK();
}

Status TieredStore::DemoteColdPartitions() {
  int64_t newest = NewestBucket();
  if (newest == INT64_MIN) return Status::OK();
  int64_t demote_before = newest - retention_.hot_buckets;

  std::vector<std::pair<PartitionMapKey, const EventPartition*>> sealed =
      db_->ListSealedPartitions();
  std::vector<PartitionMapKey> keys;
  std::vector<const EventPartition*> partitions;
  for (const auto& [key, partition] : sealed) {
    if (std::get<0>(key) < demote_before) {
      keys.push_back(key);
      partitions.push_back(partition);
    }
  }
  if (keys.empty()) return Status::OK();

  // Next cold directory: current entries + the partitions being demoted.
  ColdDir next;
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    next = *cold_;
  }
  {
    // A read view pins the shared state lock: entities and the sealed
    // partitions stay stable while their segments stream to disk. This
    // stalls ingest batch commits for the duration of the demotion write,
    // exactly like any long-running query would.
    ReadView view = db_->OpenReadView();
    for (size_t i = 0; i < keys.size(); ++i) {
      AIQL_ASSIGN_OR_RETURN(
          snapfmt::PartitionDirEntry entry,
          appender_->AppendPartition(std::get<0>(keys[i]),
                                     std::get<1>(keys[i]),
                                     std::get<2>(keys[i]), *partitions[i]));
      auto cold = std::make_shared<ColdPartition>();
      cold->entry = entry;
      cold->cold_id = next_cold_id_++;
      next.push_back(std::move(cold));
      // Aging: a demoted partition's entities were last referenced no later
      // than its bucket.
      for (const Event& event : partitions[i]->events()) {
        db_->entities().TouchEntity(EntityType::kProcess, event.subject,
                                    std::get<0>(keys[i]));
        db_->entities().TouchEntity(event.object_type, event.object,
                                    std::get<0>(keys[i]));
      }
    }
    std::sort(next.begin(), next.end(),
              [](const std::shared_ptr<const ColdPartition>& a,
                 const std::shared_ptr<const ColdPartition>& b) {
                return EntryKey(a->entry) < EntryKey(b->entry);
              });
    // Durable commit. Failure (or a crash) before this point loses only
    // uncommitted appended bytes; the partitions remain hot.
    AIQL_RETURN_IF_ERROR(CommitColdDir(next));
  }

  // The partitions are durable; extract them from the hot map and publish
  // the new cold directory inside the same exclusive-lock window, so every
  // view sees each partition in exactly one tier.
  auto published = std::make_shared<const ColdDir>(std::move(next));
  bool done = false;
  db_->ExtractSealedPartitions(
      keys, [&](const PartitionMapKey&, std::unique_ptr<EventPartition>) {
        if (!done) {
          std::lock_guard<std::mutex> lock(tier_mu_);
          cold_ = published;
          done = true;
        }
        demotions_.fetch_add(1, std::memory_order_relaxed);
        // The RAM copy is dropped here; queries reopen from disk.
      });
  return Status::OK();
}

Status TieredStore::TombstoneExpired() {
  if (retention_.retention_buckets <= 0) return Status::OK();
  int64_t newest = NewestBucket();
  if (newest == INT64_MIN) return Status::OK();
  int64_t horizon = newest - retention_.retention_buckets;

  std::shared_ptr<const ColdDir> current;
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    current = cold_;
  }
  ColdDir keep;
  std::vector<std::shared_ptr<const ColdPartition>> dropped;
  for (const auto& cold : *current) {
    if (cold->entry.bucket < horizon) {
      dropped.push_back(cold);
    } else {
      keep.push_back(cold);
    }
  }
  if (dropped.empty()) return Status::OK();

  {
    // Entity stability for the META re-encode inside the commit.
    ReadView view = db_->OpenReadView();
    AIQL_RETURN_IF_ERROR(CommitColdDir(keep));
  }
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    cold_ = std::make_shared<const ColdDir>(std::move(keep));
  }
  for (const auto& cold : dropped) {
    // Views that captured the old directory keep their entries alive (and
    // the segments stay readable in the append log); only the budget charge
    // and the committed footer drop the partition.
    cache_.Erase(this, cold->cold_id);
  }
  tombstones_.fetch_add(dropped.size(), std::memory_order_relaxed);
  return Status::OK();
}

void TieredStore::AgeEntities() {
  if (retention_.retention_buckets <= 0) return;
  int64_t newest = NewestBucket();
  if (newest == INT64_MIN) return;
  entities_aged_.store(
      db_->entities().CountAgedEntities(newest - retention_.retention_buckets),
      std::memory_order_relaxed);
}

Status TieredStore::CompactOnce() {
  compactor_passes_.fetch_add(1, std::memory_order_relaxed);
  AIQL_RETURN_IF_ERROR(MergeSmallPartitions());
  AIQL_RETURN_IF_ERROR(DemoteColdPartitions());
  AIQL_RETURN_IF_ERROR(TombstoneExpired());
  AgeEntities();
  return Status::OK();
}

void TieredStore::StartCompactor() {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  if (compactor_.joinable()) return;
  compactor_stop_ = false;
  compactor_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(compactor_mu_);
    while (!compactor_stop_) {
      compactor_cv_.wait_for(
          lk, std::chrono::microseconds(retention_.compact_interval),
          [this] { return compactor_stop_; });
      if (compactor_stop_) break;
      lk.unlock();
      // Background pass; an injected failpoint error only skips this pass —
      // the next one retries from a consistent state.
      Status pass = CompactOnce();
      (void)pass;
      lk.lock();
    }
  });
}

void TieredStore::StopCompactor() {
  {
    std::lock_guard<std::mutex> lock(compactor_mu_);
    compactor_stop_ = true;
  }
  compactor_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

RetentionStats TieredStore::stats() const {
  RetentionStats out;
  out.hot_partitions = db_->ListSealedPartitions().size();
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    out.cold_partitions = cold_->size();
  }
  out.compactor_passes = compactor_passes_.load(std::memory_order_relaxed);
  out.merges = merges_.load(std::memory_order_relaxed);
  out.merged_partitions = merged_partitions_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  out.tombstones = tombstones_.load(std::memory_order_relaxed);
  out.commits = appender_->footer_seq();
  out.reopens = reopens_.load(std::memory_order_relaxed);
  out.entities_aged = entities_aged_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  return out;
}

}  // namespace aiql
