// Binary snapshot persistence for AuditDatabase.
//
// The deployed system keeps 0.5-1 year of monitoring data on disk; here we
// persist a sealed database as a single versioned binary snapshot (interners,
// entity tables, partitioned events) and can reload it with statistics and
// indexes rebuilt. The format is little-endian, length-prefixed, and guarded
// by magic + version + a trailing checksum.

#ifndef AIQL_STORAGE_SNAPSHOT_H_
#define AIQL_STORAGE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace aiql {

/// Serializes a sealed database to `path`. Fails if the database is not
/// sealed or on I/O errors.
Status SaveSnapshot(const AuditDatabase& db, const std::string& path);

/// Loads a snapshot previously written by SaveSnapshot. Returns a sealed
/// database. Detects truncation, bad magic, version mismatch, and checksum
/// corruption.
Result<AuditDatabase> LoadSnapshot(const std::string& path);

}  // namespace aiql

#endif  // AIQL_STORAGE_SNAPSHOT_H_
