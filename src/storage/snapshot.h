// On-disk snapshot persistence for AuditDatabase.
//
// The deployed system keeps 0.5-1 year of monitoring data on disk, so the
// snapshot format matters as much as the scan path: the v2 format written
// here is a compressed, partition-granular store that can be *opened*
// without being read. Layout (little-endian; full spec in
// docs/snapshot-format.md):
//
//   [header]   magic "AIQLSNP2" + format version
//   [segments] one META segment (string dictionaries + entity tables) and
//              one PARTITION segment per (bucket, agent, seq) partition —
//              columns delta/varint/RLE-encoded, posting lists and
//              statistics persisted so load skips the index rebuild
//   [footer]   segment directory: per-segment offset/length/checksum plus
//              per-partition statistics (time bounds, event and op counts)
//   [trailer]  footer offset + footer checksum + magic again
//
// SnapshotStore::Open reads only the trailer, footer, and META segment;
// partition segments are materialized lazily — and cached — when a query's
// time range and agent filter select them, so cold-start latency is driven
// by data touched, not data stored. Every section is independently
// checksummed; truncation and bit flips surface as clean Status errors.
//
// The v1 single-blob format (magic "AIQLSNP1") remains loadable through
// LoadSnapshot, and SaveSnapshotV1 keeps writing it for compatibility tests
// and size comparisons.

#ifndef AIQL_STORAGE_SNAPSHOT_H_
#define AIQL_STORAGE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace aiql {

class PartitionCache;

/// Byte sink for snapshot serialization. The production implementation
/// writes a file; tests inject failing sinks to prove that short writes,
/// sync failures, and close failures are reported instead of swallowed.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// Appends exactly `n` bytes; a partial write must return an error.
  virtual Status Append(const void* data, size_t n) = 0;

  /// Flushes buffered bytes to durable storage (fflush + fsync for files).
  virtual Status Sync() = 0;

  /// Releases the sink. Must fail if buffered bytes could not be committed.
  virtual Status Close() = 0;
};

/// Serializes a sealed database in v2 format into `sink`, then Sync() and
/// Close() it. Fails if the database is not sealed; any I/O error —
/// including a short write, a failed sync, or a failed close — is
/// propagated rather than reported as success.
Status SaveSnapshotToSink(const AuditDatabase& db, SnapshotSink* sink);

/// Serializes a sealed database to `path` in v2 format. Writes to a
/// temporary file first and renames it into place only after a successful
/// sync, so a failed save never leaves a truncated snapshot at `path`.
Status SaveSnapshot(const AuditDatabase& db, const std::string& path);

/// Legacy v1 single-blob writer, retained so compatibility tests can
/// generate v1 fixtures and benchmarks can compare on-disk sizes. New
/// snapshots should use SaveSnapshot (v2).
Status SaveSnapshotV1(const AuditDatabase& db, const std::string& path);

/// Fully loads a snapshot (v1 or v2) into a sealed database. Detects
/// truncation, bad magic, version mismatch, and checksum corruption. For
/// lazy, partition-granular access to a v2 snapshot use SnapshotStore::Open
/// instead.
Result<AuditDatabase> LoadSnapshot(const std::string& path);

/// A lazily opened v2 snapshot. Open() reads the footer directory, the
/// persisted statistics, and the entity/dictionary segment — no event data.
/// OpenReadView() then serves the same ReadView interface the engine uses
/// against a live database: partition selection runs on the persisted
/// per-partition statistics, and only the selected partitions are read,
/// checksum-verified, decoded, and cached.
///
/// Thread-safe: concurrent queries may materialize partitions through one
/// store; loads are serialized on an internal mutex while the
/// already-materialized fast path is lock-free.
class SnapshotStore {
 public:
  /// Opens a v2 snapshot. Returns InvalidArgument for v1 snapshots (use
  /// LoadSnapshot), Corruption/IOError for damaged files.
  static Result<std::unique_ptr<SnapshotStore>> Open(const std::string& path);

  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  const std::string& path() const { return path_; }
  const EntityStore& entities() const { return entities_; }
  const StorageOptions& options() const { return options_; }

  /// Database-wide statistics as persisted at save time.
  const DatabaseStats& stats() const { return stats_; }

  uint64_t total_partitions() const { return handles_.size(); }

  /// Partition materializations so far (monotone; for tests and metrics).
  /// With a cache attached this counts every decode, including reopens of
  /// previously evicted partitions.
  uint64_t loaded_partitions() const {
    return loaded_count_.load(std::memory_order_relaxed);
  }

  /// Attaches a memory-budgeted LRU cache (borrowed; must outlive the
  /// store). Materialized partitions are then owned by the cache plus any
  /// query pins instead of being held forever: when the cache evicts one
  /// under budget pressure, the next selection reopens it from disk (the
  /// `retention.reopen` failpoint covers that path). Call before the store
  /// is shared across threads.
  void AttachCache(PartitionCache* cache);
  PartitionCache* cache() const { return cache_; }

  /// Cache-mode reopen decodes (a reopen is any decode after the first).
  uint64_t reopens() const {
    return reopens_.load(std::memory_order_relaxed);
  }

  /// Materializes partition `index`, returning a pin that keeps it alive
  /// independent of cache eviction. Without a cache the pin aliases the
  /// store-owned partition.
  Result<std::shared_ptr<const EventPartition>> MaterializePartition(
      size_t index) const;

  /// Opens a snapshot-backed read view over this store. The view's
  /// SelectPartitions materializes exactly the partitions it selects. The
  /// store must outlive the view.
  ReadView OpenReadView() const;

  /// Sealed partitions overlapping `range` / `agents`, materializing (and
  /// caching) each selected partition. Ordered by (bucket, agent, seq).
  /// With a cache attached, each materialized partition is pinned into
  /// `pins` so eviction cannot invalidate the returned pointers; passing
  /// no pin set falls back to pinning inside the store (never reclaimed).
  Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
  SelectPartitions(const TimeRange& range,
                   const std::optional<std::vector<AgentId>>& agents,
                   PartitionPinSet* pins) const;

  Result<std::vector<std::pair<PartitionKey, const EventPartition*>>>
  SelectPartitions(const TimeRange& range,
                   const std::optional<std::vector<AgentId>>& agents) const {
    return SelectPartitions(range, agents, nullptr);
  }

  /// Materializes every partition (full-load compat path).
  Status MaterializeAll() const;

  /// Consumes the store into a standalone sealed AuditDatabase (full
  /// materialization) — the LoadSnapshot compat path for v2 files.
  Result<AuditDatabase> ToDatabase() &&;

 private:
  struct PartitionHandle;

  SnapshotStore() = default;

  /// Materializes handle `index` if needed; returns the sealed partition.
  Result<const EventPartition*> Partition(size_t index) const;

  /// Reads + checksum-verifies + decodes segment `index` (load_mu_ held).
  Result<std::unique_ptr<EventPartition>> DecodeHandleLocked(
      size_t index) const;

  std::string path_;
  FILE* file_ = nullptr;
  StorageOptions options_;
  EntityStore entities_;
  DatabaseStats stats_;
  // Segment reads + materialization are serialized; `loaded` publication
  // makes the fast path lock-free.
  mutable std::mutex load_mu_;
  mutable std::atomic<uint64_t> loaded_count_{0};
  mutable std::atomic<uint64_t> reopens_{0};
  mutable std::vector<std::unique_ptr<PartitionHandle>> handles_;
  PartitionCache* cache_ = nullptr;  // borrowed; null = keep-forever mode
};

}  // namespace aiql

#endif  // AIQL_STORAGE_SNAPSHOT_H_
