// Incremental snapshot appends for tiered retention.
//
// SaveSnapshot writes a whole sealed database in one shot; a retention
// directory instead grows over the lifetime of a long-running server as the
// compactor demotes cold partitions to disk one at a time. SnapshotAppender
// manages such a directory:
//
//   <dir>/DATA        v2 header + an append log of META / PARTITION
//                     segments, byte-identical to the segments SaveSnapshot
//                     writes (shared codec in storage/snapshot_format.h)
//   <dir>/FOOTER.<n>  commit n: footer directory bytes + trailer, where the
//                     trailer's footer_offset records DATA's durable length
//                     (`data_end`) at commit time
//
// Appends land in DATA immediately but become visible only when Commit()
// fsyncs DATA and publishes FOOTER.<n+1> via tmp-file + rename + directory
// fsync. Open() recovers by picking the highest FOOTER.<n> whose checksum,
// trailer, and segment bounds validate against DATA — so a crash at any
// point (mid-append, mid-commit, mid-rename) falls back to the previous
// committed state with no partition loss and no repair step. A few older
// footers are retained as an extra safety margin against a torn latest
// footer; everything older is pruned at commit.
//
// Thread-compatibility: one appender thread; ReadPartition may be called
// concurrently with appends (both serialize on an internal I/O mutex).

#ifndef AIQL_STORAGE_SNAPSHOT_APPEND_H_
#define AIQL_STORAGE_SNAPSHOT_APPEND_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/snapshot_format.h"

namespace aiql {

class SnapshotAppender {
 public:
  /// Committed state read back by Open() from the newest valid footer.
  struct RecoveredState {
    StorageOptions options;
    DatabaseStats stats;
    EntityStore entities;
    std::vector<snapfmt::PartitionDirEntry> partitions;
    uint64_t footer_seq = 0;  ///< <n> of the footer recovered from
    uint64_t data_end = 0;    ///< durable DATA length at that commit
  };

  /// Opens (creating if needed) a retention directory. An existing
  /// directory is recovered from its newest valid footer; uncommitted DATA
  /// bytes past that footer's data_end are simply overwritten by subsequent
  /// appends. A directory with no valid footer starts empty.
  static Result<std::unique_ptr<SnapshotAppender>> Open(
      const std::string& dir);

  ~SnapshotAppender();

  SnapshotAppender(const SnapshotAppender&) = delete;
  SnapshotAppender& operator=(const SnapshotAppender&) = delete;

  const std::string& dir() const { return dir_; }

  /// State recovered at Open(); nullopt for a fresh directory.
  std::optional<RecoveredState>& recovered() { return recovered_; }

  /// Durable DATA length as of the last commit.
  uint64_t committed_data_end() const { return committed_data_end_; }

  /// Footer commits so far (monotone across restarts).
  uint64_t footer_seq() const { return footer_seq_; }

  /// Encodes `partition` and appends its segment to DATA. NOT durable (and
  /// not visible to recovery) until the next Commit(). The returned
  /// directory entry carries the segment ref + partition statistics; the
  /// caller accumulates entries and passes the full set to Commit(). The
  /// `retention.demote.write` failpoint covers the segment write.
  Result<snapfmt::PartitionDirEntry> AppendPartition(
      int64_t bucket, AgentId agent, uint32_t seq,
      const EventPartition& partition);

  /// Publishes a new committed state: appends a fresh META segment (the
  /// entity store grows monotonically, so it is re-encoded each commit),
  /// fsyncs DATA, then writes FOOTER.<n+1> describing `partitions` —
  /// tmp-file + rename + directory fsync — and prunes footers older than
  /// the last kKeepFooters. On any error the directory still recovers to
  /// the previous commit. The `retention.commit` failpoint fires after the
  /// DATA fsync, before the footer becomes visible.
  Status Commit(const StorageOptions& options, const DatabaseStats& stats,
                const EntityStore& entities,
                const std::vector<snapfmt::PartitionDirEntry>& partitions);

  /// Reads back one committed partition segment (checksum-verified,
  /// structurally revalidated by the shared decoder).
  Result<std::unique_ptr<EventPartition>> ReadPartition(
      const snapfmt::PartitionDirEntry& entry,
      const EntityStore& entities) const;

  /// Old footers kept beyond the newest (crash-recovery safety margin).
  static constexpr uint64_t kKeepFooters = 4;

 private:
  SnapshotAppender() = default;

  Status WriteAt(uint64_t offset, const void* data, size_t n);

  std::string dir_;
  std::string data_path_;
  FILE* file_ = nullptr;           // DATA, "r+b"
  mutable std::mutex io_mu_;       // serializes seeks/reads/writes on file_
  uint64_t write_offset_ = 0;      // next append position in DATA
  uint64_t committed_data_end_ = 0;
  uint64_t footer_seq_ = 0;
  std::optional<RecoveredState> recovered_;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_SNAPSHOT_APPEND_H_
