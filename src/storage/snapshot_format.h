// Shared building blocks of the snapshot v2 on-disk format, used by both
// the write-once snapshot writer (storage/snapshot.cc) and the incremental
// append-log writer (storage/snapshot_append.cc).
//
// Everything here is byte-layout code: little-endian fixed-width helpers, a
// bounds-checked decode cursor, the segment/footer encoders and their
// validating decoders. Keeping one copy guarantees that a partition segment
// appended incrementally to a retention directory is byte-identical to the
// same partition written by SaveSnapshot, so the two stores share decoders,
// checksums, and corruption handling.
//
// Internal header — not part of the public storage API surface.

#ifndef AIQL_STORAGE_SNAPSHOT_FORMAT_H_
#define AIQL_STORAGE_SNAPSHOT_FORMAT_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace aiql {
namespace snapfmt {

// --- format constants --------------------------------------------------------

inline constexpr uint64_t kV2Magic = 0x4149514C534E5032ULL;  // "AIQLSNP2"
// Version 3 added the reverse entity indexes (subject / object posting
// lists) to the partition segments, so provenance hops served from a lazy
// snapshot need no index rebuild.
inline constexpr uint32_t kV2Version = 3;
inline constexpr size_t kV2HeaderSize = 8 + 4;   // magic + version
inline constexpr size_t kV2TrailerSize = 8 * 3;  // footer off + cksum + magic

// --- little-endian fixed-width helpers (host-independent) --------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
uint32_t GetFixed32(const char* p);
uint64_t GetFixed64(const char* p);

// --- bounds-checked decode cursor -------------------------------------------

/// Cursor over one checksummed byte section. Every accessor fails sticky on
/// truncation, so decode loops can check ok() once at the end.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes)
      : p_(bytes.data()), limit_(bytes.data() + bytes.size()) {}

  uint64_t U64();
  int64_t I64();
  uint8_t Byte();
  /// A `n`-byte string view into the section (valid while it stays alive).
  std::string_view Bytes(size_t n);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && p_ == limit_; }
  size_t remaining() const { return static_cast<size_t>(limit_ - p_); }

 private:
  const char* p_;
  const char* limit_;
  bool ok_ = true;
};

// --- 64-bit-safe positioning -------------------------------------------------
// plain fseek/ftell take `long`, which is 32-bit on LLP64 platforms and
// would cap snapshots at 2 GiB — far below the 0.5-1 year retention the
// deployed system targets.

int Seek64(FILE* file, int64_t offset, int whence);
int64_t Tell64(FILE* file);

// --- footer directory structures --------------------------------------------

struct SegmentRef {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

struct PartitionDirEntry {
  int64_t bucket = 0;
  AgentId agent = 0;
  uint32_t seq = 0;
  SegmentRef segment;
  uint64_t events = 0;
  uint64_t raw_events = 0;
  Timestamp min_ts = INT64_MAX;
  Timestamp max_ts = INT64_MIN;
  std::array<uint64_t, kNumOpTypes> op_counts{};
};

struct FooterData {
  StorageOptions options;
  DatabaseStats stats;
  SegmentRef meta;
  std::vector<PartitionDirEntry> partitions;
};

/// Fills a directory entry's statistics from a sealed partition.
PartitionDirEntry MakeDirEntry(int64_t bucket, AgentId agent, uint32_t seq,
                               const SegmentRef& segment,
                               const EventPartition& partition);

// --- encoders ----------------------------------------------------------------

/// v2 file header: magic + format version.
void EncodeHeader(std::string* out);

/// META segment: the five string dictionaries in id order, then the entity
/// tables referencing them by varint id.
void EncodeMetaSegment(const EntityStore& entities, std::string* out);

/// PARTITION segment: columnar event encoding plus the seal artifacts.
void EncodePartitionSegment(const EventPartition& partition, std::string* out);

/// Footer directory bytes (options, stats, META ref, partition directory) —
/// the caller checksums them and writes the trailer.
void EncodeFooter(const FooterData& footer, std::string* out);

/// Trailer: footer offset (= end of the data area), footer checksum, magic.
void EncodeTrailer(uint64_t footer_offset, uint64_t footer_checksum,
                   std::string* out);

// --- decoders ----------------------------------------------------------------

/// Parses the (already checksum-verified) footer. `data_end` is the file
/// offset where the footer begins — all segments must end before it.
Status DecodeFooter(std::string_view bytes, uint64_t data_end,
                    FooterData* footer);

/// Decodes the META segment into an empty entity store.
Status DecodeMetaSegment(std::string_view bytes, EntityStore* store);

/// Decodes one partition segment and installs it as a sealed partition.
/// Every structural invariant is revalidated (not just checksummed):
/// posting coverage, entity-id bounds, statistic agreement with the footer
/// directory — so a decoder bug or an improbable checksum collision cannot
/// smuggle malformed state into the engine.
Status DecodePartitionSegment(std::string_view bytes,
                              const PartitionDirEntry& entry,
                              const EntityStore& store,
                              EventPartition* partition);

}  // namespace snapfmt
}  // namespace aiql

#endif  // AIQL_STORAGE_SNAPSHOT_FORMAT_H_
