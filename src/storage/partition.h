// Time x agent event partitions ("hypertable" storage, paper §2.1).
//
// Events are bucketed by (time bucket, agent id). Each partition keeps its
// events sorted by start timestamp once sealed, plus lightweight statistics
// (per-operation counts, per-subject-exe counts) that feed the engine's
// pruning-power estimator. Partitions are the unit of parallel scanning.
//
// Sealing additionally materializes two read-path artifacts:
//   * a structure-of-arrays column view (EventColumns) so time-range +
//     op-mask scans touch only the columns they test, and
//   * per-operation posting lists (sorted event indexes with a start-ts
//     zone map) so op-selective scans iterate only matching events.
// The row `events()` API stays authoritative for snapshot/graph/SQL
// callers; columns and postings are derived and rebuilt on every Seal().

#ifndef AIQL_STORAGE_PARTITION_H_
#define AIQL_STORAGE_PARTITION_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "storage/data_model.h"

namespace aiql {

/// Identifies one partition: `bucket` is start_ts / partition_duration.
struct PartitionKey {
  int64_t bucket = 0;
  AgentId agent_id = 0;

  bool operator==(const PartitionKey&) const = default;
};

struct PartitionKeyHash {
  size_t operator()(const PartitionKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.bucket) * 0x9E3779B97F4A7C15ULL +
                 k.agent_id;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

/// Structure-of-arrays view over a sealed partition's events (one entry per
/// row of `events()`, in the same sorted order).
struct EventColumns {
  std::vector<Timestamp> start_ts;
  std::vector<Timestamp> end_ts;
  std::vector<EntityId> subject;
  std::vector<EntityId> object;
  std::vector<AgentId> agent_id;
  std::vector<uint64_t> amount;
  std::vector<OpType> op;
  std::vector<EntityType> object_type;

  size_t size() const { return start_ts.size(); }
  void Clear();
  void Reserve(size_t n);
  void PushBack(const Event& event);
};

/// Sorted event indexes of one operation, with a start-ts zone map. Because
/// event indexes ascend in start-ts order, a posting list is itself sorted
/// by start_ts and supports binary-searched time clipping.
struct OpPostingList {
  std::vector<uint32_t> indexes;
  Timestamp min_start_ts = INT64_MAX;
  Timestamp max_start_ts = INT64_MIN;

  bool empty() const { return indexes.empty(); }
  size_t size() const { return indexes.size(); }
};

/// One partition's events and statistics.
class EventPartition {
 public:
  EventPartition() { op_counts_.fill(0); }

  /// Appends an event, attempting merge-deduplication: a raw event with the
  /// same (subject, op, object_type, object) whose start falls within
  /// `dedup_window` of the previous occurrence's end is merged into it
  /// (interval extended, amounts summed, merge_count incremented).
  /// Pass dedup_window = 0 to disable merging. Returns true if merged.
  bool Append(const Event& event, Duration dedup_window);

  /// Sorts events by (start_ts, end_ts), freezes the partition, and builds
  /// the columnar view plus per-operation posting lists.
  void Seal();

  bool sealed() const { return sealed_; }
  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Columnar view over the sorted events (valid once sealed).
  const EventColumns& columns() const { return columns_; }

  /// Posting list of `op` (valid once sealed).
  const OpPostingList& posting(OpType op) const {
    return op_postings_[static_cast<size_t>(op)];
  }

  /// Position range [lo, hi) within posting(op) whose events start inside
  /// `range`. Zone-map clipped, then binary searched (partition sealed).
  std::pair<size_t, size_t> PostingRange(OpType op,
                                         const TimeRange& range) const;

  /// Exact number of events whose op is in `mask` and whose start_ts falls
  /// in `range` — the estimator's time-clipped sharpening of OpMaskCount.
  uint64_t OpCountInRange(OpMask mask, const TimeRange& range) const;

  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }

  /// Events whose operation is `op`.
  uint64_t OpCount(OpType op) const {
    return op_counts_[static_cast<size_t>(op)];
  }
  /// Events whose operation is in `mask`.
  uint64_t OpMaskCount(OpMask mask) const;

  /// Events whose subject process has the given exe-name string id.
  uint64_t SubjectExeCount(StringId exe) const;

  /// Map of subject exe-name id -> event count (for the estimator).
  const std::unordered_map<StringId, uint64_t>& subject_exe_counts() const {
    return subject_exe_counts_;
  }

  /// Index of the first event with start_ts >= t (partition must be sealed).
  size_t LowerBound(Timestamp t) const;

  /// Raw (pre-dedup) events represented, i.e. sum of merge counts.
  uint64_t raw_event_count() const { return raw_count_; }

  /// Internal mutable access used by snapshot loading.
  std::vector<Event>* mutable_events() { return &events_; }
  /// Recomputes statistics from `events_` (after snapshot load).
  void RebuildStats(const std::vector<ProcessEntity>& processes);

 private:
  struct MergeKey {
    EntityId subject;
    EntityId object;
    OpType op;
    EntityType object_type;
    bool operator==(const MergeKey&) const = default;
  };
  struct MergeKeyHash {
    size_t operator()(const MergeKey& k) const {
      uint64_t h = k.subject;
      h = h * 0x9E3779B97F4A7C15ULL + k.object;
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(k.op);
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(k.object_type);
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  void AccountEvent(const Event& event, StringId subject_exe);
  void BuildSealArtifacts();

  std::vector<Event> events_;
  EventColumns columns_;
  std::array<OpPostingList, kNumOpTypes> op_postings_;
  bool sealed_ = false;
  Timestamp min_ts_ = INT64_MAX;
  Timestamp max_ts_ = INT64_MIN;
  uint64_t raw_count_ = 0;
  std::array<uint64_t, kNumOpTypes> op_counts_;
  std::unordered_map<StringId, uint64_t> subject_exe_counts_;
  // Last event index per merge key (cleared on Seal()).
  std::unordered_map<MergeKey, size_t, MergeKeyHash> merge_tail_;
  // Exe id of each event's subject, tracked during ingest for stats; the
  // database passes it in via AppendWithExe.
  friend class AuditDatabase;
  bool AppendWithExe(const Event& event, StringId subject_exe,
                     Duration dedup_window);
};

}  // namespace aiql

#endif  // AIQL_STORAGE_PARTITION_H_
