// Time x agent event partitions ("hypertable" storage, paper §2.1).
//
// Events are bucketed by (time bucket, agent id). Each partition keeps its
// events sorted by start timestamp once sealed, plus lightweight statistics
// (per-operation counts, per-subject-exe counts) that feed the engine's
// pruning-power estimator. Partitions are the unit of parallel scanning.
//
// Sealing additionally materializes three read-path artifacts:
//   * a structure-of-arrays column view (EventColumns) so time-range +
//     op-mask scans touch only the columns they test,
//   * per-operation posting lists (sorted event indexes with a start-ts
//     zone map) so op-selective scans iterate only matching events, and
//   * a reverse entity index (CSR posting lists keyed by subject process id
//     and by (object type, object id)) so provenance tracking can expand a
//     frontier entity without scanning the partition.
// The row `events()` API stays authoritative for snapshot/graph/SQL
// callers; columns and postings are derived and rebuilt on every Seal().

#ifndef AIQL_STORAGE_PARTITION_H_
#define AIQL_STORAGE_PARTITION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "storage/data_model.h"

namespace aiql {

/// Identifies one partition: `bucket` is start_ts / partition_duration.
struct PartitionKey {
  int64_t bucket = 0;
  AgentId agent_id = 0;

  bool operator==(const PartitionKey&) const = default;
};

struct PartitionKeyHash {
  size_t operator()(const PartitionKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.bucket) * 0x9E3779B97F4A7C15ULL +
                 k.agent_id;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

/// Structure-of-arrays view over a sealed partition's events (one entry per
/// row of `events()`, in the same sorted order).
struct EventColumns {
  std::vector<Timestamp> start_ts;
  std::vector<Timestamp> end_ts;
  std::vector<EntityId> subject;
  std::vector<EntityId> object;
  std::vector<AgentId> agent_id;
  std::vector<uint64_t> amount;
  std::vector<OpType> op;
  std::vector<EntityType> object_type;

  size_t size() const { return start_ts.size(); }
  void Clear();
  void Reserve(size_t n);
  void PushBack(const Event& event);
};

/// CSR-layout posting index from an entity key to the ascending event
/// indexes referencing that entity. Built at Seal(); persisted through
/// snapshot v2 so a lazily materialized partition needs no index rebuild.
/// Because event indexes ascend in start-ts order, each per-entity list is
/// itself time-sorted and supports binary-searched clipping.
struct EntityPostingIndex {
  std::vector<uint64_t> keys;     ///< sorted, unique entity keys
  std::vector<uint32_t> offsets;  ///< keys.size() + 1 group boundaries
  std::vector<uint32_t> indexes;  ///< event indexes, grouped by key

  bool empty() const { return keys.empty(); }
  size_t num_keys() const { return keys.size(); }
  void Clear();

  /// Event indexes of `key` as a [first, last) pointer range; both null
  /// when the key has no events in this partition.
  std::pair<const uint32_t*, const uint32_t*> Lookup(uint64_t key) const;
};

/// Sorted event indexes of one operation, with a start-ts zone map. Because
/// event indexes ascend in start-ts order, a posting list is itself sorted
/// by start_ts and supports binary-searched time clipping.
struct OpPostingList {
  std::vector<uint32_t> indexes;
  Timestamp min_start_ts = INT64_MAX;
  Timestamp max_start_ts = INT64_MIN;

  bool empty() const { return indexes.empty(); }
  size_t size() const { return indexes.size(); }
};

/// One partition's events and statistics.
class EventPartition {
 public:
  EventPartition() { op_counts_.fill(0); }

  /// Appends an event, attempting merge-deduplication: a raw event with the
  /// same (subject, op, object_type, object) whose start falls within
  /// `dedup_window` of the previous occurrence's end is merged into it
  /// (interval extended, amounts summed, merge_count incremented).
  /// Pass dedup_window = 0 to disable merging. Returns true if merged.
  bool Append(const Event& event, Duration dedup_window);

  /// Sorts events by (start_ts, end_ts), freezes the partition, and builds
  /// the columnar view plus per-operation posting lists. Idempotent: a
  /// partition already sealing (concurrently, on a background thread) or
  /// sealed is left alone.
  void Seal();

  /// Atomically claims the open -> sealing transition. The caller that wins
  /// must call FinishSeal() exactly once; everyone else must not touch the
  /// partition's write side again. Used by the database to hand a closed
  /// partition to a background sealing task exactly once.
  bool TryBeginSeal();

  /// Sorts, builds the seal artifacts, and publishes the sealed flag
  /// (release). Precondition: this thread won TryBeginSeal(). May run
  /// without any database lock — the partition is unreachable for writes
  /// once closed, and readers ignore it until sealed() observes true.
  void FinishSeal();

  /// True once FinishSeal() has published the artifacts (acquire: a true
  /// result also makes the sorted events/columns/postings visible).
  bool sealed() const {
    return seal_state_.load(std::memory_order_acquire) == kSealed;
  }
  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Columnar view over the sorted events (valid once sealed).
  const EventColumns& columns() const { return columns_; }

  /// Posting list of `op` (valid once sealed).
  const OpPostingList& posting(OpType op) const {
    return op_postings_[static_cast<size_t>(op)];
  }

  /// Position range [lo, hi) within posting(op) whose events start inside
  /// `range`. Zone-map clipped, then binary searched (partition sealed).
  std::pair<size_t, size_t> PostingRange(OpType op,
                                         const TimeRange& range) const;

  /// Exact number of events whose op is in `mask` and whose start_ts falls
  /// in `range` — the estimator's time-clipped per-operation count.
  uint64_t OpCountInRange(OpMask mask, const TimeRange& range) const;

  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }

  /// Events whose operation is `op`.
  uint64_t OpCount(OpType op) const {
    return op_counts_[static_cast<size_t>(op)];
  }
  /// Events whose subject process has the given exe-name string id.
  uint64_t SubjectExeCount(StringId exe) const;

  /// Map of subject exe-name id -> event count (for the estimator).
  const std::unordered_map<StringId, uint64_t>& subject_exe_counts() const {
    return subject_exe_counts_;
  }

  /// Index of the first event with start_ts >= t (partition must be sealed).
  size_t LowerBound(Timestamp t) const;

  /// Key of an object entity in the reverse index.
  static uint64_t ObjectKey(EntityType type, EntityId id) {
    return (static_cast<uint64_t>(type) << 32) | id;
  }

  /// Reverse index over event subjects (key = subject process id); valid
  /// once sealed.
  const EntityPostingIndex& subject_index() const { return subject_index_; }
  /// Reverse index over event objects (key = ObjectKey(type, id)); valid
  /// once sealed.
  const EntityPostingIndex& object_index() const { return object_index_; }

  /// Ascending event indexes whose subject is `subject`.
  std::pair<const uint32_t*, const uint32_t*> SubjectPostings(
      EntityId subject) const {
    return subject_index_.Lookup(subject);
  }
  /// Ascending event indexes whose object is (`type`, `id`).
  std::pair<const uint32_t*, const uint32_t*> ObjectPostings(
      EntityType type, EntityId id) const {
    return object_index_.Lookup(ObjectKey(type, id));
  }

  /// Raw (pre-dedup) events represented, i.e. sum of merge counts.
  uint64_t raw_event_count() const { return raw_count_; }

  /// Heap bytes held by this partition's rows, columns, posting lists and
  /// reverse indexes. This is what a PartitionCache charges against its
  /// byte budget when the partition is materialized from cold storage.
  size_t MemoryFootprint() const;

  /// Internal mutable access used by snapshot loading.
  std::vector<Event>* mutable_events() { return &events_; }
  /// Recomputes statistics from `events_` (after snapshot load).
  void RebuildStats(const std::vector<ProcessEntity>& processes);

  /// Snapshot-v2 load hook: installs a fully sealed partition wholesale —
  /// sorted events, posting lists, the reverse entity indexes, and
  /// statistics are adopted as persisted, so loading performs no sort and no
  /// index rebuild (the columnar view is re-derived in one linear pass).
  /// Precondition: the partition is empty, `events` is sorted by (start_ts,
  /// end_ts), `postings` partitions the event indexes by operation, and
  /// `subject_index` / `object_index` cover every event exactly once (the
  /// snapshot reader validates all of these before calling). Zone maps are
  /// derived from the postings.
  void RestoreSealed(std::vector<Event> events,
                     std::array<OpPostingList, kNumOpTypes> postings,
                     EntityPostingIndex subject_index,
                     EntityPostingIndex object_index,
                     std::unordered_map<StringId, uint64_t> subject_exe_counts,
                     uint64_t raw_count);

 private:
  struct MergeKey {
    EntityId subject;
    EntityId object;
    OpType op;
    EntityType object_type;
    bool operator==(const MergeKey&) const = default;
  };
  struct MergeKeyHash {
    size_t operator()(const MergeKey& k) const {
      uint64_t h = k.subject;
      h = h * 0x9E3779B97F4A7C15ULL + k.object;
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(k.op);
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(k.object_type);
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  enum SealState : uint8_t { kOpen = 0, kSealing = 1, kSealed = 2 };

  void AccountEvent(const Event& event, StringId subject_exe);
  void BuildSealArtifacts();

  std::vector<Event> events_;
  EventColumns columns_;
  std::array<OpPostingList, kNumOpTypes> op_postings_;
  EntityPostingIndex subject_index_;
  EntityPostingIndex object_index_;
  std::atomic<uint8_t> seal_state_{kOpen};
  Timestamp min_ts_ = INT64_MAX;
  Timestamp max_ts_ = INT64_MIN;
  uint64_t raw_count_ = 0;
  std::array<uint64_t, kNumOpTypes> op_counts_;
  std::unordered_map<StringId, uint64_t> subject_exe_counts_;
  // Last event index per merge key (cleared on Seal()).
  std::unordered_map<MergeKey, size_t, MergeKeyHash> merge_tail_;
  // Exe id of each event's subject, tracked during ingest for stats; the
  // database passes it in via AppendWithExe.
  friend class AuditDatabase;
  bool AppendWithExe(const Event& event, StringId subject_exe,
                     Duration dedup_window);
};

}  // namespace aiql

#endif  // AIQL_STORAGE_PARTITION_H_
