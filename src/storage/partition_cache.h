// Memory-budgeted LRU cache of materialized cold partitions.
//
// A cold partition lives on disk (snapshot v2 store or append-log
// directory) and is materialized on first access. The cache bounds how
// many of those materializations stay resident: each insert charges the
// partition's actual MemoryFootprint() against a global byte budget and
// evicts least-recently-used entries until the charge fits.
//
// Entries are handed out as `std::shared_ptr<const EventPartition>` pins.
// Eviction only drops the cache's own reference — a query holding a pin
// keeps the partition alive (and readable) even after the budget evicted
// it, so budget pressure can never invalidate memory a scan is touching.
// The evicted bytes are uncharged immediately; the pinned copy is the
// query's to pay for (QueryContext::ChargeMemory at materialize time).
//
// Keys are (owner, index): `owner` is an opaque pointer identifying the
// store the partition came from (a SnapshotStore / TieredStore), `index`
// the partition's slot within it. EraseOwner() drops every entry of a
// store being destroyed. All methods are thread-safe.

#ifndef AIQL_STORAGE_PARTITION_CACHE_H_
#define AIQL_STORAGE_PARTITION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace aiql {

class EventPartition;

/// Snapshot of cache occupancy and activity counters.
struct PartitionCacheStats {
  uint64_t budget_bytes = 0;   ///< configured budget (0 = unlimited)
  uint64_t charged_bytes = 0;  ///< bytes currently charged by residents
  uint64_t resident = 0;       ///< entries currently cached
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

/// LRU cache of materialized partitions under a global byte budget.
class PartitionCache {
 public:
  /// `budget_bytes` = 0 means unlimited (nothing is ever evicted).
  explicit PartitionCache(size_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// Returns the cached partition for (owner, index) and marks it most
  /// recently used, or nullptr on a miss.
  std::shared_ptr<const EventPartition> Lookup(const void* owner,
                                               size_t index);

  /// Inserts (owner, index) -> partition charging `bytes` against the
  /// budget, evicting LRU entries first so the new charge fits (the new
  /// entry itself is always admitted, even when larger than the whole
  /// budget — the caller already materialized it). Replaces any existing
  /// entry for the key.
  void Insert(const void* owner, size_t index,
              std::shared_ptr<const EventPartition> partition, size_t bytes);

  /// Drops one entry (no-op when absent).
  void Erase(const void* owner, size_t index);

  /// Drops every entry belonging to `owner` (store teardown).
  void EraseOwner(const void* owner);

  /// Changes the budget; shrinking evicts immediately.
  void SetBudget(size_t budget_bytes);

  PartitionCacheStats stats() const;

 private:
  struct Key {
    const void* owner;
    size_t index;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = reinterpret_cast<uintptr_t>(k.owner);
      h = h * 0x9E3779B97F4A7C15ULL + k.index;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const EventPartition> partition;
    size_t bytes = 0;
  };

  /// Evicts LRU entries until charged_bytes_ + incoming <= budget (or the
  /// cache is empty). Caller holds mu_.
  void EvictToFitLocked(size_t incoming);

  mutable std::mutex mu_;
  size_t budget_bytes_;
  size_t charged_bytes_ = 0;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace aiql

#endif  // AIQL_STORAGE_PARTITION_CACHE_H_
