// AiqlServer — the long-lived network front-end over the query engine
// (ROADMAP item 1): a TCP listener speaking the length-prefixed protocol
// of server/protocol.h, multiplexing concurrent client sessions over one
// sharded (or single-database) AiqlEngine.
//
// Threading: one accept thread, one thread per live session reading
// frames, and a bounded ThreadPool executing queries. Admission control
// sits in front of the pool: at most `max_concurrent_queries` queries run
// at once, at most `admission_queue_depth` more wait (bounded, with a
// wait deadline); anything beyond that is refused immediately with
// kResourceExhausted — overload produces a clean reply, never unbounded
// queueing. Session connects beyond `max_sessions` are likewise refused
// with an error frame before close.
//
// Per-session state: the session's QueryLimits (deadline + row/node/byte
// budgets, enforced through a per-query QueryContext bound via
// ScopedQueryContext on the executing thread), its engine selection
// (single-database vs the shard map, strict vs partial degradation), and
// the DegradedInfo of its last sharded query.

#ifndef AIQL_SERVER_AIQL_SERVER_H_
#define AIQL_SERVER_AIQL_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/net.h"
#include "common/thread_pool.h"
#include "engine/aiql_engine.h"
#include "engine/scheduler.h"
#include "server/protocol.h"

namespace aiql {

class AuditDatabase;
class ShardMap;
class TieredStore;

/// Admission control for one shared execution resource: up to
/// `max_running` holders at once, up to `max_waiting` queued behind them
/// (each waiting at most `max_wait`), everything else refused immediately
/// with kResourceExhausted. Thread-safe.
class AdmissionGate {
 public:
  AdmissionGate(size_t max_running, size_t max_waiting,
                std::chrono::milliseconds max_wait);

  /// Acquires a running slot: immediate when one is free, bounded wait
  /// when the queue has room, kResourceExhausted otherwise (queue full or
  /// wait expired), kCancelled after Shutdown().
  Status Enter();

  /// Releases a slot acquired by a successful Enter().
  void Leave();

  /// Wakes every waiter with kCancelled; subsequent Enters fail.
  void Shutdown();

  /// Adjusts the running-slot cap (clamped to >= 1). Lowering it never
  /// evicts running holders — the gate just stops admitting until enough
  /// Leave(); raising it wakes waiters. Used by the server to shed query
  /// concurrency while the cold-partition cache is over budget.
  void SetMaxRunning(size_t max_running);

  size_t running() const;
  size_t waiting() const;
  size_t max_running() const;

 private:
  size_t max_running_;  ///< guarded by mu_
  const size_t max_waiting_;
  const std::chrono::milliseconds max_wait_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t waiting_ = 0;
  bool shutdown_ = false;
};

/// Server configuration.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; AiqlServer::port() reports the bound port after Start.
  uint16_t port = 0;
  /// Concurrent client sessions; further connects get an error frame.
  size_t max_sessions = 64;
  /// Queries (and tracks / explains) executing at once.
  size_t max_concurrent_queries = 4;
  /// Bounded admission queue behind the running queries.
  size_t admission_queue_depth = 16;
  /// Longest a queued query waits for a slot before kResourceExhausted.
  std::chrono::milliseconds admission_wait{2000};
  /// Per-frame payload cap, both directions.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Initial per-session limits (sessions adjust via the wire protocol's
  /// timeout/budget options). All-zero = ungoverned by default.
  QueryLimits session_limits;
};

/// Monotonic counters, snapshotted by stats().
struct ServerCounters {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;   ///< refused at the session cap
  uint64_t queries_executed = 0;    ///< queries / explains completing OK
  uint64_t queries_failed = 0;      ///< completing with an error status
  uint64_t queries_rejected = 0;    ///< refused by admission control
  uint64_t tracks_executed = 0;
  uint64_t frames_rejected = 0;     ///< malformed / oversized frames
};

/// The long-lived AIQL query server. Construction wires the engines;
/// Start() binds the listener and spawns the accept thread; Stop() (or
/// destruction) cancels in-flight queries, unblocks every session, and
/// joins all threads.
class AiqlServer {
 public:
  /// Serves `db` (single-database sessions) and/or `shards` (sharded
  /// sessions); either may be null, not both. Both are borrowed and must
  /// outlive the server. Sessions start in sharded mode when a shard map
  /// is present, single-database mode otherwise, and switch with the
  /// `shards` option. `engine_options.default_limits` is ignored —
  /// governance comes from per-session limits.
  AiqlServer(const AuditDatabase* db, const ShardMap* shards,
             ServerOptions options = {}, EngineOptions engine_options = {});
  /// Tiered-retention backend: single-database sessions query the tiered
  /// store (hot + cold partitions), and the store's counters/cache
  /// pressure are attached as if by AttachRetention. `shards` as above.
  AiqlServer(const TieredStore* tiered, const ShardMap* shards,
             ServerOptions options = {}, EngineOptions engine_options = {});
  ~AiqlServer();

  AiqlServer(const AiqlServer&) = delete;
  AiqlServer& operator=(const AiqlServer&) = delete;

  /// Binds host:port and starts accepting. Fails on bind errors or when
  /// no backend was supplied.
  Status Start();

  /// Idempotent shutdown: stops accepting, cancels in-flight query
  /// contexts, unblocks session reads, joins every thread.
  void Stop();

  /// Registers a tiered-retention store whose lifecycle counters feed the
  /// kStatsOk structured tail and whose cache pressure feeds admission
  /// control (call once per store, before Start; borrowed). When the
  /// aggregate cold-cache charge exceeds the aggregate budget — pinned
  /// materializations overcommitting RAM — the server halves the
  /// concurrent-query cap until the charge drains back under budget, so
  /// admission stops stacking new pinning queries onto cache pressure.
  void AttachRetention(const TieredStore* tiered);

  /// Bound port (after a successful Start).
  uint16_t port() const { return listener_.port(); }

  ServerCounters stats() const;
  size_t active_sessions() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Session;

  void AcceptLoop();
  void ServeSession(Session* session);
  /// Builds the response frame for one decoded request.
  std::string HandleRequest(Session* session, const Request& request);
  std::string HandleQuery(Session* session, const std::string& text,
                          bool explain_only);
  std::string HandleTrack(Session* session, const TrackCommand& command);
  std::string HandleSetOption(Session* session, const std::string& name,
                              const std::string& value);
  std::string RenderStats(const Session& session) const;
  /// Aggregated retention counters across every attached store.
  StatsFields RetentionFields() const;
  /// Re-derives the admission cap from current cache pressure.
  void UpdateAdmissionPressure();
  AiqlEngine* EngineFor(const Session& session) const;
  void ReapFinishedSessions();

  const AuditDatabase* db_ = nullptr;
  const ShardMap* shards_ = nullptr;
  std::vector<const TieredStore*> retention_;
  ServerOptions options_;

  // One engine per (backend, degradation policy) the sessions can select;
  // AiqlEngine is thread-safe for concurrent Execute/Track.
  std::unique_ptr<AiqlEngine> engine_single_;
  std::unique_ptr<AiqlEngine> engine_sharded_strict_;
  std::unique_ptr<AiqlEngine> engine_sharded_partial_;

  Listener listener_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> query_pool_;
  AdmissionGate gate_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  // Counters (relaxed atomics; stats() snapshots).
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> tracks_executed_{0};
  std::atomic<uint64_t> frames_rejected_{0};
};

}  // namespace aiql

#endif  // AIQL_SERVER_AIQL_SERVER_H_
