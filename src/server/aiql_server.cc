#include "server/aiql_server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/string_utils.h"
#include "common/table_printer.h"
#include "common/time_utils.h"
#include "graph/cypher_gen.h"
#include "graph/graph_store.h"
#include "storage/database.h"
#include "storage/shard_map.h"
#include "storage/tiered.h"

namespace aiql {

// ---------------------------------------------------------------------------
// AdmissionGate
// ---------------------------------------------------------------------------

AdmissionGate::AdmissionGate(size_t max_running, size_t max_waiting,
                             std::chrono::milliseconds max_wait)
    : max_running_(std::max<size_t>(1, max_running)),
      max_waiting_(max_waiting),
      max_wait_(max_wait) {}

Status AdmissionGate::Enter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Cancelled("server shutting down");
  if (running_ < max_running_) {
    ++running_;
    return Status::OK();
  }
  if (waiting_ >= max_waiting_) {
    return Status::ResourceExhausted(
        "server overloaded: " + std::to_string(running_) +
        " queries running, " + std::to_string(waiting_) +
        " queued (admission queue full)");
  }
  ++waiting_;
  bool admitted = cv_.wait_for(lock, max_wait_, [this] {
    return shutdown_ || running_ < max_running_;
  });
  --waiting_;
  if (shutdown_) return Status::Cancelled("server shutting down");
  if (!admitted) {
    return Status::ResourceExhausted(
        "server overloaded: no execution slot freed within " +
        std::to_string(max_wait_.count()) + " ms");
  }
  ++running_;
  return Status::OK();
}

void AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

void AdmissionGate::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void AdmissionGate::SetMaxRunning(size_t max_running) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_running_ = std::max<size_t>(1, max_running);
  }
  // Raising the cap may free slots for waiters; lowering is a no-op for
  // them and the spurious wakeup is harmless.
  cv_.notify_all();
}

size_t AdmissionGate::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

size_t AdmissionGate::max_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_running_;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

struct AiqlServer::Session {
  uint64_t id = 0;
  Connection conn;
  std::thread thread;
  std::atomic<bool> done{false};

  // Session state, touched only by the session thread.
  QueryLimits limits;
  bool use_shards = false;
  bool partial = false;
  DegradedInfo last_degraded;

  // Cancel coordination with Stop(): the context of the in-flight query,
  // if any. Stop() cancels it under the lock so the stack-allocated
  // context cannot die mid-Cancel.
  std::mutex ctx_mu;
  QueryContext* active_ctx = nullptr;
};

namespace {

bool HasAnyLimit(const QueryLimits& limits) {
  return limits.timeout.count() > 0 || limits.max_rows > 0 ||
         limits.max_nodes > 0 || limits.max_bytes > 0;
}

std::string RenderLimits(const QueryLimits& limits) {
  return "timeout=" + std::to_string(limits.timeout.count()) +
         "ms rows=" + std::to_string(limits.max_rows) +
         " nodes=" + std::to_string(limits.max_nodes) +
         " bytes=" + std::to_string(limits.max_bytes);
}

std::string RenderDbStats(const AuditDatabase& db) {
  const DatabaseStats& stats = db.stats();
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "raw events      : %" PRIu64 "\n", stats.raw_events);
  out += line;
  std::snprintf(line, sizeof(line),
                "stored events   : %" PRIu64 "  (dedup ratio %.2fx)\n",
                stats.total_events,
                stats.total_events > 0
                    ? static_cast<double>(stats.raw_events) /
                          static_cast<double>(stats.total_events)
                    : 0.0);
  out += line;
  std::snprintf(line, sizeof(line),
                "partitions      : %" PRIu64 "\n", stats.total_partitions);
  out += line;
  std::snprintf(line, sizeof(line),
                "processes/files/connections: %zu / %zu / %zu\n",
                db.entities().processes().size(),
                db.entities().files().size(),
                db.entities().networks().size());
  out += line;
  if (stats.total_events > 0) {
    out += "time range      : " + FormatTimestamp(stats.min_ts) + " .. " +
           FormatTimestamp(stats.max_ts) + "\n";
  }
  return out;
}

std::string RenderShardLayout(const ShardMap& shards) {
  TablePrinter printer({"shard", "agents", "backend", "events"});
  for (size_t s = 0; s < shards.num_shards(); ++s) {
    const ShardRange& range = shards.range(s);
    printer.AddRow({std::to_string(s),
                    "[" + std::to_string(range.begin) + ", " +
                        std::to_string(range.end) + ")",
                    shards.shard_is_snapshot(s) ? "snapshot" : "database",
                    "-"});
  }
  std::string out = printer.ToString();
  out += "-- " + std::to_string(shards.num_shards()) + " shards, " +
         std::to_string(shards.TotalEvents()) +
         " events total; queries scatter/gather\n";
  return out;
}

/// The shell's track footer, rendered to a string (the client appends its
/// own elapsed time).
std::string RenderTrackSummary(const ProvenanceResult& result) {
  std::string out;
  char buf[256];
  Duration total_us = 0;
  for (Duration us : result.stats.hop_latency_us) total_us += us;
  std::snprintf(buf, sizeof(buf),
                "-- %zu nodes (%zu roots), %zu edges in %d hops%s; "
                "%" PRIu64 " postings inspected, %" PRIu64
                " partition scans",
                result.nodes.size(), result.num_roots, result.edges.size(),
                result.stats.hops,
                result.stats.truncated ? " (TRUNCATED by budget)" : "",
                result.stats.events_inspected,
                result.stats.partitions_selected);
  out += buf;
  out += "; hop latency us:";
  for (Duration us : result.stats.hop_latency_us) {
    out += " " + std::to_string(us);
  }
  out += " (total " + std::to_string(total_us) + ")";
  if (!result.stats.truncated_expansions.empty()) {
    uint64_t dropped = 0;
    for (const TruncatedExpansion& cut : result.stats.truncated_expansions) {
      dropped += cut.dropped;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n-- %zu frontier expansion(s) truncated by budget "
                  "(%" PRIu64 " candidate events dropped)",
                  result.stats.truncated_expansions.size(), dropped);
    out += buf;
  }
  for (const ShardTrackStatus& shard : result.stats.shard_status) {
    std::snprintf(buf, sizeof(buf), "\n-- shard %u: %s%s after %d attempt(s)",
                  shard.shard, shard.dropped ? "DROPPED " : "recovered",
                  shard.dropped ? shard.status.ToString().c_str() : "",
                  shard.attempts);
    out += buf;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// AiqlServer
// ---------------------------------------------------------------------------

AiqlServer::AiqlServer(const AuditDatabase* db, const ShardMap* shards,
                       ServerOptions options, EngineOptions engine_options)
    : db_(db),
      shards_(shards),
      options_(std::move(options)),
      gate_(options_.max_concurrent_queries, options_.admission_queue_depth,
            options_.admission_wait) {
  // Session limits govern every query via a per-query context; engine
  // defaults must not stack a second context on top.
  engine_options.default_limits = QueryLimits{};
  if (db_ != nullptr) {
    EngineOptions single = engine_options;
    engine_single_ = std::make_unique<AiqlEngine>(db_, single);
  }
  if (shards_ != nullptr) {
    EngineOptions strict = engine_options;
    strict.shard_policy = ShardPolicy::kStrict;
    engine_sharded_strict_ = std::make_unique<AiqlEngine>(shards_, strict);
    EngineOptions partial = engine_options;
    partial.shard_policy = ShardPolicy::kPartial;
    engine_sharded_partial_ = std::make_unique<AiqlEngine>(shards_, partial);
  }
}

AiqlServer::AiqlServer(const TieredStore* tiered, const ShardMap* shards,
                       ServerOptions options, EngineOptions engine_options)
    : AiqlServer(tiered != nullptr ? &tiered->db() : nullptr, shards,
                 std::move(options), engine_options) {
  if (tiered != nullptr) {
    // Replace the hot-only engine the delegated constructor built with one
    // over the full tiered store (hot + cold partitions).
    engine_options.default_limits = QueryLimits{};
    engine_single_ = std::make_unique<AiqlEngine>(tiered, engine_options);
    AttachRetention(tiered);
  }
}

AiqlServer::~AiqlServer() { Stop(); }

void AiqlServer::AttachRetention(const TieredStore* tiered) {
  if (tiered != nullptr) retention_.push_back(tiered);
}

StatsFields AiqlServer::RetentionFields() const {
  StatsFields fields;
  fields.has_fields = true;
  for (const TieredStore* store : retention_) {
    RetentionStats s = store->stats();
    fields.hot_partitions += s.hot_partitions;
    fields.cold_partitions += s.cold_partitions;
    fields.cache_budget_bytes += s.cache.budget_bytes;
    fields.cache_charged_bytes += s.cache.charged_bytes;
    fields.cache_resident += s.cache.resident;
    fields.cache_hits += s.cache.hits;
    fields.cache_misses += s.cache.misses;
    fields.cache_evictions += s.cache.evictions;
    fields.compactor_passes += s.compactor_passes;
    fields.merges += s.merges;
    fields.demotions += s.demotions;
    fields.tombstones += s.tombstones;
    fields.commits += s.commits;
    fields.reopens += s.reopens;
    fields.entities_aged += s.entities_aged;
  }
  return fields;
}

void AiqlServer::UpdateAdmissionPressure() {
  if (retention_.empty()) return;
  uint64_t budget = 0, charged = 0;
  for (const TieredStore* store : retention_) {
    PartitionCacheStats cache = store->cache()->stats();
    budget += cache.budget_bytes;
    charged += cache.charged_bytes;
  }
  if (budget == 0) return;  // unlimited caches exert no pressure
  // Over budget means view pins are holding more cold bytes resident than
  // eviction can reclaim: halve the query cap so new queries stop piling
  // additional pins on top, and restore it once the charge drains.
  size_t cap = options_.max_concurrent_queries;
  if (charged > budget) cap = std::max<size_t>(1, cap / 2);
  gate_.SetMaxRunning(cap);
}

Status AiqlServer::Start() {
  if (db_ == nullptr && shards_ == nullptr) {
    return Status::InvalidArgument("server needs a database or a shard map");
  }
  if (started_) return Status::AlreadyExists("server already started");
  AIQL_ASSIGN_OR_RETURN(listener_,
                        Listener::Bind(options_.host, options_.port));
  query_pool_ =
      std::make_unique<ThreadPool>(options_.max_concurrent_queries);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AiqlServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    if (started_ && accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Shutdown();
  gate_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    {
      std::lock_guard<std::mutex> lock(session->ctx_mu);
      if (session->active_ctx != nullptr) session->active_ctx->Cancel();
    }
    session->conn.Shutdown();
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
}

ServerCounters AiqlServer::stats() const {
  ServerCounters counters;
  counters.sessions_accepted = sessions_accepted_.load();
  counters.sessions_rejected = sessions_rejected_.load();
  counters.queries_executed = queries_executed_.load();
  counters.queries_failed = queries_failed_.load();
  counters.queries_rejected = queries_rejected_.load();
  counters.tracks_executed = tracks_executed_.load();
  counters.frames_rejected = frames_rejected_.load();
  return counters;
}

size_t AiqlServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  size_t active = 0;
  for (const auto& session : sessions_) {
    if (!session->done.load()) ++active;
  }
  return active;
}

void AiqlServer::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void AiqlServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load() ||
          accepted.status().code() == StatusCode::kCancelled) {
        return;
      }
      continue;  // transient accept failure; keep serving
    }
    ReapFinishedSessions();
    Connection conn = std::move(*accepted);
    conn.set_max_frame_bytes(options_.max_frame_bytes);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      // Session-level admission: refuse with a clean overload reply
      // instead of queueing the connection indefinitely.
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)conn.WriteFrame(EncodeError(Status::ResourceExhausted(
          "session limit reached (" + std::to_string(options_.max_sessions) +
          " active sessions)")));
      continue;  // conn closes on scope exit
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->conn = std::move(conn);
    session->limits = options_.session_limits;
    session->use_shards = shards_ != nullptr;
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
    Session* raw = session.get();
    session->thread = std::thread([this, raw] { ServeSession(raw); });
    sessions_.push_back(std::move(session));
  }
}

void AiqlServer::ServeSession(Session* session) {
  while (!stopping_.load()) {
    auto frame = session->conn.ReadFrame();
    if (!frame.ok()) {
      if (!IsConnectionClosed(frame.status())) {
        // Framing-level damage (truncated prefix, oversized declaration,
        // transport error): there is no way to resynchronize the stream,
        // so reply best-effort and drop the connection. The server stays
        // up; only this session ends.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        (void)session->conn.WriteFrame(EncodeError(frame.status()));
      }
      break;
    }
    auto request = DecodeRequest(*frame);
    std::string reply;
    if (!request.ok()) {
      // Body-level damage is recoverable: frame boundaries are intact, so
      // answer with the decode error and keep the session.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      reply = EncodeError(request.status());
    } else {
      reply = HandleRequest(session, *request);
    }
    if (!session->conn.WriteFrame(reply).ok()) break;
  }
  session->conn.Shutdown();
  session->done.store(true);
}

AiqlEngine* AiqlServer::EngineFor(const Session& session) const {
  if (session.use_shards) {
    return session.partial ? engine_sharded_partial_.get()
                           : engine_sharded_strict_.get();
  }
  return engine_single_.get();
}

std::string AiqlServer::HandleRequest(Session* session,
                                      const Request& request) {
  switch (request.type) {
    case MsgType::kHello: {
      if (request.version != kProtocolVersion) {
        return EncodeError(Status::InvalidArgument(
            "protocol version mismatch: client speaks " +
            std::to_string(request.version) + ", server speaks " +
            std::to_string(kProtocolVersion)));
      }
      uint64_t events = shards_ != nullptr ? shards_->TotalEvents()
                                           : db_->stats().total_events;
      std::string banner =
          "aiql-server protocol " + std::to_string(kProtocolVersion) + "; " +
          std::to_string(events) + " events, " +
          (shards_ != nullptr ? std::to_string(shards_->num_shards()) +
                                    " shards"
                              : std::string("single database")) +
          "; session " + std::to_string(session->id);
      return EncodeHelloOk(banner);
    }
    case MsgType::kPing:
      return EncodePong();
    case MsgType::kStats:
      // Without retention state send the legacy text-only frame — the
      // same bytes a pre-retention server produces — so both decode
      // paths stay exercised.
      if (retention_.empty()) {
        return EncodeTextResponse(MsgType::kStatsOk, RenderStats(*session));
      }
      return EncodeStatsOk(RenderStats(*session), RetentionFields());
    case MsgType::kCheck: {
      auto kind = EngineFor(*session)->Check(request.text);
      if (!kind.ok()) return EncodeError(kind.status());
      return EncodeTextResponse(MsgType::kCheckOk, QueryKindToString(*kind));
    }
    case MsgType::kQuery:
      return HandleQuery(session, request.text, /*explain_only=*/false);
    case MsgType::kExplain:
      return HandleQuery(session, request.text, /*explain_only=*/true);
    case MsgType::kTrack:
      return HandleTrack(session, request.track);
    case MsgType::kSetOption:
      return HandleSetOption(session, request.option_name,
                             request.option_value);
    default:
      return EncodeError(Status::InvalidArgument(
          "request type " +
          std::to_string(static_cast<int>(request.type)) +
          " is not valid client -> server"));
  }
}

std::string AiqlServer::HandleQuery(Session* session, const std::string& text,
                                    bool explain_only) {
  UpdateAdmissionPressure();
  Status admitted = gate_.Enter();
  if (!admitted.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return EncodeError(admitted);
  }
  // Always run under a context, even with all-zero limits: Stop() uses it
  // to cancel in-flight queries promptly.
  QueryContext ctx(session->limits);
  {
    std::lock_guard<std::mutex> lock(session->ctx_mu);
    session->active_ctx = &ctx;
  }
  AiqlEngine* engine = EngineFor(*session);
  Result<QueryResult> result = Status::Internal("query task never ran");
  query_pool_
      ->Submit([&] {
        ScopedQueryContext bind(&ctx);
        result = engine->Execute(text, &ctx);
      })
      .wait();
  {
    std::lock_guard<std::mutex> lock(session->ctx_mu);
    session->active_ctx = nullptr;
  }
  gate_.Leave();
  if (!result.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return EncodeError(result.status());
  }
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  session->last_degraded = result->degraded;
  if (explain_only) {
    return EncodeTextResponse(MsgType::kExplainOk, result->plan);
  }
  QueryReply reply;
  reply.table = std::move(result->table);
  reply.stats = result->stats;
  reply.degraded = result->degraded.ToString();
  return EncodeQueryOk(reply);
}

std::string AiqlServer::HandleTrack(Session* session,
                                    const TrackCommand& command) {
  if ((command.want_dot || command.want_cypher) &&
      (session->use_shards || db_ == nullptr)) {
    return EncodeError(Status::InvalidArgument(
        "dot/cypher export is single-database only; send `shards off` "
        "first"));
  }
  UpdateAdmissionPressure();
  Status admitted = gate_.Enter();
  if (!admitted.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return EncodeError(admitted);
  }
  QueryContext ctx(session->limits);
  {
    std::lock_guard<std::mutex> lock(session->ctx_mu);
    session->active_ctx = &ctx;
  }
  AiqlEngine* engine = EngineFor(*session);
  Result<ProvenanceResult> result = Status::Internal("track task never ran");
  query_pool_
      ->Submit([&] {
        ScopedQueryContext bind(&ctx);
        result = engine->Track(command.request, &ctx);
      })
      .wait();
  {
    std::lock_guard<std::mutex> lock(session->ctx_mu);
    session->active_ctx = nullptr;
  }
  gate_.Leave();
  if (!result.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return EncodeError(result.status());
  }
  tracks_executed_.fetch_add(1, std::memory_order_relaxed);
  TrackReply reply;
  if (command.want_dot || command.want_cypher) {
    reply.text = command.want_dot
                     ? ProvenanceToDot(*result, db_->entities())
                     : ProvenanceToCypher(*result, db_->entities());
  } else {
    reply.table.columns = {"depth", "type", "entity", "bound"};
    for (const ProvenanceNode& node : result->nodes) {
      const EntityStore& entities = session->use_shards
                                        ? shards_->entities(node.shard)
                                        : db_->entities();
      reply.table.rows.push_back(
          {std::string(std::to_string(node.depth)),
           std::string(EntityTypeToString(node.type)),
           entities.EntityName(node.type, node.id),
           node.bound == INT64_MAX || node.bound == INT64_MIN
               ? std::string("-")
               : FormatTimestamp(node.bound)});
    }
    reply.summary = RenderTrackSummary(*result);
  }
  return EncodeTrackOk(reply);
}

std::string AiqlServer::HandleSetOption(Session* session,
                                        const std::string& name,
                                        const std::string& value) {
  auto ok = [](std::string message) {
    return EncodeTextResponse(MsgType::kOptionOk, message);
  };
  // Positive bounded integer with the shared checked parser — the same
  // rejection the shell applies locally (out-of-range saturation is an
  // error, not a silently accepted LLONG_MAX).
  auto parse_positive = [&](const std::string& text) -> Result<int64_t> {
    AIQL_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(text));
    if (parsed <= 0 || parsed > 1000000000000LL) {
      return Status::InvalidArgument("value '" + text +
                                     "' must be in [1, 1e12]");
    }
    return parsed;
  };
  if (name == "timeout_ms") {
    if (EqualsIgnoreCase(value, "off")) {
      session->limits.timeout = std::chrono::milliseconds(0);
      return ok("deadline off");
    }
    auto ms = parse_positive(value);
    if (!ms.ok()) return EncodeError(ms.status());
    session->limits.timeout = std::chrono::milliseconds(*ms);
    return ok("deadline " + std::to_string(*ms) + " ms per query");
  }
  if (name == "rows" || name == "nodes" || name == "bytes") {
    auto amount = parse_positive(value);
    if (!amount.ok()) return EncodeError(amount.status());
    if (name == "rows") {
      session->limits.max_rows = static_cast<uint64_t>(*amount);
    } else if (name == "nodes") {
      session->limits.max_nodes = static_cast<uint64_t>(*amount);
    } else {
      session->limits.max_bytes = static_cast<uint64_t>(*amount);
    }
    return ok("budget: " + name + " <= " + std::to_string(*amount) +
              " per query");
  }
  if (name == "budget_off") {
    session->limits.max_rows = session->limits.max_nodes =
        session->limits.max_bytes = 0;
    return ok("budgets off");
  }
  if (name == "partial") {
    if (!EqualsIgnoreCase(value, "on") && !EqualsIgnoreCase(value, "off")) {
      return EncodeError(
          Status::InvalidArgument("'partial' expects on|off"));
    }
    session->partial = EqualsIgnoreCase(value, "on");
    return ok(std::string("degraded sharded execution ") +
              (session->partial ? "on (failed shards drop, results "
                                  "annotated)"
                                : "off (any shard failure fails the "
                                  "query)"));
  }
  if (name == "shards") {
    if (EqualsIgnoreCase(value, "on")) {
      if (shards_ == nullptr) {
        return EncodeError(
            Status::NotFound("server has no shard map; single-database "
                             "only"));
      }
      session->use_shards = true;
      return ok("sharded mode on\n" + RenderShardLayout(*shards_));
    }
    if (EqualsIgnoreCase(value, "off")) {
      if (db_ == nullptr) {
        return EncodeError(Status::NotFound(
            "server has no single database; sharded only"));
      }
      session->use_shards = false;
      return ok("single-database mode");
    }
    return EncodeError(Status::InvalidArgument(
        "the server's shard layout is fixed" +
        (shards_ != nullptr
             ? " at " + std::to_string(shards_->num_shards()) + " shards"
             : std::string()) +
        "; use 'shards on' or 'shards off'"));
  }
  return EncodeError(
      Status::InvalidArgument("unknown option '" + name + "'"));
}

std::string AiqlServer::RenderStats(const Session& session) const {
  std::string out;
  if (db_ != nullptr) out += RenderDbStats(*db_);
  if (shards_ != nullptr) out += RenderShardLayout(*shards_);
  if (!retention_.empty()) {
    StatsFields f = RetentionFields();
    out += "retention: " + std::to_string(f.hot_partitions) + " hot, " +
           std::to_string(f.cold_partitions) + " cold partitions; cache " +
           std::to_string(f.cache_charged_bytes) + "/" +
           (f.cache_budget_bytes == 0
                ? std::string("unlimited")
                : std::to_string(f.cache_budget_bytes)) +
           " bytes (" + std::to_string(f.cache_resident) + " resident, " +
           std::to_string(f.cache_evictions) + " evictions); admission cap " +
           std::to_string(gate_.max_running()) + "\n";
    out += "compactor: " + std::to_string(f.compactor_passes) + " passes, " +
           std::to_string(f.merges) + " merges, " +
           std::to_string(f.demotions) + " demotions, " +
           std::to_string(f.tombstones) + " tombstones, " +
           std::to_string(f.commits) + " commits, " +
           std::to_string(f.reopens) + " reopens, " +
           std::to_string(f.entities_aged) + " entities aged\n";
  }
  out += "session " + std::to_string(session.id) + ": shards=" +
         (session.use_shards ? "on" : "off") + " partial=" +
         (session.partial ? "on" : "off");
  if (HasAnyLimit(session.limits)) {
    out += " limits: " + RenderLimits(session.limits);
  }
  out += "\n";
  std::string degraded = session.last_degraded.ToString();
  if (!degraded.empty()) out += "last degraded: " + degraded + "\n";
  ServerCounters counters = stats();
  out += "server: " + std::to_string(active_sessions()) +
         " active sessions, " +
         std::to_string(counters.queries_executed) + " queries ok, " +
         std::to_string(counters.queries_failed) + " failed, " +
         std::to_string(counters.queries_rejected) +
         " rejected (overload), " +
         std::to_string(counters.tracks_executed) + " tracks\n";
  return out;
}

}  // namespace aiql
