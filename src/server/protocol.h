// AIQL server wire protocol v1 (docs/server-protocol.md).
//
// Every frame (common/net.h: 4-byte little-endian length prefix + payload)
// carries one message: a 1-byte MsgType followed by a type-specific body
// encoded with LEB128 varints (common/varint.h), length-prefixed strings,
// and fixed 8-byte little-endian doubles. Requests flow client -> server,
// responses server -> client; every request gets exactly one response (the
// matching *Ok type, or kError carrying a StatusCode + message).
//
// Decoders are bounds-checked: truncated or trailing bytes surface as
// kInvalidArgument, never an out-of-bounds read — the server feeds them
// attacker-controllable input.

#ifndef AIQL_SERVER_PROTOCOL_H_
#define AIQL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/aiql_engine.h"
#include "engine/result.h"

namespace aiql {

inline constexpr uint32_t kProtocolVersion = 1;

/// Message discriminator — the first payload byte of every frame.
enum class MsgType : uint8_t {
  // Requests.
  kHello = 0x01,      ///< version handshake; body: varint version
  kQuery = 0x02,      ///< body: string AIQL text
  kTrack = 0x03,      ///< body: serialized TrackCommand
  kSetOption = 0x04,  ///< body: string name, string value
  kStats = 0x05,      ///< no body
  kPing = 0x06,       ///< no body
  kCheck = 0x07,      ///< body: string AIQL text
  kExplain = 0x08,    ///< body: string AIQL text

  // Responses.
  kHelloOk = 0x40,    ///< body: varint version, string server banner
  kQueryOk = 0x41,    ///< body: serialized QueryReply
  kTrackOk = 0x42,    ///< body: serialized TrackReply
  kOptionOk = 0x43,   ///< body: string confirmation
  kStatsOk = 0x44,    ///< body: string rendered statistics, then an
                      ///< optional structured tail (StatsFields)
  kPong = 0x45,       ///< no body
  kCheckOk = 0x46,    ///< body: string query kind
  kExplainOk = 0x47,  ///< body: string plan
  kError = 0x7F,      ///< body: u8 StatusCode, string message
};

/// A provenance-tracking request plus render flags, as sent on the wire.
/// Protocol v1 exposes the TrackRequest surface the shell's `track`
/// command covers (direction, type, name pattern, anchor, depth / fanout /
/// node budgets, hop window); per-hop op and entity-type filters keep
/// their defaults.
struct TrackCommand {
  TrackRequest request;
  bool want_dot = false;
  bool want_cypher = false;
};

/// One decoded request frame.
struct Request {
  MsgType type = MsgType::kPing;
  std::string text;         ///< kQuery / kCheck / kExplain
  TrackCommand track;       ///< kTrack
  std::string option_name;  ///< kSetOption
  std::string option_value; ///< kSetOption
  uint32_t version = 0;     ///< kHello
};

/// Query response payload: the result table plus the execution-status
/// fields the shell footer renders and the degradation annotation.
struct QueryReply {
  ResultTable table;
  QueryStats stats;
  std::string degraded;  ///< DegradedInfo::ToString(); empty when clean
};

/// Track response payload: the rendered node table (depth / type / entity /
/// bound — entity names resolved against the server-side per-shard
/// stores), the shell's summary footer, and optionally a DOT/Cypher
/// export in `text`.
struct TrackReply {
  ResultTable table;
  std::string summary;
  std::string text;  ///< non-empty for dot/cypher exports
};

/// Structured statistics carried by kStatsOk after the rendered text, as a
/// varint field count followed by (varint tag, varint value) pairs.
/// Version tolerance runs both directions: an older server omits the tail
/// entirely (the decoder leaves `has_fields` false), and a newer server may
/// add tags this build does not know — unknown tags are skipped, never an
/// error. Tag numbers are permanent once assigned (see protocol.cc).
struct StatsFields {
  bool has_fields = false;  ///< decode side: structured tail was present

  // Partition residence (gauges).
  uint64_t hot_partitions = 0;   ///< sealed partitions resident in RAM
  uint64_t cold_partitions = 0;  ///< partitions in the retention directory

  // Cold-partition cache (gauges except hits/misses/evictions).
  uint64_t cache_budget_bytes = 0;   ///< 0 = unlimited
  uint64_t cache_charged_bytes = 0;  ///< bytes charged by resident entries
  uint64_t cache_resident = 0;       ///< materialized cold partitions
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  // Compactor lifecycle counters (monotone).
  uint64_t compactor_passes = 0;
  uint64_t merges = 0;         ///< merge-compaction commits
  uint64_t demotions = 0;      ///< partitions demoted to cold
  uint64_t tombstones = 0;     ///< cold partitions expired + dropped
  uint64_t commits = 0;        ///< durable footer commits
  uint64_t reopens = 0;        ///< cold decodes after first residence
  uint64_t entities_aged = 0;  ///< entities past the retention horizon
};

/// One decoded response frame.
struct Response {
  MsgType type = MsgType::kError;
  Status error;       ///< kError payload (code + message)
  QueryReply query;   ///< kQueryOk
  TrackReply track;   ///< kTrackOk
  std::string text;   ///< kHelloOk banner / kOptionOk / kStatsOk /
                      ///< kCheckOk / kExplainOk
  StatsFields stats_fields;  ///< kStatsOk structured tail (optional)
  uint32_t version = 0;  ///< kHelloOk
};

// --- Request encoding (client side) ---
std::string EncodeHello();
std::string EncodeTextRequest(MsgType type, std::string_view text);
std::string EncodeTrack(const TrackCommand& command);
std::string EncodeSetOption(std::string_view name, std::string_view value);
std::string EncodeBare(MsgType type);  ///< kStats / kPing

// --- Response encoding (server side) ---
std::string EncodeError(const Status& status);
std::string EncodeHelloOk(std::string_view banner);
std::string EncodeQueryOk(const QueryReply& reply);
std::string EncodeTrackOk(const TrackReply& reply);
std::string EncodeTextResponse(MsgType type, std::string_view text);
/// kStatsOk with the structured tail. A server without retention state can
/// instead send EncodeTextResponse(kStatsOk, text) — the legacy frame —
/// and clients must handle both (StatsFields::has_fields discriminates).
std::string EncodeStatsOk(std::string_view text, const StatsFields& fields);
std::string EncodePong();

// --- Decoding ---
Result<Request> DecodeRequest(std::string_view payload);
Result<Response> DecodeResponse(std::string_view payload);

}  // namespace aiql

#endif  // AIQL_SERVER_PROTOCOL_H_
