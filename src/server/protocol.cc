#include "server/protocol.h"

#include <cstring>
#include <iterator>
#include <utility>

#include "common/varint.h"

namespace aiql {

namespace {

// --- Encoding primitives ---

void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

void PutString(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

void PutDouble(std::string* dst, double v) {
  // Fixed 8-byte little-endian bit pattern: round-trips exactly, so a
  // remote table compares byte-identical to the in-process one.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void PutTable(std::string* dst, const ResultTable& table) {
  PutVarint64(dst, table.columns.size());
  for (const std::string& column : table.columns) PutString(dst, column);
  PutVarint64(dst, table.rows.size());
  for (const auto& row : table.rows) {
    PutVarint64(dst, row.size());
    for (const Value& value : row) {
      if (const auto* s = std::get_if<std::string>(&value)) {
        PutU8(dst, 0);
        PutString(dst, *s);
      } else if (const auto* i = std::get_if<int64_t>(&value)) {
        PutU8(dst, 1);
        PutVarintSigned(dst, *i);
      } else {
        PutU8(dst, 2);
        PutDouble(dst, std::get<double>(value));
      }
    }
  }
}

void PutStats(std::string* dst, const QueryStats& stats) {
  PutVarintSigned(dst, stats.parse_time);
  PutVarintSigned(dst, stats.plan_time);
  PutVarintSigned(dst, stats.exec_time);
  PutVarint64(dst, stats.events_scanned);
  PutVarint64(dst, stats.events_matched);
  PutVarint64(dst, stats.partitions_scanned);
  PutVarint64(dst, stats.join_candidates);
  PutVarint64(dst, static_cast<uint64_t>(stats.patterns));
  PutVarint64(dst, static_cast<uint64_t>(stats.threads_used));
}

// Permanent tag numbers of the kStatsOk structured tail. Never renumber or
// reuse a retired tag — decoders skip tags they do not know, which is the
// whole version-tolerance story.
enum StatsFieldTag : uint64_t {
  kTagHotPartitions = 1,
  kTagColdPartitions = 2,
  kTagCacheBudgetBytes = 3,
  kTagCacheChargedBytes = 4,
  kTagCacheResident = 5,
  kTagCacheHits = 6,
  kTagCacheMisses = 7,
  kTagCacheEvictions = 8,
  kTagCompactorPasses = 9,
  kTagMerges = 10,
  kTagDemotions = 11,
  kTagTombstones = 12,
  kTagCommits = 13,
  kTagReopens = 14,
  kTagEntitiesAged = 15,
};

void PutStatsFields(std::string* dst, const StatsFields& fields) {
  const std::pair<uint64_t, uint64_t> pairs[] = {
      {kTagHotPartitions, fields.hot_partitions},
      {kTagColdPartitions, fields.cold_partitions},
      {kTagCacheBudgetBytes, fields.cache_budget_bytes},
      {kTagCacheChargedBytes, fields.cache_charged_bytes},
      {kTagCacheResident, fields.cache_resident},
      {kTagCacheHits, fields.cache_hits},
      {kTagCacheMisses, fields.cache_misses},
      {kTagCacheEvictions, fields.cache_evictions},
      {kTagCompactorPasses, fields.compactor_passes},
      {kTagMerges, fields.merges},
      {kTagDemotions, fields.demotions},
      {kTagTombstones, fields.tombstones},
      {kTagCommits, fields.commits},
      {kTagReopens, fields.reopens},
      {kTagEntitiesAged, fields.entities_aged},
  };
  PutVarint64(dst, std::size(pairs));
  for (const auto& [tag, value] : pairs) {
    PutVarint64(dst, tag);
    PutVarint64(dst, value);
  }
}

// --- Bounds-checked decoding ---

/// Sequential reader over one frame payload. Every getter returns false on
/// truncation; Done() additionally rejects trailing garbage so a frame
/// that decodes "successfully" was consumed exactly.
struct Reader {
  const char* p;
  const char* limit;

  explicit Reader(std::string_view payload)
      : p(payload.data()), limit(payload.data() + payload.size()) {}

  bool U8(uint8_t* out) {
    if (p >= limit) return false;
    *out = static_cast<uint8_t>(*p++);
    return true;
  }
  bool U64(uint64_t* out) {
    p = GetVarint64(p, limit, out);
    return p != nullptr;
  }
  bool I64(int64_t* out) {
    p = GetVarintSigned(p, limit, out);
    return p != nullptr;
  }
  bool Str(std::string* out) {
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > static_cast<uint64_t>(limit - p)) return false;
    out->assign(p, size);
    p += size;
    return true;
  }
  bool F64(double* out) {
    if (limit - p < 8) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    std::memcpy(out, &bits, sizeof(*out));
    p += 8;
    return true;
  }
  bool Done() const { return p == limit; }
};

/// Per-frame sanity cap on declared element counts: the frame size itself
/// bounds real payloads (every element costs >= 1 byte), so anything
/// larger is a forged count aimed at a huge up-front reservation.
bool CountPlausible(uint64_t count, const Reader& reader) {
  return count <= static_cast<uint64_t>(reader.limit - reader.p);
}

bool GetTable(Reader* reader, ResultTable* table) {
  uint64_t num_columns = 0;
  if (!reader->U64(&num_columns) || !CountPlausible(num_columns, *reader)) {
    return false;
  }
  table->columns.resize(num_columns);
  for (std::string& column : table->columns) {
    if (!reader->Str(&column)) return false;
  }
  uint64_t num_rows = 0;
  if (!reader->U64(&num_rows) || !CountPlausible(num_rows, *reader)) {
    return false;
  }
  table->rows.reserve(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    uint64_t num_cells = 0;
    if (!reader->U64(&num_cells) || !CountPlausible(num_cells, *reader)) {
      return false;
    }
    std::vector<Value> row;
    row.reserve(num_cells);
    for (uint64_t c = 0; c < num_cells; ++c) {
      uint8_t tag = 0;
      if (!reader->U8(&tag)) return false;
      switch (tag) {
        case 0: {
          std::string s;
          if (!reader->Str(&s)) return false;
          row.emplace_back(std::move(s));
          break;
        }
        case 1: {
          int64_t i = 0;
          if (!reader->I64(&i)) return false;
          row.emplace_back(i);
          break;
        }
        case 2: {
          double d = 0;
          if (!reader->F64(&d)) return false;
          row.emplace_back(d);
          break;
        }
        default:
          return false;
      }
    }
    table->rows.push_back(std::move(row));
  }
  return true;
}

bool GetStats(Reader* reader, QueryStats* stats) {
  uint64_t patterns = 0, threads = 0;
  if (!reader->I64(&stats->parse_time) || !reader->I64(&stats->plan_time) ||
      !reader->I64(&stats->exec_time) ||
      !reader->U64(&stats->events_scanned) ||
      !reader->U64(&stats->events_matched) ||
      !reader->U64(&stats->partitions_scanned) ||
      !reader->U64(&stats->join_candidates) || !reader->U64(&patterns) ||
      !reader->U64(&threads)) {
    return false;
  }
  stats->patterns = static_cast<int>(patterns);
  stats->threads_used = static_cast<int>(threads);
  return true;
}

bool GetStatsFields(Reader* reader, StatsFields* fields) {
  uint64_t count = 0;
  if (!reader->U64(&count) || !CountPlausible(count, *reader)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t tag = 0, value = 0;
    if (!reader->U64(&tag) || !reader->U64(&value)) return false;
    switch (tag) {
      case kTagHotPartitions: fields->hot_partitions = value; break;
      case kTagColdPartitions: fields->cold_partitions = value; break;
      case kTagCacheBudgetBytes: fields->cache_budget_bytes = value; break;
      case kTagCacheChargedBytes: fields->cache_charged_bytes = value; break;
      case kTagCacheResident: fields->cache_resident = value; break;
      case kTagCacheHits: fields->cache_hits = value; break;
      case kTagCacheMisses: fields->cache_misses = value; break;
      case kTagCacheEvictions: fields->cache_evictions = value; break;
      case kTagCompactorPasses: fields->compactor_passes = value; break;
      case kTagMerges: fields->merges = value; break;
      case kTagDemotions: fields->demotions = value; break;
      case kTagTombstones: fields->tombstones = value; break;
      case kTagCommits: fields->commits = value; break;
      case kTagReopens: fields->reopens = value; break;
      case kTagEntitiesAged: fields->entities_aged = value; break;
      default:
        break;  // unknown tag from a newer peer: skip, never reject
    }
  }
  fields->has_fields = true;
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

}  // namespace

// --- Request encoding ---

std::string EncodeHello() {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kHello));
  PutVarint64(&out, kProtocolVersion);
  return out;
}

std::string EncodeTextRequest(MsgType type, std::string_view text) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutString(&out, text);
  return out;
}

std::string EncodeTrack(const TrackCommand& command) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kTrack));
  uint8_t flags = 0;
  if (command.request.options.backward) flags |= 1;
  if (command.request.anchor.has_value()) flags |= 2;
  if (command.want_dot) flags |= 4;
  if (command.want_cypher) flags |= 8;
  PutU8(&out, flags);
  PutU8(&out, static_cast<uint8_t>(command.request.type));
  PutString(&out, command.request.name_like);
  if (command.request.anchor.has_value()) {
    PutVarintSigned(&out, *command.request.anchor);
  }
  PutVarint64(&out, static_cast<uint64_t>(command.request.options.max_depth));
  PutVarint64(&out, command.request.options.max_fanout);
  PutVarint64(&out, command.request.options.max_nodes);
  PutVarintSigned(&out, command.request.options.hop_window);
  return out;
}

std::string EncodeSetOption(std::string_view name, std::string_view value) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kSetOption));
  PutString(&out, name);
  PutString(&out, value);
  return out;
}

std::string EncodeBare(MsgType type) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  return out;
}

// --- Response encoding ---

std::string EncodeError(const Status& status) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kError));
  PutU8(&out, static_cast<uint8_t>(status.code()));
  PutString(&out, status.message());
  return out;
}

std::string EncodeHelloOk(std::string_view banner) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kHelloOk));
  PutVarint64(&out, kProtocolVersion);
  PutString(&out, banner);
  return out;
}

std::string EncodeQueryOk(const QueryReply& reply) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kQueryOk));
  PutTable(&out, reply.table);
  PutStats(&out, reply.stats);
  PutString(&out, reply.degraded);
  return out;
}

std::string EncodeTrackOk(const TrackReply& reply) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kTrackOk));
  PutTable(&out, reply.table);
  PutString(&out, reply.summary);
  PutString(&out, reply.text);
  return out;
}

std::string EncodeTextResponse(MsgType type, std::string_view text) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutString(&out, text);
  return out;
}

std::string EncodeStatsOk(std::string_view text, const StatsFields& fields) {
  std::string out = EncodeTextResponse(MsgType::kStatsOk, text);
  PutStatsFields(&out, fields);
  return out;
}

std::string EncodePong() { return EncodeBare(MsgType::kPong); }

// --- Decoding ---

Result<Request> DecodeRequest(std::string_view payload) {
  Reader reader(payload);
  uint8_t type_byte = 0;
  if (!reader.U8(&type_byte)) return Malformed("empty request");
  Request request;
  request.type = static_cast<MsgType>(type_byte);
  switch (request.type) {
    case MsgType::kHello: {
      uint64_t version = 0;
      if (!reader.U64(&version)) return Malformed("hello version");
      request.version = static_cast<uint32_t>(version);
      break;
    }
    case MsgType::kQuery:
    case MsgType::kCheck:
    case MsgType::kExplain:
      if (!reader.Str(&request.text)) return Malformed("query text");
      break;
    case MsgType::kTrack: {
      uint8_t flags = 0, entity_type = 0;
      if (!reader.U8(&flags) || !reader.U8(&entity_type) ||
          !reader.Str(&request.track.request.name_like)) {
        return Malformed("track header");
      }
      if (entity_type > static_cast<uint8_t>(EntityType::kNetwork)) {
        return Malformed("track entity type");
      }
      request.track.request.type = static_cast<EntityType>(entity_type);
      request.track.request.options.backward = (flags & 1) != 0;
      request.track.want_dot = (flags & 4) != 0;
      request.track.want_cypher = (flags & 8) != 0;
      if ((flags & 2) != 0) {
        int64_t anchor = 0;
        if (!reader.I64(&anchor)) return Malformed("track anchor");
        request.track.request.anchor = anchor;
      }
      uint64_t depth = 0, fanout = 0, nodes = 0;
      int64_t hop_window = 0;
      if (!reader.U64(&depth) || !reader.U64(&fanout) ||
          !reader.U64(&nodes) || !reader.I64(&hop_window)) {
        return Malformed("track budgets");
      }
      if (depth > 1000000 || hop_window < 0) {
        return Malformed("track budget out of range");
      }
      request.track.request.options.max_depth = static_cast<int>(depth);
      request.track.request.options.max_fanout =
          static_cast<size_t>(fanout);
      request.track.request.options.max_nodes = static_cast<size_t>(nodes);
      request.track.request.options.hop_window = hop_window;
      break;
    }
    case MsgType::kSetOption:
      if (!reader.Str(&request.option_name) ||
          !reader.Str(&request.option_value)) {
        return Malformed("option name/value");
      }
      break;
    case MsgType::kStats:
    case MsgType::kPing:
      break;
    default:
      return Status::InvalidArgument(
          "unknown request type " + std::to_string(type_byte));
  }
  if (!reader.Done()) return Malformed("trailing bytes");
  return request;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Reader reader(payload);
  uint8_t type_byte = 0;
  if (!reader.U8(&type_byte)) return Malformed("empty response");
  Response response;
  response.type = static_cast<MsgType>(type_byte);
  switch (response.type) {
    case MsgType::kError: {
      uint8_t code = 0;
      std::string message;
      if (!reader.U8(&code) || !reader.Str(&message)) {
        return Malformed("error body");
      }
      if (code > static_cast<uint8_t>(StatusCode::kUnavailable) ||
          code == static_cast<uint8_t>(StatusCode::kOk)) {
        return Malformed("error status code");
      }
      response.error = Status(static_cast<StatusCode>(code),
                              std::move(message));
      break;
    }
    case MsgType::kHelloOk: {
      uint64_t version = 0;
      if (!reader.U64(&version) || !reader.Str(&response.text)) {
        return Malformed("hello-ok body");
      }
      response.version = static_cast<uint32_t>(version);
      break;
    }
    case MsgType::kQueryOk:
      if (!GetTable(&reader, &response.query.table) ||
          !GetStats(&reader, &response.query.stats) ||
          !reader.Str(&response.query.degraded)) {
        return Malformed("query reply");
      }
      break;
    case MsgType::kTrackOk:
      if (!GetTable(&reader, &response.track.table) ||
          !reader.Str(&response.track.summary) ||
          !reader.Str(&response.track.text)) {
        return Malformed("track reply");
      }
      break;
    case MsgType::kStatsOk:
      if (!reader.Str(&response.text)) return Malformed("text body");
      // Structured tail is optional: a pre-retention server sends only the
      // rendered text. Anything present must decode cleanly, though.
      if (!reader.Done() &&
          !GetStatsFields(&reader, &response.stats_fields)) {
        return Malformed("stats fields");
      }
      break;
    case MsgType::kOptionOk:
    case MsgType::kCheckOk:
    case MsgType::kExplainOk:
      if (!reader.Str(&response.text)) return Malformed("text body");
      break;
    case MsgType::kPong:
      break;
    default:
      return Status::InvalidArgument(
          "unknown response type " + std::to_string(type_byte));
  }
  if (!reader.Done()) return Malformed("trailing bytes");
  return response;
}

}  // namespace aiql
