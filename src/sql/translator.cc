#include "sql/translator.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/like_matcher.h"
#include "common/string_utils.h"
#include "engine/dependency.h"
#include "query/analyzer.h"
#include "query/attributes.h"

namespace aiql {

namespace {

// Canonical attr -> normalized-schema column.
std::string NormalizedColumn(EntityType type, const std::string& canonical) {
  if (canonical == "user") return "username";
  (void)type;
  return canonical;  // exe_name, pid, agentid, path, dst_ip, ...
}

// Canonical attr -> flat-schema column for a given side.
std::string FlatColumn(EntityType type, bool is_subject,
                       const std::string& canonical) {
  if (type == EntityType::kProcess) {
    if (is_subject) {
      if (canonical == "exe_name") return "subject_exe";
      if (canonical == "pid") return "subject_pid";
      if (canonical == "user") return "subject_user";
      return "agentid";  // subject agent == event agent
    }
    if (canonical == "exe_name") return "object_exe";
    if (canonical == "pid") return "object_pid";
    if (canonical == "user") return "object_user";
    return "object_agentid";
  }
  if (type == EntityType::kFile) {
    if (canonical == "path") return "file_path";
    return "agentid";
  }
  // network
  if (canonical == "agentid") return "agentid";
  return canonical;  // src_ip, src_port, dst_ip, dst_port, protocol
}

// Identity columns used for flat-schema entity joins.
std::vector<std::string> FlatIdentityColumns(EntityType type,
                                             bool is_subject) {
  switch (type) {
    case EntityType::kProcess:
      if (is_subject) {
        return {"agentid", "subject_pid", "subject_exe", "subject_user"};
      }
      return {"object_agentid", "object_pid", "object_exe", "object_user"};
    case EntityType::kFile:
      return {"agentid", "file_path"};
    case EntityType::kNetwork:
      return {"agentid", "src_ip", "src_port", "dst_ip", "dst_port",
              "protocol"};
  }
  return {};
}

std::string SanitizeAlias(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "v_" + out;
  }
  return ToLower(out);
}

/// Shared translation machinery.
class Translator {
 public:
  Translator(const MultieventQueryAst& ast, const AnalyzedQuery& analyzed,
             SqlSchemaMode mode)
      : ast_(ast), analyzed_(analyzed), mode_(mode) {}

  Result<SqlTranslation> Run() {
    if (ast_.is_anomaly()) return TranslateAnomaly();
    return TranslateMultievent();
  }

 private:
  bool flat() const { return mode_ == SqlSchemaMode::kFlat; }

  std::string EventAlias(int pattern) const {
    return (flat() ? "l" : "e") + std::to_string(pattern + 1);
  }

  // --- predicate emission ----------------------------------------------------

  void AddConjunct(std::string text) {
    conjuncts_.push_back(std::move(text));
    ++constraint_count_;
  }

  /// Renders an AIQL LIKE pattern as a SQL LIKE operand. AIQL's escapes
  /// ('\%', '\_', '\\' are literal; a backslash before anything else is an
  /// ordinary character) are re-encoded into standard SQL escaping, where a
  /// bare backslash before an arbitrary character is undefined: ordinary
  /// backslashes double, and the pattern gains an explicit ESCAPE '\'
  /// clause. Patterns without backslashes render unchanged.
  std::string LikeSql(const std::string& pattern) const {
    std::string out;
    bool needs_escape = false;
    for (size_t i = 0; i < pattern.size(); ++i) {
      char c = pattern[i];
      if (LikeMatcher::IsEscape(pattern, i)) {
        out += '\\';
        out += pattern[++i];
        needs_escape = true;
      } else if (c == '\\') {
        out += "\\\\";
        needs_escape = true;
      } else {
        out += c;
      }
    }
    std::string sql = SqlQuote(out);
    if (needs_escape) sql += " ESCAPE '\\'";
    return sql;
  }

  std::string ValueSql(const ValueLiteral& value) const {
    if (value.kind == ValueLiteral::Kind::kString) {
      return SqlQuote(value.str);
    }
    if (value.kind == ValueLiteral::Kind::kInt) {
      return std::to_string(value.i);
    }
    return std::to_string(value.f);
  }

  // Emits one entity constraint as a conjunct on `column_ref`.
  Status EmitConstraint(const std::string& column_ref, AttrKind kind,
                        const AttrConstraint& constraint) {
    const char* cmp = nullptr;
    switch (constraint.op) {
      case CmpOp::kEq:
        cmp = "=";
        break;
      case CmpOp::kNe:
        cmp = "<>";
        break;
      case CmpOp::kLt:
        cmp = "<";
        break;
      case CmpOp::kLe:
        cmp = "<=";
        break;
      case CmpOp::kGt:
        cmp = ">";
        break;
      case CmpOp::kGe:
        cmp = ">=";
        break;
      case CmpOp::kLike:
        cmp = "LIKE";
        break;
      case CmpOp::kIn:
        cmp = "IN";
        break;
    }
    if (constraint.op == CmpOp::kIn) {
      std::string list;
      for (size_t i = 0; i < constraint.values.size(); ++i) {
        if (i > 0) list += ", ";
        list += ValueSql(constraint.values[i]);
      }
      AddConjunct(column_ref + " IN (" + list + ")");
      return Status::OK();
    }
    const ValueLiteral& value = constraint.values.front();
    if (kind == AttrKind::kString) {
      // Case-insensitive semantics: '=' on strings becomes LIKE.
      if (constraint.op == CmpOp::kEq || constraint.op == CmpOp::kLike) {
        AddConjunct(column_ref + " LIKE " + LikeSql(value.str));
      } else if (constraint.op == CmpOp::kNe) {
        AddConjunct("NOT " + column_ref + " LIKE " + LikeSql(value.str));
      } else {
        return Status::SemanticError("unsupported string comparison");
      }
      return Status::OK();
    }
    AddConjunct(column_ref + " " + cmp + " " + ValueSql(value));
    return Status::OK();
  }

  // Column reference for an entity attribute at a given occurrence.
  std::string EntityColumnRef(const std::string& var, EntityType type,
                              int pattern, bool is_subject,
                              const std::string& canonical) const {
    if (flat()) {
      return EventAlias(pattern) + "." +
             FlatColumn(type, is_subject, canonical);
    }
    return entity_alias_.at(var) + "." + NormalizedColumn(type, canonical);
  }

  // --- FROM / entity alias management (normalized mode) ----------------------

  Status PreparePatternSources() {
    // Every pattern contributes an events/audit_log alias; normalized mode
    // additionally joins entity tables (one alias per entity variable).
    for (int i = 0; i < static_cast<int>(ast_.patterns.size()); ++i) {
      const EventPatternAst& pattern = ast_.patterns[i];
      from_.push_back((flat() ? std::string("audit_log ") : std::string(
                                                                "events ")) +
                      EventAlias(i));
      AIQL_RETURN_IF_ERROR(PrepareSide(pattern.subject, i, true));
      AIQL_RETURN_IF_ERROR(PrepareSide(pattern.object, i, false));
      // Operation + object-type predicates.
      std::string alias = EventAlias(i);
      if (pattern.ops.size() == 1) {
        AddConjunct(alias + ".op = '" +
                    OpTypeToString(pattern.ops.front()) + "'");
      } else {
        std::string list;
        for (size_t k = 0; k < pattern.ops.size(); ++k) {
          if (k > 0) list += ", ";
          list += std::string("'") + OpTypeToString(pattern.ops[k]) + "'";
        }
        AddConjunct(alias + ".op IN (" + list + ")");
      }
      AddConjunct(alias + ".object_type = '" +
                  EntityTypeToString(pattern.object.type) + "'");
      // Global constraints apply to every event alias.
      for (const AttrConstraint& g : ast_.globals.attrs) {
        AIQL_RETURN_IF_ERROR(
            EmitConstraint(alias + ".agentid", AttrKind::kInt, g));
      }
      if (ast_.globals.time_window.has_value()) {
        const TimeRange& w = *ast_.globals.time_window;
        AddConjunct(alias + ".start_ts >= " + std::to_string(w.start));
        AddConjunct(alias + ".start_ts < " + std::to_string(w.end));
      }
    }
    return Status::OK();
  }

  // Registers one pattern side: entity alias + link predicate (normalized),
  // constraints, and identity joins for repeated variables.
  Status PrepareSide(const EntityDeclAst& decl, int pattern,
                     bool is_subject) {
    std::string var = decl.var;
    if (var.empty()) {
      var = "$anon" + std::to_string(pattern) + (is_subject ? "s" : "o");
    }
    bool first_occurrence = seen_vars_.count(var) == 0;

    if (!flat()) {
      if (first_occurrence) {
        std::string alias = SanitizeAlias(var);
        // Avoid collisions with event aliases / other vars.
        while (used_aliases_.count(alias) > 0) alias += "_";
        used_aliases_.insert(alias);
        entity_alias_[var] = alias;
        const char* table = decl.type == EntityType::kProcess ? "process"
                            : decl.type == EntityType::kFile  ? "file"
                                                              : "network";
        from_.push_back(std::string(table) + " " + alias);
      }
      // Link the entity alias to this event alias.
      AddConjunct(entity_alias_[var] + ".id = " + EventAlias(pattern) +
                  (is_subject ? ".subject_id" : ".object_id"));
    } else if (!first_occurrence) {
      // Flat mode: identity equality with the first occurrence.
      const auto& [first_pattern, first_subject] = first_occurrence_.at(var);
      std::vector<std::string> here =
          FlatIdentityColumns(decl.type, is_subject);
      std::vector<std::string> there =
          FlatIdentityColumns(decl.type, first_subject);
      for (size_t c = 0; c < here.size(); ++c) {
        AddConjunct(EventAlias(pattern) + "." + here[c] + " = " +
                    EventAlias(first_pattern) + "." + there[c]);
      }
    }
    if (first_occurrence) {
      seen_vars_.insert(var);
      first_occurrence_[var] = {pattern, is_subject};
      var_type_[var] = decl.type;
    }

    // Constraints written at this occurrence.
    for (const AttrConstraint& constraint : decl.constraints) {
      AIQL_ASSIGN_OR_RETURN(AttrInfo info,
                            ResolveEntityAttr(decl.type, constraint.attr));
      std::string column =
          EntityColumnRef(var, decl.type, pattern, is_subject,
                          info.canonical);
      AIQL_RETURN_IF_ERROR(EmitConstraint(column, info.kind, constraint));
    }
    return Status::OK();
  }

  // --- shared helpers ---------------------------------------------------------

  // SQL column expression for a return/group/relation reference.
  Result<std::string> RefSql(const AttrRefAst& ref) {
    auto event_it = analyzed_.event_index.find(ref.var);
    if (event_it != analyzed_.event_index.end()) {
      AIQL_ASSIGN_OR_RETURN(
          AttrInfo info,
          ResolveEventAttr(ref.attr.empty() ? "amount" : ref.attr));
      std::string column = info.canonical == "start_time" ? "start_ts"
                           : info.canonical == "end_time" ? "end_ts"
                                                          : info.canonical;
      return EventAlias(event_it->second) + "." + column;
    }
    auto type_it = var_type_.find(ref.var);
    if (type_it == var_type_.end()) {
      return Status::SemanticError("unknown variable '" + ref.var + "'");
    }
    EntityType type = type_it->second;
    AIQL_ASSIGN_OR_RETURN(AttrInfo info, ResolveEntityAttr(type, ref.attr));
    const auto& [pattern, is_subject] = first_occurrence_.at(ref.var);
    return EntityColumnRef(ref.var, type, pattern, is_subject,
                           info.canonical);
  }

  Status EmitRelations() {
    for (const TemporalRelAst& rel : ast_.temporal_rels) {
      int left = analyzed_.event_index.at(rel.left);
      int right = analyzed_.event_index.at(rel.right);
      if (!rel.before) std::swap(left, right);
      AddConjunct(EventAlias(left) + ".end_ts <= " + EventAlias(right) +
                  ".start_ts");
      if (rel.within > 0) {
        AddConjunct(EventAlias(right) + ".start_ts - " + EventAlias(left) +
                    ".end_ts <= " + std::to_string(rel.within));
      }
    }
    for (const AttrRelAst& rel : ast_.attr_rels) {
      AIQL_ASSIGN_OR_RETURN(std::string left, RefSql(rel.left));
      AIQL_ASSIGN_OR_RETURN(std::string right, RefSql(rel.right));
      AddConjunct(left + " " + CmpOpToString(rel.op) + " " + right);
    }
    return Status::OK();
  }

  std::string BuildSelect(const std::string& select_list) const {
    std::string sql = "SELECT ";
    if (ast_.distinct) sql += "DISTINCT ";
    sql += select_list + "\nFROM " + JoinStrings(from_, ", ");
    if (!conjuncts_.empty()) {
      sql += "\nWHERE " + JoinStrings(conjuncts_, "\n  AND ");
    }
    return sql;
  }

  SqlTranslation Finish(std::string sql) const {
    SqlTranslation out;
    out.metrics.constraints = constraint_count_;
    out.metrics.words = CountWords(sql);
    out.metrics.chars = CountNonSpaceChars(sql);
    out.sql = std::move(sql);
    return out;
  }

  // --- multievent ---------------------------------------------------------------

  Result<SqlTranslation> TranslateMultievent() {
    AIQL_RETURN_IF_ERROR(PreparePatternSources());
    AIQL_RETURN_IF_ERROR(EmitRelations());

    std::vector<std::string> items;
    for (const ReturnItemAst& item : ast_.return_items) {
      const auto* ref = std::get_if<AttrRefAst>(&item.expr);
      if (ref == nullptr) {
        return Status::SemanticError(
            "aggregates are only valid in anomaly queries");
      }
      AIQL_ASSIGN_OR_RETURN(std::string column, RefSql(*ref));
      std::string alias =
          item.alias.empty() ? SanitizeAlias(ref->ToString()) : item.alias;
      items.push_back(column + " AS " + alias);
    }
    std::string sql = BuildSelect(JoinStrings(items, ", "));
    if (ast_.limit.has_value()) {
      sql += "\nLIMIT " + std::to_string(*ast_.limit);
    }
    sql += ";";
    return Finish(std::move(sql));
  }

  // --- anomaly --------------------------------------------------------------------

  // Collects (alias, max history depth) references in the having clause.
  static void CollectHistory(const HavingExpr* node,
                             std::unordered_map<std::string, int>* depths,
                             int* max_depth) {
    if (node == nullptr) return;
    if (node->kind == HavingExpr::Kind::kAggRef && node->history > 0) {
      auto& depth = (*depths)[node->agg_alias];
      depth = std::max(depth, node->history);
      *max_depth = std::max(*max_depth, node->history);
    }
    CollectHistory(node->lhs.get(), depths, max_depth);
    CollectHistory(node->rhs.get(), depths, max_depth);
  }

  // Renders the having expression against the outer derived tables:
  // amt -> a.amt, amt[k] -> COALESCE(h<k>.amt, 0).
  static std::string HavingSql(const HavingExpr& node) {
    switch (node.kind) {
      case HavingExpr::Kind::kNumber: {
        if (node.number == static_cast<int64_t>(node.number)) {
          return std::to_string(static_cast<int64_t>(node.number));
        }
        return std::to_string(node.number);
      }
      case HavingExpr::Kind::kAggRef:
        if (node.history == 0) return "a." + node.agg_alias;
        return "COALESCE(h" + std::to_string(node.history) + "." +
               node.agg_alias + ", 0)";
      case HavingExpr::Kind::kArith:
        return "(" + HavingSql(*node.lhs) + " " + node.arith_op + " " +
               HavingSql(*node.rhs) + ")";
      case HavingExpr::Kind::kCompare: {
        std::string op = node.cmp == CmpOp::kNe
                             ? "<>"
                             : CmpOpToString(node.cmp);
        return "(" + HavingSql(*node.lhs) + " " + op + " " +
               HavingSql(*node.rhs) + ")";
      }
      case HavingExpr::Kind::kAnd:
        return "(" + HavingSql(*node.lhs) + " AND " + HavingSql(*node.rhs) +
               ")";
      case HavingExpr::Kind::kOr:
        return "(" + HavingSql(*node.lhs) + " OR " + HavingSql(*node.rhs) +
               ")";
      case HavingExpr::Kind::kNot:
        return "(NOT " + HavingSql(*node.lhs) + ")";
    }
    return "1";
  }

  static size_t CountComparisons(const HavingExpr* node) {
    if (node == nullptr) return 0;
    return (node->kind == HavingExpr::Kind::kCompare ? 1 : 0) +
           CountComparisons(node->lhs.get()) +
           CountComparisons(node->rhs.get());
  }

  Result<SqlTranslation> TranslateAnomaly() {
    if (!ast_.globals.time_window.has_value()) {
      return Status::SemanticError(
          "SQL translation of anomaly queries requires an explicit time "
          "window (the windows() anchor)");
    }
    const TimeRange& window = *ast_.globals.time_window;
    const WindowSpec& spec = *ast_.window;

    AIQL_RETURN_IF_ERROR(PreparePatternSources());
    // Window membership predicates on the single pattern's event alias.
    std::string alias = EventAlias(0);
    from_.insert(from_.begin(),
                 "windows(" + std::to_string(window.start) + ", " +
                     std::to_string(window.end) + ", " +
                     std::to_string(spec.length) + ", " +
                     std::to_string(spec.step) + ") w");
    AddConjunct(alias + ".start_ts >= w.wstart");
    AddConjunct(alias + ".start_ts < w.wstart + " +
                std::to_string(spec.length));

    // Inner select: window index + group keys + aggregates.
    std::vector<std::string> inner_items = {"w.idx AS widx",
                                            "w.wstart AS wstart"};
    std::vector<std::string> group_exprs = {"w.idx", "w.wstart"};
    std::vector<std::string> group_out;  // outer projections per group ref
    for (size_t g = 0; g < ast_.group_by.size(); ++g) {
      const AttrRefAst& ref = ast_.group_by[g];
      AIQL_ASSIGN_OR_RETURN(std::string display, RefSql(ref));
      // Group identity: entity id for bare refs (normalized mode), identity
      // columns in flat mode.
      std::vector<std::string> identity;
      if (ref.attr.empty() && analyzed_.event_index.count(ref.var) == 0) {
        if (!flat()) {
          identity.push_back(entity_alias_.at(ref.var) + ".id");
        } else {
          const auto& [pattern, is_subject] = first_occurrence_.at(ref.var);
          for (const std::string& column :
               FlatIdentityColumns(var_type_.at(ref.var), is_subject)) {
            identity.push_back(EventAlias(pattern) + "." + column);
          }
        }
      } else {
        identity.push_back(display);
      }
      for (size_t k = 0; k < identity.size(); ++k) {
        std::string out_name =
            "gid" + std::to_string(g) + "_" + std::to_string(k);
        inner_items.push_back(identity[k] + " AS " + out_name);
        group_exprs.push_back(identity[k]);
        gid_columns_.push_back(out_name);
      }
      std::string display_name = "g" + std::to_string(g);
      inner_items.push_back(display + " AS " + display_name);
      group_exprs.push_back(display);
      group_out.push_back(display_name);
    }

    // Aggregate items.
    size_t agg_counter = 0;
    std::vector<std::string> outer_items = {"a.wstart AS window_start"};
    size_t group_cursor = 0;
    for (const ReturnItemAst& item : ast_.return_items) {
      if (const auto* agg = std::get_if<AggCallAst>(&item.expr)) {
        std::string func = AggFuncToString(*&agg->func);
        for (char& c : func) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        std::string arg = "*";
        if (!agg->star) {
          AIQL_ASSIGN_OR_RETURN(arg, RefSql(agg->arg));
        }
        std::string name = item.alias.empty()
                               ? "agg" + std::to_string(agg_counter++)
                               : item.alias;
        inner_items.push_back(func + "(" + arg + ") AS " + name);
        outer_items.push_back("a." + name + " AS " + name);
      } else {
        const auto& ref = std::get<AttrRefAst>(item.expr);
        // Matched to a group-by item (validated by the engine too).
        bool found = false;
        for (size_t g = 0; g < ast_.group_by.size(); ++g) {
          if (ast_.group_by[g].var == ref.var &&
              ast_.group_by[g].attr == ref.attr) {
            std::string name = item.alias.empty()
                                   ? SanitizeAlias(ref.ToString())
                                   : item.alias;
            outer_items.push_back("a." + group_out[g] + " AS " + name);
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::SemanticError("return item '" + ref.ToString() +
                                       "' is not in group by");
        }
        ++group_cursor;
      }
    }
    (void)group_cursor;

    std::string inner = BuildSelect(JoinStrings(inner_items, ", "));
    inner += "\nGROUP BY " + JoinStrings(group_exprs, ", ");

    // Outer query with history self-joins.
    std::unordered_map<std::string, int> history;
    int max_depth = 0;
    CollectHistory(ast_.having.get(), &history, &max_depth);

    std::string sql = "SELECT " + JoinStrings(outer_items, ", ") +
                      "\nFROM (" + inner + ") a";
    std::unordered_set<int> depths;
    CollectDepths(ast_.having.get(), &depths);
    for (int depth : SortedDepths(depths)) {
      std::string h = "h" + std::to_string(depth);
      sql += "\nLEFT JOIN (" + inner + ") " + h + " ON ";
      std::vector<std::string> ons;
      for (const std::string& gid : gid_columns_) {
        ons.push_back(h + "." + gid + " = a." + gid);
      }
      ons.push_back(h + ".widx = a.widx - " + std::to_string(depth));
      sql += JoinStrings(ons, " AND ");
      constraint_count_ += ons.size();
    }
    std::vector<std::string> outer_where;
    if (max_depth > 0) {
      outer_where.push_back("a.widx >= " + std::to_string(max_depth));
      ++constraint_count_;
    }
    if (ast_.having != nullptr) {
      outer_where.push_back(HavingSql(*ast_.having));
      constraint_count_ += CountComparisons(ast_.having.get());
    }
    if (!outer_where.empty()) {
      sql += "\nWHERE " + JoinStrings(outer_where, " AND ");
    }
    if (ast_.limit.has_value()) {
      sql += "\nLIMIT " + std::to_string(*ast_.limit);
    }
    sql += ";";
    return Finish(std::move(sql));
  }

  static void CollectDepths(const HavingExpr* node,
                            std::unordered_set<int>* out) {
    if (node == nullptr) return;
    if (node->kind == HavingExpr::Kind::kAggRef && node->history > 0) {
      out->insert(node->history);
    }
    CollectDepths(node->lhs.get(), out);
    CollectDepths(node->rhs.get(), out);
  }
  static std::vector<int> SortedDepths(const std::unordered_set<int>& set) {
    std::vector<int> out(set.begin(), set.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  const MultieventQueryAst& ast_;
  const AnalyzedQuery& analyzed_;
  SqlSchemaMode mode_;

  std::vector<std::string> from_;
  std::vector<std::string> conjuncts_;
  size_t constraint_count_ = 0;

  std::unordered_set<std::string> seen_vars_;
  std::unordered_map<std::string, std::pair<int, bool>> first_occurrence_;
  std::unordered_map<std::string, EntityType> var_type_;
  std::unordered_map<std::string, std::string> entity_alias_;
  std::unordered_set<std::string> used_aliases_;
  std::vector<std::string> gid_columns_;
};

}  // namespace

Result<SqlTranslation> TranslateToSql(const ParsedQuery& query,
                                      SqlSchemaMode mode) {
  if (query.kind == QueryKind::kDependency) {
    AIQL_ASSIGN_OR_RETURN(auto rewritten,
                          RewriteDependency(*query.dependency));
    AIQL_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        AnalyzeMultievent(*rewritten, QueryKind::kMultievent));
    return Translator(*rewritten, analyzed, mode).Run();
  }
  AIQL_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                        AnalyzeMultievent(*query.multievent, query.kind));
  return Translator(*query.multievent, analyzed, mode).Run();
}

}  // namespace aiql
