// AST for the mini-SQL dialect the baseline engine executes.
//
// Supported surface (enough for every query the AIQL->SQL translator
// emits, mirroring what an analyst would run in PostgreSQL):
//   SELECT [DISTINCT] expr [AS alias], ...
//   FROM table alias [, table alias ...]
//        [LEFT JOIN table_or_subquery alias ON expr ...]
//   WHERE expr  [GROUP BY expr, ...]  [HAVING expr]  [LIMIT n]
// Table refs may be base tables, derived tables `(SELECT ...) alias`, or
// the table function windows(start, end, length, step) -> (idx, wstart).

#ifndef AIQL_SQL_SQL_AST_H_
#define AIQL_SQL_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/sql_value.h"

namespace aiql {

struct SqlSelect;

/// Expression node.
struct SqlExpr {
  enum class Kind {
    kLiteral,    ///< value
    kColumn,     ///< alias.column (alias may be empty)
    kBinary,     ///< op in {+,-,*,/,=,<>,<,<=,>,>=,AND,OR}
    kLike,       ///< lhs LIKE pattern-literal
    kIn,         ///< lhs IN (literal list)
    kNot,        ///< NOT lhs
    kFunc,       ///< COALESCE(args...) or aggregate COUNT/SUM/AVG/MIN/MAX
    kStar,       ///< '*' inside COUNT(*)
  };
  Kind kind = Kind::kLiteral;
  SqlValue literal;
  std::string table_alias;  ///< kColumn
  std::string column;       ///< kColumn
  std::string op;           ///< kBinary operator / kFunc name (upper-cased)
  std::unique_ptr<SqlExpr> lhs;
  std::unique_ptr<SqlExpr> rhs;
  std::vector<std::unique_ptr<SqlExpr>> args;  ///< kFunc / kIn list

  bool is_aggregate_call() const {
    return kind == Kind::kFunc &&
           (op == "COUNT" || op == "SUM" || op == "AVG" || op == "MIN" ||
            op == "MAX");
  }
};

using SqlExprPtr = std::unique_ptr<SqlExpr>;

/// One FROM item.
struct SqlTableRef {
  enum class Kind { kBase, kSubquery, kWindows };
  Kind kind = Kind::kBase;
  std::string table;  ///< base table name (lower-cased)
  std::string alias;
  std::unique_ptr<SqlSelect> subquery;
  /// windows(start, end, length, step) literal arguments (microseconds).
  int64_t win_start = 0, win_end = 0, win_length = 0, win_step = 0;
  /// True when joined with LEFT JOIN ... ON join_cond (else comma/cross).
  bool left_join = false;
  SqlExprPtr join_cond;
};

/// One SELECT-list item.
struct SqlSelectItem {
  SqlExprPtr expr;
  std::string alias;
};

/// A (possibly nested) SELECT statement.
struct SqlSelect {
  bool distinct = false;
  std::vector<SqlSelectItem> items;
  std::vector<SqlTableRef> from;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::optional<int64_t> limit;
};

}  // namespace aiql

#endif  // AIQL_SQL_SQL_AST_H_
