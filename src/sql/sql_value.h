// SQL value type with NULL (needed for LEFT JOIN / COALESCE in the
// generated anomaly SQL).

#ifndef AIQL_SQL_SQL_VALUE_H_
#define AIQL_SQL_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace aiql {

/// NULL, integer, double, or string.
using SqlValue = std::variant<std::monostate, int64_t, double, std::string>;

inline bool SqlIsNull(const SqlValue& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Renders for display; NULL renders as "NULL".
std::string SqlValueToString(const SqlValue& v);

/// Numeric coercion (NULL/strings -> 0).
double SqlValueToDouble(const SqlValue& v);

/// Three-way comparison (-1/0/1); strings compare lexicographically, numbers
/// numerically, mixed numeric widths coerce to double. Caller must handle
/// NULL first (SQL NULL never compares equal).
int SqlCompare(const SqlValue& a, const SqlValue& b);

}  // namespace aiql

#endif  // AIQL_SQL_SQL_VALUE_H_
