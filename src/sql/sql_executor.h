// Generic relational executor — the PostgreSQL stand-in baseline.
//
// Deliberately semantics-agnostic (the paper's point): it parses the SQL
// text, pushes single-table predicates into scans, prunes partitions from
// time/agent predicates when the storage supports it, and joins the FROM
// list left-to-right in *query order* with hash joins on available equality
// predicates. It has none of AIQL's domain optimizations: no pattern
// reordering by pruning power, no partition-parallel scans (single thread),
// no semi-join or temporal pruning across event patterns.

#ifndef AIQL_SQL_SQL_EXECUTOR_H_
#define AIQL_SQL_SQL_EXECUTOR_H_

#include <string_view>

#include "common/status.h"
#include "engine/result.h"
#include "sql/catalog.h"
#include "sql/sql_ast.h"

namespace aiql {

/// Executes mini-SQL SELECT statements against a catalog.
class SqlExecutor {
 public:
  explicit SqlExecutor(const SqlCatalog* catalog) : catalog_(catalog) {}

  /// Parses and runs `sql`; returns rows plus stats (rows scanned, join
  /// candidates, timings).
  Result<QueryResult> Execute(std::string_view sql);

 private:
  const SqlCatalog* catalog_;
};

}  // namespace aiql

#endif  // AIQL_SQL_SQL_EXECUTOR_H_
