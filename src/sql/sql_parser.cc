#include "sql/sql_parser.h"

#include <cctype>
#include <vector>

#include "common/string_utils.h"

namespace aiql {

namespace {

enum class SqlTok {
  kIdent,
  kString,  // single-quoted
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kEnd,
};

struct SqlToken {
  SqlTok kind = SqlTok::kEnd;
  std::string text;
  double number = 0;
  bool number_is_integer = true;
  int line = 1;
  int column = 1;
};

class SqlLexer {
 public:
  explicit SqlLexer(std::string_view text) : text_(text) {}

  Result<std::vector<SqlToken>> Run() {
    std::vector<SqlToken> tokens;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) break;
      AIQL_ASSIGN_OR_RETURN(SqlToken token, Next());
      tokens.push_back(std::move(token));
    }
    SqlToken end;
    end.kind = SqlTok::kEnd;
    end.line = line_;
    end.column = col_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  void SkipSpace() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (Peek() == '-' && Peek(1) == '-') {  // SQL comment
        while (pos_ < text_.size() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }
  Status Error(std::string msg) const {
    return Status::ParseError("SQL line " + std::to_string(line_) + ", col " +
                              std::to_string(col_) + ": " + std::move(msg));
  }

  Result<SqlToken> Next() {
    SqlToken t;
    t.line = line_;
    t.column = col_;
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (std::isalnum(static_cast<unsigned char>(Peek())) ||
             Peek() == '_') {
        t.text += Advance();
      }
      t.kind = SqlTok::kIdent;
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool has_dot = false;
      while (std::isdigit(static_cast<unsigned char>(Peek())) ||
             (Peek() == '.' && !has_dot &&
              std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        if (Peek() == '.') has_dot = true;
        t.text += Advance();
      }
      t.kind = SqlTok::kNumber;
      t.number = std::stod(t.text);
      t.number_is_integer = !has_dot;
      return t;
    }
    if (c == '\'') {
      Advance();
      while (true) {
        if (pos_ >= text_.size()) return Error("unterminated string");
        char ch = Advance();
        if (ch == '\'') {
          if (Peek() == '\'') {  // '' escape
            t.text += '\'';
            Advance();
            continue;
          }
          break;
        }
        t.text += ch;
      }
      t.kind = SqlTok::kString;
      return t;
    }
    Advance();
    switch (c) {
      case '(':
        t.kind = SqlTok::kLParen;
        return t;
      case ')':
        t.kind = SqlTok::kRParen;
        return t;
      case ',':
        t.kind = SqlTok::kComma;
        return t;
      case '.':
        t.kind = SqlTok::kDot;
        return t;
      case '*':
        t.kind = SqlTok::kStar;
        return t;
      case '+':
        t.kind = SqlTok::kPlus;
        return t;
      case '-':
        t.kind = SqlTok::kMinus;
        return t;
      case '/':
        t.kind = SqlTok::kSlash;
        return t;
      case ';':
        t.kind = SqlTok::kSemicolon;
        return t;
      case '=':
        t.kind = SqlTok::kEq;
        return t;
      case '<':
        if (Peek() == '=') {
          Advance();
          t.kind = SqlTok::kLe;
        } else if (Peek() == '>') {
          Advance();
          t.kind = SqlTok::kNe;
        } else {
          t.kind = SqlTok::kLt;
        }
        return t;
      case '>':
        if (Peek() == '=') {
          Advance();
          t.kind = SqlTok::kGe;
        } else {
          t.kind = SqlTok::kGt;
        }
        return t;
      case '!':
        if (Peek() == '=') {
          Advance();
          t.kind = SqlTok::kNe;
          return t;
        }
        return Error("unexpected '!'");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class SqlParser {
 public:
  explicit SqlParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<SqlSelect>> Run() {
    AIQL_ASSIGN_OR_RETURN(tokens_, SqlLexer(text_).Run());
    AIQL_ASSIGN_OR_RETURN(auto select, ParseSelect());
    Match(SqlTok::kSemicolon);
    if (!Check(SqlTok::kEnd)) {
      return Error("unexpected trailing input");
    }
    return select;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const SqlToken& Advance() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool Check(SqlTok kind) const { return Peek().kind == kind; }
  bool Match(SqlTok kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  bool PeekKw(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == SqlTok::kIdent &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }
  bool MatchKw(std::string_view kw) {
    if (!PeekKw(kw)) return false;
    Advance();
    return true;
  }
  Status Error(std::string msg) const {
    const SqlToken& t = Peek();
    return Status::ParseError("SQL line " + std::to_string(t.line) +
                              ", col " + std::to_string(t.column) + ": " +
                              std::move(msg) + " (got '" + t.text + "')");
  }
  Status ExpectKw(std::string_view kw) {
    if (!MatchKw(kw)) return Error("expected '" + std::string(kw) + "'");
    return Status::OK();
  }
  Status Expect(SqlTok kind, std::string_view what) {
    if (!Match(kind)) return Error("expected " + std::string(what));
    return Status::OK();
  }

  bool IsReserved(const std::string& word) const {
    static const char* kReserved[] = {
        "select", "from",  "where", "group", "by",    "having", "limit",
        "and",    "or",    "not",   "like",  "in",    "as",     "distinct",
        "left",   "join",  "on",    "order", "union", "inner"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Result<std::unique_ptr<SqlSelect>> ParseSelect() {
    AIQL_RETURN_IF_ERROR(ExpectKw("select"));
    auto select = std::make_unique<SqlSelect>();
    select->distinct = MatchKw("distinct");
    do {
      SqlSelectItem item;
      AIQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKw("as")) {
        if (!Check(SqlTok::kIdent)) return Error("expected an alias");
        item.alias = ToLower(Advance().text);
      }
      select->items.push_back(std::move(item));
    } while (Match(SqlTok::kComma));

    AIQL_RETURN_IF_ERROR(ExpectKw("from"));
    AIQL_ASSIGN_OR_RETURN(SqlTableRef first, ParseTableRef());
    select->from.push_back(std::move(first));
    while (true) {
      if (Match(SqlTok::kComma)) {
        AIQL_ASSIGN_OR_RETURN(SqlTableRef ref, ParseTableRef());
        select->from.push_back(std::move(ref));
        continue;
      }
      if (PeekKw("left")) {
        Advance();
        AIQL_RETURN_IF_ERROR(ExpectKw("join"));
        AIQL_ASSIGN_OR_RETURN(SqlTableRef ref, ParseTableRef());
        ref.left_join = true;
        AIQL_RETURN_IF_ERROR(ExpectKw("on"));
        AIQL_ASSIGN_OR_RETURN(ref.join_cond, ParseExpr());
        select->from.push_back(std::move(ref));
        continue;
      }
      break;
    }

    if (MatchKw("where")) {
      AIQL_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    if (MatchKw("group")) {
      AIQL_RETURN_IF_ERROR(ExpectKw("by"));
      do {
        AIQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        select->group_by.push_back(std::move(expr));
      } while (Match(SqlTok::kComma));
    }
    if (MatchKw("having")) {
      AIQL_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    if (MatchKw("limit")) {
      if (!Check(SqlTok::kNumber)) return Error("expected a limit count");
      select->limit = static_cast<int64_t>(Advance().number);
    }
    return select;
  }

  Result<SqlTableRef> ParseTableRef() {
    SqlTableRef ref;
    if (Match(SqlTok::kLParen)) {
      AIQL_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      AIQL_RETURN_IF_ERROR(Expect(SqlTok::kRParen, "')'"));
      ref.kind = SqlTableRef::Kind::kSubquery;
    } else if (PeekKw("windows") && Peek(1).kind == SqlTok::kLParen) {
      Advance();
      Advance();
      int64_t args[4];
      for (int i = 0; i < 4; ++i) {
        bool neg = Match(SqlTok::kMinus);
        if (!Check(SqlTok::kNumber)) {
          return Error("windows() expects four integer arguments");
        }
        args[i] = static_cast<int64_t>(Advance().number) * (neg ? -1 : 1);
        if (i < 3) AIQL_RETURN_IF_ERROR(Expect(SqlTok::kComma, "','"));
      }
      AIQL_RETURN_IF_ERROR(Expect(SqlTok::kRParen, "')'"));
      ref.kind = SqlTableRef::Kind::kWindows;
      ref.win_start = args[0];
      ref.win_end = args[1];
      ref.win_length = args[2];
      ref.win_step = args[3];
    } else {
      if (!Check(SqlTok::kIdent)) return Error("expected a table name");
      ref.table = ToLower(Advance().text);
      ref.kind = SqlTableRef::Kind::kBase;
    }
    if (Check(SqlTok::kIdent) && !IsReserved(Peek().text)) {
      ref.alias = ToLower(Advance().text);
    } else if (ref.kind == SqlTableRef::Kind::kBase) {
      ref.alias = ref.table;
    } else {
      return Error("derived tables require an alias");
    }
    return ref;
  }

  // Expression precedence: OR < AND < NOT < cmp < add < mul < unary.
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  SqlExprPtr MakeBinary(std::string op, SqlExprPtr lhs, SqlExprPtr rhs) {
    auto node = std::make_unique<SqlExpr>();
    node->kind = SqlExpr::Kind::kBinary;
    node->op = std::move(op);
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<SqlExprPtr> ParseOr() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (MatchKw("or")) {
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAnd() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (MatchKw("and")) {
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseNot() {
    if (MatchKw("not")) {
      AIQL_ASSIGN_OR_RETURN(auto operand, ParseNot());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    return ParseCmp();
  }

  Result<SqlExprPtr> ParseCmp() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseAdd());
    std::string op;
    if (Match(SqlTok::kEq)) {
      op = "=";
    } else if (Match(SqlTok::kNe)) {
      op = "<>";
    } else if (Match(SqlTok::kLe)) {
      op = "<=";
    } else if (Match(SqlTok::kLt)) {
      op = "<";
    } else if (Match(SqlTok::kGe)) {
      op = ">=";
    } else if (Match(SqlTok::kGt)) {
      op = ">";
    } else if (PeekKw("like")) {
      Advance();
      if (!Check(SqlTok::kString)) {
        return Error("LIKE expects a string literal");
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kLike;
      node->lhs = std::move(lhs);
      node->literal = SqlValue(Advance().text);
      // Optional ESCAPE clause. The executor's matcher hard-codes '\' as
      // the escape character, so only that is accepted.
      if (PeekKw("escape")) {
        Advance();
        if (!Check(SqlTok::kString)) {
          return Error("ESCAPE expects a string literal");
        }
        if (Advance().text != "\\") {
          return Error("only '\\' is supported as the LIKE escape");
        }
      }
      return node;
    } else if (PeekKw("in")) {
      Advance();
      AIQL_RETURN_IF_ERROR(Expect(SqlTok::kLParen, "'('"));
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kIn;
      node->lhs = std::move(lhs);
      do {
        AIQL_ASSIGN_OR_RETURN(auto arg, ParseAdd());
        node->args.push_back(std::move(arg));
      } while (Match(SqlTok::kComma));
      AIQL_RETURN_IF_ERROR(Expect(SqlTok::kRParen, "')'"));
      return node;
    } else {
      return lhs;
    }
    AIQL_ASSIGN_OR_RETURN(auto rhs, ParseAdd());
    return MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }

  Result<SqlExprPtr> ParseAdd() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseMul());
    while (Check(SqlTok::kPlus) || Check(SqlTok::kMinus)) {
      std::string op = Check(SqlTok::kPlus) ? "+" : "-";
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseMul());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseMul() {
    AIQL_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (Check(SqlTok::kStar) || Check(SqlTok::kSlash)) {
      std::string op = Check(SqlTok::kStar) ? "*" : "/";
      Advance();
      AIQL_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (Match(SqlTok::kMinus)) {
      AIQL_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      auto zero = std::make_unique<SqlExpr>();
      zero->kind = SqlExpr::Kind::kLiteral;
      zero->literal = SqlValue(int64_t{0});
      return MakeBinary("-", std::move(zero), std::move(operand));
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    if (Check(SqlTok::kNumber)) {
      const SqlToken& t = Advance();
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kLiteral;
      node->literal = t.number_is_integer
                          ? SqlValue(static_cast<int64_t>(t.number))
                          : SqlValue(t.number);
      return node;
    }
    if (Check(SqlTok::kString)) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kLiteral;
      node->literal = SqlValue(Advance().text);
      return node;
    }
    if (Match(SqlTok::kLParen)) {
      AIQL_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      AIQL_RETURN_IF_ERROR(Expect(SqlTok::kRParen, "')'"));
      return inner;
    }
    if (Check(SqlTok::kStar)) {
      Advance();
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kStar;
      return node;
    }
    if (Check(SqlTok::kIdent)) {
      std::string name = Advance().text;
      if (Match(SqlTok::kLParen)) {  // function call
        auto node = std::make_unique<SqlExpr>();
        node->kind = SqlExpr::Kind::kFunc;
        node->op = ToLower(name);
        for (char& c : node->op) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        if (!Check(SqlTok::kRParen)) {
          do {
            AIQL_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            node->args.push_back(std::move(arg));
          } while (Match(SqlTok::kComma));
        }
        AIQL_RETURN_IF_ERROR(Expect(SqlTok::kRParen, "')'"));
        return node;
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExpr::Kind::kColumn;
      if (Match(SqlTok::kDot)) {
        node->table_alias = ToLower(name);
        if (!Check(SqlTok::kIdent)) return Error("expected a column name");
        node->column = ToLower(Advance().text);
      } else {
        node->column = ToLower(name);
      }
      return node;
    }
    return Error("expected an expression");
  }

  std::string_view text_;
  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SqlSelect>> ParseSql(std::string_view text) {
  return SqlParser(text).Run();
}

}  // namespace aiql
