#include "sql/sql_executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/like_matcher.h"
#include "sql/sql_parser.h"

namespace aiql {

namespace {

using Clock = std::chrono::steady_clock;

/// Materialized intermediate relation.
struct Relation {
  // Column identity: (table alias, column name).
  std::vector<std::pair<std::string, std::string>> columns;
  std::vector<std::vector<SqlValue>> rows;
  // Lazily-built lookup: "alias.name" and bare "name" -> column index
  // (first match wins, mirroring the linear-scan resolution order).
  mutable std::unordered_map<std::string, int> column_index_;

  int FindColumn(const std::string& alias, const std::string& name) const {
    if (column_index_.empty() && !columns.empty()) {
      for (size_t i = 0; i < columns.size(); ++i) {
        column_index_.try_emplace(columns[i].first + "." + columns[i].second,
                                  static_cast<int>(i));
        column_index_.try_emplace(columns[i].second, static_cast<int>(i));
      }
    }
    auto it = column_index_.find(alias.empty() ? name
                                               : alias + "." + name);
    return it == column_index_.end() ? -1 : it->second;
  }
};

/// Splits an expression on AND into conjuncts.
void SplitConjuncts(const SqlExpr* expr, std::vector<const SqlExpr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == SqlExpr::Kind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->lhs.get(), out);
    SplitConjuncts(expr->rhs.get(), out);
    return;
  }
  out->push_back(expr);
}

/// Collects the table aliases an expression references.
void CollectAliases(const SqlExpr* expr,
                    std::unordered_set<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind == SqlExpr::Kind::kColumn) out->insert(expr->table_alias);
  CollectAliases(expr->lhs.get(), out);
  CollectAliases(expr->rhs.get(), out);
  for (const auto& arg : expr->args) CollectAliases(arg.get(), out);
}

bool ContainsAggregate(const SqlExpr* expr) {
  if (expr == nullptr) return false;
  if (expr->is_aggregate_call()) return true;
  if (ContainsAggregate(expr->lhs.get()) ||
      ContainsAggregate(expr->rhs.get())) {
    return true;
  }
  for (const auto& arg : expr->args) {
    if (ContainsAggregate(arg.get())) return true;
  }
  return false;
}

void CollectAggregates(const SqlExpr* expr,
                       std::vector<const SqlExpr*>* out) {
  if (expr == nullptr) return;
  if (expr->is_aggregate_call()) {
    out->push_back(expr);
    return;  // aggregates do not nest
  }
  CollectAggregates(expr->lhs.get(), out);
  CollectAggregates(expr->rhs.get(), out);
  for (const auto& arg : expr->args) CollectAggregates(arg.get(), out);
}

/// Zero-copy view over one row or a (left, right) pair during a join —
/// join predicates are evaluated without materializing the combined row.
struct RowView {
  const std::vector<SqlValue>* left = nullptr;
  const std::vector<SqlValue>* right = nullptr;

  const SqlValue& at(size_t i) const {
    if (i < left->size()) return (*left)[i];
    return (*right)[i - left->size()];
  }
};

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Add(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
  }
  SqlValue Finalize(const std::string& func) const {
    if (func == "COUNT") return static_cast<int64_t>(count);
    if (count == 0) return SqlValue{};  // SQL aggregates of empty are NULL
    if (func == "SUM") return sum;
    if (func == "AVG") return sum / static_cast<double>(count);
    if (func == "MIN") return min;
    return max;  // MAX
  }
};

class ExecContext {
 public:
  explicit ExecContext(const SqlCatalog* catalog) : catalog_(catalog) {}

  uint64_t rows_scanned = 0;
  uint64_t join_candidates = 0;

  Result<Relation> ExecuteSelect(const SqlSelect& select);

 private:
  // --- expression evaluation ----------------------------------------------

  SqlValue Eval(const SqlExpr& expr, const Relation& rel,
                const RowView& row,
                const std::unordered_map<const SqlExpr*, SqlValue>* aggs =
                    nullptr,
                const std::unordered_map<std::string, const SqlExpr*>*
                    select_aliases = nullptr) {
    switch (expr.kind) {
      case SqlExpr::Kind::kLiteral:
        return expr.literal;
      case SqlExpr::Kind::kColumn: {
        int idx = rel.FindColumn(expr.table_alias, expr.column);
        if (idx >= 0) return row.at(static_cast<size_t>(idx));
        // HAVING may reference select-list aliases (e.g. HAVING n > 5).
        if (expr.table_alias.empty() && select_aliases != nullptr) {
          auto it = select_aliases->find(expr.column);
          if (it != select_aliases->end() && it->second != &expr) {
            return Eval(*it->second, rel, row, aggs, select_aliases);
          }
        }
        return SqlValue{};
      }
      case SqlExpr::Kind::kStar:
        return int64_t{1};
      case SqlExpr::Kind::kNot: {
        SqlValue v = Eval(*expr.lhs, rel, row, aggs, select_aliases);
        if (SqlIsNull(v)) return SqlValue{};
        return static_cast<int64_t>(SqlValueToDouble(v) == 0 ? 1 : 0);
      }
      case SqlExpr::Kind::kLike: {
        SqlValue v = Eval(*expr.lhs, rel, row, aggs, select_aliases);
        if (SqlIsNull(v)) return SqlValue{};
        const std::string& pattern = std::get<std::string>(expr.literal);
        return static_cast<int64_t>(
            GetMatcher(pattern).Matches(SqlValueToString(v)) ? 1 : 0);
      }
      case SqlExpr::Kind::kIn: {
        SqlValue v = Eval(*expr.lhs, rel, row, aggs, select_aliases);
        if (SqlIsNull(v)) return SqlValue{};
        for (const auto& arg : expr.args) {
          SqlValue candidate = Eval(*arg, rel, row, aggs, select_aliases);
          if (!SqlIsNull(candidate) && SqlCompare(v, candidate) == 0) {
            return int64_t{1};
          }
        }
        return int64_t{0};
      }
      case SqlExpr::Kind::kFunc: {
        if (expr.is_aggregate_call()) {
          if (aggs != nullptr) {
            auto it = aggs->find(&expr);
            if (it != aggs->end()) return it->second;
          }
          return SqlValue{};
        }
        if (expr.op == "COALESCE") {
          for (const auto& arg : expr.args) {
            SqlValue v = Eval(*arg, rel, row, aggs, select_aliases);
            if (!SqlIsNull(v)) return v;
          }
          return SqlValue{};
        }
        if (expr.op == "ABS" && expr.args.size() == 1) {
          SqlValue v = Eval(*expr.args[0], rel, row, aggs, select_aliases);
          if (SqlIsNull(v)) return v;
          return std::abs(SqlValueToDouble(v));
        }
        return SqlValue{};
      }
      case SqlExpr::Kind::kBinary: {
        SqlValue l = Eval(*expr.lhs, rel, row, aggs, select_aliases);
        SqlValue r = Eval(*expr.rhs, rel, row, aggs, select_aliases);
        const std::string& op = expr.op;
        if (op == "AND") {
          bool lt = !SqlIsNull(l) && SqlValueToDouble(l) != 0;
          bool rt = !SqlIsNull(r) && SqlValueToDouble(r) != 0;
          return static_cast<int64_t>(lt && rt ? 1 : 0);
        }
        if (op == "OR") {
          bool lt = !SqlIsNull(l) && SqlValueToDouble(l) != 0;
          bool rt = !SqlIsNull(r) && SqlValueToDouble(r) != 0;
          return static_cast<int64_t>(lt || rt ? 1 : 0);
        }
        if (SqlIsNull(l) || SqlIsNull(r)) return SqlValue{};
        if (op == "+" || op == "-" || op == "*" || op == "/") {
          double a = SqlValueToDouble(l), b = SqlValueToDouble(r);
          double v = op == "+"   ? a + b
                     : op == "-" ? a - b
                     : op == "*" ? a * b
                                 : (b == 0 ? 0 : a / b);
          bool ints = std::holds_alternative<int64_t>(l) &&
                      std::holds_alternative<int64_t>(r) && op != "/";
          if (ints) return static_cast<int64_t>(v);
          return v;
        }
        int cmp = SqlCompare(l, r);
        bool verdict = op == "="    ? cmp == 0
                       : op == "<>" ? cmp != 0
                       : op == "<"  ? cmp < 0
                       : op == "<=" ? cmp <= 0
                       : op == ">"  ? cmp > 0
                                    : cmp >= 0;  // ">="
        return static_cast<int64_t>(verdict ? 1 : 0);
      }
    }
    return SqlValue{};
  }

  SqlValue Eval(const SqlExpr& expr, const Relation& rel,
                const std::vector<SqlValue>& row,
                const std::unordered_map<const SqlExpr*, SqlValue>* aggs =
                    nullptr,
                const std::unordered_map<std::string, const SqlExpr*>*
                    select_aliases = nullptr) {
    RowView view{&row, nullptr};
    return Eval(expr, rel, view, aggs, select_aliases);
  }

  bool Truthy(const SqlValue& v) const {
    return !SqlIsNull(v) && SqlValueToDouble(v) != 0;
  }

  const LikeMatcher& GetMatcher(const std::string& pattern) {
    auto it = matchers_.find(pattern);
    if (it == matchers_.end()) {
      it = matchers_.emplace(pattern, LikeMatcher(pattern)).first;
    }
    return it->second;
  }

  // --- scans ---------------------------------------------------------------

  // Extracts time/agent pushdown hints from this table's local predicates.
  ScanHints ExtractHints(const std::string& alias,
                         const std::vector<const SqlExpr*>& local_preds) {
    ScanHints hints;
    if (!catalog_->supports_pruning()) return hints;
    for (const SqlExpr* pred : local_preds) {
      if (pred->kind != SqlExpr::Kind::kBinary) continue;
      const SqlExpr* col = pred->lhs.get();
      const SqlExpr* lit = pred->rhs.get();
      if (col == nullptr || lit == nullptr) continue;
      if (col->kind != SqlExpr::Kind::kColumn ||
          lit->kind != SqlExpr::Kind::kLiteral) {
        continue;
      }
      if (!col->table_alias.empty() && col->table_alias != alias) continue;
      if (!std::holds_alternative<int64_t>(lit->literal)) continue;
      int64_t value = std::get<int64_t>(lit->literal);
      if (col->column == "start_ts") {
        if (pred->op == ">=") {
          hints.time.start = std::max(hints.time.start, value);
        } else if (pred->op == ">") {
          hints.time.start = std::max(hints.time.start, value + 1);
        } else if (pred->op == "<") {
          hints.time.end = std::min(hints.time.end, value);
        } else if (pred->op == "<=") {
          hints.time.end = std::min(hints.time.end, value + 1);
        }
      } else if (col->column == "agentid" && pred->op == "=") {
        if (!hints.agents.has_value()) {
          hints.agents = std::vector<AgentId>{static_cast<AgentId>(value)};
        }
      }
    }
    return hints;
  }

  Result<Relation> ScanRef(const SqlTableRef& ref,
                           const std::vector<const SqlExpr*>& local_preds) {
    Relation rel;
    switch (ref.kind) {
      case SqlTableRef::Kind::kSubquery: {
        AIQL_ASSIGN_OR_RETURN(Relation sub, ExecuteSelect(*ref.subquery));
        rel.columns.reserve(sub.columns.size());
        for (const auto& [alias, name] : sub.columns) {
          rel.columns.emplace_back(ref.alias, name);
        }
        rel.rows = std::move(sub.rows);
        break;
      }
      case SqlTableRef::Kind::kWindows: {
        rel.columns = {{ref.alias, "idx"}, {ref.alias, "wstart"}};
        if (ref.win_step <= 0 || ref.win_length <= 0) {
          return Status::InvalidArgument("windows() needs positive sizes");
        }
        for (int64_t idx = 0, start = ref.win_start; start < ref.win_end;
             ++idx, start += ref.win_step) {
          rel.rows.push_back({SqlValue(idx), SqlValue(start)});
        }
        break;
      }
      case SqlTableRef::Kind::kBase: {
        AIQL_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                              catalog_->GetSchema(ref.table));
        rel.columns.reserve(schema.size());
        for (const std::string& column : schema) {
          rel.columns.emplace_back(ref.alias, column);
        }
        ScanHints hints = ExtractHints(ref.alias, local_preds);
        AIQL_RETURN_IF_ERROR(catalog_->Scan(
            ref.table, hints, [&](std::vector<SqlValue>&& row) {
              ++rows_scanned;
              rel.rows.push_back(std::move(row));
            }));
        // Scan counted raw rows; local filtering happens below.
        break;
      }
    }
    // Apply local predicates.
    if (!local_preds.empty()) {
      std::vector<std::vector<SqlValue>> kept;
      kept.reserve(rel.rows.size());
      for (auto& row : rel.rows) {
        bool pass = true;
        for (const SqlExpr* pred : local_preds) {
          if (!Truthy(Eval(*pred, rel, row))) {
            pass = false;
            break;
          }
        }
        if (pass) kept.push_back(std::move(row));
      }
      rel.rows = std::move(kept);
    }
    return rel;
  }

  // --- join ----------------------------------------------------------------

  // Joins `right` into `left` (inner or left-outer) using `preds`, hashing
  // on available equality column pairs.
  Relation Join(Relation&& left, Relation&& right, bool left_outer,
                const std::vector<const SqlExpr*>& preds) {
    Relation out;
    out.columns = left.columns;
    out.columns.insert(out.columns.end(), right.columns.begin(),
                       right.columns.end());

    // Find equi-join column pairs: pred `a.col = b.col` with one side in
    // left, the other in right.
    std::vector<std::pair<int, int>> key_pairs;  // (left idx, right idx)
    std::vector<const SqlExpr*> residual;
    for (const SqlExpr* pred : preds) {
      bool used = false;
      if (pred->kind == SqlExpr::Kind::kBinary && pred->op == "=" &&
          pred->lhs->kind == SqlExpr::Kind::kColumn &&
          pred->rhs->kind == SqlExpr::Kind::kColumn) {
        int l1 = left.FindColumn(pred->lhs->table_alias, pred->lhs->column);
        int r1 = right.FindColumn(pred->rhs->table_alias, pred->rhs->column);
        int l2 = left.FindColumn(pred->rhs->table_alias, pred->rhs->column);
        int r2 = right.FindColumn(pred->lhs->table_alias, pred->lhs->column);
        if (l1 >= 0 && r1 >= 0) {
          key_pairs.emplace_back(l1, r1);
          used = true;
        } else if (l2 >= 0 && r2 >= 0) {
          key_pairs.emplace_back(l2, r2);
          used = true;
        }
      }
      if (!used) residual.push_back(pred);
    }

    auto residual_ok = [&](const std::vector<SqlValue>& lrow,
                           const std::vector<SqlValue>& rrow) {
      RowView view{&lrow, &rrow};
      for (const SqlExpr* pred : residual) {
        if (!Truthy(Eval(*pred, out, view))) return false;
      }
      return true;
    };
    auto key_of = [](const std::vector<SqlValue>& row,
                     const std::vector<int>& idxs) {
      std::string key;
      for (int idx : idxs) {
        key += SqlValueToString(row[idx]);
        key += '\x1f';
      }
      return key;
    };

    if (!key_pairs.empty()) {
      std::vector<int> left_keys, right_keys;
      for (const auto& [l, r] : key_pairs) {
        left_keys.push_back(l);
        right_keys.push_back(r);
      }
      std::unordered_map<std::string, std::vector<const std::vector<SqlValue>*>>
          hash;
      for (const auto& row : right.rows) {
        hash[key_of(row, right_keys)].push_back(&row);
      }
      for (const auto& lrow : left.rows) {
        auto it = hash.find(key_of(lrow, left_keys));
        bool matched = false;
        if (it != hash.end()) {
          for (const auto* rrow : it->second) {
            ++join_candidates;
            if (residual_ok(lrow, *rrow)) {
              matched = true;
              std::vector<SqlValue> row = lrow;
              row.insert(row.end(), rrow->begin(), rrow->end());
              out.rows.push_back(std::move(row));
            }
          }
        }
        if (!matched && left_outer) {
          std::vector<SqlValue> row = lrow;
          row.resize(out.columns.size());  // null-extend
          out.rows.push_back(std::move(row));
        }
      }
    } else {
      // Nested loop.
      for (const auto& lrow : left.rows) {
        bool matched = false;
        for (const auto& rrow : right.rows) {
          ++join_candidates;
          if (residual_ok(lrow, rrow)) {
            matched = true;
            std::vector<SqlValue> row = lrow;
            row.insert(row.end(), rrow.begin(), rrow.end());
            out.rows.push_back(std::move(row));
          }
        }
        if (!matched && left_outer) {
          std::vector<SqlValue> row = lrow;
          row.resize(out.columns.size());
          out.rows.push_back(std::move(row));
        }
      }
    }
    return out;
  }

  const SqlCatalog* catalog_;
  std::unordered_map<std::string, LikeMatcher> matchers_;
};

Result<Relation> ExecContext::ExecuteSelect(const SqlSelect& select) {
  if (select.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // Conjuncts of WHERE, tracked for earliest-possible application.
  std::vector<const SqlExpr*> where_conjuncts;
  SplitConjuncts(select.where.get(), &where_conjuncts);
  std::vector<bool> applied(where_conjuncts.size(), false);

  auto alias_of_ref = [](const SqlTableRef& ref) { return ref.alias; };

  std::unordered_set<std::string> bound;
  Relation current;

  for (size_t i = 0; i < select.from.size(); ++i) {
    const SqlTableRef& ref = select.from[i];

    // Local predicates: ON conjuncts (left join) or WHERE conjuncts (inner)
    // that reference only this alias and no aggregate.
    std::vector<const SqlExpr*> on_conjuncts;
    if (ref.left_join) SplitConjuncts(ref.join_cond.get(), &on_conjuncts);

    std::vector<const SqlExpr*> local;
    if (ref.left_join) {
      for (const SqlExpr* pred : on_conjuncts) {
        std::unordered_set<std::string> aliases;
        CollectAliases(pred, &aliases);
        if (aliases.size() == 1 && aliases.count(ref.alias) > 0) {
          local.push_back(pred);
        }
      }
    } else {
      for (size_t c = 0; c < where_conjuncts.size(); ++c) {
        if (applied[c] || ContainsAggregate(where_conjuncts[c])) continue;
        std::unordered_set<std::string> aliases;
        CollectAliases(where_conjuncts[c], &aliases);
        if (aliases.size() == 1 && aliases.count(ref.alias) > 0) {
          local.push_back(where_conjuncts[c]);
          applied[c] = true;
        }
      }
    }

    AIQL_ASSIGN_OR_RETURN(Relation scanned, ScanRef(ref, local));

    if (i == 0) {
      current = std::move(scanned);
      bound.insert(alias_of_ref(ref));
      continue;
    }

    // Join predicates applicable now.
    std::vector<const SqlExpr*> join_preds;
    if (ref.left_join) {
      for (const SqlExpr* pred : on_conjuncts) {
        std::unordered_set<std::string> aliases;
        CollectAliases(pred, &aliases);
        bool only_local = aliases.size() == 1 && aliases.count(ref.alias) > 0;
        if (!only_local) join_preds.push_back(pred);
      }
    } else {
      for (size_t c = 0; c < where_conjuncts.size(); ++c) {
        if (applied[c] || ContainsAggregate(where_conjuncts[c])) continue;
        std::unordered_set<std::string> aliases;
        CollectAliases(where_conjuncts[c], &aliases);
        bool ready = true;
        bool touches_new = false;
        for (const std::string& alias : aliases) {
          if (alias == ref.alias) {
            touches_new = true;
          } else if (bound.count(alias) == 0 && !alias.empty()) {
            ready = false;
          }
        }
        if (ready && touches_new) {
          join_preds.push_back(where_conjuncts[c]);
          applied[c] = true;
        }
      }
    }
    current = Join(std::move(current), std::move(scanned), ref.left_join,
                   join_preds);
    bound.insert(alias_of_ref(ref));
  }

  // Remaining WHERE conjuncts (cross-alias with empty aliases etc.).
  for (size_t c = 0; c < where_conjuncts.size(); ++c) {
    if (applied[c] || ContainsAggregate(where_conjuncts[c])) continue;
    std::vector<std::vector<SqlValue>> kept;
    for (auto& row : current.rows) {
      if (Truthy(Eval(*where_conjuncts[c], current, row))) {
        kept.push_back(std::move(row));
      }
    }
    current.rows = std::move(kept);
    applied[c] = true;
  }

  // --- grouping / aggregation ------------------------------------------------
  bool grouped = !select.group_by.empty();
  std::vector<const SqlExpr*> agg_nodes;
  for (const SqlSelectItem& item : select.items) {
    CollectAggregates(item.expr.get(), &agg_nodes);
  }
  CollectAggregates(select.having.get(), &agg_nodes);
  grouped = grouped || !agg_nodes.empty();

  Relation output;
  // Output columns.
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SqlSelectItem& item = select.items[i];
    std::string name = item.alias;
    if (name.empty() && item.expr->kind == SqlExpr::Kind::kColumn) {
      name = item.expr->column;
    }
    if (name.empty()) name = "col" + std::to_string(i + 1);
    output.columns.emplace_back("", name);
  }

  if (grouped) {
    struct Group {
      std::vector<SqlValue> representative;
      std::vector<AggState> states;
    };
    std::unordered_map<std::string, Group> groups;
    std::vector<std::string> group_order;
    for (const auto& row : current.rows) {
      std::string key;
      for (const auto& expr : select.group_by) {
        key += SqlValueToString(Eval(*expr, current, row));
        key += '\x1f';
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.representative = row;
        it->second.states.resize(agg_nodes.size());
        group_order.push_back(key);
      }
      for (size_t a = 0; a < agg_nodes.size(); ++a) {
        const SqlExpr* agg = agg_nodes[a];
        if (agg->args.empty() ||
            agg->args[0]->kind == SqlExpr::Kind::kStar) {
          it->second.states[a].Add(1);
        } else {
          SqlValue v = Eval(*agg->args[0], current, row);
          if (!SqlIsNull(v)) it->second.states[a].Add(SqlValueToDouble(v));
        }
      }
    }
    // Ungrouped aggregation over empty input still yields one row
    // (COUNT(*) = 0, other aggregates NULL), per standard SQL.
    if (select.group_by.empty() && groups.empty()) {
      Group& group = groups[""];
      group.representative.assign(current.columns.size(), SqlValue{});
      group.states.resize(agg_nodes.size());
      group_order.push_back("");
    }
    std::unordered_map<std::string, const SqlExpr*> select_aliases;
    for (const SqlSelectItem& item : select.items) {
      if (!item.alias.empty()) select_aliases[item.alias] = item.expr.get();
    }
    for (const std::string& key : group_order) {
      Group& group = groups[key];
      std::unordered_map<const SqlExpr*, SqlValue> agg_values;
      for (size_t a = 0; a < agg_nodes.size(); ++a) {
        agg_values[agg_nodes[a]] = group.states[a].Finalize(agg_nodes[a]->op);
      }
      if (select.having != nullptr &&
          !Truthy(Eval(*select.having, current, group.representative,
                       &agg_values, &select_aliases))) {
        continue;
      }
      std::vector<SqlValue> row;
      row.reserve(select.items.size());
      for (const SqlSelectItem& item : select.items) {
        row.push_back(
            Eval(*item.expr, current, group.representative, &agg_values));
      }
      output.rows.push_back(std::move(row));
    }
  } else {
    for (const auto& row : current.rows) {
      std::vector<SqlValue> out_row;
      out_row.reserve(select.items.size());
      for (const SqlSelectItem& item : select.items) {
        out_row.push_back(Eval(*item.expr, current, row));
      }
      output.rows.push_back(std::move(out_row));
    }
  }

  if (select.distinct) {
    std::unordered_set<std::string> seen;
    std::vector<std::vector<SqlValue>> kept;
    for (auto& row : output.rows) {
      std::string key;
      for (const SqlValue& v : row) {
        key += SqlValueToString(v);
        key += '\x1f';
      }
      if (seen.insert(key).second) kept.push_back(std::move(row));
    }
    output.rows = std::move(kept);
  }
  if (select.limit.has_value() &&
      output.rows.size() > static_cast<size_t>(*select.limit)) {
    output.rows.resize(static_cast<size_t>(*select.limit));
  }
  return output;
}

}  // namespace

Result<QueryResult> SqlExecutor::Execute(std::string_view sql) {
  auto parse_start = Clock::now();
  AIQL_ASSIGN_OR_RETURN(auto select, ParseSql(sql));
  auto exec_start = Clock::now();

  ExecContext context(catalog_);
  AIQL_ASSIGN_OR_RETURN(Relation rel, context.ExecuteSelect(*select));

  QueryResult result;
  result.stats.parse_time =
      std::chrono::duration_cast<std::chrono::microseconds>(exec_start -
                                                            parse_start)
          .count();
  result.stats.exec_time =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            exec_start)
          .count();
  result.stats.events_scanned = context.rows_scanned;
  result.stats.join_candidates = context.join_candidates;
  result.plan = "generic left-deep join in FROM order (single-threaded)";

  result.table.columns.reserve(rel.columns.size());
  for (const auto& [alias, name] : rel.columns) {
    result.table.columns.push_back(name);
  }
  result.table.rows.reserve(rel.rows.size());
  for (auto& row : rel.rows) {
    std::vector<Value> out;
    out.reserve(row.size());
    for (SqlValue& v : row) {
      if (SqlIsNull(v)) {
        out.emplace_back(std::string("NULL"));
      } else if (auto* i = std::get_if<int64_t>(&v)) {
        out.emplace_back(*i);
      } else if (auto* d = std::get_if<double>(&v)) {
        out.emplace_back(*d);
      } else {
        out.emplace_back(std::move(std::get<std::string>(v)));
      }
    }
    result.table.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace aiql
