// AIQL -> SQL translation (the "semantically equivalent SQL queries" of the
// paper's evaluation, §3).
//
// Two target schemas:
//  * kNormalized — entity/event tables of the optimized storage (Fig. 4
//    baseline). Every event pattern becomes an `events` alias joined with
//    its subject/object entity tables; relationships become join predicates.
//  * kFlat — the denormalized audit_log table (Fig. 5 baseline). Every
//    pattern is a self-join of audit_log; shared entities become multi-
//    column string equalities.
//
// Anomaly queries compile to a windows() derived table with GROUP BY; the
// `amt[k]` history accesses — which SQL cannot express directly — become
// LEFT JOINs of the derived table against itself shifted by k windows, with
// COALESCE for silent windows. This mirrors what an analyst must hand-write
// in PostgreSQL and is the source of the verbosity gap the paper reports.
//
// Note: generated string equality uses LIKE so the baseline matches AIQL's
// case-insensitive semantics (PostgreSQL users would write ILIKE/citext).

#ifndef AIQL_SQL_TRANSLATOR_H_
#define AIQL_SQL_TRANSLATOR_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "query/metrics.h"

namespace aiql {

/// Target schema for the generated SQL.
enum class SqlSchemaMode { kNormalized, kFlat };

/// A generated SQL statement plus its conciseness metrics.
struct SqlTranslation {
  std::string sql;
  QueryTextMetrics metrics;
};

/// Translates a parsed AIQL query (dependency queries are rewritten to
/// multievent form first). Anomaly translation requires an explicit global
/// time window (SQL windows() needs an anchor).
Result<SqlTranslation> TranslateToSql(const ParsedQuery& query,
                                      SqlSchemaMode mode);

}  // namespace aiql

#endif  // AIQL_SQL_TRANSLATOR_H_
