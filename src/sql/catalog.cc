#include "sql/catalog.h"

#include <algorithm>

namespace aiql {

namespace {

std::string StringOf(const StringInterner& pool, StringId id) {
  return std::string(pool.Get(id));
}

const std::vector<std::string> kProcessColumns = {"id", "agentid", "pid",
                                                  "exe_name", "username"};
const std::vector<std::string> kFileColumns = {"id", "agentid", "path"};
const std::vector<std::string> kNetworkColumns = {
    "id", "agentid", "src_ip", "src_port", "dst_ip", "dst_port", "protocol"};
const std::vector<std::string> kEventColumns = {
    "id",        "agentid",  "subject_id", "op",    "object_type",
    "object_id", "start_ts", "end_ts",     "amount"};
const std::vector<std::string> kAuditLogColumns = {
    "agentid",     "op",          "start_ts",       "end_ts",
    "amount",      "subject_pid", "subject_exe",    "subject_user",
    "object_type", "object_agentid", "object_pid",  "object_exe",
    "object_user", "file_path",   "src_ip",         "src_port",
    "dst_ip",      "dst_port",    "protocol"};

}  // namespace

Result<std::vector<std::string>> OptimizedCatalog::GetSchema(
    const std::string& table) const {
  if (table == "process") return kProcessColumns;
  if (table == "file") return kFileColumns;
  if (table == "network") return kNetworkColumns;
  if (table == "events") return kEventColumns;
  return Status::NotFound("unknown table '" + table + "'");
}

Status OptimizedCatalog::Scan(
    const std::string& table, const ScanHints& hints,
    const std::function<void(std::vector<SqlValue>&&)>& fn) const {
  const EntityStore& es = db_->entities();
  if (table == "process") {
    for (EntityId id = 0; id < es.processes().size(); ++id) {
      const ProcessEntity& p = es.processes()[id];
      fn({SqlValue(static_cast<int64_t>(id)),
          SqlValue(static_cast<int64_t>(p.agent_id)),
          SqlValue(static_cast<int64_t>(p.pid)),
          SqlValue(StringOf(es.exe_names(), p.exe_name)),
          SqlValue(StringOf(es.users(), p.user))});
    }
    return Status::OK();
  }
  if (table == "file") {
    for (EntityId id = 0; id < es.files().size(); ++id) {
      const FileEntity& f = es.files()[id];
      fn({SqlValue(static_cast<int64_t>(id)),
          SqlValue(static_cast<int64_t>(f.agent_id)),
          SqlValue(StringOf(es.paths(), f.path))});
    }
    return Status::OK();
  }
  if (table == "network") {
    for (EntityId id = 0; id < es.networks().size(); ++id) {
      const NetworkEntity& n = es.networks()[id];
      fn({SqlValue(static_cast<int64_t>(id)),
          SqlValue(static_cast<int64_t>(n.agent_id)),
          SqlValue(StringOf(es.ips(), n.src_ip)),
          SqlValue(static_cast<int64_t>(n.src_port)),
          SqlValue(StringOf(es.ips(), n.dst_ip)),
          SqlValue(static_cast<int64_t>(n.dst_port)),
          SqlValue(StringOf(es.protocols(), n.protocol))});
    }
    return Status::OK();
  }
  if (table == "events") {
    // Partition pruning from hints (PostgreSQL constraint exclusion).
    int64_t row_id = 0;
    for (const auto& [key, partition] :
         db_->SelectPartitions(hints.time, hints.agents)) {
      for (const Event& e : partition->events()) {
        fn({SqlValue(row_id++),
            SqlValue(static_cast<int64_t>(e.agent_id)),
            SqlValue(static_cast<int64_t>(e.subject)),
            SqlValue(std::string(OpTypeToString(e.op))),
            SqlValue(std::string(EntityTypeToString(e.object_type))),
            SqlValue(static_cast<int64_t>(e.object)),
            SqlValue(e.start_ts), SqlValue(e.end_ts),
            SqlValue(static_cast<int64_t>(e.amount))});
      }
    }
    return Status::OK();
  }
  return Status::NotFound("unknown table '" + table + "'");
}

FlatCatalog::FlatCatalog(const AuditDatabase* db) : db_(db) {
  num_rows_ = db->stats().total_events;
}

Result<std::vector<std::string>> FlatCatalog::GetSchema(
    const std::string& table) const {
  if (table == "audit_log") return kAuditLogColumns;
  return Status::NotFound("unknown table '" + table +
                          "' (flat storage only has audit_log)");
}

Status FlatCatalog::Scan(
    const std::string& table, const ScanHints& hints,
    const std::function<void(std::vector<SqlValue>&&)>& fn) const {
  (void)hints;  // no pruning without the optimized storage
  if (table != "audit_log") {
    return Status::NotFound("unknown table '" + table + "'");
  }
  const EntityStore& es = db_->entities();
  for (const auto& [key, partition] :
       db_->SelectPartitions(TimeRange{INT64_MIN, INT64_MAX},
                             std::nullopt)) {
    for (const Event& e : partition->events()) {
      const ProcessEntity& subj = es.processes()[e.subject];
      std::vector<SqlValue> row(kAuditLogColumns.size());
      row[0] = static_cast<int64_t>(e.agent_id);
      row[1] = std::string(OpTypeToString(e.op));
      row[2] = e.start_ts;
      row[3] = e.end_ts;
      row[4] = static_cast<int64_t>(e.amount);
      row[5] = static_cast<int64_t>(subj.pid);
      row[6] = StringOf(es.exe_names(), subj.exe_name);
      row[7] = StringOf(es.users(), subj.user);
      row[8] = std::string(EntityTypeToString(e.object_type));
      switch (e.object_type) {
        case EntityType::kProcess: {
          const ProcessEntity& obj = es.processes()[e.object];
          row[9] = static_cast<int64_t>(obj.agent_id);
          row[10] = static_cast<int64_t>(obj.pid);
          row[11] = StringOf(es.exe_names(), obj.exe_name);
          row[12] = StringOf(es.users(), obj.user);
          break;
        }
        case EntityType::kFile: {
          const FileEntity& obj = es.files()[e.object];
          row[9] = static_cast<int64_t>(obj.agent_id);
          row[13] = StringOf(es.paths(), obj.path);
          break;
        }
        case EntityType::kNetwork: {
          const NetworkEntity& obj = es.networks()[e.object];
          row[9] = static_cast<int64_t>(obj.agent_id);
          row[14] = StringOf(es.ips(), obj.src_ip);
          row[15] = static_cast<int64_t>(obj.src_port);
          row[16] = StringOf(es.ips(), obj.dst_ip);
          row[17] = static_cast<int64_t>(obj.dst_port);
          row[18] = StringOf(es.protocols(), obj.protocol);
          break;
        }
      }
      fn(std::move(row));
    }
  }
  return Status::OK();
}

}  // namespace aiql
