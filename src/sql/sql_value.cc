#include "sql/sql_value.h"

#include <cstdio>

namespace aiql {

std::string SqlValueToString(const SqlValue& v) {
  if (SqlIsNull(v)) return "NULL";
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

double SqlValueToDouble(const SqlValue& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return 0;
}

int SqlCompare(const SqlValue& a, const SqlValue& b) {
  bool a_str = std::holds_alternative<std::string>(a);
  bool b_str = std::holds_alternative<std::string>(b);
  if (a_str && b_str) {
    return std::get<std::string>(a).compare(std::get<std::string>(b));
  }
  double l = SqlValueToDouble(a);
  double r = SqlValueToDouble(b);
  return l < r ? -1 : (l > r ? 1 : 0);
}

}  // namespace aiql
