// Parser for the mini-SQL dialect (see sql_ast.h for the grammar surface).
//
// The baseline engine parses the SQL text the translator generates — the
// same text whose conciseness is compared against AIQL — rather than
// executing a hand-built plan, so the baseline measures the full
// parse+plan+execute path like a real DBMS client session would.

#ifndef AIQL_SQL_SQL_PARSER_H_
#define AIQL_SQL_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "sql/sql_ast.h"

namespace aiql {

/// Parses one SELECT statement (optionally ';'-terminated).
Result<std::unique_ptr<SqlSelect>> ParseSql(std::string_view text);

}  // namespace aiql

#endif  // AIQL_SQL_SQL_PARSER_H_
