// Relational catalogs exposing the audit store to the SQL baseline engine.
//
// Two modes reproduce the paper's two baselines:
//  * OptimizedCatalog — "PostgreSQL w/ our optimized storage" (Fig. 4):
//    normalized entity/event tables over the partitioned store; scans honor
//    time/agent pushdown (partition pruning, as PostgreSQL constraint
//    exclusion would).
//  * FlatCatalog — "PostgreSQL w/o our optimized storage" (Fig. 5): one
//    denormalized audit_log table of strings; every scan is a full scan and
//    every entity reference is a string comparison.

#ifndef AIQL_SQL_CATALOG_H_
#define AIQL_SQL_CATALOG_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_utils.h"
#include "sql/sql_value.h"
#include "storage/database.h"

namespace aiql {

/// Scan-time pushdown hints the executor extracts from single-table
/// predicates (a real DBMS would do the same via indexes / partitioning).
struct ScanHints {
  TimeRange time{INT64_MIN, INT64_MAX};          ///< on the table's time column
  std::optional<std::vector<AgentId>> agents;    ///< on agentid equality
};

/// Row-producing catalog interface.
class SqlCatalog {
 public:
  virtual ~SqlCatalog() = default;

  /// Column names of `table` (lower-case), or NotFound.
  virtual Result<std::vector<std::string>> GetSchema(
      const std::string& table) const = 0;

  /// Streams rows of `table`. `hints` may prune partitions; correctness must
  /// not depend on them (the executor re-checks all predicates).
  virtual Status Scan(
      const std::string& table, const ScanHints& hints,
      const std::function<void(std::vector<SqlValue>&&)>& fn) const = 0;

  /// True when scans can exploit the hints (the optimized storage).
  virtual bool supports_pruning() const = 0;
};

/// Normalized tables over the partitioned AuditDatabase:
///   process(id, agentid, pid, exe_name, username)
///   file(id, agentid, path)
///   network(id, agentid, src_ip, src_port, dst_ip, dst_port, protocol)
///   events(id, agentid, subject_id, op, object_type, object_id,
///          start_ts, end_ts, amount)
class OptimizedCatalog : public SqlCatalog {
 public:
  explicit OptimizedCatalog(const AuditDatabase* db) : db_(db) {}

  Result<std::vector<std::string>> GetSchema(
      const std::string& table) const override;
  Status Scan(const std::string& table, const ScanHints& hints,
              const std::function<void(std::vector<SqlValue>&&)>& fn)
      const override;
  bool supports_pruning() const override { return true; }

 private:
  const AuditDatabase* db_;
};

/// One denormalized table:
///   audit_log(agentid, op, start_ts, end_ts, amount,
///             subject_pid, subject_exe, subject_user,
///             object_type, object_agentid, object_pid, object_exe,
///             object_user, file_path,
///             src_ip, src_port, dst_ip, dst_port, protocol)
/// Rows are produced on the fly from the backing store; every scan is a
/// full scan that re-materializes every denormalized string row (the cost
/// profile of reading a raw log table without the optimized storage).
class FlatCatalog : public SqlCatalog {
 public:
  explicit FlatCatalog(const AuditDatabase* db);

  Result<std::vector<std::string>> GetSchema(
      const std::string& table) const override;
  Status Scan(const std::string& table, const ScanHints& hints,
              const std::function<void(std::vector<SqlValue>&&)>& fn)
      const override;
  bool supports_pruning() const override { return false; }

  size_t num_rows() const { return num_rows_; }

 private:
  const AuditDatabase* db_;
  size_t num_rows_ = 0;
};

}  // namespace aiql

#endif  // AIQL_SQL_CATALOG_H_
